"""Tests for the section 3.2 cost model."""

import pytest

from repro.geometry import Rect
from repro.grid import RoutingGrid, TrackSet
from repro.core.cost import CornerCostEvaluator, CostWeights


def make_grid(n=9):
    ts = TrackSet(range(0, n * 10, 10))
    return RoutingGrid(ts, TrackSet(range(0, n * 10, 10)))


class TestCostWeights:
    def test_defaults_are_paper_sparse(self):
        w = CostWeights()
        assert (w.w1, w.w21, w.w22, w.w23) == (1.0, 10.0, 10.0, 10.0)
        assert w == CostWeights.sparse()

    def test_dense_weights_corner_term_higher(self):
        assert CostWeights.dense().w21 > CostWeights.sparse().w21

    def test_length_only(self):
        w = CostWeights.length_only()
        assert w.w21 == w.w22 == w.w23 == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            CostWeights(radius=0)
        with pytest.raises(ValueError):
            CostWeights(w1=-1.0)


class TestCornerCost:
    def test_empty_grid_zero_corner_cost(self):
        ev = CornerCostEvaluator(make_grid(), CostWeights())
        assert ev.corner_cost(4, 4) == 0.0

    def test_drg_term_reacts_to_routed_wire(self):
        grid = make_grid()
        ev_before = CornerCostEvaluator(grid, CostWeights()).corner_cost(4, 4)
        grid.occupy_h(4, 2, 6, net_id=2)
        ev_after = CornerCostEvaluator(grid, CostWeights()).corner_cost(4, 3)
        assert ev_after > ev_before

    def test_dup_term_reacts_to_unrouted_terminals(self):
        grid = make_grid()
        grid.reserve_terminal(4, 4, net_id=3)
        cost_near = CornerCostEvaluator(grid, CostWeights()).corner_cost(5, 5)
        grid2 = make_grid()
        cost_far = CornerCostEvaluator(grid2, CostWeights()).corner_cost(5, 5)
        assert cost_near > cost_far

    def test_acf_term_reacts_to_obstacles(self):
        grid = make_grid()
        grid.add_obstacle(Rect(10, 10, 30, 30))
        weights = CostWeights(w21=0.0, w22=0.0, w23=10.0)
        ev = CornerCostEvaluator(grid, weights)
        assert ev.corner_cost(2, 2) > ev.corner_cost(8, 8)

    def test_memoisation(self):
        grid = make_grid()
        ev = CornerCostEvaluator(grid, CostWeights())
        first = ev.corner_cost(3, 3)
        grid.occupy_h(3, 0, 8, net_id=2)  # grid changes, memo does not
        assert ev.corner_cost(3, 3) == first
        fresh = CornerCostEvaluator(grid, CostWeights())
        assert fresh.corner_cost(3, 4) != first or fresh.corner_cost(3, 4) > 0

    def test_path_cost_composition(self):
        grid = make_grid()
        grid.occupy_h(4, 2, 6, net_id=2)
        ev = CornerCostEvaluator(grid, CostWeights())
        corner = (4, 3)
        assert ev.path_cost(100, [corner]) == pytest.approx(
            100.0 + ev.corner_cost(*corner)
        )
        assert ev.path_cost(100, []) == 100.0

    def test_weights_scale_terms(self):
        grid = make_grid()
        grid.occupy_h(4, 2, 6, net_id=2)
        low = CornerCostEvaluator(grid, CostWeights()).corner_cost(4, 3)
        high = CornerCostEvaluator(grid, CostWeights.dense()).corner_cost(4, 3)
        assert high == pytest.approx(3 * low)
