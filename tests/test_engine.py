"""Tests for the ConnectionEngine protocol, registry, and parity.

The engine extraction must be behaviour-preserving: the MBFS engine
(and the Lee engine behind MazeRouter) must reproduce the seed
implementation's routing outputs exactly.  The reference numbers below
were recorded from the pre-refactor router on the same designs.
"""

import math
import subprocess
import sys

import pytest

from repro.geometry import Rect
from repro.core import (
    ConnectionEngine,
    LevelBConfig,
    LevelBResult,
    LevelBRouter,
    MBFSEngine,
    available_engines,
    get_engine,
    register_engine,
)

from conftest import make_toy_design


def toy_router(**cfg_kwargs):
    design = make_toy_design()
    config = LevelBConfig(**cfg_kwargs) if cfg_kwargs else None
    return LevelBRouter(
        Rect(0, 0, 256, 256), list(design.nets.values()), config=config
    )


class TestRegistry:
    def test_builtin_engines_available(self):
        assert "mbfs" in available_engines()
        assert "lee" in available_engines()

    def test_get_engine_mbfs(self):
        assert get_engine("mbfs") is MBFSEngine

    def test_get_engine_lee_lazy_loads(self):
        from repro.maze.lee import LeeEngine

        assert get_engine("lee") is LeeEngine

    def test_unknown_engine_raises_with_catalogue(self):
        with pytest.raises(KeyError, match="mbfs"):
            get_engine("astar")

    def test_register_requires_name(self):
        with pytest.raises(ValueError):

            @register_engine
            class Nameless(ConnectionEngine):
                def route(self, ctx, net_id, source, target, regions=None):
                    raise NotImplementedError

    def test_core_router_does_not_import_maze(self):
        """The old router -> maze cycle-guard import must stay gone."""
        code = (
            "import sys; import repro.core.router; "
            "sys.exit(1 if any(m.startswith('repro.maze') "
            "for m in sys.modules) else 0)"
        )
        proc = subprocess.run(
            [sys.executable, "-c", code], env={"PYTHONPATH": "src"}
        )
        assert proc.returncode == 0


class TestSeedParity:
    """Routing outputs identical to the pre-refactor implementation."""

    def test_toy_mbfs_parity(self):
        result = toy_router().route()
        assert result.total_wire_length == 1340
        assert result.total_corners == 14
        assert result.nets_completed == result.nets_attempted == 6
        assert result.ripups == 0

    def test_toy_maze_parity(self):
        from repro.maze import MazeRouter

        design = make_toy_design()
        result = MazeRouter(
            Rect(0, 0, 256, 256), list(design.nets.values())
        ).route()
        assert result.total_wire_length == 1340
        assert result.total_corners == 14

    def test_lee_engine_by_config_matches_maze_router(self):
        result = toy_router(engine="lee").route()
        assert result.total_wire_length == 1340
        assert result.total_corners == 14

    def _dense(self, **cfg_kwargs):
        from repro.bench_suite import random_design
        from repro.placement import RowPlacement

        design = random_design(
            "refine", seed=4, num_cells=10, num_nets=36, num_critical=0
        )
        pl = RowPlacement.build(design, pitch=8)
        pl.realize([16] * pl.channel_count, margin=16)
        bounds = design.cell_bounds().expanded(24)
        return LevelBRouter(
            bounds,
            list(design.nets.values()),
            config=LevelBConfig(**cfg_kwargs),
        ).route()

    def test_dense_parity_with_ripups(self):
        result = self._dense()
        assert result.total_wire_length == 12088
        assert result.total_corners == 115
        assert result.nets_completed == result.nets_attempted == 36
        assert result.ripups == 3

    def test_dense_parity_refined(self):
        result = self._dense(refinement_passes=1)
        assert result.total_wire_length == 11992
        assert result.total_corners == 115

    def test_dense_parity_no_fallback(self):
        result = self._dense(maze_fallback=False)
        assert result.total_wire_length == 12088
        assert result.total_corners == 115


class TestConnectionCosts:
    def test_no_nan_costs_anywhere(self):
        """Rescued connections used to record cost=NaN, poisoning sums."""
        result = self._route_dense()
        total = 0.0
        for routed in result.routed:
            for conn in routed.connections:
                assert math.isfinite(conn.cost)
                assert conn.cost >= 0.0
                total += conn.cost
        assert math.isfinite(total)

    def test_maze_router_costs_use_cost_model(self):
        """Lee engine prices paths with CornerCostEvaluator, not a raw
        corner count, so costs are on the MBFS scale."""
        from repro.maze import MazeRouter

        design = make_toy_design()
        result = MazeRouter(
            Rect(0, 0, 256, 256), list(design.nets.values())
        ).route()
        for routed in result.routed:
            for conn in routed.connections:
                assert math.isfinite(conn.cost)
                # w1 * wire_length alone already exceeds a bare corner
                # count on any real connection.
                if conn.wire_length > 0:
                    assert conn.cost >= conn.corner_count

    def _route_dense(self):
        from repro.bench_suite import random_design
        from repro.placement import RowPlacement

        design = random_design(
            "refine", seed=4, num_cells=10, num_nets=36, num_critical=0
        )
        pl = RowPlacement.build(design, pitch=8)
        pl.realize([16] * pl.channel_count, margin=16)
        bounds = design.cell_bounds().expanded(24)
        return LevelBRouter(bounds, list(design.nets.values())).route()


class TestNetNameIndex:
    def test_net_result_lookup(self):
        result = toy_router().route()
        name = result.routed[0].net.name
        assert result.net_result(name) is result.routed[0]

    def test_net_result_missing_raises(self):
        result = toy_router().route()
        with pytest.raises(KeyError, match="nope"):
            result.net_result("nope")

    def test_duplicate_net_names_rejected_at_construction(self):
        import copy

        design = make_toy_design()
        nets = list(design.nets.values())
        dupe = copy.copy(nets[0])
        dupe.name = nets[1].name
        with pytest.raises(ValueError, match="duplicate net name"):
            LevelBRouter(Rect(0, 0, 256, 256), [dupe, *nets[1:]])

    def test_duplicate_names_rejected_in_result(self):
        result = toy_router().route()
        first = result.routed[0]
        with pytest.raises(ValueError, match="duplicate net name"):
            LevelBResult(
                tig=result.tig,
                routed=[first, first],
                elapsed_s=0.0,
                nodes_created=0,
            )
