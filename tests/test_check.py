"""The independent verification engine (repro.check).

Two test families: honest router output must verify CLEAN, and every
rule in the catalogue must fire on a targeted corruption (injection
tests - one per rule id, as documented in docs/VERIFICATION.md).
"""

from __future__ import annotations

import pytest

from conftest import make_toy_design
from repro import instrument
from repro.check import (
    ALL_RULES,
    CheckFailure,
    CheckReport,
    RULE_CHANNEL,
    RULE_CORNER,
    RULE_CORNER_CLAIM,
    RULE_CORNER_PER_TRACK,
    RULE_DANGLING,
    RULE_JOURNAL,
    RULE_LAYER,
    RULE_LEDGER,
    RULE_MERGED,
    RULE_OBSTACLE,
    RULE_OPEN,
    RULE_SHORT,
    RULE_TRACK,
    Severity,
    Violation,
    check_flow,
    check_grid,
    check_layer_assignment,
    check_levelb,
)
from repro.core import LevelBConfig, LevelBRouter
from repro.core.engine import RoutedConnection
from repro.core.router import LevelBResult, Obstacle, RoutedNet
from repro.core.tig import GridTerminal, TrackIntersectionGraph
from repro.flow import FlowParams, overcell_flow, two_layer_flow
from repro.geometry import Path, Point, Rect, Segment
from repro.grid import TrackSet


# ----------------------------------------------------------------------
# Crafted-result scaffolding: full control over the geometry under test
# ----------------------------------------------------------------------
class FakeNet:
    """Just enough net surface for LevelBResult and the checker."""

    is_sensitive = False

    def __init__(self, name, pins):
        self.name = name
        self._pins = [Point(*p) for p in pins]

    def pin_positions(self):
        return list(self._pins)

    @property
    def degree(self):
        return len(self._pins)


def path_of(*points):
    pts = [Point(*p) for p in points]
    return Path(tuple(Segment(a, b) for a, b in zip(pts, pts[1:])))


def connection(path, corners, grid, *, commit_to=None):
    """A RoutedConnection; optionally committed to the grid for real."""
    conn = RoutedConnection(
        source=GridTerminal(0, 0),
        target=GridTerminal(0, 0),
        path=path,
        corners=list(corners),
        cost=0.0,
        expansions_used=0,
    )
    if commit_to is not None:
        grid.commit_path(commit_to, path.waypoints(), conn.corners)
    return conn


def make_crafted(with_net_c=False):
    """A hand-built, provably legal two/three-net level B result.

    Net A: L-path (0,0) -> (0,20) -> (20,20), corner at (0,20).
    Net B: straight vertical x=40.
    Net C (optional): L-path on its own tracks, used as corruption clay.
    Every wire is committed to the grid, so the bookkeeping audits see
    a consistent ledger.
    """
    vt = TrackSet([0, 10, 20, 30, 40, 50])
    ht = TrackSet([0, 10, 20, 30, 40])
    tig = TrackIntersectionGraph(vt, ht)
    grid = tig.grid

    nets = []
    a = FakeNet("A", [(0, 0), (20, 20)])
    tig.register_net(1, a.pin_positions())
    conn_a = connection(
        path_of((0, 0), (0, 20), (20, 20)), [(0, 2)], grid, commit_to=1
    )
    nets.append(RoutedNet(net=a, net_id=1, connections=[conn_a]))

    b = FakeNet("B", [(40, 0), (40, 40)])
    tig.register_net(2, b.pin_positions())
    conn_b = connection(path_of((40, 0), (40, 40)), [], grid, commit_to=2)
    nets.append(RoutedNet(net=b, net_id=2, connections=[conn_b]))

    if with_net_c:
        c = FakeNet("C", [(10, 30), (30, 30)])
        tig.register_net(3, c.pin_positions())
        conn_c = connection(
            path_of((10, 30), (30, 30)), [], grid, commit_to=3
        )
        nets.append(RoutedNet(net=c, net_id=3, connections=[conn_c]))

    return LevelBResult(
        tig=tig,
        routed=nets,
        elapsed_s=0.0,
        nodes_created=0,
        bounds=Rect(-5, -5, 55, 45),
    )


def fired(result_or_report, rule):
    report = (
        result_or_report
        if isinstance(result_or_report, CheckReport)
        else check_levelb(result_or_report)
    )
    return rule in report.counts()


# ----------------------------------------------------------------------
# Honest output verifies clean
# ----------------------------------------------------------------------
class TestHonestOutput:
    def test_crafted_result_is_clean(self):
        report = check_levelb(make_crafted(with_net_c=True))
        assert report.ok
        assert report.violations == []
        assert set(report.rules_run) <= set(ALL_RULES)

    def test_routed_toy_design_is_clean(self):
        design = make_toy_design()
        router = LevelBRouter(
            Rect(0, 0, 256, 256), list(design.nets.values())
        )
        report = check_levelb(router.route())
        assert report.ok, report.render()

    def test_overcell_flow_is_clean_with_layer_rule(self):
        result = overcell_flow(make_toy_design(), FlowParams())
        report = check_flow(result)
        assert report.ok, report.render()
        assert RULE_CHANNEL in report.rules_run
        assert RULE_LAYER in report.rules_run

    def test_checked_mode_flow_attaches_clean_report(self):
        result = overcell_flow(make_toy_design(), FlowParams(checked=True))
        assert result.check_report is not None
        assert result.check_report.ok

    def test_checked_mode_is_off_by_default(self):
        assert LevelBConfig().checked is False
        assert FlowParams().checked is False
        assert overcell_flow(make_toy_design()).check_report is None


# ----------------------------------------------------------------------
# Injection tests: every rule fires on its targeted corruption
# ----------------------------------------------------------------------
class TestDRCInjection:
    def test_short_fires_on_same_layer_overlap(self):
        result = make_crafted(with_net_c=True)
        # Net C's trunk rerouted onto net A's horizontal track.
        result.routed[2].connections[0].path = path_of((10, 20), (30, 20))
        report = check_levelb(result)
        assert fired(report, RULE_SHORT)
        short = report.by_rule(RULE_SHORT)[0]
        assert set(short.nets) == {"A", "C"}

    def test_short_fires_on_foreign_wire_through_via(self):
        result = make_crafted(with_net_c=True)
        # Net C's trunk rerouted through net A's corner via at (0,20):
        # different layer than A's m4 wire, but the via owns the cell.
        result.routed[2].connections[0].path = path_of((0, 10), (0, 30))
        report = check_levelb(result)
        assert fired(report, RULE_SHORT)

    def test_track_fires_on_off_track_wire(self):
        result = make_crafted()
        result.routed[1].connections[0].path = path_of((45, 0), (45, 40))
        report = check_levelb(result)
        assert fired(report, RULE_TRACK)

    def test_track_fires_on_out_of_bounds_wire(self):
        result = make_crafted()
        result.bounds = Rect(0, 0, 30, 40)  # net B at x=40 now outside
        report = check_levelb(result)
        assert fired(report, RULE_TRACK)

    def test_corner_fires_on_claim_off_turn(self):
        result = make_crafted()
        result.routed[0].connections[0].corners = [(0, 1)]  # (0,10): no turn
        assert fired(result, RULE_CORNER)

    def test_corner_fires_on_out_of_grid_claim(self):
        result = make_crafted()
        result.routed[0].connections[0].corners = [(99, 99)]
        assert fired(result, RULE_CORNER)

    def test_obstacle_fires_on_wire_through_blocked_area(self):
        result = make_crafted()
        result.obstacles = (Obstacle(Rect(5, 15, 15, 25), name="o1"),)
        report = check_levelb(result)
        # Net A's trunk y=20 spans x=[0,20]; intersection (10,20) blocked.
        assert fired(report, RULE_OBSTACLE)
        assert "o1" in report.by_rule(RULE_OBSTACLE)[0].message

    def test_obstacle_respects_direction_flags(self):
        result = make_crafted()
        # Blocks only vertical wiring; net A's m4 trunk may cross.
        result.obstacles = (
            Obstacle(Rect(5, 15, 15, 25), block_h=False, block_v=True),
        )
        report = check_levelb(result)
        assert not fired(report, RULE_OBSTACLE)


class TestLVSInjection:
    def test_open_fires_on_deleted_connection(self):
        result = make_crafted()
        result.routed[0].connections = []  # still claims complete
        report = check_levelb(result)
        assert fired(report, RULE_OPEN)
        assert report.by_rule(RULE_OPEN)[0].nets == ("A",)

    def test_open_not_reported_for_admitted_failures(self):
        result = make_crafted()
        result.routed[0].connections = []
        result.routed[0].failed_terminals = 1  # router admitted failure
        report = check_levelb(result)
        assert not fired(report, RULE_OPEN)

    def test_merged_fires_on_swapped_nets(self):
        result = make_crafted()
        a, b = result.routed[0], result.routed[1]
        a.net, b.net = b.net, a.net  # wiring now belongs to the wrong net
        report = check_levelb(result)
        # Each net's wiring now runs through the *other* net's terminal
        # stacks, so the rebuilt components each contain two nets.
        assert fired(report, RULE_MERGED)
        merged = report.by_rule(RULE_MERGED)[0]
        assert set(merged.nets) == {"A", "B"}

    def test_dangling_fires_on_orphan_metal(self):
        result = make_crafted()
        orphan = connection(path_of((10, 0), (30, 0)), [], None)
        result.routed[0].connections.append(orphan)
        report = check_levelb(result)
        dangling = report.by_rule(RULE_DANGLING)
        assert dangling and dangling[0].severity is Severity.WARNING


class TestInvariantInjection:
    def test_corner_per_track_fires_on_double_departure(self):
        result = make_crafted()
        # Departs y=0 twice before the final run.
        path = path_of(
            (0, 0), (20, 0), (20, 20), (30, 20), (30, 0), (40, 0), (40, 20),
            (50, 20),
        )
        corners = [(2, 0), (2, 2), (3, 2), (3, 0), (4, 0), (4, 2)]
        result.routed[0].connections[0].path = path
        result.routed[0].connections[0].corners = corners
        assert fired(result, RULE_CORNER_PER_TRACK)

    def test_corner_per_track_exempts_maze_rescues(self):
        result = make_crafted()
        path = path_of(
            (0, 0), (20, 0), (20, 20), (30, 20), (30, 0), (40, 0), (40, 20),
            (50, 20),
        )
        corners = [(2, 0), (2, 2), (3, 2), (3, 0), (4, 0), (4, 2)]
        conn = result.routed[0].connections[0]
        conn.path, conn.corners = path, corners
        conn.expansions_used = -1  # maze rescue: Lee gives no guarantee
        assert not fired(result, RULE_CORNER_PER_TRACK)

    def test_corner_claim_fires_on_dropped_claim(self):
        result = make_crafted()
        result.routed[0].connections[0].corners = []
        assert fired(result, RULE_CORNER_CLAIM)

    def test_layer_assignment_flags_misplaced_nets(self):
        result = make_crafted()
        violations = check_layer_assignment(
            result, set_a_names=["A"], set_b_names=["B"]
        )
        rules = {v.rule for v in violations}
        assert rules == {RULE_LAYER}
        messages = " ".join(v.message for v in violations)
        assert "set A net A" in messages


class TestGridAuditInjection:
    def test_ledger_fires_on_unledgered_wiring(self):
        result = make_crafted()
        grid = result.tig.grid
        # Simulate a bookkeeping bug: wiring appears with no ledger
        # record behind it.
        grid._h_owner[1, 1] = 7
        report = check_levelb(result)
        assert fired(report, RULE_LEDGER)

    def test_ledger_fires_on_lost_wiring(self):
        result = make_crafted()
        grid = result.tig.grid
        # Inverse bug: the ledger says net 2 owns x=40 cells, the array
        # lost one.
        grid._v_owner[4, 2] = 0
        report = check_levelb(result)
        assert fired(report, RULE_LEDGER)

    def test_journal_fires_on_open_transaction(self):
        result = make_crafted()
        result.tig.grid.begin()
        report = check_levelb(result)
        assert fired(report, RULE_JOURNAL)

    def test_check_grid_clean_on_honest_grid(self):
        result = make_crafted()
        report = check_grid(result.tig.grid)
        assert report.ok and report.violations == []


class TestChannelRule:
    def test_channel_rule_fires_on_corrupted_route(self):
        # The over-cell flow empties the toy design's channels; the
        # two-layer flow routes everything in them.
        flow = two_layer_flow(make_toy_design(), FlowParams())
        routed = [r for r in flow.channel_routes if r.jogs]
        assert routed, "two-layer flow should route at least one channel"
        del routed[0].jogs[0]  # disconnect a pin
        report = check_flow(flow)
        assert fired(report, RULE_CHANNEL)
        assert not report.ok

    def test_channel_rule_clean_on_honest_routes(self):
        flow = two_layer_flow(make_toy_design(), FlowParams())
        report = check_flow(flow)
        assert report.ok, report.render()
        assert RULE_CHANNEL in report.rules_run


# ----------------------------------------------------------------------
# Checked mode: per-commit sanitizer
# ----------------------------------------------------------------------
class TestCheckedMode:
    def test_checked_route_raises_on_corrupt_grid(self):
        design = make_toy_design()
        router = LevelBRouter(
            Rect(0, 0, 256, 256),
            list(design.nets.values()),
            config=LevelBConfig(checked=True),
        )
        # Poison the occupancy array before routing: the first commit's
        # audit must catch the unledgered cell.
        router.tig.grid._h_owner[2, 2] = 99
        with pytest.raises(CheckFailure) as exc:
            router.route()
        assert any(v.rule == RULE_LEDGER for v in exc.value.violations)

    def test_checked_route_passes_honest_run(self):
        design = make_toy_design()
        router = LevelBRouter(
            Rect(0, 0, 256, 256),
            list(design.nets.values()),
            config=LevelBConfig(checked=True, refinement_passes=1),
        )
        result = router.route()
        assert check_levelb(result).ok

    def test_checked_probe_tolerates_ambient_transaction(self):
        design = make_toy_design()
        router = LevelBRouter(
            Rect(0, 0, 256, 256),
            list(design.nets.values()),
            config=LevelBConfig(checked=True),
        )
        before = router.tig.grid.snapshot()
        router.probe()  # journal is populated throughout - no violation
        assert router.tig.grid.matches(before)

    def test_checked_mode_overhead_is_bounded(self):
        """Checked mode must stay under 2x: check spans < half the flow."""
        with instrument.collecting() as col:
            overcell_flow(make_toy_design(), FlowParams(checked=True))
        snap = instrument.snapshot(col)

        def total(node, names):
            own = node["total_s"] if node["name"] in names else 0.0
            return own + sum(total(c, names) for c in node["children"])

        flow_s = total(snap["spans"], {"flow.overcell"})
        check_s = total(snap["spans"], {"check", "check.commit"})
        assert flow_s > 0
        assert check_s < 0.5 * flow_s, (check_s, flow_s)


# ----------------------------------------------------------------------
# Reports and records
# ----------------------------------------------------------------------
class TestReportSurface:
    def test_violation_serialisation(self):
        v = Violation(
            RULE_SHORT, "boom", nets=("A", "B"), location=(3, 4), layer=4
        )
        d = v.to_dict()
        assert d["rule"] == RULE_SHORT
        assert d["nets"] == ["A", "B"]
        assert d["location"] == [3, 4]
        assert "ERROR" in str(v)

    def test_report_counts_and_render(self):
        report = CheckReport(subject="t")
        report.extend(
            [
                Violation(RULE_SHORT, "a"),
                Violation(RULE_SHORT, "b"),
                Violation(
                    RULE_DANGLING, "c", severity=Severity.WARNING
                ),
            ]
        )
        assert report.counts() == {RULE_SHORT: 2, RULE_DANGLING: 1}
        assert report.error_count == 2
        assert not report.ok
        assert "drc.short=2" in report.summary()
        assert report.render(limit=1).count("ERROR") == 1

    def test_clean_report_is_ok(self):
        report = CheckReport(subject="t", rules_run=ALL_RULES)
        assert report.ok
        assert "CLEAN" in report.summary()

    def test_check_report_serialised_with_flow_result(self):
        from repro.io import flow_result_to_dict

        result = overcell_flow(make_toy_design(), FlowParams(checked=True))
        doc = flow_result_to_dict(result)
        assert doc["check"]["ok"] is True
        assert "inv.corner_claim" in doc["check"]["rules_run"]
        plain = overcell_flow(make_toy_design(), FlowParams())
        assert "check" not in flow_result_to_dict(plain)

    def test_instrument_emits_check_events(self):
        result = make_crafted()
        result.routed[0].connections = []
        with instrument.collecting() as col:
            check_levelb(result)
        snap = instrument.snapshot(col)
        assert snap["counters"]["check.runs"] == 1
        assert snap["counters"]["check.violations"] >= 1
        assert any(
            e["event"] == "check.violation" for e in snap["events"]
        )
