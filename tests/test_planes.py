"""Tests for the N-plane LayerStack generalization.

Covers the technology-level :class:`LayerStack`/:class:`RoutingPlane`
model, the per-plane :class:`PlaneSet` grid container, the static
plane-assignment pass, and the two whole-stack guarantees:

* **planes=1 parity** - the default single-plane configuration commits
  geometry bit-identical to the pre-refactor router (sha256 digests
  captured from the seed revision on every bundled suite);
* **planes=2 cleanliness** - a two-plane flow completes and passes the
  full independent verification with zero violations.
"""

import hashlib
import json

import pytest

from repro.bench_suite import ami33_like, ex3_like, xerox_like
from repro.core import LevelBConfig, LevelBRouter, NetDemand, assign_planes
from repro.flow import FlowParams, overcell_flow
from repro.geometry import Interval, Point, Rect
from repro.grid import PlaneSet, TrackSet
from repro.technology import (
    LayerStack,
    Technology,
    ensure_overcell_planes,
    plane_layer_indices,
)

from conftest import make_toy_design


# ----------------------------------------------------------------------
# Technology: LayerStack / RoutingPlane
# ----------------------------------------------------------------------
class TestLayerStack:
    def test_plane_layer_indices(self):
        assert plane_layer_indices(0) == (3, 4)
        assert plane_layer_indices(1) == (5, 6)
        assert plane_layer_indices(2) == (7, 8)
        with pytest.raises(ValueError):
            plane_layer_indices(-1)

    def test_four_layer_has_one_plane(self):
        stack = Technology.four_layer().layer_stack()
        assert stack.num_planes == 1
        assert stack.plane(0).layer_indices == (3, 4)
        assert stack.labels() == ["metal3/metal4"]

    def test_six_layer_has_two_planes(self):
        stack = Technology.six_layer().layer_stack()
        assert stack.num_planes == 2
        assert stack.labels() == ["metal3/metal4", "metal5/metal6"]
        assert stack.via_depth(0) == 0
        assert stack.via_depth(1) == 2

    def test_plane_of_layer(self):
        stack = Technology.six_layer().layer_stack()
        assert stack.plane_of_layer(3).index == 0
        assert stack.plane_of_layer(6).index == 1
        with pytest.raises(KeyError):
            stack.plane_of_layer(2)

    def test_plane_index_error(self):
        stack = Technology.four_layer().layer_stack()
        with pytest.raises(IndexError):
            stack.plane(1)

    def test_trailing_unpaired_layer_ignored(self):
        tech = Technology.two_layer()
        assert LayerStack.from_technology(tech).num_planes == 0

    def test_ensure_overcell_planes_extends(self):
        tech = Technology.four_layer()
        extended = ensure_overcell_planes(tech, 3)
        assert extended.num_layers == 8
        assert extended.layer_stack().num_planes == 3
        # Upper planes follow the wider-pitch extrapolation.
        assert extended.layer(5).pitch > extended.layer(3).pitch

    def test_ensure_overcell_planes_noop_when_tall_enough(self):
        tech = Technology.six_layer()
        assert ensure_overcell_planes(tech, 2) is tech


# ----------------------------------------------------------------------
# Grid: PlaneSet
# ----------------------------------------------------------------------
def _plane_set(num_planes=2):
    return PlaneSet(
        TrackSet(range(0, 100, 10)), TrackSet(range(0, 80, 10)), num_planes
    )


class TestPlaneSet:
    def test_shape(self):
        planes = _plane_set(3)
        assert len(planes) == planes.num_planes == 3
        assert all(g.num_vtracks == 10 for g in planes)
        with pytest.raises(IndexError):
            planes[3]

    def test_planes_are_independent(self):
        planes = _plane_set()
        planes[0].occupy_h(2, 0, 5, net_id=1)
        assert planes[1].h_slot(2, 0) == 0  # FREE

    def test_transaction_fans_out(self):
        planes = _plane_set()
        with pytest.raises(RuntimeError):
            with planes.transaction():
                planes[0].occupy_h(2, 0, 5, net_id=1)
                planes[1].occupy_v(3, 0, 5, net_id=1)
                assert planes.in_transaction
                raise RuntimeError("force rollback")
        assert planes[0].h_slot(2, 0) == 0
        assert planes[1].v_slot(3, 0) == 0
        assert not planes.in_transaction

    def test_snapshot_matches(self):
        planes = _plane_set()
        before = planes.snapshot()
        planes[1].occupy_h(1, 0, 3, net_id=2)
        assert not planes.matches(before)
        planes[1].clear_net(2)
        assert planes.matches(before)

    def test_add_obstacle_blocks_every_plane(self):
        planes = _plane_set()
        blocked = planes.add_obstacle(Rect(20, 20, 40, 30))
        assert blocked == 6  # 3 v-tracks x 2 h-tracks, on every plane
        assert all(not g.corner_free(2, 2, 1) for g in planes)


# ----------------------------------------------------------------------
# Core: the plane-assignment pass
# ----------------------------------------------------------------------
def _demand(net_id, *pins):
    return NetDemand(net_id, tuple(Point(x, y) for x, y in pins))


class TestAssignPlanes:
    BOUNDS = Rect(0, 0, 400, 300)

    def test_single_plane_shortcut(self):
        nets = [_demand(1, (0, 0), (100, 100)), _demand(2, (5, 5), (9, 9))]
        assert assign_planes(nets, self.BOUNDS, 1, 4.0) == {1: 0, 2: 0}

    def test_rejects_zero_planes(self):
        with pytest.raises(ValueError):
            assign_planes([], self.BOUNDS, 0, 4.0)

    def test_deterministic(self):
        nets = [
            _demand(i, (i * 7 % 380, i * 13 % 280), (i * 31 % 390, i * 11 % 290))
            for i in range(1, 40)
        ]
        a = assign_planes(nets, self.BOUNDS, 2, 4.0)
        b = assign_planes(list(reversed(nets)), self.BOUNDS, 2, 4.0)
        assert a == b

    def test_congestion_spills_to_upper_plane(self):
        # Many long nets over the same region: the via penalty loses to
        # accumulated demand and some nets move up.
        nets = [_demand(i, (0, 0), (380, 280)) for i in range(1, 30)]
        assignment = assign_planes(nets, self.BOUNDS, 2, 0.5)
        assert set(assignment.values()) == {0, 1}

    def test_isolated_nets_stay_low(self):
        # A lone cheap net has no congestion reason to climb.
        assignment = assign_planes(
            [_demand(1, (0, 0), (50, 40))], self.BOUNDS, 3, 4.0
        )
        assert assignment == {1: 0}


# ----------------------------------------------------------------------
# Router: plane-aware routing
# ----------------------------------------------------------------------
class TestMultiPlaneRouting:
    def test_planes_require_tall_technology(self):
        design = make_toy_design()
        with pytest.raises(ValueError, match="6-layer technology"):
            LevelBRouter(
                Rect(0, 0, 256, 256),
                list(design.nets.values()),
                technology=Technology.four_layer(),
                config=LevelBConfig(planes=2),
            )

    def test_two_plane_toy_route(self):
        design = make_toy_design()
        result = LevelBRouter(
            Rect(0, 0, 256, 256),
            list(design.nets.values()),
            config=LevelBConfig(planes=2),
        ).route()
        assert result.num_planes == 2
        assert result.completion_rate == 1.0
        by_plane = {p: result.nets_on_plane(p) for p in range(2)}
        assert sum(len(v) for v in by_plane.values()) == len(result.routed)

    def test_via_accounting_prices_altitude(self):
        design = make_toy_design()
        result = LevelBRouter(
            Rect(0, 0, 256, 256),
            list(design.nets.values()),
            config=LevelBConfig(planes=2),
        ).route()
        # Every terminal stack of a plane-1 net is 2 levels deeper, so
        # total vias must be >= the naive plane-0 count.
        naive = result.total_corners + sum(
            r.net.degree - r.failed_terminals for r in result.routed
        )
        assert result.total_vias >= naive
        if any(r.plane == 1 for r in result.routed):
            assert result.total_vias > naive


# ----------------------------------------------------------------------
# Whole-stack guarantees
# ----------------------------------------------------------------------
def _geometry_digest(res):
    """sha256 over the committed geometry, order-independent."""
    payload = []
    for r in sorted(res.levelb.routed, key=lambda r: r.net.name):
        payload.append(
            {
                "net": r.net.name,
                "complete": r.complete,
                "fail": r.failed_terminals,
                "conns": [
                    {
                        "w": [[p.x, p.y] for p in c.path.waypoints()],
                        "k": sorted(c.corners),
                    }
                    for c in r.connections
                ],
            }
        )
    blob = json.dumps(payload, sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()


#: Geometry digests captured from the pre-refactor seed revision.  The
#: single-plane configuration must keep reproducing these exactly.
PARITY_DIGESTS = {
    "ami33": "f846dfe7cff7b201a499ff3ec0d642dcd75ccdb2d367cb5ce8335d383bc8a41c",
    "xerox": "e65856e1e874e43bfa738b52225d95d61ebe5f857f4f84993d4738f2aa1ba61d",
    "ex3": "89b756c1d7e708a6cc86f41654dab50034fa47c5855bda483394d1847b929b19",
}

_SUITES = {"ami33": ami33_like, "xerox": xerox_like, "ex3": ex3_like}


class TestSinglePlaneParity:
    @pytest.mark.parametrize("suite", sorted(PARITY_DIGESTS))
    def test_default_flow_bit_identical_to_seed(self, suite):
        res = overcell_flow(_SUITES[suite]())
        assert res.flow == "overcell-4layer"
        assert _geometry_digest(res) == PARITY_DIGESTS[suite], (
            f"planes=1 geometry drifted from the pre-refactor baseline "
            f"on {suite}"
        )
        assert all(r.plane == 0 for r in res.levelb.routed)


class TestTwoPlaneFlow:
    def test_ami33_two_planes_checked_clean(self):
        res = overcell_flow(ami33_like(), FlowParams(planes=2, checked=True))
        assert res.flow == "overcell-6layer"
        assert res.levelb.completion_rate == 1.0
        assert res.check_report is not None
        assert res.check_report.violations == []
        assert "drc.stack" in res.check_report.rules_run
        # Both planes actually carry nets on this suite.
        planes_used = {r.plane for r in res.levelb.routed}
        assert planes_used == {0, 1}
