"""Tests for the Elmore timing substrate."""

import pytest

from repro.bench_suite import random_design
from repro.flow import overcell_flow
from repro.geometry import Rect
from repro.netlist import Design, Edge
from repro.core import LevelBRouter
from repro.technology import Technology
from repro.timing import (
    DriverModel,
    RCTree,
    channel_net_delay_estimate,
    levelb_net_delays,
)
from repro.timing.delay import build_levelb_rctree


class TestRCTree:
    def test_single_wire(self):
        tree = RCTree()
        tree.add_wire("a", "b", resistance=100.0, capacitance=10.0)
        # C split half/half: subtree below the wire holds 5 fF.
        assert tree.elmore_delay("a", "b") == pytest.approx(100 * 5 / 1000)

    def test_chain_additivity(self):
        tree = RCTree()
        tree.add_wire("a", "b", 100.0, 10.0)
        tree.add_wire("b", "c", 100.0, 10.0)
        # delay(a->c) = R1*(C_b + C_c) + R2*C_c with C_b=10, C_c=5.
        assert tree.elmore_delay("a", "c") == pytest.approx(
            (100 * 15 + 100 * 5) / 1000
        )

    def test_sink_load_increases_delay(self):
        t1, t2 = RCTree(), RCTree()
        for t in (t1, t2):
            t.add_wire("a", "b", 100.0, 10.0)
        t2.add_node_cap("b", 20.0)
        assert t2.elmore_delay("a", "b") > t1.elmore_delay("a", "b")

    def test_branch_shares_upstream(self):
        tree = RCTree()
        tree.add_wire("a", "b", 100.0, 10.0)
        tree.add_wire("b", "c", 50.0, 4.0)
        tree.add_wire("b", "d", 50.0, 4.0)
        # Both sinks see the full downstream cap through the stem.
        d_c = tree.elmore_delay("a", "c")
        d_d = tree.elmore_delay("a", "d")
        assert d_c == pytest.approx(d_d)
        assert d_c > tree.elmore_delay("a", "b")

    def test_unreachable_and_missing(self):
        tree = RCTree()
        tree.add_wire("a", "b", 1.0, 1.0)
        tree.add_node_cap("z", 1.0)
        with pytest.raises(ValueError):
            tree.elmore_delay("a", "z")
        with pytest.raises(KeyError):
            tree.elmore_delay("a", "missing")

    def test_loop_tolerated(self):
        tree = RCTree()
        tree.add_wire("a", "b", 1.0, 1.0)
        tree.add_wire("b", "c", 1.0, 1.0)
        tree.add_wire("c", "a", 1.0, 1.0)  # loop: spanning tree used
        assert tree.elmore_delay("a", "c") > 0

    def test_validation(self):
        tree = RCTree()
        with pytest.raises(ValueError):
            tree.add_wire("a", "a", 1.0, 1.0)
        with pytest.raises(ValueError):
            tree.add_wire("a", "b", -1.0, 1.0)
        with pytest.raises(ValueError):
            tree.add_node_cap("a", -1.0)

    def test_total_cap(self):
        tree = RCTree()
        tree.add_wire("a", "b", 1.0, 10.0)
        tree.add_node_cap("b", 5.0)
        assert tree.total_cap() == pytest.approx(15.0)

    def test_max_delay(self):
        tree = RCTree()
        tree.add_wire("a", "b", 100.0, 10.0)
        tree.add_wire("b", "c", 100.0, 10.0)
        node, worst = tree.max_delay("a")
        assert node == "c"
        assert worst == pytest.approx(tree.elmore_delay("a", "c"))


class TestLevelBDelays:
    def route_straight_net(self, length=400):
        d = Design("timing")
        c1 = d.add_cell("c1", 8, 8)
        c1.place(0, 0)
        c2 = d.add_cell("c2", 8, 8)
        c2.place(length, 0)
        net = d.add_net("n")
        net.add_pin(d.add_pin("c1", "p", Edge.TOP, 0))
        net.add_pin(d.add_pin("c2", "p", Edge.TOP, 0))
        router = LevelBRouter(
            Rect(-16, -16, length + 24, 80), list(d.nets.values())
        )
        result = router.route()
        return result.routed[0]

    def test_delay_positive_and_scales_with_length(self):
        tech = Technology.four_layer()
        short = levelb_net_delays(self.route_straight_net(200), tech)
        long = levelb_net_delays(self.route_straight_net(800), tech)
        assert len(short) == len(long) == 1
        assert 0 < next(iter(short.values())) < next(iter(long.values()))

    def test_wide_upper_layers_beat_channel_estimate_for_long_nets(self):
        """The paper's motivation: long nets are faster over-cell."""
        tech = Technology.four_layer()
        routed = self.route_straight_net(1600)
        levelb = next(iter(levelb_net_delays(routed, tech).values()))
        channel = channel_net_delay_estimate(routed.net, tech)
        assert levelb < channel

    def test_rctree_contains_all_pins(self):
        tech = Technology.four_layer()
        routed = self.route_straight_net(400)
        tree = build_levelb_rctree(routed, tech)
        for pin in routed.net.pins:
            assert tree.contains(pin.position)

    def test_incomplete_net_returns_partial(self):
        tech = Technology.four_layer()
        routed = self.route_straight_net(400)
        routed.connections.clear()
        assert levelb_net_delays(routed, tech) == {}


class TestFlowIntegration:
    def test_delays_computable_for_all_levelb_nets(self):
        design = random_design("timing-flow", seed=13, num_cells=8,
                               num_nets=20, num_critical=2)
        result = overcell_flow(design)
        tech = Technology.four_layer()
        computed = 0
        for routed in result.levelb.routed:
            delays = levelb_net_delays(routed, tech)
            assert all(d > 0 for d in delays.values())
            computed += len(delays)
        assert computed > 0


class TestDriverModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            DriverModel(resistance=-1)

    def test_stronger_driver_faster(self):
        tech = Technology.four_layer()
        d = Design("drv")
        c = d.add_cell("c", 16, 8)
        c.place(0, 0)
        net = d.add_net("n")
        net.add_pin(d.add_pin("c", "a", Edge.TOP, 0))
        net.add_pin(d.add_pin("c", "b", Edge.TOP, 16))
        weak = channel_net_delay_estimate(net, tech, DriverModel(resistance=1000))
        strong = channel_net_delay_estimate(net, tech, DriverModel(resistance=50))
        assert strong < weak


class TestMultiTerminalTrees:
    def test_branching_net_delays(self):
        """A 3-pin net's RC tree must serve both sinks through the
        shared trunk, with the farther sink slower."""
        from repro.geometry import Rect
        from repro.core import LevelBRouter
        from repro.netlist import Design, Edge

        d = Design("branch")
        # Source at left; two sinks right, one near, one far.
        for name, x, y in (("s", 0, 0), ("n1", 240, 0), ("n2", 720, 0)):
            cell = d.add_cell(name, 16, 16)
            cell.place(x, y)
        net = d.add_net("t")
        for cname in ("s", "n1", "n2"):
            net.add_pin(d.add_pin(cname, "p", Edge.TOP, 8))
        router = LevelBRouter(Rect(-16, -16, 760, 120), [net])
        result = router.route()
        assert result.routed[0].complete
        tech = Technology.four_layer()
        delays = levelb_net_delays(result.routed[0], tech)
        assert len(delays) == 2
        near = delays["n1.p"]
        far = delays["n2.p"]
        assert 0 < near < far

    def test_via_resistance_adds_delay(self):
        from repro.geometry import Rect
        from repro.core import LevelBRouter
        from repro.netlist import Design, Edge

        d = Design("vias")
        for name, x, y in (("a", 0, 0), ("b", 400, 240)):
            cell = d.add_cell(name, 16, 16)
            cell.place(x, y)
        net = d.add_net("t")
        net.add_pin(d.add_pin("a", "p", Edge.TOP, 8))
        net.add_pin(d.add_pin("b", "p", Edge.TOP, 8))
        router = LevelBRouter(Rect(-16, -16, 460, 320), [net])
        result = router.route()
        routed = result.routed[0]
        assert routed.corner_count >= 1  # the L needs a via
        tech = Technology.four_layer()
        cheap = levelb_net_delays(routed, tech, DriverModel(via_resistance=0.0))
        dear = levelb_net_delays(routed, tech, DriverModel(via_resistance=50.0))
        assert next(iter(dear.values())) > next(iter(cheap.values()))
