"""Tests for the transactional routing-state layer.

Covers the GridTransaction journal (savepoint nesting, rollback
exactness), ledger-based rip_net, snapshots, and the O(cells-touched)
contract: speculative route/undo cycles must never scan the full
occupancy arrays.
"""

import pytest

from repro import instrument
from repro.instrument.names import TXN_COMMITS, TXN_ROLLBACKS, TXN_UNDO_CELLS
from repro.geometry import Rect
from repro.grid import GridSnapshot, GridTransaction, RoutingGrid, FREE
from repro.grid.tracks import TrackSet

from conftest import make_toy_design


def make_grid(nv: int = 12, nh: int = 10) -> RoutingGrid:
    return RoutingGrid(
        TrackSet.uniform(0, 8 * (nv - 1), 8),
        TrackSet.uniform(0, 8 * (nh - 1), 8),
    )


class TestJournalRollback:
    def test_rollback_restores_occupancy_exactly(self):
        grid = make_grid()
        grid.occupy_h(2, 1, 5, 1)  # pre-existing wiring, outside any txn
        before = grid.snapshot()
        txn = grid.begin()
        grid.occupy_h(3, 0, 7, 2)
        grid.occupy_v(4, 1, 6, 2)
        grid.occupy_corner(4, 3, 2)
        undone = txn.rollback()
        assert grid.matches(before)
        assert undone == 8 + 6 + 2

    def test_rollback_restores_terminal_reservations(self):
        grid = make_grid()
        before = grid.snapshot()
        txn = grid.begin()
        grid.reserve_terminal(3, 3, 5)
        assert grid.unrouted_terminals_near(3, 3, radius=0) == 1
        txn.rollback()
        assert grid.matches(before)

    def test_rollback_restores_mark_terminal_routed(self):
        grid = make_grid()
        grid.reserve_terminal(3, 3, 5)
        before = grid.snapshot()
        txn = grid.begin()
        grid.mark_terminal_routed(3, 3)
        assert grid.unrouted_terminals_near(3, 3, radius=0) == 0
        txn.rollback()
        assert grid.matches(before)
        assert grid.unrouted_terminals_near(3, 3, radius=0) == 1

    def test_commit_keeps_mutations(self):
        grid = make_grid()
        with grid.transaction():
            grid.occupy_h(3, 0, 7, 2)
        assert grid.h_slot(0, 3) == 2
        assert not grid.in_transaction

    def test_exception_rolls_back(self):
        grid = make_grid()
        before = grid.snapshot()
        with pytest.raises(RuntimeError, match="boom"), grid.transaction():
            grid.occupy_h(3, 0, 7, 2)
            raise RuntimeError("boom")
        assert grid.matches(before)

    def test_explicit_early_close_honoured(self):
        grid = make_grid()
        before = grid.snapshot()
        with grid.transaction() as txn:
            grid.occupy_h(3, 0, 7, 2)
            txn.rollback()
        assert grid.matches(before)

    def test_rollback_returns_cell_count(self):
        grid = make_grid()
        txn = grid.begin()
        assert isinstance(txn, GridTransaction)
        grid.occupy_h(3, 2, 4, 1)  # 3 cells
        assert txn.rollback() == 3


class TestSavepointNesting:
    def test_inner_rollback_keeps_outer_mutations(self):
        grid = make_grid()
        outer = grid.begin()
        grid.occupy_h(2, 0, 3, 1)
        inner = grid.begin()
        grid.occupy_v(5, 0, 3, 2)
        inner.rollback()
        assert grid.h_slot(0, 2) == 1
        assert grid.v_slot(5, 0) == FREE
        outer.commit()
        assert grid.h_slot(0, 2) == 1

    def test_inner_commit_merges_into_outer(self):
        grid = make_grid()
        before = grid.snapshot()
        outer = grid.begin()
        grid.occupy_h(2, 0, 3, 1)
        with grid.transaction():
            grid.occupy_v(5, 0, 3, 2)
        # The inner commit must not make the vertical span permanent:
        # the outer rollback undoes both.
        outer.rollback()
        assert grid.matches(before)

    def test_closing_outer_first_raises(self):
        grid = make_grid()
        outer = grid.begin()
        grid.begin()
        with pytest.raises(RuntimeError, match="innermost"):
            outer.commit()

    def test_double_close_raises(self):
        grid = make_grid()
        txn = grid.begin()
        txn.commit()
        with pytest.raises(RuntimeError, match="closed"):
            txn.rollback()


class TestRipNet:
    def _wire_net(self, grid, net_id=3):
        grid.reserve_terminal(1, 1, net_id)
        grid.reserve_terminal(6, 4, net_id)
        grid.occupy_h(1, 1, 6, net_id)
        grid.occupy_corner(6, 1, net_id)
        grid.occupy_v(6, 1, 4, net_id)

    def test_rip_net_frees_all_cells(self):
        grid = make_grid()
        self._wire_net(grid)
        freed = grid.rip_net(3)
        assert freed > 0
        assert 3 not in grid.owners()

    def test_rip_net_preserves_other_nets(self):
        grid = make_grid()
        self._wire_net(grid, net_id=3)
        grid.occupy_h(8, 0, 5, 7)
        grid.rip_net(3)
        assert grid.h_slot(0, 8) == 7

    def test_rip_inside_txn_rolls_back_wiring_and_ledger(self):
        grid = make_grid()
        self._wire_net(grid)
        before = grid.snapshot()
        recorded = grid.net_cells_recorded(3)
        txn = grid.begin()
        grid.rip_net(3)
        assert 3 not in grid.owners()
        txn.rollback()
        assert grid.matches(before)
        # The ledger came back too: a second rip frees the same cells.
        assert grid.net_cells_recorded(3) == recorded
        assert grid.rip_net(3) > 0
        assert 3 not in grid.owners()

    def test_rip_then_reroute_then_rollback_is_exact(self):
        grid = make_grid()
        self._wire_net(grid, net_id=3)
        before = grid.snapshot()
        txn = grid.begin()
        grid.rip_net(3)
        grid.occupy_v(2, 0, 8, 3)  # a different realisation
        grid.occupy_h(0, 2, 9, 3)
        txn.rollback()
        assert grid.matches(before)

    def test_rip_net_rejects_reserved_ids(self):
        grid = make_grid()
        with pytest.raises(ValueError):
            grid.rip_net(0)
        with pytest.raises(ValueError):
            grid.clear_net(-1)

    def test_clear_net_alias(self):
        grid = make_grid()
        self._wire_net(grid)
        assert grid.clear_net(3) > 0


class TestOCellsContract:
    def test_rip_cost_tracks_net_size_not_grid_size(self):
        """rip_net touches the ledger's cells, not the occupancy arrays.

        On a huge grid a small net's rip and rollback must both report
        work proportional to the handful of cells the net claimed.
        """
        grid = make_grid(600, 600)
        grid.occupy_h(10, 100, 119, 9)  # 20 cells
        grid.occupy_corner(119, 10, 9)
        assert grid.net_cells_recorded(9) == 22
        with instrument.collecting() as col:
            txn = grid.begin()
            freed = grid.rip_net(9)
            undone = txn.rollback()
        assert freed == 21  # 20 span cells + 1 corner slot not in the span
        # Rollback work equals the replayed ledger cells: tiny vs the
        # 600*600 grid.
        assert undone == col.counters[TXN_UNDO_CELLS] == 22
        assert undone < 100

    def test_txn_counters_emitted(self):
        grid = make_grid()
        with instrument.collecting() as col:
            with grid.transaction():
                grid.occupy_h(2, 0, 3, 1)
            txn = grid.begin()
            grid.occupy_v(5, 0, 3, 2)
            txn.rollback()
        assert col.counters[TXN_COMMITS] == 1
        assert col.counters[TXN_ROLLBACKS] == 1
        assert col.counters[TXN_UNDO_CELLS] == 4


class TestSnapshots:
    def test_snapshot_is_immutable(self):
        grid = make_grid()
        snap = grid.snapshot()
        assert isinstance(snap, GridSnapshot)
        with pytest.raises(ValueError):
            snap.h_owner[0, 0] = 5

    def test_snapshot_is_decoupled_from_grid(self):
        grid = make_grid()
        snap = grid.snapshot()
        grid.occupy_h(2, 0, 3, 1)
        assert snap.h_owner[2, 0] == FREE
        assert not grid.matches(snap)

    def test_reserve_terminal_has_no_partial_write_on_conflict(self):
        grid = make_grid()
        grid.occupy_v(3, 0, 5, 7)  # foreign vertical wiring at (3, 3)
        before = grid.snapshot()
        with pytest.raises(ValueError):
            grid.reserve_terminal(3, 3, 2)
        assert grid.matches(before)


class TestRouterRoundTrip:
    """route -> snapshot -> rip/reroute -> rollback, byte-identical."""

    def _routed_router(self):
        from repro.core import LevelBRouter

        design = make_toy_design()
        router = LevelBRouter(
            Rect(0, 0, 256, 256), list(design.nets.values())
        )
        result = router.route()
        assert result.completion_rate == 1.0
        return router, result

    def test_rip_reroute_rollback_byte_identical(self):
        router, result = self._routed_router()
        grid = router.tig.grid
        snap = grid.snapshot()
        target = max(result.routed, key=lambda r: r.wire_length).net
        txn = grid.begin()
        router._unroute_net(target)
        redone = router._route_net(target)
        assert redone.complete
        txn.rollback()
        # matches() compares every snapshot array byte-for-byte - the
        # public equivalent of comparing the owner grids directly.
        assert grid.matches(snap)

    def test_probe_leaves_grid_untouched_then_routes(self):
        from repro.core import LevelBRouter

        design = make_toy_design()
        router = LevelBRouter(
            Rect(0, 0, 256, 256), list(design.nets.values())
        )
        snap = router.tig.grid.snapshot()
        probed = router.probe()
        assert probed.completion_rate == 1.0
        assert router.tig.grid.matches(snap)
        real = router.route()
        assert real.total_wire_length == probed.total_wire_length
        assert real.total_corners == probed.total_corners

    def test_refinement_uses_journal_rollback(self):
        """A refinement pass must leave a complete toy solution intact
        and emit txn rollback/commit counters."""
        from repro.core import LevelBConfig, LevelBRouter

        design = make_toy_design()
        router = LevelBRouter(
            Rect(0, 0, 256, 256),
            list(design.nets.values()),
            config=LevelBConfig(refinement_passes=1),
        )
        with instrument.collecting() as col:
            result = router.route()
        assert result.completion_rate == 1.0
        assert col.counters[TXN_COMMITS] >= 1


class TestJournalStress:
    """Many rip/re-route/commit cycles leave exactly the clean state.

    The iterative driver (``repro.iterate``) rips every net and
    re-routes inside one plane-set transaction, once per pass.  This
    regression pins the journal's byte-exactness over 100 such cycles
    — not just the single round-trip the tests above cover — and that
    each cycle's transactional bookkeeping (``txn.*`` counters,
    undo-cell volume) is identical to the first's: no drift, no
    leaked ledger entries, no creeping undo logs.
    """

    def test_hundred_rip_recommit_cycles_byte_identical(self):
        from repro.core import LevelBRouter

        design = make_toy_design()
        router = LevelBRouter(
            Rect(0, 0, 256, 256), list(design.nets.values())
        )
        result = router.route()
        assert result.completion_rate == 1.0
        grid = router.tig.grid
        clean = grid.snapshot()
        ledger = {
            r.net_id: grid.net_cells_recorded(r.net_id)
            for r in result.routed
        }

        def cycle():
            txn = router.tig.planes.begin()
            for routed in result.routed:
                router.unroute(routed.net)
            rerouted = router.route()
            txn.commit()
            return rerouted

        # One reference cycle, counters captured in isolation.
        with instrument.collecting() as ref:
            reref = cycle()
        assert reref.completion_rate == 1.0
        assert grid.matches(clean)

        with instrument.collecting() as col:
            for _ in range(99):
                cycle()
        # Byte-identical grid and ledger after 100 total cycles...
        assert grid.matches(clean)
        for net_id, cells in ledger.items():
            assert grid.net_cells_recorded(net_id) == cells
        # ...and each cycle cost exactly what the first one did.
        for name, value in ref.counters.items():
            if name.startswith("txn."):
                assert col.counters.get(name, 0) == 99 * value, name
