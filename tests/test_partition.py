"""Tests for net partitioning strategies."""

import pytest

from repro.netlist import Cell, Edge, Net, Pin
from repro.partition import PartitionStrategy, partition_nets


def make_net(name, critical=False, length=None):
    net = Net(name, is_critical=critical)
    if length is not None:
        cell = Cell(f"cell_{name}", max(length, 8) + 8, 16)
        cell.place(0, 0)
        for i, off in enumerate((0, length)):
            pin = Pin(f"p{i}", cell, Edge.TOP, off)
            cell.add_pin(pin)
            net.add_pin(pin)
    return net


class TestStrategies:
    def test_critical_to_a(self):
        nets = [make_net("a", critical=True), make_net("b"), make_net("c")]
        set_a, set_b = partition_nets(nets)
        assert [n.name for n in set_a] == ["a"]
        assert [n.name for n in set_b] == ["b", "c"]

    def test_all_a(self):
        nets = [make_net("a"), make_net("b", critical=True)]
        set_a, set_b = partition_nets(nets, PartitionStrategy.ALL_A)
        assert len(set_a) == 2 and not set_b

    def test_all_b(self):
        nets = [make_net("a"), make_net("b", critical=True)]
        set_a, set_b = partition_nets(nets, PartitionStrategy.ALL_B)
        assert not set_a and len(set_b) == 2

    def test_long_to_b(self):
        nets = [make_net("short", length=16), make_net("long", length=160)]
        set_a, set_b = partition_nets(
            nets, PartitionStrategy.LONG_TO_B, length_threshold=50
        )
        assert [n.name for n in set_a] == ["short"]
        assert [n.name for n in set_b] == ["long"]

    def test_long_to_b_requires_threshold(self):
        with pytest.raises(ValueError):
            partition_nets([make_net("a", length=10)], PartitionStrategy.LONG_TO_B)

    def test_whole_nets_never_split(self):
        nets = [make_net(f"n{i}", critical=(i % 2 == 0)) for i in range(10)]
        set_a, set_b = partition_nets(nets)
        assert {id(n) for n in set_a}.isdisjoint(id(n) for n in set_b)
        assert len(set_a) + len(set_b) == len(nets)

    def test_order_preserved(self):
        nets = [make_net(f"n{i}") for i in range(5)]
        _, set_b = partition_nets(nets)
        assert [n.name for n in set_b] == [n.name for n in nets]


class TestLongToBBoundaries:
    def test_threshold_is_strict(self):
        # half_perimeter == threshold stays in A ("longer than").
        net = make_net("edge", length=64)
        hp = net.half_perimeter
        set_a, set_b = partition_nets(
            [net], PartitionStrategy.LONG_TO_B, length_threshold=hp
        )
        assert [n.name for n in set_a] == ["edge"] and not set_b
        set_a, set_b = partition_nets(
            [net], PartitionStrategy.LONG_TO_B, length_threshold=hp - 1
        )
        assert not set_a and [n.name for n in set_b] == ["edge"]

    def test_criticality_ignored(self):
        nets = [
            make_net("crit_long", critical=True, length=160),
            make_net("crit_short", critical=True, length=16),
        ]
        set_a, set_b = partition_nets(
            nets, PartitionStrategy.LONG_TO_B, length_threshold=50
        )
        assert [n.name for n in set_a] == ["crit_short"]
        assert [n.name for n in set_b] == ["crit_long"]


class TestInputShapes:
    def test_accepts_any_iterable(self):
        gen = (make_net(f"n{i}") for i in range(3))
        set_a, set_b = partition_nets(gen, PartitionStrategy.ALL_B)
        assert not set_a and len(set_b) == 3

    def test_empty_input(self):
        for strategy in PartitionStrategy:
            set_a, set_b = partition_nets(
                [], strategy, length_threshold=1
            )
            assert set_a == [] and set_b == []
