"""Tests for the global router (channel decomposition)."""

import pytest

from repro.channels import GreedyChannelRouter
from repro.globalroute import GlobalRouter
from repro.netlist import Design, Edge
from repro.placement import RowPlacement


def make_rowed_design():
    """Three cells stacked in three rows (forced by tiny width target)."""
    d = Design("g")
    for i in range(3):
        d.add_cell(f"c{i}", 96, 48)
    pl = RowPlacement.build(d, row_width_target=100)
    assert pl.num_rows == 3
    return d, pl


class TestPinEntries:
    def test_same_channel_net(self):
        d, pl = make_rowed_design()
        rows = {name: r for name, r in pl.row_of_cell.items()}
        lower = next(n for n, r in rows.items() if r == 0)
        upper = next(n for n, r in rows.items() if r == 1)
        p1 = d.add_pin(lower, "a", Edge.TOP, 16)
        p2 = d.add_pin(upper, "b", Edge.BOTTOM, 48)
        net = d.add_net("n1")
        net.add_pin(p1)
        net.add_pin(p2)
        gr = GlobalRouter(pl).route([net], {net: 1})
        # Both pins face channel 1; no side channel use.
        assert not gr.side_uses
        spec = gr.specs[1]
        assert spec.problem.pin_count(1) == 2

    def test_cross_channel_net_uses_side(self):
        d, pl = make_rowed_design()
        rows = {name: r for name, r in pl.row_of_cell.items()}
        bottom_cell = next(n for n, r in rows.items() if r == 0)
        top_cell = next(n for n, r in rows.items() if r == 2)
        p1 = d.add_pin(bottom_cell, "a", Edge.BOTTOM, 16)  # channel 0
        p2 = d.add_pin(top_cell, "b", Edge.TOP, 16)  # channel 3
        net = d.add_net("n1")
        net.add_pin(p1)
        net.add_pin(p2)
        gr = GlobalRouter(pl).route([net], {net: 1})
        assert 1 in gr.side_uses
        use = gr.side_uses[1]
        assert (use.min_ch, use.max_ch) == (0, 3)
        assert len(use.exits) == 2  # one per touched channel
        # Each touched channel's problem sees pin + exit = 2 pins.
        for ch in (0, 3):
            assert gr.specs[ch].problem.pin_count(1) == 2

    def test_side_pick_prefers_near_edge(self):
        d, pl = make_rowed_design()
        rows = {name: r for name, r in pl.row_of_cell.items()}
        c0 = next(n for n, r in rows.items() if r == 0)
        c1 = next(n for n, r in rows.items() if r == 1)
        left_net = d.add_net("left")
        left_net.add_pin(d.add_pin(c0, "a", Edge.BOTTOM, 8))
        left_net.add_pin(d.add_pin(c1, "b", Edge.TOP, 8))
        right_net = d.add_net("right")
        right_net.add_pin(d.add_pin(c0, "c", Edge.BOTTOM, 88))
        right_net.add_pin(d.add_pin(c1, "d", Edge.TOP, 88))
        gr = GlobalRouter(pl).route(
            [left_net, right_net], {left_net: 1, right_net: 2}
        )
        assert gr.side_uses[1].side == "L"
        assert gr.side_uses[2].side == "R"

    def test_left_right_edge_pins_rejected(self):
        d, pl = make_rowed_design()
        cell = next(iter(d.cells))
        pin = d.add_pin(cell, "side", Edge.LEFT, 8)
        net = d.add_net("n")
        net.add_pin(pin)
        net.add_pin(d.add_pin(cell, "top", Edge.TOP, 8))
        with pytest.raises(ValueError, match="LEFT/RIGHT"):
            GlobalRouter(pl).route([net], {net: 1})

    def test_off_grid_pin_rejected(self):
        d, pl = make_rowed_design()
        cell = next(iter(d.cells))
        net = d.add_net("n")
        net.add_pin(d.add_pin(cell, "a", Edge.TOP, 9))  # not on pitch 8
        net.add_pin(d.add_pin(cell, "b", Edge.TOP, 16))
        with pytest.raises(ValueError, match="grid"):
            GlobalRouter(pl).route([net], {net: 1})

    def test_column_collision_nudged(self):
        d, pl = make_rowed_design()
        rows = {name: r for name, r in pl.row_of_cell.items()}
        c0 = next(n for n, r in rows.items() if r == 0)
        c1 = next(n for n, r in rows.items() if r == 1)
        # Two nets with pins at the same x on the same channel side.
        n1, n2 = d.add_net("n1"), d.add_net("n2")
        n1.add_pin(d.add_pin(c0, "a", Edge.TOP, 16))
        n1.add_pin(d.add_pin(c1, "b", Edge.BOTTOM, 32))
        n2.add_pin(d.add_pin(c0, "c", Edge.TOP, 16 + 0))  # same offset -> same x?
        n2.add_pin(d.add_pin(c1, "d", Edge.BOTTOM, 48))
        # cell_x may differ; force the collision by construction:
        gr = GlobalRouter(pl).route([n1, n2], {n1: 1, n2: 2})
        spec = gr.specs[1]
        # Both nets present with 2 pins each despite any collision.
        assert spec.problem.pin_count(1) == 2
        assert spec.problem.pin_count(2) == 2


class TestProfilesAndWidths:
    def make_routed(self):
        d, pl = make_rowed_design()
        rows = {name: r for name, r in pl.row_of_cell.items()}
        c0 = next(n for n, r in rows.items() if r == 0)
        c2 = next(n for n, r in rows.items() if r == 2)
        nets = []
        for i in range(3):
            net = d.add_net(f"n{i}")
            net.add_pin(d.add_pin(c0, f"a{i}", Edge.BOTTOM, 8 + 8 * i))
            net.add_pin(d.add_pin(c2, f"b{i}", Edge.TOP, 8 + 8 * i))
            nets.append(net)
        gr = GlobalRouter(pl).route(nets, {n: i + 1 for i, n in enumerate(nets)})
        return pl, gr

    def test_crossing_profile(self):
        pl, gr = self.make_routed()
        profile = gr.crossing_profile("L", pl.num_rows)
        assert profile == [3, 3, 3]

    def test_side_widths(self):
        pl, gr = self.make_routed()
        left, right = gr.side_widths(pl.num_rows)
        assert left == (3 + 1) * 8
        assert right == 0

    def test_side_wire_length(self):
        pl, gr = self.make_routed()
        row_heights = [r.height for r in pl.rows]
        heights = [8] * pl.channel_count
        total = gr.side_wire_length(row_heights, heights)
        # Each of 3 nets passes 3 rows (48 each) + 2 interior channels.
        assert total == 3 * (3 * 48 + 2 * 8)

    def test_channels_route_cleanly(self):
        _, gr = self.make_routed()
        for spec in gr.specs:
            route = GreedyChannelRouter().route(spec.problem)
            route.check(spec.problem)


class TestHelpers:
    def test_column_x_is_core_relative(self):
        from repro.channels import ChannelProblem
        from repro.globalroute.router import ChannelSpec

        spec = ChannelSpec(
            index=0, problem=ChannelProblem(top=[0], bottom=[0]), base_col=4
        )
        assert spec.column_x(4, 8) == 0
        assert spec.column_x(7, 8) == 24
        assert spec.column_x(0, 8) == -32  # exit columns land outside

    def test_rows_crossed_empty_for_same_channel(self):
        from repro.globalroute.router import NetSideUse

        use = NetSideUse(net_id=1, side="L", min_ch=2, max_ch=2)
        assert list(use.rows_crossed) == []

    def test_crossing_profile_filters_side_and_range(self):
        from repro.globalroute.router import GlobalRoute, NetSideUse

        gr = GlobalRoute(
            specs=[],
            side_uses={
                1: NetSideUse(net_id=1, side="L", min_ch=0, max_ch=2),
                2: NetSideUse(net_id=2, side="R", min_ch=0, max_ch=5),
            },
            pitch=8,
        )
        assert gr.crossing_profile("L", 2) == [1, 1]
        # Out-of-range rows of the oversized R use are dropped.
        assert gr.crossing_profile("R", 2) == [1, 1]

    def test_side_widths_zero_without_uses(self):
        from repro.globalroute.router import GlobalRoute

        gr = GlobalRoute(specs=[], side_uses={}, pitch=8)
        assert gr.side_widths(3) == (0, 0)

    def test_side_wire_length_adjacent_channels(self):
        from repro.globalroute.router import GlobalRoute, NetSideUse

        gr = GlobalRoute(
            specs=[],
            side_uses={1: NetSideUse(net_id=1, side="L", min_ch=1, max_ch=2)},
            pitch=8,
        )
        # Passes exactly one row, no interior channels.
        assert gr.side_wire_length([48, 40, 56], [8, 8, 8, 8]) == 40


class TestMultiPinNets:
    def test_three_channel_net_exits_every_touched_channel(self):
        d, pl = make_rowed_design()
        rows = {name: r for name, r in pl.row_of_cell.items()}
        c0 = next(n for n, r in rows.items() if r == 0)
        c1 = next(n for n, r in rows.items() if r == 1)
        c2 = next(n for n, r in rows.items() if r == 2)
        net = d.add_net("n1")
        net.add_pin(d.add_pin(c0, "a", Edge.BOTTOM, 16))  # channel 0
        net.add_pin(d.add_pin(c1, "b", Edge.TOP, 16))  # channel 2
        net.add_pin(d.add_pin(c2, "c", Edge.TOP, 16))  # channel 3
        gr = GlobalRouter(pl).route([net], {net: 1})
        use = gr.side_uses[1]
        assert (use.min_ch, use.max_ch) == (0, 3)
        assert sorted(ch for ch, _ in use.exits) == [0, 2, 3]
        # Every touched channel's problem gained an exit pin.
        for ch, _col in use.exits:
            assert gr.specs[ch].problem.pin_count(1) >= 2


class TestRegionModel:
    """The coarse capacity model behind hierarchical dispatch
    (docs/SCALING.md).  Advisory only: it orders candidate discovery
    and feeds the routability probe, never routing decisions."""

    def test_tiling_covers_grid(self):
        from repro.globalroute import RegionModel

        model = RegionModel(num_vtracks=70, num_htracks=40, region_tracks=32)
        assert (model.rows, model.cols) == (2, 3)  # ceil(40/32), ceil(70/32)
        # Edge tiles are clipped to the grid, not padded past it.
        v_lo, v_hi, h_lo, h_hi = model.bounds_of(model.region_at(69, 39))
        assert v_hi == 69 and h_hi == 39

    def test_capacity_is_tracks_threading_tile(self):
        from repro.globalroute import RegionModel

        model = RegionModel(num_vtracks=64, num_htracks=64, region_tracks=32)
        # A full 32x32 tile is threaded by 32 h-tracks + 32 v-tracks.
        assert model.capacity(0) == 64

    def test_demand_assignment_and_overflow(self):
        from repro.globalroute import RegionModel

        # One net per tile centre: every occupied region gets demand 2.
        windows = {1: (2, 6, 2, 6), 2: (34, 38, 2, 6)}
        model = RegionModel.build(64, 64, windows, region_tracks=32)
        assert model.region_of(1) != model.region_of(2)
        assert model.region(model.region_of(1)).demand == 2
        assert not model.overflowed_regions()
        assert len(model.occupied_regions()) == 2
        assert 0.0 < model.peak_utilization() < 1.0

    def test_wide_window_charges_every_region_it_touches(self):
        from repro.globalroute import RegionModel

        # A net spanning all of a 2x1 region row charges both tiles but
        # is *assigned* to the one holding its window centre.
        model = RegionModel.build(64, 32, {7: (0, 63, 4, 8)}, region_tracks=32)
        assert len(model.occupied_regions()) == 1  # assignment: centre region
        charged = [r for r in (model.region(i) for i in range(model.rows * model.cols)) if r.demand]
        assert len(charged) == 2
        assert model.region_of(99, default=-1) == -1
