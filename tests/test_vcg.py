"""Tests for the vertical constraint graph."""

import pytest

from repro.channels import ChannelProblem, VerticalConstraintGraph


class TestFromProblem:
    def test_edges_from_columns(self):
        p = ChannelProblem(top=[1, 2], bottom=[2, 1])
        g = VerticalConstraintGraph.from_problem(p)
        assert 2 in g.edges[1]
        assert 1 in g.edges[2]

    def test_same_net_column_no_edge(self):
        p = ChannelProblem(top=[1], bottom=[1])
        g = VerticalConstraintGraph.from_problem(p)
        assert g.edges[1] == set()

    def test_empty_columns_no_edges(self):
        p = ChannelProblem(top=[1, 0], bottom=[0, 2])
        g = VerticalConstraintGraph.from_problem(p)
        assert all(not targets for targets in g.edges.values())


class TestCycles:
    def test_two_cycle(self):
        p = ChannelProblem(top=[1, 2], bottom=[2, 1])
        g = VerticalConstraintGraph.from_problem(p)
        assert g.has_cycle()
        cycle = g.find_cycle()
        assert set(cycle) == {1, 2}

    def test_acyclic_chain(self):
        p = ChannelProblem(top=[1, 2], bottom=[2, 3])
        g = VerticalConstraintGraph.from_problem(p)
        assert not g.has_cycle()
        assert g.find_cycle() is None

    def test_self_edges_impossible_from_problem(self):
        p = ChannelProblem(top=[5], bottom=[5])
        g = VerticalConstraintGraph.from_problem(p)
        assert not g.has_cycle()

    def test_three_cycle(self):
        g = VerticalConstraintGraph()
        g.add_edge("a", "b")
        g.add_edge("b", "c")
        g.add_edge("c", "a")
        assert g.has_cycle()
        assert len(g.find_cycle()) == 3


class TestDagAnalysis:
    def make_chain(self):
        g = VerticalConstraintGraph()
        g.add_edge(1, 2)
        g.add_edge(2, 3)
        g.add_edge(1, 3)
        g.add_node(4)
        return g

    def test_longest_path(self):
        assert self.make_chain().longest_path_length() == 3

    def test_longest_path_rejects_cycle(self):
        g = VerticalConstraintGraph()
        g.add_edge(1, 2)
        g.add_edge(2, 1)
        with pytest.raises(ValueError):
            g.longest_path_length()

    def test_topological_order(self):
        order = self.make_chain().topological_order()
        assert order.index(1) < order.index(2) < order.index(3)
        assert set(order) == {1, 2, 3, 4}

    def test_topological_order_rejects_cycle(self):
        g = VerticalConstraintGraph()
        g.add_edge(1, 2)
        g.add_edge(2, 1)
        with pytest.raises(ValueError):
            g.topological_order()

    def test_predecessors(self):
        g = self.make_chain()
        assert g.predecessors(3) == {1, 2}
        assert g.predecessors(1) == set()

    def test_empty_graph(self):
        g = VerticalConstraintGraph()
        assert g.longest_path_length() == 0
        assert g.topological_order() == []
        assert not g.has_cycle()
