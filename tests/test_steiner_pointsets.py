"""Tests for the point-set Steiner/spanning tree algorithms."""

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry import Point, manhattan
from repro.steiner import rectilinear_mst, steiner_prim_tree, tree_length

coords = st.integers(min_value=0, max_value=200)
points = st.builds(Point, coords, coords)
point_sets = st.lists(points, min_size=2, max_size=12, unique=True)


class TestRectilinearMST:
    def test_two_points(self):
        edges = rectilinear_mst([Point(0, 0), Point(3, 4)])
        assert len(edges) == 1
        assert edges[0].length == 7

    def test_fewer_than_two(self):
        assert rectilinear_mst([]) == []
        assert rectilinear_mst([Point(0, 0)]) == []

    def test_collinear_chain(self):
        pts = [Point(0, 0), Point(10, 0), Point(20, 0)]
        edges = rectilinear_mst(pts)
        assert tree_length(edges) == 20

    @given(point_sets)
    def test_spans_all_points(self, pts):
        edges = rectilinear_mst(pts)
        g = nx.Graph()
        g.add_nodes_from(pts)
        for e in edges:
            g.add_edge(e.a, e.b)
        assert nx.is_connected(g)
        assert len(edges) == len(pts) - 1

    @given(point_sets)
    def test_matches_networkx_mst_weight(self, pts):
        edges = rectilinear_mst(pts)
        g = nx.Graph()
        for i, a in enumerate(pts):
            for b in pts[i + 1 :]:
                g.add_edge(a, b, weight=manhattan(a, b))
        expected = sum(
            d["weight"] for _, _, d in nx.minimum_spanning_edges(g, data=True)
        )
        assert tree_length(edges) == expected


class TestSteinerPrim:
    def test_empty_raises(self):
        with pytest.raises(ValueError):
            steiner_prim_tree([])

    def test_single_point(self):
        tree = steiner_prim_tree([Point(5, 5)])
        assert tree.length == 0
        assert tree.segments == []

    def test_l_shape_realisation(self):
        tree = steiner_prim_tree([Point(0, 0), Point(3, 4)])
        assert tree.length == 7
        assert 1 <= len(tree.segments) <= 2

    def test_steiner_point_saves_length(self):
        """A T where attaching to a trunk Steiner point beats the MST.

        The trunk (0,0)-(20,0) routes first; the far terminal (10,30)
        then attaches at the Steiner point (10,0), saving 10 units over
        any terminal-to-terminal tree.
        """
        pts = [Point(0, 0), Point(20, 0), Point(10, 30)]
        tree = steiner_prim_tree(pts)
        mst = tree_length(rectilinear_mst(pts))
        assert mst == 60
        assert tree.length == 50  # trunk 20 + stem 30
        assert Point(10, 0) in {s.a for s in tree.segments} | {
            s.b for s in tree.segments
        }

    def test_steiner_points_enumerated(self):
        pts = [Point(0, 0), Point(20, 0), Point(10, 10)]
        tree = steiner_prim_tree(pts)
        for sp in tree.steiner_points():
            assert sp not in pts

    def test_covers(self):
        tree = steiner_prim_tree([Point(0, 0), Point(10, 0)])
        assert tree.covers(Point(5, 0))
        assert not tree.covers(Point(5, 5))

    @given(point_sets)
    @settings(max_examples=60)
    def test_never_longer_than_mst(self, pts):
        tree = steiner_prim_tree(pts)
        assert tree.length <= tree_length(rectilinear_mst(pts))

    @given(point_sets)
    @settings(max_examples=60)
    def test_connects_all_terminals(self, pts):
        tree = steiner_prim_tree(pts)
        # Build a graph over segment endpoints + crossings via shared points.
        g = nx.Graph()
        nodes = set(pts)
        for seg in tree.segments:
            nodes.add(seg.a)
            nodes.add(seg.b)
        g.add_nodes_from(nodes)
        for seg in tree.segments:
            for a in nodes:
                for b in nodes:
                    if a != b and seg.contains_point(a) and seg.contains_point(b):
                        g.add_edge(a, b)
        if len(pts) >= 2:
            comp = nx.node_connected_component(g, pts[0])
            assert all(p in comp for p in pts)

    @given(point_sets)
    @settings(max_examples=40)
    def test_length_lower_bound(self, pts):
        """Tree length is at least half the bounding-box perimeter/..., or
        more simply, at least the max pairwise distance."""
        tree = steiner_prim_tree(pts)
        longest = max(manhattan(a, b) for a in pts for b in pts)
        assert tree.length >= longest

    def test_orientation_flag(self):
        a = steiner_prim_tree([Point(0, 0), Point(5, 5)], prefer_horizontal_first=True)
        b = steiner_prim_tree([Point(0, 0), Point(5, 5)], prefer_horizontal_first=False)
        assert a.length == b.length == 10
        assert {s.a for s in a.segments} != {s.a for s in b.segments} or len(
            a.segments
        ) == 1
