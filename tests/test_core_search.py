"""Tests for the modified breadth-first search and Path Selection Trees.

These encode the paper's Figure 1 / Figure 2 semantics: corner
accounting (``(v2,h4,v6)`` is a one-corner path), the one-visit-per-
track rule with target-vertex exemption, duplicate same-level tree
nodes, and bounded-region behaviour.  A Lee/Dijkstra corner oracle
verifies minimum-corner optimality on randomized instances.
"""

import contextlib
import random

import pytest

from repro.geometry import Interval, Point, Rect
from repro.grid import TrackSet
from repro.core.search import MBFSearch, candidate_paths
from repro.core.tig import TrackIntersectionGraph
from repro.maze.lee import lee_search

from conftest import make_figure1_instance


def fresh_tig(nv=6, nh=5):
    return TrackIntersectionGraph(
        TrackSet(range(0, nv * 10, 10)), TrackSet(range(0, nh * 10, 10))
    )


def run_search(tig, net_id, **kw):
    a, b = tig.terminals_of(net_id)
    return MBFSearch(tig.grid, net_id, a, b, **kw).run()


class TestCornerAccounting:
    def test_straight_vertical_zero_corners(self):
        tig = fresh_tig()
        tig.register_net(1, [Point(20, 0), Point(20, 40)])
        res = run_search(tig, 1)
        assert res.min_corners == 0

    def test_straight_horizontal_zero_corners(self):
        tig = fresh_tig()
        tig.register_net(1, [Point(0, 20), Point(50, 20)])
        res = run_search(tig, 1)
        assert res.min_corners == 0

    def test_l_connection_one_corner(self):
        tig = fresh_tig()
        tig.register_net(1, [Point(10, 10), Point(40, 30)])
        res = run_search(tig, 1)
        assert res.min_corners == 1
        # Both L orientations exist on an empty grid.
        assert len(res.leaves) == 2

    def test_figure1_path_sequence(self):
        """The paper's worked example: net B routes as (v2, h4, v6)."""
        tig, nets = make_figure1_instance()
        net_id, (a, b) = nets["B"]
        res = MBFSearch(tig.grid, net_id, a, b).run()
        assert res.min_corners == 1
        sequences = {tuple(leaf.track_sequence()) for leaf in res.leaves}
        # One of the minimum-corner leaves is the v2-then-h4 path.
        assert ("v2", "h4") in sequences

    def test_blocked_l_needs_two_corners(self):
        tig = fresh_tig()
        tig.register_net(1, [Point(10, 10), Point(40, 30)])
        # Block both L corners for net 1.
        tig.add_obstacle(Rect(40, 10, 40, 10))
        tig.add_obstacle(Rect(10, 30, 10, 30))
        res = run_search(tig, 1)
        assert res.min_corners == 2


class TestPathGeometry:
    def test_candidates_connect_terminals(self):
        tig = fresh_tig()
        tig.register_net(1, [Point(10, 10), Point(40, 30)])
        res = run_search(tig, 1)
        for cand in candidate_paths(res, tig.grid):
            assert cand.points[0] == Point(10, 10)
            assert cand.points[-1] == Point(40, 30)
            for p, q in zip(cand.points, cand.points[1:]):
                assert p.is_aligned_with(q)

    def test_candidate_corner_count_matches_depth(self):
        tig = fresh_tig()
        tig.register_net(1, [Point(10, 10), Point(40, 30)])
        res = run_search(tig, 1)
        for cand in candidate_paths(res, tig.grid):
            assert cand.corner_count == res.min_corners

    def test_candidate_length_is_point_sum(self):
        tig = fresh_tig()
        tig.register_net(1, [Point(0, 0), Point(50, 40)])
        res = run_search(tig, 1)
        for cand in candidate_paths(res, tig.grid):
            total = sum(
                a.manhattan_to(b) for a, b in zip(cand.points, cand.points[1:])
            )
            assert cand.length == total
            assert cand.length >= Point(0, 0).manhattan_to(Point(50, 40))


class TestObstaclesAndOccupancy:
    def test_obstacle_avoided(self):
        tig = fresh_tig()
        tig.register_net(1, [Point(0, 20), Point(50, 20)])
        tig.add_obstacle(Rect(20, 20, 30, 20))  # blocks the straight shot
        res = run_search(tig, 1)
        assert res.found
        assert res.min_corners == 2

    def test_foreign_wire_blocks_span(self):
        tig = fresh_tig()
        tig.register_net(1, [Point(0, 20), Point(50, 20)])
        tig.grid.occupy_h(2, 2, 3, net_id=9)  # net 9 trunk on h3
        res = run_search(tig, 1)
        assert res.found
        assert res.min_corners == 2

    def test_own_wire_is_usable_space(self):
        tig = fresh_tig()
        tig.register_net(1, [Point(0, 20), Point(50, 20)])
        tig.grid.occupy_h(2, 2, 3, net_id=1)  # net 1's own trunk
        res = run_search(tig, 1)
        assert res.min_corners == 0

    def test_crossing_foreign_vertical_is_free(self):
        """Different-layer crossings do not block (reserved-layer model)."""
        tig = fresh_tig()
        tig.register_net(1, [Point(0, 20), Point(50, 20)])
        tig.grid.occupy_v(3, 0, 4, net_id=9)  # full-height foreign vertical
        res = run_search(tig, 1)
        assert res.min_corners == 0

    def test_fully_walled_terminal_fails(self):
        tig = fresh_tig()
        tig.register_net(1, [Point(20, 20), Point(50, 40)])
        # Wall in (20,20) on all four sides (terminal itself stays).
        tig.add_obstacle(Rect(10, 10, 30, 10))  # below
        tig.add_obstacle(Rect(10, 30, 30, 30))  # above
        tig.add_obstacle(Rect(10, 20, 10, 20))  # left
        tig.add_obstacle(Rect(30, 20, 30, 20))  # right
        res = run_search(tig, 1)
        assert not res.found


class TestSearchRegion:
    def test_region_limits_solution(self):
        tig = fresh_tig()
        tig.register_net(1, [Point(0, 20), Point(50, 20)])
        tig.add_obstacle(Rect(20, 20, 30, 20))
        # Tight region around the terminals' rows: the 2-corner detour
        # through other rows is outside, so the search fails.
        region = (Interval(0, 5), Interval(2, 2))
        res = MBFSearch(
            tig.grid, 1, *tig.terminals_of(1), region=region
        ).run()
        assert not res.found

    def test_region_expanded_to_contain_terminals(self):
        tig = fresh_tig()
        tig.register_net(1, [Point(0, 0), Point(50, 40)])
        # A region not containing the terminals is silently hulled.
        region = (Interval(2, 3), Interval(2, 3))
        res = MBFSearch(tig.grid, 1, *tig.terminals_of(1), region=region).run()
        assert res.found

    def test_max_depth_zero_blocks_corners(self):
        tig = fresh_tig()
        tig.register_net(1, [Point(10, 10), Point(40, 30)])
        res = MBFSearch(tig.grid, 1, *tig.terminals_of(1), max_depth=0).run()
        assert not res.found


class TestPSTStructure:
    def test_duplicate_same_level_nodes_allowed(self):
        """Figure 2: the same vertex may appear twice in one tree."""
        tig, nets = make_figure1_instance()
        net_id, (a, b) = nets["B"]
        res = MBFSearch(tig.grid, net_id, a, b).run()
        # Collect names per depth across both trees.
        for root in res.roots:
            stack = [root]
            while stack:
                node = stack.pop()
                for child in node.children:
                    assert child.parent is node
                    assert child.depth == node.depth + 1
                    assert child.kind != node.kind  # alternation
                stack.extend(node.children)

    def test_two_roots_one_per_terminal_track(self):
        tig = fresh_tig()
        tig.register_net(1, [Point(10, 10), Point(40, 30)])
        res = run_search(tig, 1)
        kinds = {r.kind for r in res.roots}
        assert kinds == {"V", "H"}

    def test_chain_and_sequence(self):
        tig = fresh_tig()
        tig.register_net(1, [Point(10, 10), Point(40, 30)])
        res = run_search(tig, 1)
        leaf = res.leaves[0]
        chain = leaf.chain()
        assert chain[0].parent is None
        assert chain[-1] is leaf
        assert len(leaf.track_sequence()) == leaf.depth + 1


class TestMinCornerOptimality:
    """MBFS corner counts vs an exhaustive Lee corner oracle."""

    def oracle_corners(self, grid, net_id, a, b):
        # Huge via penalty makes Dijkstra lexicographically minimise
        # corner count before length.
        waypoints, corners, _ = lee_search(
            grid, net_id, a, b, via_penalty=10**9
        )
        if waypoints is None:
            return None
        return len(corners)

    @pytest.mark.parametrize("seed", range(12))
    def test_matches_oracle_on_random_obstacles(self, seed):
        rng = random.Random(seed)
        tig = fresh_tig(8, 8)
        tig.register_net(1, [Point(0, 0), Point(70, 70)])
        for _ in range(6):
            x = rng.randrange(1, 7) * 10
            y = rng.randrange(1, 7) * 10
            with contextlib.suppress(ValueError):
                tig.add_obstacle(Rect(x, y, x + 10, y + 10))
        a, b = tig.terminals_of(1)
        res = MBFSearch(tig.grid, 1, a, b).run()
        oracle = self.oracle_corners(tig.grid, 1, a, b)
        if oracle is None:
            assert not res.found
        elif res.found:
            assert res.min_corners == oracle
        # (MBFS may legitimately fail where the oracle succeeds: the
        # one-corner-per-track rule trades completeness for speed.)

    @pytest.mark.parametrize("seed", range(8))
    def test_committed_paths_stay_legal(self, seed):
        """Route several nets serially; every claimed cell must verify."""
        rng = random.Random(100 + seed)
        tig = fresh_tig(10, 10)
        pts = [Point(x * 10, y * 10) for x in range(10) for y in range(10)]
        rng.shuffle(pts)
        terms = {}
        for net_id in range(1, 6):
            pair = [pts.pop(), pts.pop()]
            terms[net_id] = tig.register_net(net_id, pair)
        from repro.core.router import commit_points

        for net_id, (a, b) in terms.items():
            res = MBFSearch(tig.grid, net_id, a, b).run()
            if not res.found:
                continue
            cand = candidate_paths(res, tig.grid)[0]
            commit_points(tig.grid, net_id, cand.points, cand.corners)
        # Invariant: every slot owner is a registered net or FREE.
        assert set(tig.grid.owners()) <= set(terms)
