"""Tests for serial net ordering."""

from repro.netlist import Cell, Net, Pin, Edge
from repro.core.ordering import NetOrdering, order_nets


def make_net(name, length, pins=2, critical=False, weight=1.0):
    cell = Cell(f"cell_{name}", max(length, 8) + 8, 16)
    cell.place(0, 0)
    net = Net(name, is_critical=critical, weight=weight)
    for i in range(pins):
        offset = 0 if i == 0 else min(length, cell.width)
        pin = Pin(f"p{i}", cell, Edge.TOP, offset)
        cell.add_pin(pin)
        net.add_pin(pin)
    return net


class TestOrderings:
    def test_longest_first_default(self):
        nets = [make_net("a", 10), make_net("b", 100), make_net("c", 50)]
        ordered = order_nets(nets)
        assert [n.name for n in ordered] == ["b", "c", "a"]

    def test_shortest_first(self):
        nets = [make_net("a", 10), make_net("b", 100)]
        ordered = order_nets(nets, NetOrdering.SHORTEST_FIRST)
        assert [n.name for n in ordered] == ["a", "b"]

    def test_most_pins_first(self):
        nets = [make_net("a", 10, pins=2), make_net("b", 10, pins=5)]
        ordered = order_nets(nets, NetOrdering.MOST_PINS_FIRST)
        assert ordered[0].name == "b"

    def test_critical_first(self):
        nets = [make_net("a", 100), make_net("b", 10, critical=True)]
        ordered = order_nets(nets, NetOrdering.CRITICAL_FIRST)
        assert ordered[0].name == "b"

    def test_critical_first_respects_weight(self):
        nets = [
            make_net("a", 10, critical=True, weight=1.0),
            make_net("b", 10, critical=True, weight=5.0),
        ]
        ordered = order_nets(nets, NetOrdering.CRITICAL_FIRST)
        assert ordered[0].name == "b"

    def test_name_ordering(self):
        nets = [make_net("z", 10), make_net("a", 100)]
        ordered = order_nets(nets, NetOrdering.NAME)
        assert [n.name for n in ordered] == ["a", "z"]

    def test_user_key_overrides(self):
        nets = [make_net("a", 10), make_net("b", 100)]
        ordered = order_nets(nets, key=lambda n: n.name)
        assert [n.name for n in ordered] == ["a", "b"]

    def test_deterministic_tie_break_by_name(self):
        nets = [make_net("b", 50), make_net("a", 50)]
        ordered = order_nets(nets)
        assert [n.name for n in ordered] == ["a", "b"]

    def test_input_not_mutated(self):
        nets = [make_net("b", 50), make_net("a", 100)]
        order_nets(nets)
        assert [n.name for n in nets] == ["b", "a"]
