"""Tests for serial net ordering."""

import random

from repro.netlist import Cell, Net, Pin, Edge
from repro.core.ordering import NetOrdering, order_nets


def make_net(name, length, pins=2, critical=False, weight=1.0):
    cell = Cell(f"cell_{name}", max(length, 8) + 8, 16)
    cell.place(0, 0)
    net = Net(name, is_critical=critical, weight=weight)
    for i in range(pins):
        offset = 0 if i == 0 else min(length, cell.width)
        pin = Pin(f"p{i}", cell, Edge.TOP, offset)
        cell.add_pin(pin)
        net.add_pin(pin)
    return net


class TestOrderings:
    def test_longest_first_default(self):
        nets = [make_net("a", 10), make_net("b", 100), make_net("c", 50)]
        ordered = order_nets(nets)
        assert [n.name for n in ordered] == ["b", "c", "a"]

    def test_shortest_first(self):
        nets = [make_net("a", 10), make_net("b", 100)]
        ordered = order_nets(nets, NetOrdering.SHORTEST_FIRST)
        assert [n.name for n in ordered] == ["a", "b"]

    def test_most_pins_first(self):
        nets = [make_net("a", 10, pins=2), make_net("b", 10, pins=5)]
        ordered = order_nets(nets, NetOrdering.MOST_PINS_FIRST)
        assert ordered[0].name == "b"

    def test_critical_first(self):
        nets = [make_net("a", 100), make_net("b", 10, critical=True)]
        ordered = order_nets(nets, NetOrdering.CRITICAL_FIRST)
        assert ordered[0].name == "b"

    def test_critical_first_respects_weight(self):
        nets = [
            make_net("a", 10, critical=True, weight=1.0),
            make_net("b", 10, critical=True, weight=5.0),
        ]
        ordered = order_nets(nets, NetOrdering.CRITICAL_FIRST)
        assert ordered[0].name == "b"

    def test_name_ordering(self):
        nets = [make_net("z", 10), make_net("a", 100)]
        ordered = order_nets(nets, NetOrdering.NAME)
        assert [n.name for n in ordered] == ["a", "z"]

    def test_user_key_overrides(self):
        nets = [make_net("a", 10), make_net("b", 100)]
        ordered = order_nets(nets, key=lambda n: n.name)
        assert [n.name for n in ordered] == ["a", "b"]

    def test_deterministic_tie_break_by_name(self):
        nets = [make_net("b", 50), make_net("a", 50)]
        ordered = order_nets(nets)
        assert [n.name for n in ordered] == ["a", "b"]

    def test_input_not_mutated(self):
        nets = [make_net("b", 50), make_net("a", 100)]
        order_nets(nets)
        assert [n.name for n in nets] == ["b", "a"]


class TestPermutationProperty:
    """Every criterion is a total, deterministic, input-order-free sort.

    This is the contract the iterative driver's ordering policies
    (``repro.iterate.policies``) inherit: each sort key ends on the net
    name, so no pair of distinct nets ever compares equal and the
    result cannot depend on how the caller happened to list the nets.
    The fixture nets tie deliberately on every other key dimension
    (length, pin count, criticality, weight) to force the name
    tie-break to carry the order.
    """

    def _tied_nets(self):
        return [
            make_net("e", 50, pins=2),
            make_net("a", 50, pins=2),
            make_net("c", 50, pins=4, critical=True),
            make_net("h", 100, pins=4, critical=True),
            make_net("b", 100, pins=4, critical=True),
            make_net("d", 100, pins=2),
            make_net("g", 10, pins=3, critical=True),
            make_net("f", 10, pins=3),
            make_net("i", 10, pins=3, critical=True, weight=2.0),
        ]

    def test_every_criterion_is_a_permutation(self):
        nets = self._tied_nets()
        for ordering in NetOrdering:
            ordered = order_nets(nets, ordering)
            assert sorted(n.name for n in ordered) == sorted(
                n.name for n in nets
            ), ordering

    def test_every_criterion_is_shuffle_invariant(self):
        nets = self._tied_nets()
        rng = random.Random(0xC0FFEE)
        for ordering in NetOrdering:
            baseline = [n.name for n in order_nets(nets, ordering)]
            for _ in range(25):
                shuffled = list(nets)
                rng.shuffle(shuffled)
                got = [n.name for n in order_nets(shuffled, ordering)]
                assert got == baseline, ordering

    def test_ties_resolve_by_name_under_every_criterion(self):
        # Three nets identical under every non-name key must come out
        # name-sorted relative to each other, whatever the criterion.
        triplet = [make_net(n, 64, pins=3) for n in ("z", "m", "b")]
        for ordering in NetOrdering:
            ordered = [n.name for n in order_nets(triplet, ordering)]
            assert ordered == ["b", "m", "z"], ordering
