"""Tests for the channel problem model."""

import pytest

from repro.channels import ChannelProblem


class TestConstruction:
    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ChannelProblem(top=[0, 1], bottom=[0])

    def test_negative_net_rejected(self):
        with pytest.raises(ValueError):
            ChannelProblem(top=[-1], bottom=[0])

    def test_from_pin_lists(self):
        p = ChannelProblem.from_pin_lists([(0, 1), (4, 2)], [(2, 1)])
        assert p.length == 5
        assert p.top == [1, 0, 0, 0, 2]
        assert p.bottom == [0, 0, 1, 0, 0]

    def test_from_pin_lists_length_override(self):
        p = ChannelProblem.from_pin_lists([(0, 1)], [(1, 1)], length=10)
        assert p.length == 10

    def test_same_column_conflict_rejected(self):
        with pytest.raises(ValueError):
            ChannelProblem.from_pin_lists([(3, 1), (3, 2)], [])

    def test_same_net_duplicate_collapses(self):
        p = ChannelProblem.from_pin_lists([(3, 1), (3, 1)], [(0, 1)])
        assert p.top.count(1) == 1

    def test_bad_inputs(self):
        with pytest.raises(ValueError):
            ChannelProblem.from_pin_lists([(-1, 1)], [])
        with pytest.raises(ValueError):
            ChannelProblem.from_pin_lists([(0, 0)], [])


class TestQueries:
    def make(self):
        #  cols:   0  1  2  3  4  5
        #  top:    1  0  2  0  1  0
        #  bottom: 0  2  0  1  0  2
        return ChannelProblem(top=[1, 0, 2, 0, 1, 0], bottom=[0, 2, 0, 1, 0, 2])

    def test_nets(self):
        assert self.make().nets() == [1, 2]

    def test_pin_columns(self):
        p = self.make()
        assert p.pin_columns(1) == [0, 3, 4]
        assert p.pin_columns(2) == [1, 2, 5]

    def test_span(self):
        p = self.make()
        assert p.span(1) == (0, 4)
        assert p.span(2) == (1, 5)
        with pytest.raises(KeyError):
            p.span(9)

    def test_pin_count(self):
        p = self.make()
        assert p.pin_count(1) == 3
        assert p.pin_count(2) == 3
        assert p.pin_count(9) == 0

    def test_density(self):
        p = self.make()
        # Columns 1..4 are covered by both nets' spans.
        assert p.density() == 2
        assert p.local_density(0) == 1
        assert p.local_density(2) == 2

    def test_density_excludes_single_pin_nets(self):
        p = ChannelProblem(top=[1, 0, 0], bottom=[0, 0, 2])
        assert p.density() == 0

    def test_trivial(self):
        assert ChannelProblem(top=[1], bottom=[1]).trivial()
        assert not self.make().trivial()

    def test_empty_channel(self):
        p = ChannelProblem(top=[], bottom=[])
        assert p.length == 0
        assert p.density() == 0
        assert p.nets() == []
