"""Tests for the greedy channel router (incl. randomized validation)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.channels import ChannelProblem, GreedyChannelRouter

from conftest import make_random_channel_problem


class TestSmallProblems:
    def test_empty_channel(self):
        p = ChannelProblem(top=[0, 0], bottom=[0, 0])
        route = GreedyChannelRouter().route(p)
        assert route.tracks == 0
        assert not route.spans and not route.jogs

    def test_single_vertical_net(self):
        p = ChannelProblem(top=[1], bottom=[1])
        route = GreedyChannelRouter().route(p)
        route.check(p)
        assert route.tracks >= 1

    def test_two_terminal_same_side(self):
        p = ChannelProblem(top=[1, 0, 1], bottom=[0, 0, 0])
        route = GreedyChannelRouter().route(p)
        route.check(p)
        assert any(s.net == 1 and s.c1 == 0 and s.c2 == 2 for s in route.spans)

    def test_crossing_nets(self):
        p = ChannelProblem(top=[1, 2], bottom=[2, 1])
        route = GreedyChannelRouter().route(p)
        route.check(p)
        assert route.tracks >= 2

    def test_single_pin_net_ignored(self):
        p = ChannelProblem(top=[7, 1, 0, 1], bottom=[0, 0, 0, 0])
        route = GreedyChannelRouter().route(p)
        route.check(p)
        assert all(s.net != 7 for s in route.spans)
        assert all(j.net != 7 for j in route.jogs)

    def test_dense_interleave(self):
        top = [1, 2, 3, 4, 5]
        bottom = [5, 4, 3, 2, 1]
        p = ChannelProblem(top=top, bottom=bottom)
        route = GreedyChannelRouter().route(p)
        route.check(p)

    def test_track_count_lower_bound(self):
        p = make_random_channel_problem(30, 8, seed=5)
        route = GreedyChannelRouter().route(p)
        assert route.tracks >= p.density()

    def test_extension_collapse(self):
        """Nets still split at the last column collapse in extensions."""
        # Net 1 has pins forcing it onto two tracks late in the channel.
        p = ChannelProblem(
            top=[1, 2, 0, 1],
            bottom=[2, 1, 2, 2],
        )
        route = GreedyChannelRouter().route(p)
        route.check(p)
        assert route.length >= p.length


class TestMetrics:
    def test_wire_length_positive(self):
        p = make_random_channel_problem(20, 5, seed=1)
        route = GreedyChannelRouter().route(p)
        assert route.wire_length(8, 8) > 0
        # Doubling pitches doubles the length.
        assert route.wire_length(16, 16) == 2 * route.wire_length(8, 8)

    def test_via_count_positive(self):
        p = make_random_channel_problem(20, 5, seed=2)
        route = GreedyChannelRouter().route(p)
        assert route.via_count() > 0

    def test_height(self):
        p = make_random_channel_problem(20, 5, seed=3)
        route = GreedyChannelRouter().route(p)
        assert route.height(8) == (route.tracks + 1) * 8


class TestInitialWidth:
    def test_explicit_initial_tracks(self):
        p = make_random_channel_problem(20, 5, seed=4)
        route = GreedyChannelRouter(initial_tracks=1).route(p)
        route.check(p)

    def test_generous_initial_tracks(self):
        p = make_random_channel_problem(20, 5, seed=4)
        route = GreedyChannelRouter(initial_tracks=30).route(p)
        route.check(p)
        assert route.tracks == 30  # width never shrinks


class TestRandomized:
    @pytest.mark.parametrize("seed", range(40))
    def test_random_problems_valid(self, seed):
        p = make_random_channel_problem(30, 8, seed=seed)
        route = GreedyChannelRouter().route(p)
        route.check(p)

    @pytest.mark.parametrize("seed", range(10))
    def test_wide_problems_valid(self, seed):
        p = make_random_channel_problem(80, 25, seed=1000 + seed)
        route = GreedyChannelRouter().route(p)
        route.check(p)

    @pytest.mark.parametrize("seed", range(10))
    def test_deterministic(self, seed):
        p = make_random_channel_problem(30, 8, seed=seed)
        r1 = GreedyChannelRouter().route(p)
        r2 = GreedyChannelRouter().route(p)
        assert r1.tracks == r2.tracks
        assert r1.spans == r2.spans
        assert r1.jogs == r2.jogs

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 10_000))
    def test_hypothesis_fuzz(self, seed):
        p = make_random_channel_problem(40, 12, seed=seed)
        route = GreedyChannelRouter().route(p)
        route.check(p)


class TestSteadyJogs:
    def test_default_on_and_valid(self):
        p = make_random_channel_problem(30, 8, seed=21)
        route = GreedyChannelRouter().route(p)
        route.check(p)

    def test_disabled_still_valid(self):
        p = make_random_channel_problem(30, 8, seed=21)
        route = GreedyChannelRouter(steady_jogs=False).route(p)
        route.check(p)

    def test_jogs_reduce_tracks_on_batch(self):
        with_jogs = without = 0
        for seed in range(25):
            p = make_random_channel_problem(30, 8, seed=seed)
            with_jogs += GreedyChannelRouter(steady_jogs=True).route(p).tracks
            without += GreedyChannelRouter(steady_jogs=False).route(p).tracks
        assert with_jogs <= without

    def test_jogs_add_vias(self):
        """The classic trade: steady jogs spend vias to save tracks."""
        vias_on = vias_off = 0
        for seed in range(25):
            p = make_random_channel_problem(30, 8, seed=seed)
            vias_on += GreedyChannelRouter(steady_jogs=True).route(p).via_count()
            vias_off += GreedyChannelRouter(steady_jogs=False).route(p).via_count()
        assert vias_on >= vias_off

    def test_min_jog_length_limits_movement(self):
        """A huge min-jog threshold disables jogging entirely."""
        p = make_random_channel_problem(30, 8, seed=5)
        huge = GreedyChannelRouter(steady_jogs=True, min_jog_length=10**6).route(p)
        off = GreedyChannelRouter(steady_jogs=False).route(p)
        assert huge.tracks == off.tracks
        assert len(huge.jogs) == len(off.jogs)

    @pytest.mark.parametrize("seed", range(15))
    def test_randomized_validity_with_jogs(self, seed):
        p = make_random_channel_problem(40, 12, seed=seed + 500)
        route = GreedyChannelRouter(steady_jogs=True, min_jog_length=1).route(p)
        route.check(p)
