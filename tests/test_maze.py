"""Tests for the Lee/Dijkstra maze baseline."""


from repro.geometry import Point, Rect, Interval
from repro.grid import TrackSet
from repro.core.tig import TrackIntersectionGraph
from repro.maze import MazeRouter, lee_search

from conftest import make_toy_design


def make_tig(n=8):
    ts = TrackSet(range(0, n * 10, 10))
    return TrackIntersectionGraph(ts, TrackSet(range(0, n * 10, 10)))


class TestLeeSearch:
    def test_straight_connection(self):
        tig = make_tig()
        a, b = tig.register_net(1, [Point(0, 30), Point(70, 30)])
        waypoints, corners, stats = lee_search(tig.grid, 1, a, b)
        assert waypoints == [Point(0, 30), Point(70, 30)]
        assert corners == []
        assert stats.nodes_expanded > 0

    def test_l_connection(self):
        tig = make_tig()
        a, b = tig.register_net(1, [Point(0, 0), Point(50, 40)])
        waypoints, corners, _ = lee_search(tig.grid, 1, a, b)
        assert waypoints[0] == Point(0, 0)
        assert waypoints[-1] == Point(50, 40)
        assert len(corners) == 1

    def test_length_optimal_on_empty_grid(self):
        tig = make_tig()
        a, b = tig.register_net(1, [Point(0, 0), Point(50, 40)])
        waypoints, _, _ = lee_search(tig.grid, 1, a, b, via_penalty=0.0)
        length = sum(p.manhattan_to(q) for p, q in zip(waypoints, waypoints[1:]))
        assert length == 90  # Manhattan distance

    def test_detours_around_obstacle(self):
        tig = make_tig()
        a, b = tig.register_net(1, [Point(0, 30), Point(70, 30)])
        tig.add_obstacle(Rect(30, 0, 40, 60))  # wall with a gap at top
        waypoints, corners, _ = lee_search(tig.grid, 1, a, b)
        assert waypoints is not None
        length = sum(p.manhattan_to(q) for p, q in zip(waypoints, waypoints[1:]))
        assert length > 70  # forced detour

    def test_unroutable_returns_none(self):
        tig = make_tig()
        a, b = tig.register_net(1, [Point(0, 30), Point(70, 30)])
        tig.add_obstacle(Rect(30, 0, 40, 70))  # full wall
        waypoints, corners, stats = lee_search(tig.grid, 1, a, b)
        assert waypoints is None and corners is None
        assert stats.nodes_expanded > 0

    def test_region_restricts(self):
        tig = make_tig()
        a, b = tig.register_net(1, [Point(0, 30), Point(70, 30)])
        tig.add_obstacle(Rect(30, 30, 40, 30))
        region = (Interval(0, 7), Interval(3, 3))  # single row
        waypoints, _, _ = lee_search(tig.grid, 1, a, b, region=region)
        assert waypoints is None

    def test_high_via_penalty_prefers_fewer_corners(self):
        tig = make_tig()
        a, b = tig.register_net(1, [Point(0, 0), Point(50, 40)])
        _, corners_cheap, _ = lee_search(tig.grid, 1, a, b, via_penalty=0.001)
        _, corners_dear, _ = lee_search(tig.grid, 1, a, b, via_penalty=10**6)
        assert len(corners_dear) <= len(corners_cheap)
        assert len(corners_dear) == 1

    def test_respects_foreign_wires(self):
        tig = make_tig()
        a, b = tig.register_net(1, [Point(0, 30), Point(70, 30)])
        tig.grid.occupy_h(3, 1, 6, net_id=5)
        waypoints, corners, _ = lee_search(tig.grid, 1, a, b)
        assert waypoints is not None
        assert len(corners) >= 2  # must leave the blocked row


class TestMazeRouter:
    def test_routes_toy_design(self):
        design = make_toy_design()
        router = MazeRouter(Rect(0, 0, 256, 256), list(design.nets.values()))
        result = router.route()
        assert result.completion_rate == 1.0
        assert result.total_wire_length > 0

    def test_same_model_as_levelb(self):
        """Maze and MBFS routers produce comparable wire lengths."""
        from repro.core import LevelBRouter

        design = make_toy_design()
        maze = MazeRouter(Rect(0, 0, 256, 256), list(design.nets.values())).route()
        design2 = make_toy_design()
        mbfs = LevelBRouter(Rect(0, 0, 256, 256), list(design2.nets.values())).route()
        assert maze.completion_rate == mbfs.completion_rate == 1.0
        # Both should be within 2x of each other on this easy instance.
        assert maze.total_wire_length < 2 * mbfs.total_wire_length
        assert mbfs.total_wire_length < 2 * maze.total_wire_length
