"""Tests for repro.geometry.interval (incl. IntervalSet properties)."""

import pytest
from hypothesis import given, strategies as st

from repro.geometry import Interval, IntervalSet

bounds = st.integers(min_value=-500, max_value=500)


@st.composite
def intervals(draw):
    a = draw(bounds)
    b = draw(bounds)
    return Interval.spanning(a, b)


class TestInterval:
    def test_malformed_raises(self):
        with pytest.raises(ValueError):
            Interval(3, 2)

    def test_spanning_orders(self):
        assert Interval.spanning(5, 1) == Interval(1, 5)

    def test_point_interval(self):
        iv = Interval(4, 4)
        assert iv.length == 0
        assert iv.count == 1
        assert iv.contains(4)

    def test_contains_interval(self):
        assert Interval(0, 10).contains_interval(Interval(2, 8))
        assert not Interval(0, 10).contains_interval(Interval(2, 12))

    def test_overlaps_closed_touching(self):
        assert Interval(0, 5).overlaps(Interval(5, 9))
        assert not Interval(0, 5).overlaps_open(Interval(5, 9))

    def test_intersection(self):
        assert Interval(0, 5).intersection(Interval(3, 9)) == Interval(3, 5)
        assert Interval(0, 2).intersection(Interval(4, 6)) is None

    def test_hull(self):
        assert Interval(0, 2).hull(Interval(5, 7)) == Interval(0, 7)

    def test_expanded_and_clamp(self):
        assert Interval(2, 4).expanded(3) == Interval(-1, 7)
        assert Interval(2, 4).clamp(0) == 2
        assert Interval(2, 4).clamp(9) == 4
        assert Interval(2, 4).clamp(3) == 3

    def test_iteration(self):
        assert list(Interval(2, 5)) == [2, 3, 4, 5]

    @given(intervals(), intervals())
    def test_overlap_symmetric(self, a, b):
        assert a.overlaps(b) == b.overlaps(a)

    @given(intervals(), intervals())
    def test_intersection_consistent_with_overlap(self, a, b):
        inter = a.intersection(b)
        assert (inter is not None) == a.overlaps(b)
        if inter is not None:
            assert a.contains_interval(inter)
            assert b.contains_interval(inter)


class TestIntervalSet:
    def test_add_merges_adjacent(self):
        s = IntervalSet([Interval(0, 3), Interval(4, 7)])
        assert s.intervals() == [(0, 7)]

    def test_add_merges_overlap(self):
        s = IntervalSet([Interval(0, 5), Interval(3, 9)])
        assert s.intervals() == [(0, 9)]

    def test_disjoint_stay_separate(self):
        s = IntervalSet([Interval(0, 2), Interval(5, 7)])
        assert s.intervals() == [(0, 2), (5, 7)]

    def test_remove_splits(self):
        s = IntervalSet([Interval(0, 10)])
        s.remove(Interval(3, 6))
        assert s.intervals() == [(0, 2), (7, 10)]

    def test_remove_edges(self):
        s = IntervalSet([Interval(0, 10)])
        s.remove(Interval(0, 4))
        assert s.intervals() == [(5, 10)]
        s.remove(Interval(8, 10))
        assert s.intervals() == [(5, 7)]

    def test_contains_and_overlaps(self):
        s = IntervalSet([Interval(2, 4), Interval(8, 9)])
        assert s.contains(3)
        assert not s.contains(5)
        assert s.overlaps(Interval(4, 8))
        assert not s.overlaps(Interval(5, 7))

    def test_covers(self):
        s = IntervalSet([Interval(2, 8)])
        assert s.covers(Interval(3, 7))
        assert not s.covers(Interval(3, 9))

    def test_gap_around(self):
        s = IntervalSet([Interval(0, 2), Interval(8, 10)])
        gap = s.gap_around(5, Interval(0, 10))
        assert gap == Interval(3, 7)

    def test_gap_around_covered_returns_none(self):
        s = IntervalSet([Interval(0, 10)])
        assert s.gap_around(5, Interval(0, 10)) is None

    def test_gap_around_outside_window(self):
        s = IntervalSet()
        assert s.gap_around(15, Interval(0, 10)) is None

    def test_gap_around_empty_set(self):
        s = IntervalSet()
        assert s.gap_around(5, Interval(0, 10)) == Interval(0, 10)

    def test_complement_within(self):
        s = IntervalSet([Interval(2, 3), Interval(6, 7)])
        gaps = s.complement_within(Interval(0, 9))
        assert gaps == [Interval(0, 1), Interval(4, 5), Interval(8, 9)]

    def test_complement_of_empty(self):
        assert IntervalSet().complement_within(Interval(3, 5)) == [Interval(3, 5)]

    def test_interval_at(self):
        s = IntervalSet([Interval(2, 4)])
        assert s.interval_at(3) == Interval(2, 4)
        assert s.interval_at(5) is None

    @given(st.lists(intervals(), max_size=20))
    def test_invariant_sorted_disjoint_nonadjacent(self, ivs):
        s = IntervalSet(ivs)
        stored = s.intervals()
        for (lo1, hi1), (lo2, hi2) in zip(stored, stored[1:]):
            assert hi1 + 1 < lo2  # disjoint and non-adjacent

    @given(st.lists(intervals(), max_size=20), bounds)
    def test_membership_matches_naive(self, ivs, probe):
        s = IntervalSet(ivs)
        naive = any(iv.contains(probe) for iv in ivs)
        assert s.contains(probe) == naive

    @given(st.lists(intervals(), max_size=10), intervals())
    def test_remove_then_no_overlap(self, ivs, removal):
        s = IntervalSet(ivs)
        s.remove(removal)
        assert not s.overlaps(removal)

    @given(st.lists(intervals(), max_size=10))
    def test_total_count_matches_naive(self, ivs):
        s = IntervalSet(ivs)
        covered = set()
        for iv in ivs:
            covered.update(range(iv.lo, iv.hi + 1))
        assert s.total_count == len(covered)

    @given(st.lists(intervals(), max_size=10), intervals(), bounds)
    def test_gap_around_is_maximal_and_free(self, ivs, window, probe):
        s = IntervalSet(ivs)
        gap = s.gap_around(probe, window)
        if gap is None:
            assert s.contains(probe) or not window.contains(probe)
        else:
            assert window.contains_interval(gap)
            assert gap.contains(probe)
            assert not s.overlaps(gap)
            # Maximality: one step beyond either end is blocked or out.
            if gap.lo > window.lo:
                assert s.contains(gap.lo - 1)
            if gap.hi < window.hi:
                assert s.contains(gap.hi + 1)
