"""Tests for repro.geometry.point."""

import pytest
from hypothesis import given, strategies as st

from repro.geometry import Point, manhattan
from repro.geometry.point import bounding_box_half_perimeter

coords = st.integers(min_value=-10_000, max_value=10_000)
points = st.builds(Point, coords, coords)


class TestPoint:
    def test_unpacking(self):
        x, y = Point(3, 4)
        assert (x, y) == (3, 4)

    def test_translated(self):
        assert Point(1, 2).translated(3, -5) == Point(4, -3)

    def test_manhattan_to(self):
        assert Point(0, 0).manhattan_to(Point(3, 4)) == 7

    def test_chebyshev_to(self):
        assert Point(0, 0).chebyshev_to(Point(3, 4)) == 4

    def test_is_aligned_with(self):
        assert Point(3, 7).is_aligned_with(Point(3, 0))
        assert Point(3, 7).is_aligned_with(Point(9, 7))
        assert not Point(3, 7).is_aligned_with(Point(4, 8))

    def test_hashable_and_ordered(self):
        assert len({Point(1, 2), Point(1, 2), Point(2, 1)}) == 2
        assert Point(1, 2) < Point(2, 1)

    @given(points, points)
    def test_manhattan_symmetry(self, a, b):
        assert manhattan(a, b) == manhattan(b, a)

    @given(points, points, points)
    def test_manhattan_triangle_inequality(self, a, b, c):
        assert manhattan(a, c) <= manhattan(a, b) + manhattan(b, c)

    @given(points, points)
    def test_chebyshev_le_manhattan(self, a, b):
        assert a.chebyshev_to(b) <= manhattan(a, b)


class TestBoundingBoxHalfPerimeter:
    def test_empty_raises(self):
        with pytest.raises(ValueError):
            bounding_box_half_perimeter([])

    def test_single_point_is_zero(self):
        assert bounding_box_half_perimeter([Point(5, 5)]) == 0

    def test_two_points(self):
        assert bounding_box_half_perimeter([Point(0, 0), Point(3, 4)]) == 7

    @given(st.lists(points, min_size=1, max_size=20))
    def test_equals_rect_half_perimeter(self, pts):
        from repro.geometry import Rect

        assert bounding_box_half_perimeter(pts) == Rect.bounding(pts).half_perimeter

    @given(st.lists(points, min_size=2, max_size=20))
    def test_lower_bounds_pairwise_distance(self, pts):
        hp = bounding_box_half_perimeter(pts)
        assert all(manhattan(a, b) <= hp for a in pts for b in pts)
