"""The occupancy backend layer: PagedArray, registry, cross-backend parity.

Three layers of guarantees (docs/SCALING.md):

* :class:`PagedArray` implements exactly the indexing subset
  :class:`RoutingGrid` uses, with first-touch allocation — zero writes
  into unallocated pages allocate nothing;
* the ``dense``/``sparse`` backends are observably identical — a
  hypothesis-driven random interleaving of commit/rip-up/rollback
  leaves both with byte-identical snapshots;
* the whole stack stays bit-identical: sparse-routed suites reproduce
  the pre-refactor :data:`test_planes.PARITY_DIGESTS`, serial and
  parallel.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench_suite import SUITES
from repro.flow import FlowParams, overcell_flow
from repro.geometry import Interval
from repro.grid import (
    DenseBackend,
    PagedArray,
    RoutingGrid,
    SparseBackend,
    TrackSet,
    available_backends,
    get_backend,
)

from test_planes import PARITY_DIGESTS, _geometry_digest


def make_grid(backend: str, nv: int = 24, nh: int = 20) -> RoutingGrid:
    vt = TrackSet.uniform(0, (nv - 1) * 8, 8)
    ht = TrackSet.uniform(0, (nh - 1) * 8, 8)
    grid = RoutingGrid(vt, ht, backend=backend)
    assert grid.num_vtracks == nv and grid.num_htracks == nh
    return grid


# ----------------------------------------------------------------------
# PagedArray
# ----------------------------------------------------------------------
class TestPagedArray:
    def test_reads_default_to_zero(self):
        arr = PagedArray((4, 100))
        assert arr[2, 57] == 0
        assert not arr[3, 10:90].any()
        assert arr.pages_allocated == 0

    def test_scalar_write_read_roundtrip(self):
        arr = PagedArray((4, 100))
        arr[1, 42] = 7
        assert arr[1, 42] == 7
        assert arr[1, 41] == 0

    def test_negative_indices_wrap(self):
        arr = PagedArray((4, 100))
        arr[-1, -1] = 5
        assert arr[3, 99] == 5

    def test_out_of_range_raises(self):
        arr = PagedArray((4, 100))
        with pytest.raises(IndexError):
            arr[4, 0]
        with pytest.raises(IndexError):
            arr[0, 100] = 1

    def test_zero_writes_allocate_nothing(self):
        arr = PagedArray((4, 100))
        arr[0, 10:90] = 0
        arr[2, 5] = 0
        assert arr.pages_allocated == 0
        assert arr.nbytes_allocated == 0

    def test_first_touch_allocates_only_spanned_pages(self):
        arr = PagedArray((4, 100), page=16)
        arr[0, 20:25] = 3  # one 16-cell page (cells 16..31)
        assert arr.pages_allocated == 1
        arr[0, 30:40] = 3  # page 1 again plus page 2 (cells 32..47)
        assert arr.pages_allocated == 2
        arr[3, 0] = 1  # a different row allocates independently
        assert arr.pages_allocated == 3
        assert arr.nbytes_allocated == 3 * 16 * arr.to_numpy().itemsize

    def test_slice_reads_are_fresh_copies(self):
        arr = PagedArray((4, 100))
        arr[1, 0:10] = 9
        window = arr[1, 0:10]
        window[:] = 0
        assert arr[1, 5] == 9

    def test_column_reads(self):
        arr = PagedArray((4, 100))
        arr[0, 7] = 1
        arr[2, 7] = 3
        col = arr[:, 7]
        assert col.tolist() == [1, 0, 3, 0]

    def test_window_reads(self):
        arr = PagedArray((4, 100))
        arr[1, 10:14] = 2
        win = arr[0:3, 9:13]
        assert win.shape == (3, 4)
        assert win[1].tolist() == [0, 2, 2, 2]

    def test_comparisons_match_numpy(self):
        arr = PagedArray((3, 40))
        arr[0, 0:40] = 4
        dense = arr.to_numpy()
        assert np.array_equal(arr == 4, dense == 4)
        assert np.array_equal(arr != 4, dense != 4)
        assert np.array_equal(arr > 0, dense > 0)

    def test_positive_scans(self):
        arr = PagedArray((3, 40))
        arr[0, 3] = 2
        arr[1, 5] = 2
        arr[2, 7] = -1
        assert arr.count_positive() == 2
        assert arr.positive_values() == {2}

    def test_to_numpy_roundtrip(self):
        arr = PagedArray((3, 40), dtype=np.int16)
        arr[2, 39] = 12
        dense = arr.to_numpy()
        assert dense.dtype == np.int16
        assert dense[2, 39] == 12
        assert dense.sum() == 12


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_both_backends_registered(self):
        assert available_backends() == ["dense", "sparse"]
        assert get_backend("dense") is DenseBackend
        assert get_backend("sparse") is SparseBackend

    def test_unknown_backend_lists_available(self):
        with pytest.raises(KeyError, match="sparse"):
            get_backend("ramdisk")

    def test_grid_accepts_backend_instance(self):
        vt = TrackSet.uniform(0, 64, 8)
        ht = TrackSet.uniform(0, 64, 8)
        inst = SparseBackend(len(ht), len(vt))
        grid = RoutingGrid(vt, ht, backend=inst)
        assert grid.backend_name == "sparse"
        assert grid.backend is inst

    def test_memory_accounting(self):
        dense = make_grid("dense")
        sparse = make_grid("sparse")
        assert dense.memory_bytes() == dense.dense_equiv_bytes()
        assert sparse.dense_equiv_bytes() == dense.dense_equiv_bytes()
        assert sparse.memory_bytes() == 0  # nothing committed yet
        sparse.occupy_h(3, 2, 9, 1)
        assert 0 < sparse.memory_bytes() < sparse.dense_equiv_bytes()


# ----------------------------------------------------------------------
# Cross-backend behavioural parity (satellite: hypothesis interleaving)
# ----------------------------------------------------------------------
def _snapshot_bytes(grid: RoutingGrid) -> bytes:
    snap = grid.snapshot()
    return (
        snap.h_owner.tobytes()
        + snap.v_owner.tobytes()
        + snap.unrouted_terms.tobytes()
    )


_ops = st.lists(
    st.tuples(
        st.sampled_from(["occupy_h", "occupy_v", "corner", "rip", "txn"]),
        st.integers(min_value=0, max_value=19),  # track index
        st.integers(min_value=0, max_value=19),  # span lo
        st.integers(min_value=0, max_value=19),  # span hi
        st.integers(min_value=1, max_value=5),  # net id
        st.booleans(),  # txn: commit or rollback
    ),
    min_size=1,
    max_size=40,
)


def _apply_ops(grid: RoutingGrid, ops) -> None:
    """Replay an op script, swallowing the router-level rejections.

    Conflicting occupations raise ``ValueError`` — both backends must
    raise on exactly the same ops, so the state stays in lockstep.
    """
    for op, idx, lo, hi, net, commit in ops:
        txn = grid.begin()
        try:
            if op == "occupy_h":
                grid.occupy_h(idx, lo, hi, net)
            elif op == "occupy_v":
                grid.occupy_v(idx, lo, hi, net)
            elif op == "corner":
                grid.occupy_corner(idx, lo, net)
            elif op == "rip":
                grid.rip_net(net)
            elif op == "txn":
                grid.occupy_h(idx, 0, hi, net)
        except ValueError:
            txn.rollback()
            continue
        if op == "txn" and not commit:
            txn.rollback()
        else:
            txn.commit()


class TestInterleavingParity:
    @settings(max_examples=60, deadline=None)
    @given(_ops)
    def test_random_interleaving_keeps_backends_identical(self, ops):
        dense = make_grid("dense", nv=20, nh=20)
        sparse = make_grid("sparse", nv=20, nh=20)
        _apply_ops(dense, ops)
        _apply_ops(sparse, ops)
        assert _snapshot_bytes(dense) == _snapshot_bytes(sparse)
        assert dense.utilization() == sparse.utilization()
        assert dense.backend.owner_ids() == sparse.backend.owner_ids()

    @settings(max_examples=30, deadline=None)
    @given(_ops)
    def test_sparse_never_exceeds_dense_footprint(self, ops):
        sparse = make_grid("sparse", nv=20, nh=20)
        _apply_ops(sparse, ops)
        assert sparse.memory_bytes() <= sparse.dense_equiv_bytes()


# ----------------------------------------------------------------------
# Window snapshots at the grid edges (regression: clamping semantics)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", ["dense", "sparse"])
class TestWindowEdges:
    def test_padded_window_clamps_at_border(self, backend):
        grid = make_grid(backend)
        grid.occupy_h(0, 0, 3, 1)
        # A padded box running past the low edge clamps to the grid.
        snap = grid.window_snapshot(Interval(-4, 5), Interval(-4, 5))
        assert snap.v_lo == 0 and snap.h_lo == 0
        assert snap.num_vtracks == 6 and snap.num_htracks == 6
        assert grid.window_matches(snap)

    def test_padded_window_clamps_at_far_border(self, backend):
        grid = make_grid(backend)
        nv, nh = grid.num_vtracks, grid.num_htracks
        grid.occupy_v(nv - 1, nh - 4, nh - 1, 2)
        snap = grid.window_snapshot(
            Interval(nv - 3, nv + 9), Interval(nh - 3, nh + 9)
        )
        assert snap.num_vtracks == 3 and snap.num_htracks == 3
        assert grid.window_matches(snap)

    def test_degenerate_single_track_window(self, backend):
        grid = make_grid(backend)
        grid.occupy_corner(5, 7, 3)
        snap = grid.window_snapshot(Interval(5, 5), Interval(7, 7))
        assert snap.num_vtracks == 1 and snap.num_htracks == 1
        assert snap.h_owner[0, 0] == 3 and snap.v_owner[0, 0] == 3
        assert grid.window_matches(snap)
        grid.rip_net(3)
        assert not grid.window_matches(snap)

    def test_fully_offgrid_window_raises(self, backend):
        grid = make_grid(backend)
        with pytest.raises(IndexError):
            grid.window_snapshot(Interval(-9, -1), Interval(0, 3))
        with pytest.raises(IndexError):
            grid.window_snapshot(
                Interval(0, 3), Interval(grid.num_htracks, grid.num_htracks + 4)
            )

    def test_foreign_snapshot_never_matches(self, backend):
        big = make_grid(backend, nv=24, nh=20)
        small = make_grid(backend, nv=8, nh=8)
        snap = big.window_snapshot(Interval(10, 20), Interval(4, 12))
        # Window lies outside the small grid entirely: False, not a
        # shape-mismatch crash (the pre-refactor behaviour leaned on
        # numpy's silent slice clamping).
        assert small.window_matches(snap) is False

    def test_match_tracks_mutation_and_ripup(self, backend):
        grid = make_grid(backend)
        snap = grid.window_snapshot(Interval(0, 9), Interval(0, 9))
        assert grid.window_matches(snap)
        grid.occupy_h(4, 2, 6, 9)
        assert not grid.window_matches(snap)
        grid.rip_net(9)
        assert grid.window_matches(snap)


# ----------------------------------------------------------------------
# Whole-stack route-digest parity (acceptance criterion)
# ----------------------------------------------------------------------
class TestSparseRouteParity:
    @pytest.mark.parametrize("suite", sorted(PARITY_DIGESTS))
    def test_sparse_serial_reproduces_seed_digest(self, suite):
        res = overcell_flow(SUITES[suite](), FlowParams(backend="sparse"))
        assert _geometry_digest(res) == PARITY_DIGESTS[suite], (
            f"sparse backend drifted from the dense baseline on {suite}"
        )

    @pytest.mark.parametrize("suite", sorted(PARITY_DIGESTS))
    def test_sparse_parallel_reproduces_seed_digest(self, suite):
        res = overcell_flow(
            SUITES[suite](),
            FlowParams(backend="sparse", parallel=2, parallel_mode="thread"),
        )
        assert _geometry_digest(res) == PARITY_DIGESTS[suite], (
            f"parallel sparse routing drifted from the baseline on {suite}"
        )

    def test_hierarchical_reproduces_seed_digest(self):
        res = overcell_flow(
            SUITES["ami33"](),
            FlowParams(backend="sparse", hierarchical=True),
        )
        assert _geometry_digest(res) == PARITY_DIGESTS["ami33"]
