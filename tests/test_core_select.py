"""Tests for backtracking path selection over the PST candidates."""

from repro.geometry import Point
from repro.grid import RoutingGrid, TrackSet
from repro.core.cost import CornerCostEvaluator, CostWeights
from repro.core.search import CandidatePath, MBFSearch, PSTNode, candidate_paths
from repro.core.select import select_best_path
from repro.core.tig import TrackIntersectionGraph


def make_grid(n=9):
    ts = TrackSet(range(0, n * 10, 10))
    return RoutingGrid(ts, TrackSet(range(0, n * 10, 10)))


def dummy_leaf():
    from repro.geometry import Interval

    return PSTNode("V", 0, 0, Interval(0, 1), None, 0)


def cand(points, corners):
    length = sum(a.manhattan_to(b) for a, b in zip(points, points[1:]))
    return CandidatePath(points=points, corners=corners, length=length,
                         leaf=dummy_leaf())


class TestSelectBestPath:
    def test_empty_returns_none(self):
        ev = CornerCostEvaluator(make_grid(), CostWeights())
        best, cost = select_best_path([], ev)
        assert best is None
        assert cost == float("inf")

    def test_single_candidate(self):
        ev = CornerCostEvaluator(make_grid(), CostWeights())
        c = cand([Point(0, 0), Point(10, 0)], [])
        best, cost = select_best_path([c], ev)
        assert best is c
        assert cost == 10.0

    def test_shorter_wins_on_clean_grid(self):
        ev = CornerCostEvaluator(make_grid(), CostWeights())
        short = cand([Point(0, 0), Point(10, 0)], [])
        long = cand([Point(0, 0), Point(40, 0)], [])
        best, _ = select_best_path([long, short], ev)
        assert best is short

    def test_congestion_flips_choice(self):
        """Equal-length candidates: the one cornering in traffic loses."""
        grid = make_grid()
        grid.occupy_h(2, 0, 5, net_id=9)
        grid.occupy_h(3, 0, 5, net_id=9)
        ev = CornerCostEvaluator(grid, CostWeights())
        crowded = cand(
            [Point(0, 0), Point(20, 0), Point(20, 20), Point(40, 20)],
            [(2, 0), (2, 2)],
        )
        open_path = cand(
            [Point(0, 0), Point(40, 0), Point(40, 20)],
            [(8, 8)],
        )
        # Same length (40+20 = 60 each).
        assert crowded.length == open_path.length == 60
        best, _ = select_best_path([crowded, open_path], ev)
        assert best is open_path

    def test_length_dominates_when_corner_weights_zero(self):
        grid = make_grid()
        grid.occupy_h(2, 0, 8, net_id=9)
        ev = CornerCostEvaluator(grid, CostWeights.length_only())
        near_traffic = cand([Point(0, 0), Point(10, 0), Point(10, 10)], [(1, 0)])
        detour = cand([Point(0, 0), Point(0, 80), Point(10, 80), Point(10, 10)],
                      [(0, 8), (1, 8)])
        best, _ = select_best_path([detour, near_traffic], ev)
        assert best is near_traffic

    def test_deterministic_on_reordered_input(self):
        ev = CornerCostEvaluator(make_grid(), CostWeights())
        a = cand([Point(0, 0), Point(10, 0), Point(10, 10)], [(1, 0)])
        b = cand([Point(0, 0), Point(0, 10), Point(10, 10)], [(0, 1)])
        best1, _ = select_best_path([a, b], ev)
        best2, _ = select_best_path([b, a], ev)
        assert best1.points == best2.points


class TestEndToEndSelection:
    def test_selected_among_search_candidates(self):
        tig = TrackIntersectionGraph(
            TrackSet(range(0, 90, 10)), TrackSet(range(0, 90, 10))
        )
        terms = tig.register_net(1, [Point(0, 0), Point(80, 80)])
        res = MBFSearch(tig.grid, 1, *terms).run()
        cands = candidate_paths(res, tig.grid)
        ev = CornerCostEvaluator(tig.grid, CostWeights())
        best, cost = select_best_path(cands, ev)
        assert best in cands
        assert cost >= best.length  # corner terms are non-negative
