"""Tests for repro.geometry.segment (Segment and Path)."""

import pytest

from repro.geometry import Path, Point, Segment
from repro.geometry.segment import total_wire_length


class TestSegment:
    def test_diagonal_rejected(self):
        with pytest.raises(ValueError):
            Segment(Point(0, 0), Point(3, 4))

    def test_degenerate_allowed(self):
        s = Segment(Point(2, 2), Point(2, 2))
        assert s.is_point
        assert s.length == 0

    def test_constructors(self):
        h = Segment.horizontal(5, 9, 2)
        assert h.a == Point(2, 5) and h.b == Point(9, 5)
        v = Segment.vertical(3, 8, 1)
        assert v.a == Point(3, 1) and v.b == Point(3, 8)

    def test_orientation(self):
        assert Segment.horizontal(0, 0, 5).is_horizontal
        assert Segment.vertical(0, 0, 5).is_vertical

    def test_track_and_span(self):
        h = Segment.horizontal(7, 2, 9)
        assert h.track == 7
        assert (h.span.lo, h.span.hi) == (2, 9)
        v = Segment.vertical(4, 1, 6)
        assert v.track == 4
        assert (v.span.lo, v.span.hi) == (1, 6)

    def test_points_enumeration(self):
        pts = list(Segment(Point(0, 0), Point(3, 0)).points())
        assert pts == [Point(0, 0), Point(1, 0), Point(2, 0), Point(3, 0)]
        rev = list(Segment(Point(3, 0), Point(0, 0)).points())
        assert rev == pts[::-1]

    def test_contains_point(self):
        s = Segment(Point(0, 0), Point(5, 0))
        assert s.contains_point(Point(3, 0))
        assert not s.contains_point(Point(3, 1))


class TestPath:
    def test_discontiguous_rejected(self):
        with pytest.raises(ValueError):
            Path((Segment(Point(0, 0), Point(2, 0)), Segment(Point(3, 0), Point(3, 2))))

    def test_from_points(self):
        p = Path.from_points([Point(0, 0), Point(4, 0), Point(4, 3)])
        assert p.start == Point(0, 0)
        assert p.end == Point(4, 3)
        assert p.length == 7
        assert p.corner_count == 1
        assert p.corners() == [Point(4, 0)]

    def test_straight_path_no_corners(self):
        p = Path.from_points([Point(0, 0), Point(9, 0)])
        assert p.corner_count == 0

    def test_degenerate_segments_do_not_add_corners(self):
        # A zero-length stub between two collinear horizontal pieces.
        p = Path.from_points([Point(0, 0), Point(2, 0), Point(2, 0), Point(5, 0)])
        assert p.corner_count == 0
        assert p.length == 5

    def test_staircase_corner_positions(self):
        p = Path.from_points(
            [Point(0, 0), Point(2, 0), Point(2, 2), Point(4, 2), Point(4, 4)]
        )
        assert p.corners() == [Point(2, 0), Point(2, 2), Point(4, 2)]

    def test_waypoints_roundtrip(self):
        pts = [Point(0, 0), Point(2, 0), Point(2, 5)]
        assert Path.from_points(pts).waypoints() == pts

    def test_points_no_joint_duplicates(self):
        p = Path.from_points([Point(0, 0), Point(2, 0), Point(2, 2)])
        pts = list(p.points())
        assert len(pts) == len(set(pts))
        assert pts[0] == Point(0, 0)
        assert pts[-1] == Point(2, 2)

    def test_connects(self):
        p = Path.from_points([Point(0, 0), Point(2, 0)])
        assert p.connects(Point(0, 0), Point(2, 0))
        assert p.connects(Point(2, 0), Point(0, 0))
        assert not p.connects(Point(0, 0), Point(1, 0))

    def test_bounds(self):
        p = Path.from_points([Point(0, 0), Point(4, 0), Point(4, -3)])
        assert (p.bounds.x1, p.bounds.y1, p.bounds.x2, p.bounds.y2) == (0, -3, 4, 0)

    def test_total_wire_length(self):
        a = Path.from_points([Point(0, 0), Point(3, 0)])
        b = Path.from_points([Point(0, 0), Point(0, 4)])
        assert total_wire_length([a, b]) == 7
