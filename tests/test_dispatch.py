"""Unit tests for the parallel dispatch subsystem (repro.dispatch).

Covers the three tier-1 layers — wave planning, grid-window workers and
the deterministic merger — plus the tier-2 batch job runner and the
``repro dispatch`` CLI.  The end-to-end serial/parallel parity property
lives in test_dispatch_parity.py.
"""

from __future__ import annotations

import json
import time

import pytest

from conftest import make_toy_design
from repro import instrument
from repro.bench_suite import random_design
from repro.core import LevelBConfig
from repro.core.router import LevelBRouter
from repro.core.tig import GridTerminal
from repro.dispatch import (
    DispatchConfig,
    Job,
    JobOutcome,
    JobRunner,
    NetPlan,
    NetTask,
    WaveSpeculator,
    WorkerPool,
    halo_tracks,
    net_window,
    plan_wave,
    plan_waves,
    route_levelb,
    route_net_task,
    speculative_config,
    windows_overlap,
)
from repro.dispatch import jobs as jobs_mod
from repro.flow import FlowParams, overcell_flow
from repro.geometry import Interval, Point, Rect
from repro.grid import RoutingGrid, TrackSet


def make_grid(nv: int = 40, nh: int = 40, pitch: int = 8) -> RoutingGrid:
    return RoutingGrid(
        TrackSet(range(0, nv * pitch, pitch)),
        TrackSet(range(0, nh * pitch, pitch)),
    )


def make_router(seed: int = 7, nets: int = 6) -> LevelBRouter:
    design = make_toy_design(seed=seed, nets=nets)
    return LevelBRouter(Rect(0, 0, 256, 256), list(design.nets.values()))


# ----------------------------------------------------------------------
# Planning
# ----------------------------------------------------------------------
class TestPlanning:
    def test_halo_grows_with_expansions_and_terminals(self):
        cfg = LevelBConfig()
        base = halo_tracks(cfg, 0)
        assert halo_tracks(cfg, 1) > base
        assert halo_tracks(cfg, 0, num_terminals=4) > base
        # Exact shape: margin * growth**k * (terminals-1) + pad.
        pad = max(cfg.weights.radius, cfg.parallel_run_separation, 1)
        assert base == cfg.region_margin_tracks + pad
        assert (
            halo_tracks(cfg, 1, num_terminals=3)
            == cfg.region_margin_tracks * cfg.region_growth * 2 + pad
        )

    def test_net_window_clipped_to_grid(self):
        grid = make_grid()
        terms = [GridTerminal(1, 1), GridTerminal(3, 2)]
        plan = net_window(grid, 5, terms, LevelBConfig(), 0)
        assert plan.net_id == 5
        assert plan.v_iv.lo == 0 and plan.h_iv.lo == 0
        assert plan.v_iv.hi < grid.num_vtracks
        assert plan.cells == plan.v_iv.count * plan.h_iv.count

    def test_windows_overlap_requires_both_axes(self):
        a = NetPlan(1, Interval(0, 5), Interval(0, 5))
        b = NetPlan(2, Interval(6, 9), Interval(0, 5))  # disjoint in v
        c = NetPlan(3, Interval(3, 9), Interval(3, 9))  # overlaps a
        assert not windows_overlap(a, b)
        assert windows_overlap(a, c)

    def test_plan_wave_greedy_head_first(self):
        a = NetPlan(1, Interval(0, 5), Interval(0, 5))
        b = NetPlan(2, Interval(3, 9), Interval(3, 9))  # conflicts with a
        c = NetPlan(3, Interval(20, 25), Interval(0, 5))
        wave = plan_wave([a, b, c])
        assert [p.net_id for p in wave] == [1, 3]
        assert plan_wave([a, b, c], limit=1) == [a]
        # Every wave member pairwise disjoint.
        for i, p in enumerate(wave):
            for q in wave[i + 1 :]:
                assert not windows_overlap(p, q)

    def test_plan_waves_partitions_everything(self):
        plans = [
            NetPlan(i, Interval(4 * (i % 3), 4 * (i % 3) + 5), Interval(0, 5))
            for i in range(6)
        ]
        waves = plan_waves(plans)
        seen = [p.net_id for wave in waves for p in wave]
        assert sorted(seen) == list(range(6))

    def test_config_validation(self):
        with pytest.raises(ValueError):
            DispatchConfig(mode="fiber")
        with pytest.raises(ValueError):
            DispatchConfig(speculate_expansions=-1)


# ----------------------------------------------------------------------
# Window snapshots
# ----------------------------------------------------------------------
class TestWindowSnapshot:
    def test_roundtrip_preserves_coords_and_state(self):
        grid = make_grid()
        grid.reserve_terminal(4, 4, 9)
        grid.reserve_terminal(8, 6, 9)
        grid.commit_path(
            9,
            [
                Point(*grid.coord_of(4, 4)),
                Point(*grid.coord_of(4, 6)),
                Point(*grid.coord_of(8, 6)),
            ],
            [(4, 6)],
        )
        snap = grid.window_snapshot(Interval(2, 12), Interval(2, 12))
        assert snap.global_vtracks == grid.num_vtracks
        assert snap.global_htracks == grid.num_htracks
        sub = snap.to_grid()
        # True coordinates carried verbatim.
        assert sub.coord_of(0, 0) == grid.coord_of(2, 2)
        # Occupancy identical over the window (indices shift by v_lo/h_lo).
        for v in range(2, 10):
            for h in range(2, 10):
                assert sub.v_slot(v - 2, h - 2) == grid.v_slot(v, h)
                assert sub.h_slot(v - 2, h - 2) == grid.h_slot(v, h)

    def test_window_matches_tracks_grid_changes(self):
        grid = make_grid()
        snap = grid.window_snapshot(Interval(0, 10), Interval(0, 10))
        assert grid.window_matches(snap)
        outside = grid.window_snapshot(Interval(0, 10), Interval(0, 10))
        grid.reserve_terminal(20, 20, 3)  # outside the window
        assert grid.window_matches(outside)
        txn = grid.begin()
        grid.reserve_terminal(5, 5, 3)  # inside
        assert not grid.window_matches(snap)
        txn.rollback()
        assert grid.window_matches(snap)


# ----------------------------------------------------------------------
# Workers
# ----------------------------------------------------------------------
class TestWorkers:
    def test_speculative_config_restrictions(self):
        cfg = LevelBConfig()
        spec = speculative_config(cfg, 0)
        assert spec.max_region_expansions == 0
        assert not spec.maze_fallback
        assert spec.max_ripups == 0
        assert spec.refinement_passes == 0
        assert not spec.checked
        assert speculative_config(cfg, 99).max_region_expansions == (
            cfg.max_region_expansions
        )

    def _task_for(self, grid, net_id, terminals, window_v, window_h):
        snap = grid.window_snapshot(window_v, window_h)
        local = tuple(
            GridTerminal(t.v_idx - snap.v_lo, t.h_idx - snap.h_lo)
            for t in terminals
        )
        return NetTask(
            net_id=net_id,
            terminals=local,
            window=snap,
            config=speculative_config(LevelBConfig(), 0),
            sensitive_ids=frozenset(),
        )

    def test_route_net_task_returns_global_geometry(self):
        grid = make_grid()
        terms = (GridTerminal(10, 10), GridTerminal(14, 13))
        for t in terms:
            grid.reserve_terminal(t.v_idx, t.h_idx, 5)
        task = self._task_for(grid, 5, terms, Interval(0, 39), Interval(0, 39))
        result = route_net_task(task)
        assert result.complete and len(result.connections) == 1
        conn = result.connections[0]
        # Geometry and indices are global: endpoints are the terminals.
        assert {conn.source, conn.target} == set(terms)
        positions = {Point(*grid.coord_of(t.v_idx, t.h_idx)) for t in terms}
        assert {conn.points[0], conn.points[-1]} == positions
        for v_idx, h_idx in conn.corners:
            assert 0 <= v_idx < grid.num_vtracks
            assert 0 <= h_idx < grid.num_htracks

    def test_truncated_window_taints_result(self):
        # A mid-grid window so tight the first search region (+ cost
        # pad) would be clipped by the window where the real grid keeps
        # going: the worker must refuse rather than search the smaller
        # rectangle serial routing would not have used.
        grid = make_grid(60, 60)
        terms = (GridTerminal(28, 28), GridTerminal(32, 31))
        for t in terms:
            grid.reserve_terminal(t.v_idx, t.h_idx, 5)
        task = self._task_for(grid, 5, terms, Interval(26, 34), Interval(26, 34))
        result = route_net_task(task)
        assert not result.complete

    def test_window_at_grid_edge_is_not_truncation(self):
        # Same tight window, but flush with the grid: clipping at the
        # window edge IS clipping at the grid edge, so the speculation
        # stands.
        grid = make_grid(12, 12)
        terms = (GridTerminal(4, 4), GridTerminal(8, 7))
        for t in terms:
            grid.reserve_terminal(t.v_idx, t.h_idx, 5)
        task = self._task_for(grid, 5, terms, Interval(0, 11), Interval(0, 11))
        result = route_net_task(task)
        assert result.complete

    def test_worker_pool_modes(self):
        grid = make_grid()
        terms = (GridTerminal(5, 5), GridTerminal(9, 8))
        for t in terms:
            grid.reserve_terminal(t.v_idx, t.h_idx, 2)
        task = self._task_for(grid, 2, terms, Interval(0, 39), Interval(0, 39))
        for mode in ("serial", "thread", "process"):
            pool = WorkerPool(2, mode)
            try:
                fut = pool.submit(task)
                result = fut.result()
                assert result.complete and result.net_id == 2
            finally:
                pool.close()

    def test_dead_pool_reports_failure(self):
        pool = WorkerPool(1, "thread")
        pool.close()
        grid = make_grid()
        terms = (GridTerminal(5, 5), GridTerminal(9, 8))
        task = self._task_for(grid, 2, terms, Interval(0, 39), Interval(0, 39))
        pool._executor = None
        pool.mark_dead()
        assert not pool.alive


# ----------------------------------------------------------------------
# Merger / speculator
# ----------------------------------------------------------------------
class TestWaveSpeculator:
    def test_route_levelb_matches_serial(self):
        serial = make_router().route()
        router = make_router()
        with instrument.collecting() as col:
            result = route_levelb(
                router, DispatchConfig(workers=2, mode="serial")
            )
        assert result.completion_rate == serial.completion_rate
        assert [r.net.name for r in result.routed] == [
            r.net.name for r in serial.routed
        ]
        for a, b in zip(result.routed, serial.routed):
            assert [c.path.waypoints() for c in a.connections] == [
                c.path.waypoints() for c in b.connections
            ]
        counters = col.counters
        assert counters.get("dispatch.nets_speculated", 0) >= 1

    def test_workers_zero_is_plain_route(self):
        router = make_router()
        result = route_levelb(router, DispatchConfig(workers=0))
        assert result.completion_rate == make_router().route().completion_rate

    def test_consumed_net_declines(self):
        router = make_router()
        spec = WaveSpeculator(router, DispatchConfig(workers=1, mode="serial"))
        try:
            ordered = list(router.nets)
            spec.begin(ordered)
            net = ordered[0]
            first = spec.take(net)
            # Requeued (ripped-up) nets must go serial: speculation for
            # an already-consumed net is stale by definition.
            assert spec.take(net) is None
            assert first is None or first.net is net
        finally:
            spec.close()


# ----------------------------------------------------------------------
# Batch jobs (tier 2)
# ----------------------------------------------------------------------
class TestJobRunner:
    def test_serial_batch_runs_flow(self):
        runner = JobRunner(1, mode="serial")
        report = runner.run([Job(design="__missing__", flow="overcell")])
        assert not report.ok  # unknown design fails, is reported
        assert report.outcomes[0].error

    def test_retry_then_success(self, monkeypatch):
        calls = {"n": 0}

        def flaky(job):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("boom")
            return {"completion": 1.0}

        monkeypatch.setattr(jobs_mod, "_execute_job", flaky)
        report = JobRunner(2, mode="thread", retries=1).run([Job(design="x")])
        assert report.ok
        assert report.outcomes[0].attempts == 2

    def test_retries_exhausted(self, monkeypatch):
        def always_fails(job):
            raise RuntimeError("boom")

        monkeypatch.setattr(jobs_mod, "_execute_job", always_fails)
        report = JobRunner(2, mode="thread", retries=1).run([Job(design="x")])
        assert not report.ok
        assert report.outcomes[0].attempts == 2
        assert "boom" in report.outcomes[0].error

    def test_timeout_records_without_retry(self, monkeypatch):
        def slow(job):
            time.sleep(5)
            return {"completion": 1.0}

        monkeypatch.setattr(jobs_mod, "_execute_job", slow)
        report = JobRunner(2, mode="thread", timeout_s=0.05, retries=3).run(
            [Job(design="x")]
        )
        assert not report.ok
        assert report.outcomes[0].timed_out
        assert report.outcomes[0].attempts == 1

    def test_report_shapes(self, monkeypatch):
        monkeypatch.setattr(
            jobs_mod, "_execute_job", lambda job: {"completion": 1.0}
        )
        report = JobRunner(1, mode="serial").run(
            [Job(design="a"), Job(design="b", flow="two-layer")]
        )
        doc = report.to_dict()
        assert doc["format"] == "repro-dispatch-batch"
        assert doc["ok"] and len(doc["jobs"]) == 2
        text = report.render()
        assert "a/overcell" in text and "b/two-layer" in text

    def test_empty_job_list(self):
        # The serve queue can drain to empty between submissions; an
        # empty batch must be a clean no-op in every mode.
        for mode in ("serial", "thread", "process"):
            report = JobRunner(2, mode=mode).run([])
            assert report.ok
            assert report.completed == 0 and report.failed == 0
            assert report.outcomes == []
            doc = report.to_dict()
            assert doc["jobs"] == []
            assert jobs_mod.BatchReport.from_dict(doc).to_dict() == doc

    def test_timeout_then_retry_then_success(self):
        calls = {"n": 0}

        def slow_once(job):
            calls["n"] += 1
            if calls["n"] == 1:
                time.sleep(1.0)
            return {"completion": 1.0}

        runner = JobRunner(
            2,
            mode="thread",
            timeout_s=0.1,
            retries=2,
            retry_timeouts=True,
            job_body=slow_once,
        )
        report = runner.run([Job(design="x")])
        assert report.ok
        assert report.outcomes[0].attempts >= 2
        assert not report.outcomes[0].timed_out

    def test_timeout_retries_exhausted(self):
        def always_slow(job):
            time.sleep(1.0)
            return {"completion": 1.0}

        runner = JobRunner(
            2,
            mode="thread",
            timeout_s=0.05,
            retries=1,
            retry_timeouts=True,
            job_body=always_slow,
        )
        report = runner.run([Job(design="x")])
        assert not report.ok
        assert report.outcomes[0].timed_out
        assert report.outcomes[0].attempts == 2

    def test_worker_crash_recovers_on_fresh_executor(self, tmp_path):
        import os

        flag = tmp_path / "crashed-once"
        job = Job(design=f"{flag}:{os.getpid()}")
        runner = JobRunner(
            2, mode="process", retries=1, job_body=_crash_once_body
        )
        report = runner.run([job])
        if report.mode != "process":  # pragma: no cover - thread fallback
            pytest.skip("no process pool available on this platform")
        assert report.ok
        assert report.outcomes[0].attempts == 2

    def test_job_body_hook_in_serial_mode(self):
        seen = []

        def body(job):
            seen.append(job.name)
            return {"completion": 1.0, "extra": "payload"}

        report = JobRunner(1, mode="serial", job_body=body).run(
            [Job(design="d1"), Job(design="d2")]
        )
        assert report.ok and seen == ["d1/overcell", "d2/overcell"]
        assert report.outcomes[1].summary["extra"] == "payload"


class TestReportRoundTrip:
    """to_dict output survives sorted-key JSON and from_dict losslessly."""

    def _sample_report(self):
        ok = JobOutcome(
            job=Job(design="a", flow="overcell", check=True, parallel=2),
            ok=True,
            attempts=1,
            elapsed_s=0.1234567,
            summary={"completion": 1.0, "wire_length": 42, "check_clean": True},
        )
        failed = JobOutcome(
            job=Job(design="b", flow="two-layer"),
            ok=False,
            attempts=3,
            elapsed_s=2.5,
            error="RuntimeError: boom",
        )
        timed_out = JobOutcome(
            job=Job(design="c"),
            ok=False,
            attempts=1,
            elapsed_s=5.0,
            timed_out=True,
            error="timed out after 5.0s",
        )
        return jobs_mod.BatchReport(
            outcomes=[ok, failed, timed_out],
            wall_s=7.654321987,
            workers=2,
            mode="thread",
        )

    def test_outcome_json_round_trip(self):
        for outcome in self._sample_report().outcomes:
            doc = outcome.to_dict()
            assert json.loads(json.dumps(doc, sort_keys=True)) == doc
            rebuilt = JobOutcome.from_dict(doc)
            assert rebuilt.to_dict() == doc
            assert rebuilt.job == outcome.job

    def test_batch_json_round_trip(self):
        report = self._sample_report()
        doc = report.to_dict()
        assert json.loads(json.dumps(doc, sort_keys=True)) == doc
        rebuilt = jobs_mod.BatchReport.from_dict(doc)
        assert rebuilt.to_dict() == doc
        assert rebuilt.completed == report.completed
        assert rebuilt.failed == report.failed

    def test_dict_ordering_does_not_change_payload(self):
        from repro.io import canonical_digest

        doc = self._sample_report().to_dict()
        reordered = {k: doc[k] for k in reversed(list(doc))}
        assert canonical_digest(doc) == canonical_digest(reordered)

    def test_from_dict_rejects_foreign_document(self):
        with pytest.raises(ValueError):
            jobs_mod.BatchReport.from_dict({"format": "nope", "jobs": []})


def _crash_once_body(job):
    """Process-pool body that hard-kills its worker exactly once.

    The flag file and submitter pid are smuggled through ``job.design``
    (``<path>:<pid>``); the flag survives the dead process, so the
    retry on the rebuilt executor succeeds.  If the runner fell back
    to threads we would be running *inside* the submitter — raise
    instead of taking the whole test process down.
    """
    import os
    from pathlib import Path

    path, _, parent_pid = job.design.rpartition(":")
    flag = Path(path)
    if not flag.exists():
        flag.write_text("x")
        if os.getpid() == int(parent_pid):  # pragma: no cover - fallback
            raise RuntimeError("thread fallback: cannot simulate crash")
        os._exit(13)
    return {"completion": 1.0}


# ----------------------------------------------------------------------
# Flow wiring and CLI
# ----------------------------------------------------------------------
class TestIntegration:
    def test_flow_params_parallel(self):
        design = random_design("par", seed=11, num_cells=6, num_nets=14)
        serial = overcell_flow(
            random_design("par", seed=11, num_cells=6, num_nets=14),
            FlowParams(),
        )
        par = overcell_flow(
            design, FlowParams(parallel=2, parallel_mode="serial")
        )
        assert par.wire_length == serial.wire_length
        assert par.completion == serial.completion

    def test_cli_dispatch(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "batch.json"
        code = main(
            [
                "dispatch",
                "--suites",
                "ami33",
                "--flows",
                "two-layer",
                "--serial",
                "--json",
                str(out),
            ]
        )
        assert code == 0
        doc = json.loads(out.read_text())
        assert doc["format"] == "repro-dispatch-batch"
        assert doc["jobs"][0]["design"] == "ami33"
        captured = capsys.readouterr().out
        assert "dispatch batch" in captured
