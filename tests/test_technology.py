"""Tests for repro.technology."""

import pytest

from repro.technology import Layer, RoutingDirection, Technology, ViaRule


class TestLayer:
    def test_validation(self):
        with pytest.raises(ValueError):
            Layer(0, "m0", RoutingDirection.VERTICAL, pitch=8, width=4)
        with pytest.raises(ValueError):
            Layer(1, "m1", RoutingDirection.VERTICAL, pitch=0, width=4)
        with pytest.raises(ValueError):
            Layer(1, "m1", RoutingDirection.VERTICAL, pitch=4, width=4)

    def test_direction_helpers(self):
        layer = Layer(1, "m1", RoutingDirection.VERTICAL, pitch=8, width=4)
        assert layer.is_vertical and not layer.is_horizontal
        assert RoutingDirection.VERTICAL.orthogonal is RoutingDirection.HORIZONTAL


class TestViaRule:
    def test_adjacent_only(self):
        with pytest.raises(ValueError):
            ViaRule(1, 3, size=4)

    def test_positive_size(self):
        with pytest.raises(ValueError):
            ViaRule(1, 2, size=0)


class TestTechnology:
    def test_two_layer_preset(self):
        tech = Technology.two_layer()
        assert tech.num_layers == 2
        assert tech.layer(1).is_vertical
        assert tech.layer(2).is_horizontal

    def test_four_layer_preset_pitches_grow(self):
        tech = Technology.four_layer()
        assert tech.num_layers == 4
        # The paper's design-rule argument: upper layers are coarser.
        assert tech.layer(3).pitch > tech.layer(1).pitch
        assert tech.layer(4).pitch > tech.layer(2).pitch
        assert tech.via(3).size > tech.via(1).size

    def test_layer_lookup(self):
        tech = Technology.four_layer()
        assert tech.layer_by_name("metal3").index == 3
        with pytest.raises(KeyError):
            tech.layer_by_name("poly")
        with pytest.raises(KeyError):
            tech.layer(5)

    def test_via_lookup(self):
        tech = Technology.four_layer()
        assert tech.via(2).upper == 3
        with pytest.raises(KeyError):
            tech.via(4)

    def test_via_stack_size(self):
        tech = Technology.four_layer()
        assert tech.via_stack_size(1, 4) == max(v.size for v in tech.vias)
        with pytest.raises(ValueError):
            tech.via_stack_size(3, 3)

    def test_channel_track_pitch(self):
        tech = Technology.four_layer()
        assert tech.channel_track_pitch([1, 2]) == 8
        assert tech.channel_track_pitch([1, 2, 3, 4]) == 12
        with pytest.raises(ValueError):
            tech.channel_track_pitch([1, 3])  # no horizontal layer

    def test_direction_partitions(self):
        tech = Technology.four_layer()
        assert [l.index for l in tech.horizontal_layers()] == [2, 4]
        assert [l.index for l in tech.vertical_layers()] == [1, 3]

    def test_stack_validation(self):
        with pytest.raises(ValueError):
            Technology(
                name="bad",
                layers=(
                    Layer(1, "m1", RoutingDirection.VERTICAL, 8, 4),
                    Layer(3, "m3", RoutingDirection.HORIZONTAL, 8, 4),
                ),
                vias=(ViaRule(1, 2, 4),),
            )
        with pytest.raises(ValueError):
            Technology(
                name="bad-vias",
                layers=(
                    Layer(1, "m1", RoutingDirection.VERTICAL, 8, 4),
                    Layer(2, "m2", RoutingDirection.HORIZONTAL, 8, 4),
                ),
                vias=(),
            )
