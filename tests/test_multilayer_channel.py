"""Tests for the HVH three-layer channel router."""

import pytest

from repro.channels import ChannelProblem, HVHChannelRouter, HorizontalSpan

from conftest import make_random_channel_problem


class TestPairing:
    def test_disjoint_nets_share_physical_row(self):
        # Two overlapping-span nets need 2 logical tracks but have jog
        # columns apart, so HVH pairs them onto one physical row.
        p = ChannelProblem(
            top=[1, 2, 0, 0],
            bottom=[0, 0, 1, 2],
        )
        result = HVHChannelRouter().route(p)
        assert result.paired
        assert result.base_tracks == 2
        assert result.tracks == 1
        layers = {s.layer for s in result.route.spans}
        assert layers == {0, 1}

    def test_conflicting_jogs_not_paired(self):
        # Nets with a shared pin column (VCG edge) cannot pair.
        p = ChannelProblem(
            top=[1, 1, 0],
            bottom=[0, 2, 2],
        )
        result = HVHChannelRouter().route(p)
        assert result.tracks == result.base_tracks == 2

    def test_cyclic_channel_falls_back(self):
        p = ChannelProblem(top=[1, 2], bottom=[2, 1])
        result = HVHChannelRouter().route(p)
        assert not result.paired
        assert result.tracks == result.base_tracks
        result.route.check(p)

    def test_track_saving_nonnegative(self):
        p = make_random_channel_problem(30, 8, seed=4)
        result = HVHChannelRouter().route(p)
        assert 0 <= result.track_saving <= result.base_tracks


class TestValidity:
    @pytest.mark.parametrize("seed", range(30))
    def test_random_channels_stay_legal(self, seed):
        p = make_random_channel_problem(30, 8, seed=seed)
        result = HVHChannelRouter().route(p)
        result.route.check(p)

    @pytest.mark.parametrize("seed", range(10))
    def test_paired_layers_disjoint_per_row(self, seed):
        """On one physical row and one layer, spans never overlap."""
        p = make_random_channel_problem(40, 12, seed=seed)
        result = HVHChannelRouter().route(p)
        by_slot = {}
        for span in result.route.spans:
            by_slot.setdefault((span.track, span.layer), []).append(span)
        for spans in by_slot.values():
            spans.sort(key=lambda s: s.c1)
            for a, b in zip(spans, spans[1:]):
                assert b.c1 > a.c2 or a.net == b.net

    def test_meaningful_savings_on_batch(self):
        """Across a batch, pairing should cut a significant share of
        tracks (the multi-layer literature claims up to 50%)."""
        base = hvh = 0
        for seed in range(30):
            p = make_random_channel_problem(30, 8, seed=seed)
            result = HVHChannelRouter().route(p)
            base += result.base_tracks
            hvh += result.tracks
        saving = (base - hvh) / base
        assert 0.15 <= saving <= 0.5


class TestLayeredSpanModel:
    def test_same_track_different_layers_allowed(self):
        route_spans = [
            HorizontalSpan(net=1, track=0, c1=0, c2=5, layer=0),
            HorizontalSpan(net=2, track=0, c1=0, c2=5, layer=1),
        ]
        from repro.channels import ChannelRoute, VerticalJog

        route = ChannelRoute(
            tracks=1,
            length=6,
            spans=route_spans,
            jogs=[
                VerticalJog(net=1, column=0, r1=-1, r2=0),
                VerticalJog(net=1, column=5, r1=-1, r2=0),
                VerticalJog(net=2, column=1, r1=0, r2=1),
                VerticalJog(net=2, column=4, r1=0, r2=1),
            ],
        )
        p = ChannelProblem(
            top=[1, 0, 0, 0, 0, 1],
            bottom=[0, 2, 0, 0, 2, 0],
        )
        route.check(p)  # must not flag the stacked trunks

    def test_negative_layer_rejected(self):
        with pytest.raises(ValueError):
            HorizontalSpan(net=1, track=0, c1=0, c2=1, layer=-1)
