"""Edge-case tests for MBFS internals and router fallbacks."""


from repro.geometry import Interval, Point, Rect
from repro.grid import RoutingGrid, TrackSet
from repro.core import LevelBConfig, LevelBRouter
from repro.core.search import MBFSearch
from repro.core.tig import TrackIntersectionGraph
from repro.netlist import Design, Edge


def fresh_tig(nv=8, nh=8):
    return TrackIntersectionGraph(
        TrackSet(range(0, nv * 10, 10)), TrackSet(range(0, nh * 10, 10))
    )


class TestCornerCandidates:
    def test_empty_grid_all_candidates(self):
        grid = RoutingGrid(TrackSet(range(0, 50, 10)), TrackSet(range(0, 50, 10)))
        assert grid.corner_candidates_on_v(2, 0, 4, net_id=1) == [0, 1, 2, 3, 4]
        assert grid.corner_candidates_on_h(2, 1, 3, net_id=1) == [1, 2, 3]

    def test_foreign_wire_excluded(self):
        grid = RoutingGrid(TrackSet(range(0, 50, 10)), TrackSet(range(0, 50, 10)))
        grid.occupy_h(2, 0, 4, net_id=9)  # h-track 2 fully foreign
        # Cornering on v-track 1 at h=2 needs both slots.
        assert 2 not in grid.corner_candidates_on_v(1, 0, 4, net_id=1)
        assert 2 in grid.corner_candidates_on_v(1, 0, 4, net_id=9)

    def test_matches_scalar_corner_free(self):
        grid = RoutingGrid(TrackSet(range(0, 80, 10)), TrackSet(range(0, 80, 10)))
        grid.occupy_h(3, 1, 5, net_id=2)
        grid.occupy_v(4, 2, 6, net_id=3)
        for v in range(8):
            batched = set(grid.corner_candidates_on_v(v, 0, 7, net_id=1))
            scalar = {h for h in range(8) if grid.corner_free(v, h, 1)}
            assert batched == scalar


class TestSearchLimits:
    def test_node_budget_abort(self):
        tig = fresh_tig(8, 8)
        tig.register_net(1, [Point(0, 0), Point(70, 70)])
        a, b = tig.terminals_of(1)
        res = MBFSearch(tig.grid, 1, a, b, max_nodes=2).run()
        assert res.aborted
        assert not res.found

    def test_entries_cap_one_still_finds_path(self):
        tig = fresh_tig(8, 8)
        tig.register_net(1, [Point(0, 0), Point(70, 70)])
        a, b = tig.terminals_of(1)
        res = MBFSearch(tig.grid, 1, a, b, max_entries_per_track=1).run()
        assert res.found
        assert res.min_corners == 1

    def test_degenerate_region_single_track(self):
        tig = fresh_tig(8, 8)
        tig.register_net(1, [Point(0, 30), Point(70, 30)])
        a, b = tig.terminals_of(1)
        region = (Interval(0, 7), Interval(3, 3))
        res = MBFSearch(tig.grid, 1, a, b, region=region).run()
        assert res.found
        assert res.min_corners == 0

    def test_blocked_root_spans(self):
        """Both root tracks blocked at the source: search fails fast."""
        tig = fresh_tig(8, 8)
        tig.register_net(1, [Point(30, 30), Point(70, 70)])
        # Surround the source so neither root can slide anywhere and
        # no corner is reachable.
        tig.add_obstacle(Rect(20, 30, 20, 30))
        tig.add_obstacle(Rect(40, 30, 40, 30))
        tig.add_obstacle(Rect(30, 20, 30, 20))
        tig.add_obstacle(Rect(30, 40, 30, 40))
        a, b = tig.terminals_of(1)
        res = MBFSearch(tig.grid, 1, a, b).run()
        # Roots exist (the terminal cell itself is usable) but nothing
        # is reachable beyond the walls.
        assert not res.found


class TestMazeRescue:
    def make_design(self):
        d = Design("rescue")
        for name, x, y in (("c1", 0, 0), ("c2", 200, 120)):
            cell = d.add_cell(name, 16, 16)
            cell.place(x, y)
        net = d.add_net("n")
        net.add_pin(d.add_pin("c1", "p", Edge.TOP, 8))
        net.add_pin(d.add_pin("c2", "p", Edge.TOP, 8))
        return d

    def test_rescue_triggers_when_mbfs_capped(self):
        """With max_depth=0 the MBFS can never turn; the maze rescues."""
        d = self.make_design()
        config = LevelBConfig(max_depth=0, maze_fallback=True, max_ripups=0)
        router = LevelBRouter(
            Rect(-16, -16, 260, 200), list(d.nets.values()), config=config
        )
        result = router.route()
        conn = result.routed[0].connections[0]
        assert result.completion_rate == 1.0
        assert conn.expansions_used == -1  # marks the maze rescue

    def test_no_rescue_when_disabled(self):
        d = self.make_design()
        config = LevelBConfig(max_depth=0, maze_fallback=False, max_ripups=0)
        router = LevelBRouter(
            Rect(-16, -16, 260, 200), list(d.nets.values()), config=config
        )
        result = router.route()
        assert result.completion_rate == 0.0
