"""Tests that the synthetic suites match the paper's published statistics."""

import pytest

from repro.bench_suite import (
    SUITES,
    ami33_like,
    ex3_like,
    make_design,
    random_design,
    xerox_like,
)
from repro.bench_suite.generator import PITCH, SuiteProfile


class TestPaperStatistics:
    """Table 1 of the paper: the level A partitions it reports."""

    def test_ami33_shape(self):
        d = ami33_like()
        assert len(d.cells) == 33
        assert len(d.nets) == 123

    def test_ami33_critical_partition(self):
        d = ami33_like()
        crit = [n for n in d.nets.values() if n.is_critical]
        assert len(crit) == 4
        assert sum(n.degree for n in crit) / len(crit) == pytest.approx(44.25)

    def test_xerox_shape(self):
        d = xerox_like()
        assert len(d.cells) == 10
        assert len(d.nets) == 203

    def test_xerox_critical_partition(self):
        d = xerox_like()
        crit = [n for n in d.nets.values() if n.is_critical]
        assert len(crit) == 21
        assert sum(n.degree for n in crit) / len(crit) == pytest.approx(9.19, abs=0.01)

    def test_ex3_critical_partition(self):
        d = ex3_like()
        crit = [n for n in d.nets.values() if n.is_critical]
        assert len(crit) == 56
        assert sum(n.degree for n in crit) / len(crit) == pytest.approx(3.23, abs=0.01)

    def test_suites_registry(self):
        assert set(SUITES) == {"ami33", "xerox", "ex3"}


class TestGeneratorInvariants:
    @pytest.mark.parametrize("factory", [ami33_like, xerox_like, ex3_like])
    def test_designs_validate(self, factory):
        factory().check()

    @pytest.mark.parametrize("factory", [ami33_like, xerox_like, ex3_like])
    def test_pins_on_pitch(self, factory):
        d = factory()
        for cell in d.cells.values():
            for pin in cell.pins:
                assert pin.offset % PITCH == 0
                assert 0 < pin.offset < cell.width

    @pytest.mark.parametrize("factory", [ami33_like, xerox_like, ex3_like])
    def test_deterministic(self, factory):
        a, b = factory(), factory()
        assert a.stats() == b.stats()
        for name in a.nets:
            assert a.nets[name].degree == b.nets[name].degree

    def test_every_net_at_least_two_pins(self):
        d = ami33_like()
        assert all(n.degree >= 2 for n in d.nets.values())

    def test_no_pin_slot_reuse(self):
        d = ami33_like()
        seen = set()
        for cell in d.cells.values():
            for pin in cell.pins:
                key = (cell.name, pin.edge, pin.offset)
                assert key not in seen
                seen.add(key)

    def test_random_design(self):
        d = random_design("r", seed=5, num_cells=6, num_nets=15, num_critical=2)
        assert len(d.cells) == 6
        assert len(d.nets) == 15
        assert sum(1 for n in d.nets.values() if n.is_critical) == 2
        d.check()

    def test_capacity_exhaustion_raises(self):
        profile = SuiteProfile(
            name="toolarge",
            seed=1,
            num_cells=1,
            cell_width_range=(32, 32),
            cell_height_range=(32, 32),
            num_regular_nets=50,  # far beyond one tiny cell's slots
        )
        with pytest.raises(RuntimeError):
            make_design(profile)
