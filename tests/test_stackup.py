"""Data-driven technology rules: ingestion, width classes, objectives.

Covers the stackup ingestion path (``repro.technology.ingest``), the
width-class footprint model on the occupancy grid, the width-dependent
DRC rules, the via-minimization objective, and the serve protocol's
technology canonicalization — see docs/TECHNOLOGY.md.
"""

import json
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import LevelBConfig, LevelBRouter
from repro.geometry import Rect
from repro.grid import FREE, RoutingGrid, TrackSet
from repro.io import technology_from_dict, technology_to_dict
from repro.technology import (
    Layer,
    LayerStack,
    NetClass,
    RoutingDirection,
    Technology,
    WidthSpacingTuple,
    preset_stackup,
    technology_from_any,
    technology_from_stackup,
)

GOLDEN = Path(__file__).parent / "golden" / "stackup_wide.json"


def golden_stackup() -> dict:
    return json.loads(GOLDEN.read_text())


def golden_technology() -> Technology:
    return technology_from_any(golden_stackup())


# ----------------------------------------------------------------------
# LayerStack validation (regression: invalid stacks used to pass)
# ----------------------------------------------------------------------
def _raw_layer(index, name, direction, pitch, width):
    """A Layer bypassing its own validation, to probe LayerStack's."""
    layer = Layer.__new__(Layer)
    object.__setattr__(layer, "index", index)
    object.__setattr__(layer, "name", name)
    object.__setattr__(layer, "direction", direction)
    object.__setattr__(layer, "pitch", pitch)
    object.__setattr__(layer, "width", width)
    object.__setattr__(layer, "sheet_resistance", 0.07)
    object.__setattr__(layer, "cap_per_lambda", 0.20)
    object.__setattr__(layer, "min_width", None)
    object.__setattr__(layer, "spacing_table", ())
    return layer


class TestLayerStackValidation:
    def test_zero_pitch_rejected(self):
        bad = _raw_layer(1, "m1", RoutingDirection.VERTICAL, 0, 4)
        good = _raw_layer(2, "m2", RoutingDirection.HORIZONTAL, 8, 4)
        with pytest.raises(ValueError, match="pitch must be positive"):
            LayerStack(channel=(bad, good), planes=())

    def test_negative_pitch_rejected(self):
        good = _raw_layer(1, "m1", RoutingDirection.VERTICAL, 8, 4)
        bad = _raw_layer(2, "m2", RoutingDirection.HORIZONTAL, -8, 4)
        with pytest.raises(ValueError, match="pitch must be positive"):
            LayerStack(channel=(good, bad), planes=())

    def test_duplicate_layer_names_rejected(self):
        a = _raw_layer(1, "metal1", RoutingDirection.VERTICAL, 8, 4)
        b = _raw_layer(2, "metal1", RoutingDirection.HORIZONTAL, 8, 4)
        with pytest.raises(ValueError, match="duplicate layer name"):
            LayerStack(channel=(a, b), planes=())

    def test_valid_stack_from_technology(self):
        stack = LayerStack.from_technology(golden_technology())
        assert stack.num_planes == 2
        assert [l.name for l in stack.all_layers()] == [
            f"metal{i}" for i in range(1, 7)
        ]


# ----------------------------------------------------------------------
# Stackup ingestion (golden fixture + errors)
# ----------------------------------------------------------------------
class TestIngest:
    def test_golden_fixture_quantizes_to_lambda(self):
        tech = golden_technology()
        assert tech.name == "golden-6L"
        assert tech.num_layers == 6
        m3 = tech.layer(3)
        assert (m3.pitch, m3.width, m3.min_width) == (12, 6, 6)
        assert m3.spacing_table == (
            WidthSpacingTuple(0, 6),
            WidthSpacingTuple(18, 12),
            WidthSpacingTuple(30, 24),
        )
        assert [v.cost for v in tech.vias] == [1.0, 1.0, 2.0, 3.0, 4.0]

    def test_golden_fixture_guard_tracks(self):
        m3 = golden_technology().layer(3)
        assert [m3.guard_tracks(s) for s in (1, 2, 3)] == [0, 1, 2]

    def test_missing_width_defaults_to_half_pitch(self):
        tech = technology_from_stackup(
            {
                "metals": [
                    {"name": "m1", "index": 1, "direction": "vertical",
                     "pitch": 8},
                    {"name": "m2", "index": 2, "direction": "horizontal",
                     "pitch": 8},
                ]
            }
        )
        assert tech.layer(1).width == 4
        # Synthesized via: size follows the wider of the joined layers.
        assert tech.via(1).size == 4 and tech.via(1).cost == 1.0

    def test_off_grid_value_rejected(self):
        doc = golden_stackup()
        doc["metals"][0]["pitch"] = 0.41  # not a multiple of 0.05
        with pytest.raises(ValueError, match="not a multiple of grid_unit"):
            technology_from_stackup(doc)

    def test_bad_direction_rejected(self):
        doc = golden_stackup()
        doc["metals"][0]["direction"] = "diagonal"
        with pytest.raises(ValueError, match="direction"):
            technology_from_stackup(doc)

    def test_missing_metals_rejected(self):
        with pytest.raises(ValueError, match="metals"):
            technology_from_stackup({"name": "empty"})

    def test_from_any_rejects_unknown_shapes(self):
        with pytest.raises(ValueError, match="unrecognized"):
            technology_from_any({"format": "whatever"})

    def test_from_any_accepts_repro_technology(self):
        doc = technology_to_dict(Technology.four_layer())
        assert technology_from_any(doc) == Technology.four_layer()

    def test_presets_are_stackup_instances(self):
        assert technology_from_stackup(preset_stackup(1)) == Technology.four_layer()
        assert (
            technology_from_stackup(preset_stackup(2))
            == Technology.with_overcell_planes(2)
        )


# ----------------------------------------------------------------------
# Property tests (hypothesis)
# ----------------------------------------------------------------------
@st.composite
def spacing_tables(draw):
    """Valid spacing tables: start at width 0, strictly increasing."""
    n = draw(st.integers(0, 4))
    if n == 0:
        return ()
    widths = [0] + sorted(
        draw(
            st.lists(
                st.integers(1, 64), min_size=n - 1, max_size=n - 1, unique=True
            )
        )
    )
    spacings = draw(st.lists(st.integers(1, 48), min_size=n, max_size=n))
    return tuple(zip(widths, spacings))


class TestProperties:
    @given(
        pitch=st.integers(2, 32),
        rows=spacing_tables(),
        w1=st.integers(1, 96),
        w2=st.integers(1, 96),
    )
    @settings(max_examples=200, deadline=None)
    def test_spacing_lookup_monotonic_in_width(self, pitch, rows, w1, w2):
        layer = Layer(
            3, "m3", RoutingDirection.VERTICAL, pitch=pitch,
            width=max(1, pitch // 2),
            spacing_table=tuple(WidthSpacingTuple(*r) for r in rows),
        )
        lo, hi = sorted((w1, w2))
        assert layer.min_spacing_for(lo) <= layer.min_spacing_for(hi)

    @given(
        planes=st.integers(1, 3),
        min_widths=st.lists(st.integers(1, 6), min_size=0, max_size=4),
        rows=spacing_tables(),
        costs=st.lists(
            st.floats(0.25, 8.0, allow_nan=False), min_size=0, max_size=5
        ),
    )
    @settings(max_examples=100, deadline=None)
    def test_ingest_serialize_ingest_roundtrips(
        self, planes, min_widths, rows, costs
    ):
        doc = preset_stackup(planes)
        for i, mw in enumerate(min_widths[: len(doc["metals"])]):
            doc["metals"][i]["min_width"] = mw
            doc["metals"][i]["power_strap_widths_and_spacings"] = [
                {"width_at_least": w, "min_spacing": s} for w, s in rows
            ]
        for i, cost in enumerate(costs[: len(doc["vias"])]):
            doc["vias"][i]["cost"] = cost
        tech = technology_from_stackup(doc)
        canonical = technology_to_dict(tech)
        again = technology_from_dict(canonical)
        assert again == tech
        assert technology_to_dict(again) == canonical
        # And through the sniffing entry point too.
        assert technology_from_any(canonical) == tech


# ----------------------------------------------------------------------
# Width classes on the occupancy grid
# ----------------------------------------------------------------------
def _grid(n=24):
    tracks = TrackSet.uniform(0, 8 * (n + 1), 8)
    return RoutingGrid(tracks, tracks)


class TestFootprints:
    def test_footprint_validation(self):
        grid = _grid()
        with pytest.raises(ValueError):
            grid.set_net_footprint(1, 0)
        with pytest.raises(ValueError):
            grid.set_net_footprint(1, 2, guard=-1)
        with pytest.raises(ValueError):
            grid.set_net_footprint(0, 2)

    def test_default_footprint_is_single_track(self):
        grid = _grid()
        grid.set_net_footprint(7, 1, guard=0)  # (1, 0) is not stored
        assert grid.footprint_of(7) == (1, 0)
        assert grid.max_footprint_reach() == 0

    def test_wide_claim_covers_span_and_guard(self):
        grid = _grid()
        grid.set_net_footprint(5, 2, guard=1)
        grid.occupy_h(10, 3, 8, 5)
        # Metal on rows 10-11, guards hold rows 9 and 12.
        for row in (9, 10, 11, 12):
            assert grid.h_slot(5, row) == 5
        assert grid.h_slot(5, 8) == FREE and grid.h_slot(5, 13) == FREE

    def test_foreign_net_blocked_by_guard(self):
        grid = _grid()
        grid.set_net_footprint(5, 2, guard=1)
        grid.occupy_h(10, 3, 8, 5)
        assert grid.free_span_h(9, 5, 6) is None
        with pytest.raises(ValueError, match="not free"):
            grid.occupy_h(12, 3, 8, 6)

    def test_rip_net_frees_whole_footprint(self):
        grid = _grid()
        grid.set_net_footprint(5, 2, guard=1)
        grid.occupy_h(10, 3, 8, 5)
        grid.rip_net(5)
        for row in (9, 10, 11, 12):
            assert grid.h_slot(5, row) == FREE

    def test_transaction_rollback_restores_footprint_cells(self):
        grid = _grid()
        grid.set_net_footprint(5, 3, guard=0)
        try:
            with grid.transaction():
                grid.occupy_v(4, 2, 9, 5)
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        for col in (4, 5, 6):
            for h in (2, 9):
                assert grid.v_slot(col, h) == FREE

    def test_net_class_track_spans(self):
        assert NetClass.SIGNAL.track_span == 1
        assert NetClass.CLOCK.track_span == 2
        assert NetClass.POWER.track_span == 3

    def test_net_footprint_from_golden_tables(self):
        tech = golden_technology()
        assert tech.net_footprint(NetClass.SIGNAL, 0) == (1, 0)
        assert tech.net_footprint(NetClass.CLOCK, 0) == (2, 1)
        assert tech.net_footprint(NetClass.POWER, 0) == (3, 2)
        # Plane 1 (metal5/metal6) is table-free: no guards.
        assert tech.net_footprint(NetClass.POWER, 1) == (3, 0)

# ----------------------------------------------------------------------
# Via-minimization objective on the router
# ----------------------------------------------------------------------
def _wide_toy():
    """Two facing cells, one signal/clock/power net each, pins spaced
    far enough apart that POWER footprints never overlap a neighbour."""
    from repro.netlist import Design, Edge

    d = Design("widetoy")
    c0 = d.add_cell("c0", 240, 64)
    c0.place(16, 16)
    c1 = d.add_cell("c1", 240, 64)
    c1.place(16, 432)
    classes = [
        ("sig", NetClass.SIGNAL),
        ("clk", NetClass.CLOCK),
        ("pwr", NetClass.POWER),
    ]
    for j, (name, net_class) in enumerate(classes):
        net = d.add_net(name, net_class=net_class)
        net.add_pin(d.add_pin("c0", f"p{j}", Edge.TOP, 8 + j * 96))
        net.add_pin(d.add_pin("c1", f"p{j}", Edge.BOTTOM, 8 + j * 96))
    return d


class TestViasObjective:
    BOUNDS = Rect(0, 0, 512, 512)

    def test_invalid_objective_rejected(self):
        design = _wide_toy()
        with pytest.raises(ValueError, match="objective"):
            LevelBRouter(
                self.BOUNDS,
                list(design.nets.values()),
                config=LevelBConfig(objective="fastest"),
            )

    def test_wire_objective_has_no_surcharge(self):
        design = _wide_toy()
        router = LevelBRouter(self.BOUNDS, list(design.nets.values()))
        for net in design.nets.values():
            assert router.corner_surcharge(router.net_id(net)) == 0.0

    def test_vias_objective_prices_corners(self):
        from repro.core.router import VIA_OBJECTIVE_SCALE

        design = _wide_toy()
        router = LevelBRouter(
            self.BOUNDS,
            list(design.nets.values()),
            technology=golden_technology(),
            config=LevelBConfig(planes=2, objective="vias"),
        )
        tech = router.technology
        for net in design.nets.values():
            nid = router.net_id(net)
            plane = router.tig.plane_of(nid)
            expected = VIA_OBJECTIVE_SCALE * tech.corner_via_cost(plane)
            assert router.corner_surcharge(nid) == expected

    def test_wide_classes_get_footprints(self):
        design = _wide_toy()
        router = LevelBRouter(
            self.BOUNDS,
            list(design.nets.values()),
            technology=golden_technology(),
            config=LevelBConfig(planes=2),
        )
        tech = router.technology
        for net in design.nets.values():
            nid = router.net_id(net)
            plane = router.tig.plane_of(nid)
            assert router.footprint_of(nid) == tech.net_footprint(
                net.net_class, plane
            )

    def test_wide_toy_routes_clean_under_strict_check(self):
        from repro.check import check_levelb

        design = _wide_toy()
        result = LevelBRouter(
            self.BOUNDS,
            list(design.nets.values()),
            technology=golden_technology(),
            config=LevelBConfig(planes=2, checked=True),
        ).route()
        report = check_levelb(result)
        assert report.ok, report.summary()


# ----------------------------------------------------------------------
# Width-dependent DRC rules
# ----------------------------------------------------------------------
class TestWidthDRC:
    def _grid_and_tech(self):
        tracks = TrackSet.uniform(0, 300, 12)
        from repro.grid import RoutingGrid as RG

        return RG(tracks, tracks), golden_technology()

    def test_spacing_violation_flagged(self):
        from repro.check import RULE_SPACING, check_spacing
        from repro.check.extract import ExtractedDesign, Wire

        grid, tech = self._grid_and_tech()
        # metal3 is vertical; POWER spans 3 tracks with guard 2, so a
        # foreign wire one track past the metal edge is too close.
        design = ExtractedDesign(
            wires=[
                Wire("pwr", 3, 60, 0, 120),   # base track idx 5, span 3
                Wire("sig", 3, 96, 40, 160),  # idx 8: gap 1 <= guard 2
            ]
        )
        violations = check_spacing(design, grid, tech, spans={"pwr": 3})
        assert len(violations) == 1
        v = violations[0]
        assert v.rule == RULE_SPACING
        assert "pwr" in v.message and "sig" in v.message

    def test_spacing_clear_when_guard_respected(self):
        from repro.check import check_spacing
        from repro.check.extract import ExtractedDesign, Wire

        grid, tech = self._grid_and_tech()
        design = ExtractedDesign(
            wires=[
                Wire("pwr", 3, 60, 0, 120),
                Wire("sig", 3, 132, 40, 160),  # idx 11: gap 3 > guard 2
            ]
        )
        assert check_spacing(design, grid, tech, spans={"pwr": 3}) == []

    def test_spacing_ignores_disjoint_extents(self):
        from repro.check import check_spacing
        from repro.check.extract import ExtractedDesign, Wire

        grid, tech = self._grid_and_tech()
        design = ExtractedDesign(
            wires=[
                Wire("pwr", 3, 60, 0, 50),
                Wire("sig", 3, 96, 80, 160),  # same tracks, disjoint runs
            ]
        )
        assert check_spacing(design, grid, tech, spans={"pwr": 3}) == []

    def test_width_violation_flagged(self):
        from repro.check import RULE_WIDTH, check_widths
        from repro.check.extract import ExtractedDesign, Wire

        doc = golden_stackup()
        for metal in doc["metals"]:
            if metal["name"] == "metal3":
                metal["min_width"] = 0.6  # 12 lambda > drawn width 6
        tech = technology_from_any(doc)
        design = ExtractedDesign(wires=[Wire("sig", 3, 60, 0, 120)])
        violations = check_widths(design, tech, spans={"sig": 1})
        assert [v.rule for v in violations] == [RULE_WIDTH]
        # A 2-track wire is 6 + 12 = 18 lambda wide and passes.
        assert check_widths(design, tech, spans={"sig": 2}) == []


# ----------------------------------------------------------------------
# Serve protocol: objective + technology canonicalization
# ----------------------------------------------------------------------
class TestServeSpec:
    def test_objective_validated(self):
        from repro.serve.protocol import JobSpec, SpecError

        with pytest.raises(SpecError, match="objective"):
            JobSpec.from_dict({"design": "ex3", "objective": "fastest"})

    def test_objective_changes_digest(self):
        from repro.serve.protocol import JobSpec

        wire = JobSpec.from_dict({"design": "ex3"})
        vias = JobSpec.from_dict({"design": "ex3", "objective": "vias"})
        assert wire.objective == "wire" and vias.objective == "vias"
        assert wire.digest() != vias.digest()

    def test_equivalent_technology_docs_share_digest(self):
        from repro.serve.protocol import JobSpec

        stackup = JobSpec.from_dict(
            {"design": "ex3", "technology": golden_stackup()}
        )
        canonical = JobSpec.from_dict(
            {
                "design": "ex3",
                "technology": technology_to_dict(golden_technology()),
            }
        )
        assert stackup.digest() == canonical.digest()

    def test_invalid_technology_doc_rejected(self):
        from repro.serve.protocol import JobSpec, SpecError

        with pytest.raises(SpecError, match="technology"):
            JobSpec.from_dict({"design": "ex3", "technology": "m3"})


# ----------------------------------------------------------------------
# CLI smoke: route --tech <stackup> / --objective vias
# ----------------------------------------------------------------------
class TestCliStackup:
    @pytest.fixture()
    def design_file(self, tmp_path):
        from repro.bench_suite import random_design
        from repro.io import save_design

        design = random_design("clistk", seed=23, num_cells=6, num_nets=12,
                               num_critical=2)
        path = tmp_path / "design.json"
        save_design(design, path)
        return path

    def test_route_with_stackup_tech(self, design_file, capsys):
        from repro.cli import main

        rc = main([
            "route", "--design", str(design_file),
            "--tech", str(GOLDEN), "--planes", "2",
        ])
        assert rc == 0
        assert "plane 0 (metal3/metal4):" in capsys.readouterr().out

    def test_route_vias_objective(self, design_file, tmp_path, capsys):
        from repro.cli import main

        summary = tmp_path / "summary.json"
        rc = main([
            "route", "--design", str(design_file),
            "--tech", str(GOLDEN), "--planes", "2",
            "--objective", "vias", "--json", str(summary),
        ])
        assert rc == 0
        json.loads(summary.read_text())
