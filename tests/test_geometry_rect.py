"""Tests for repro.geometry.rect."""

import pytest
from hypothesis import given, strategies as st

from repro.geometry import Point, Rect

coord = st.integers(min_value=-1000, max_value=1000)


@st.composite
def rects(draw):
    x1, x2 = sorted((draw(coord), draw(coord)))
    y1, y2 = sorted((draw(coord), draw(coord)))
    return Rect(x1, y1, x2, y2)


class TestRectBasics:
    def test_malformed_raises(self):
        with pytest.raises(ValueError):
            Rect(5, 0, 4, 10)
        with pytest.raises(ValueError):
            Rect(0, 5, 10, 4)

    def test_degenerate_allowed(self):
        r = Rect(3, 3, 3, 3)
        assert r.area == 0
        assert r.contains_point(Point(3, 3))

    def test_dimensions(self):
        r = Rect(1, 2, 5, 9)
        assert (r.width, r.height, r.area, r.half_perimeter) == (4, 7, 28, 11)

    def test_from_points_any_order(self):
        assert Rect.from_points(Point(5, 1), Point(2, 8)) == Rect(2, 1, 5, 8)

    def test_bounding(self):
        pts = [Point(0, 5), Point(3, 1), Point(-2, 2)]
        assert Rect.bounding(pts) == Rect(-2, 1, 3, 5)
        with pytest.raises(ValueError):
            Rect.bounding([])

    def test_center(self):
        assert Rect(0, 0, 10, 6).center == Point(5, 3)

    def test_corners(self):
        ll, lr, ur, ul = Rect(0, 0, 2, 3).corners()
        assert (ll, lr, ur, ul) == (Point(0, 0), Point(2, 0), Point(2, 3), Point(0, 3))

    def test_translated(self):
        assert Rect(0, 0, 2, 2).translated(5, -1) == Rect(5, -1, 7, 1)


class TestRectRelations:
    def test_overlap_vs_open_overlap_on_edges(self):
        a, b = Rect(0, 0, 5, 5), Rect(5, 0, 9, 5)
        assert a.overlaps(b)
        assert not a.overlaps_open(b)

    def test_intersection(self):
        a, b = Rect(0, 0, 5, 5), Rect(3, 2, 9, 9)
        assert a.intersection(b) == Rect(3, 2, 5, 5)
        assert a.intersection(Rect(6, 6, 7, 7)) is None

    def test_hull(self):
        assert Rect(0, 0, 1, 1).hull(Rect(5, 5, 6, 6)) == Rect(0, 0, 6, 6)

    def test_contains_rect(self):
        assert Rect(0, 0, 10, 10).contains_rect(Rect(2, 2, 8, 8))
        assert not Rect(0, 0, 10, 10).contains_rect(Rect(2, 2, 11, 8))

    def test_expanded(self):
        assert Rect(2, 2, 4, 4).expanded(2) == Rect(0, 0, 6, 6)

    @given(rects(), rects())
    def test_overlap_symmetric(self, a, b):
        assert a.overlaps(b) == b.overlaps(a)
        assert a.overlaps_open(b) == b.overlaps_open(a)

    @given(rects(), rects())
    def test_intersection_contained_in_both(self, a, b):
        inter = a.intersection(b)
        assert (inter is not None) == a.overlaps(b)
        if inter:
            assert a.contains_rect(inter)
            assert b.contains_rect(inter)

    @given(rects(), rects())
    def test_hull_contains_both(self, a, b):
        h = a.hull(b)
        assert h.contains_rect(a)
        assert h.contains_rect(b)

    @given(rects())
    def test_intervals_match(self, r):
        assert (r.x_interval.lo, r.x_interval.hi) == (r.x1, r.x2)
        assert (r.y_interval.lo, r.y_interval.hi) == (r.y1, r.y2)
