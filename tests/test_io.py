"""Tests for design/result serialisation."""

import json

import pytest

from repro.bench_suite import random_design
from repro.flow import overcell_flow, two_layer_flow
from repro.io import (
    design_from_dict,
    design_to_dict,
    flow_result_to_dict,
    levelb_result_to_dict,
    load_design,
    save_design,
)

from conftest import make_toy_design


class TestDesignRoundTrip:
    def test_unplaced_round_trip(self):
        design = random_design("io1", seed=3, num_cells=6, num_nets=12)
        clone = design_from_dict(design_to_dict(design))
        assert clone.name == design.name
        assert set(clone.cells) == set(design.cells)
        assert set(clone.nets) == set(design.nets)
        for name, net in design.nets.items():
            other = clone.nets[name]
            assert other.degree == net.degree
            assert other.is_critical == net.is_critical
            assert [p.full_name for p in other.pins] == [
                p.full_name for p in net.pins
            ]

    def test_placement_preserved(self):
        design = make_toy_design()
        clone = design_from_dict(design_to_dict(design))
        assert clone.is_placed
        for name, cell in design.cells.items():
            assert clone.cells[name].origin == cell.origin

    def test_net_attributes_preserved(self):
        design = make_toy_design()
        net = next(iter(design.nets.values()))
        net.is_critical = True
        net.is_sensitive = True
        net.weight = 2.5
        clone = design_from_dict(design_to_dict(design))
        other = clone.nets[net.name]
        assert other.is_critical and other.is_sensitive
        assert other.weight == 2.5

    def test_file_round_trip(self, tmp_path):
        design = make_toy_design()
        path = tmp_path / "design.json"
        save_design(design, path)
        clone = load_design(path)
        assert clone.stats() == design.stats()
        # The file is genuine JSON.
        json.loads(path.read_text())

    def test_clone_routes_identically(self):
        design = random_design("io2", seed=9, num_cells=6, num_nets=14,
                               num_critical=2)
        a = overcell_flow(design)
        clone = design_from_dict(design_to_dict(random_design(
            "io2", seed=9, num_cells=6, num_nets=14, num_critical=2)))
        b = overcell_flow(clone)
        assert a.layout_area == b.layout_area
        assert a.wire_length == b.wire_length

    def test_bad_documents_rejected(self):
        with pytest.raises(ValueError):
            design_from_dict({"format": "something-else"})
        with pytest.raises(ValueError):
            design_from_dict(
                {"format": "repro-design", "version": 99, "name": "x",
                 "cells": [], "nets": []}
            )

    def test_unknown_pin_reference_rejected(self):
        doc = design_to_dict(make_toy_design())
        doc["nets"][0]["pins"].append("ghost.pin")
        with pytest.raises(ValueError, match="unknown pin"):
            design_from_dict(doc)


class TestResultExport:
    def test_levelb_result_export(self):
        design = random_design("io3", seed=4, num_cells=6, num_nets=12)
        result = overcell_flow(design)
        doc = levelb_result_to_dict(result.levelb)
        assert doc["completion_rate"] == 1.0
        assert doc["total_wire_length"] == result.levelb.total_wire_length
        assert len(doc["nets"]) == len(result.levelb.routed)
        for net in doc["nets"]:
            for conn in net["connections"]:
                assert len(conn["waypoints"]) >= 2
        json.dumps(doc)  # must be JSON-serialisable

    def test_flow_result_export(self):
        design = random_design("io4", seed=5, num_cells=6, num_nets=12)
        result = two_layer_flow(design)
        doc = flow_result_to_dict(result)
        assert doc["layout_area"] == result.layout_area
        assert "levelb" not in doc
        json.dumps(doc)

    def test_flow_result_export_with_levelb(self):
        design = random_design("io5", seed=6, num_cells=6, num_nets=12)
        result = overcell_flow(design)
        doc = flow_result_to_dict(result)
        assert doc["levelb"]["completion_rate"] == 1.0
        json.dumps(doc)


class TestTechnologyRoundTrip:
    def test_four_layer_round_trip(self, tmp_path):
        from repro.io import load_technology, save_technology
        from repro.technology import Technology

        tech = Technology.four_layer()
        path = tmp_path / "tech.json"
        save_technology(tech, path)
        clone = load_technology(path)
        assert clone.name == tech.name
        assert clone.num_layers == tech.num_layers
        for a, b in zip(clone.layers, tech.layers):
            assert a == b
        assert clone.vias == tech.vias

    def test_two_layer_round_trip(self):
        from repro.io import technology_from_dict, technology_to_dict
        from repro.technology import Technology

        tech = Technology.two_layer()
        clone = technology_from_dict(technology_to_dict(tech))
        assert clone == tech

    def test_bad_document_rejected(self):
        import pytest as _pytest
        from repro.io import technology_from_dict

        with _pytest.raises(ValueError):
            technology_from_dict({"format": "nope"})

    def test_invalid_stack_rejected_on_load(self):
        import pytest as _pytest
        from repro.io import technology_from_dict, technology_to_dict
        from repro.technology import Technology

        doc = technology_to_dict(Technology.four_layer())
        doc["vias"] = doc["vias"][:-1]  # drop a via rule
        with _pytest.raises(ValueError):
            technology_from_dict(doc)


class TestCanonicalDigest:
    def test_digest_insensitive_to_dict_ordering(self):
        from repro.io import canonical_digest

        a = {"flow": "overcell", "planes": 2, "design": {"x": 1, "y": 2}}
        b = {"design": {"y": 2, "x": 1}, "planes": 2, "flow": "overcell"}
        assert canonical_digest(a) == canonical_digest(b)

    def test_digest_sensitive_to_values(self):
        from repro.io import canonical_digest

        base = {"flow": "overcell", "planes": 1}
        assert canonical_digest(base) != canonical_digest(
            {"flow": "overcell", "planes": 2}
        )
        assert canonical_digest(base) != canonical_digest(
            {"flow": "two-layer", "planes": 1}
        )

    def test_digest_pinned(self):
        # The digest is part of the serve wire protocol: a cache entry
        # written by one version must be addressable by the next, so
        # the canonical form is pinned by value here.
        from repro.io import canonical_digest, canonical_json

        doc = {"b": [1, 2, {"z": None, "a": True}], "a": "x"}
        assert canonical_json(doc) == '{"a":"x","b":[1,2,{"a":true,"z":null}]}'
        assert canonical_digest(doc) == (
            "dcfe2a3d2102de1d1e5f2a65d1feaf2f69b60bea4c08409297eb9df544f8bb5b"
        )

    def test_list_order_still_matters(self):
        from repro.io import canonical_digest

        assert canonical_digest([1, 2]) != canonical_digest([2, 1])

    def test_nan_rejected(self):
        from repro.io import canonical_digest

        with pytest.raises(ValueError):
            canonical_digest({"x": float("nan")})

    def test_design_digest_stable_across_export_order(self):
        from repro.io import canonical_digest, design_to_dict

        doc = design_to_dict(make_toy_design())
        shuffled = json.loads(json.dumps(doc))
        shuffled["cells"] = [
            dict(reversed(list(c.items()))) for c in shuffled["cells"]
        ]
        assert canonical_digest(doc) == canonical_digest(shuffled)
