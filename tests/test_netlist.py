"""Tests for repro.netlist (Cell, Pin, Net, Design)."""

import pytest

from repro.geometry import Point
from repro.netlist import Cell, Design, Edge, Net, Pin


class TestCell:
    def test_dimensions_validated(self):
        with pytest.raises(ValueError):
            Cell("bad", 0, 10)

    def test_bounds_require_placement(self):
        cell = Cell("a", 10, 20)
        assert not cell.is_placed
        with pytest.raises(RuntimeError):
            _ = cell.bounds
        cell.place(5, 7)
        assert cell.bounds.x2 == 15 and cell.bounds.y2 == 27

    def test_pin_positions_all_edges(self):
        cell = Cell("a", 10, 20)
        cell.place(100, 200)
        positions = {}
        for edge, offset in [
            (Edge.BOTTOM, 3),
            (Edge.TOP, 4),
            (Edge.LEFT, 5),
            (Edge.RIGHT, 6),
        ]:
            pin = Pin("p" + edge.value, cell, edge, offset)
            cell.add_pin(pin)
            positions[edge] = pin.position
        assert positions[Edge.BOTTOM] == Point(103, 200)
        assert positions[Edge.TOP] == Point(104, 220)
        assert positions[Edge.LEFT] == Point(100, 205)
        assert positions[Edge.RIGHT] == Point(110, 206)

    def test_pin_offset_validated(self):
        cell = Cell("a", 10, 20)
        with pytest.raises(ValueError):
            cell.add_pin(Pin("p", cell, Edge.TOP, 11))
        with pytest.raises(ValueError):
            cell.add_pin(Pin("p", cell, Edge.LEFT, 21))
        cell.add_pin(Pin("ok", cell, Edge.LEFT, 20))  # boundary inclusive


class TestNet:
    def test_add_pin_sets_backref(self):
        cell = Cell("a", 10, 10)
        pin = Pin("p", cell, Edge.TOP, 1)
        net = Net("n")
        net.add_pin(pin)
        assert pin.net is net
        assert net.degree == 1

    def test_pin_cannot_join_two_nets(self):
        cell = Cell("a", 10, 10)
        pin = Pin("p", cell, Edge.TOP, 1)
        Net("n1").add_pin(pin)
        with pytest.raises(ValueError):
            Net("n2").add_pin(pin)

    def test_half_perimeter(self):
        cell = Cell("a", 10, 10)
        cell.place(0, 0)
        net = Net("n")
        for name, edge, off in [("p1", Edge.BOTTOM, 0), ("p2", Edge.TOP, 10)]:
            pin = Pin(name, cell, edge, off)
            cell.add_pin(pin)
            net.add_pin(pin)
        assert net.half_perimeter == 20  # (10-0) + (10-0)

    def test_is_multi_terminal(self):
        net = Net("n")
        assert not net.is_multi_terminal
        cell = Cell("a", 30, 10)
        for i in range(3):
            pin = Pin(f"p{i}", cell, Edge.TOP, i)
            net.add_pin(pin)
        assert net.is_multi_terminal


class TestDesign:
    def make_design(self):
        d = Design("t")
        d.add_cell("a", 16, 16)
        d.add_cell("b", 16, 16)
        p1 = d.add_pin("a", "p1", Edge.TOP, 8)
        p2 = d.add_pin("b", "p2", Edge.BOTTOM, 8)
        net = d.add_net("n1")
        net.add_pin(p1)
        net.add_pin(p2)
        return d

    def test_duplicates_rejected(self):
        d = self.make_design()
        with pytest.raises(ValueError):
            d.add_cell("a", 5, 5)
        with pytest.raises(ValueError):
            d.add_net("n1")

    def test_stats(self):
        d = self.make_design()
        s = d.stats()
        assert s.num_cells == 2
        assert s.num_nets == 1
        assert s.num_pins == 2
        assert s.avg_pins_per_net == 2.0
        assert s.total_cell_area == 2 * 256

    def test_routable_nets_excludes_singletons(self):
        d = self.make_design()
        lone = d.add_net("lonely")
        lone.add_pin(d.add_pin("a", "px", Edge.TOP, 4))
        assert [n.name for n in d.routable_nets()] == ["n1"]

    def test_validate_detects_overlap(self):
        d = self.make_design()
        d.cells["a"].place(0, 0)
        d.cells["b"].place(8, 8)  # overlaps cell a
        problems = d.validate()
        assert any("overlap" in p for p in problems)

    def test_validate_detects_underconnected_net(self):
        d = Design("t")
        d.add_cell("a", 16, 16)
        net = d.add_net("n")
        net.add_pin(d.add_pin("a", "p", Edge.TOP, 4))
        assert any("fewer than two pins" in p for p in d.validate())

    def test_check_raises(self):
        d = Design("t")
        d.add_cell("a", 16, 16)
        net = d.add_net("n")
        net.add_pin(d.add_pin("a", "p", Edge.TOP, 4))
        with pytest.raises(ValueError):
            d.check()

    def test_cell_bounds(self):
        d = self.make_design()
        d.cells["a"].place(0, 0)
        d.cells["b"].place(50, 10)
        box = d.cell_bounds()
        assert (box.x1, box.y1, box.x2, box.y2) == (0, 0, 66, 26)

    def test_is_placed(self):
        d = self.make_design()
        assert not d.is_placed
        d.cells["a"].place(0, 0)
        assert not d.is_placed
        d.cells["b"].place(100, 0)
        assert d.is_placed
