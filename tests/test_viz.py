"""Tests for the ASCII/SVG renderers."""

import os
from pathlib import Path

from repro.bench_suite import random_design
from repro.channels import ChannelProblem, GreedyChannelRouter
from repro.core import LevelBConfig, LevelBRouter
from repro.core.search import MBFSearch
from repro.flow import overcell_flow
from repro.geometry import Rect
from repro.viz import (
    levelb_legend,
    render_channel,
    render_levelb_ascii,
    render_pst,
    render_tig,
    svg_layout,
)
from repro.viz.svg import svg_flow_result

from conftest import make_figure1_instance, make_toy_design

GOLDEN_DIR = Path(__file__).parent / "golden"


class TestChannelRendering:
    def test_contains_net_letters(self):
        p = ChannelProblem.from_pin_lists([(0, 1), (6, 2)], [(6, 1), (0, 2)])
        route = GreedyChannelRouter().route(p)
        art = render_channel(route, p)
        assert "A" in art  # net 1
        assert "B" in art  # net 2
        assert "-" in art and "|" in art

    def test_row_count(self):
        p = ChannelProblem.from_pin_lists([(0, 1)], [(3, 1)])
        route = GreedyChannelRouter().route(p)
        art = render_channel(route, p)
        assert len(art.splitlines()) == route.tracks + 2


class TestTigRendering:
    def test_adjacency_listing(self):
        tig, _ = make_figure1_instance()
        art = render_tig(tig)
        assert art.splitlines()[0].startswith("TIG:")
        assert any(line.strip().startswith("v1:") for line in art.splitlines())

    def test_obstacle_absent_from_listing(self):
        tig, _ = make_figure1_instance()
        art = render_tig(tig)
        # The obstacle blocks (v4,h3): v4's row must not list h3.
        v4_line = next(l for l in art.splitlines() if l.strip().startswith("v4:"))
        assert "h3" not in v4_line


class TestPstRendering:
    def test_tree_structure(self):
        tig, nets = make_figure1_instance()
        net_id, (a, b) = nets["B"]
        res = MBFSearch(tig.grid, net_id, a, b).run()
        art = render_pst(res.roots[0], res.leaves)
        lines = art.splitlines()
        assert lines[0] in ("v2", "h2")
        assert any("*" in line for line in lines)  # a completing leaf


class TestLevelBRendering:
    def test_ascii_plot(self):
        design = make_toy_design()
        result = LevelBRouter(
            Rect(0, 0, 256, 256), list(design.nets.values())
        ).route()
        art = render_levelb_ascii(result, width=60, cells=design.cells.values())
        lines = art.splitlines()
        assert len(lines) > 3
        assert any("o" in line for line in lines)  # terminals
        assert any(ch in art for ch in "-|+")  # wiring

    def test_svg_document(self):
        design = make_toy_design()
        result = LevelBRouter(
            Rect(0, 0, 256, 256), list(design.nets.values())
        ).route()
        doc = svg_layout(
            Rect(0, 0, 256, 256),
            cells=design.cells.values(),
            levelb=result,
            obstacles=[Rect(10, 10, 20, 20)],
            title="test",
        )
        assert doc.startswith("<svg")
        assert doc.rstrip().endswith("</svg>")
        assert "<line" in doc
        assert "<circle" in doc or result.total_corners == 0
        assert "stroke-dasharray" in doc  # the obstacle

    def test_svg_flow_result(self):
        design = random_design("viz", seed=3, num_cells=6, num_nets=12)
        result = overcell_flow(design)
        doc = svg_flow_result(result)
        assert doc.startswith("<svg")
        assert design.name in doc


def _golden_result():
    """A small deterministic two-plane routing for snapshot tests."""
    design = make_toy_design()
    return LevelBRouter(
        Rect(0, 0, 256, 256),
        list(design.nets.values()),
        config=LevelBConfig(planes=2),
    ).route()


def _check_golden(name: str, rendered: str) -> None:
    """Compare against tests/golden/<name>; REGEN_GOLDEN=1 rewrites."""
    path = GOLDEN_DIR / name
    if os.environ.get("REGEN_GOLDEN"):
        path.parent.mkdir(exist_ok=True)
        path.write_text(rendered)
    assert path.exists(), (
        f"golden file {path} missing - run with REGEN_GOLDEN=1 to create"
    )
    assert rendered == path.read_text(), (
        f"rendering drifted from {path}; if the change is intended, "
        "regenerate with REGEN_GOLDEN=1"
    )


class TestGoldenRenderings:
    """Snapshot tests: renderings of a routed two-plane design.

    The routers are deterministic, so the rendered output is stable
    byte-for-byte.  The golden files live in ``tests/golden/``;
    re-create them with ``REGEN_GOLDEN=1 pytest tests/test_viz.py``
    after an intended rendering change.
    """

    def test_ascii_snapshot_with_plane_legend(self):
        result = _golden_result()
        art = render_levelb_ascii(result, width=60, legend=True)
        assert "plane 0 (metal3/metal4)" in art
        assert "plane 1 (metal5/metal6)" in art
        _check_golden("levelb_planes2.txt", art)

    def test_svg_golden_with_plane_legend(self):
        result = _golden_result()
        doc = svg_layout(
            Rect(0, 0, 256, 256),
            levelb=result,
            title="golden two-plane routing",
            legend=True,
        )
        assert "plane 0: metal3/metal4" in doc
        assert "plane 1: metal5/metal6" in doc
        # Higher planes draw dashed so the stack reads at a glance.
        assert "stroke-dasharray" in doc
        _check_golden("levelb_planes2.svg", doc)

    def test_legend_matches_plane_count(self):
        result = _golden_result()
        legend = levelb_legend(result)
        assert len(legend.splitlines()) == result.num_planes == 2
