"""Tests for the ``repro.instrument`` observability subsystem."""

import csv
import io
import json

import pytest

from repro import instrument
from repro.instrument import names
from repro.geometry import Rect
from repro.netlist import Design, Edge
from repro.core import LevelBRouter

from conftest import make_toy_design


def make_tiny_design():
    """One two-pin net between two cells: a fully deterministic route."""
    d = Design("tiny")
    c0 = d.add_cell("c0", 40, 32)
    c0.place(8, 8)
    c1 = d.add_cell("c1", 40, 32)
    c1.place(80, 80)
    p0 = d.add_pin("c0", "p0", Edge.TOP, 8)
    p1 = d.add_pin("c1", "p1", Edge.BOTTOM, 16)
    net = d.add_net("n0")
    net.add_pin(p0)
    net.add_pin(p1)
    return d, net


class TestSpans:
    def test_nesting_builds_a_tree(self):
        with instrument.collecting() as col, instrument.span("a"):
            with instrument.span("b"):
                pass
            with instrument.span("c"):
                pass
        a = col.root.find("a")
        assert a is not None and a.calls == 1
        assert set(a.children) == {"b", "c"}
        assert col.root.find("a", "b").calls == 1

    def test_repeated_spans_aggregate_by_name(self):
        with instrument.collecting() as col:
            for _ in range(5):
                with instrument.span("x"):
                    pass
        assert col.root.find("x").calls == 5
        assert len(col.root.children) == 1

    def test_reentrant_same_name_nests_as_child(self):
        with (
            instrument.collecting() as col,
            instrument.span("x"),
            instrument.span("x"),
        ):
            pass
        outer = col.root.find("x")
        assert outer.calls == 1
        assert outer.find("x").calls == 1

    def test_parent_time_covers_children(self):
        with (
            instrument.collecting() as col,
            instrument.span("outer"),
            instrument.span("inner"),
        ):
            sum(range(1000))
        outer = col.root.find("outer")
        inner = outer.find("inner")
        assert outer.total_s >= inner.total_s > 0.0
        assert outer.self_s == pytest.approx(
            outer.total_s - inner.total_s
        )

    def test_span_measures_elapsed_even_when_disabled(self):
        assert not instrument.enabled()
        with instrument.span("unrecorded") as sp:
            sum(range(1000))
        assert sp.elapsed_s > 0.0

    def test_collecting_restores_previous_collector(self):
        before = instrument.active()
        with instrument.collecting() as col:
            assert instrument.active() is col
            with instrument.collecting() as inner:
                assert instrument.active() is inner
            assert instrument.active() is col
        assert instrument.active() is before


class TestCountersAndEvents:
    def test_counts_accumulate(self):
        with instrument.collecting() as col:
            instrument.count("k")
            instrument.count("k", 4)
        assert col.counters["k"] == 5

    def test_declare_registers_zero(self):
        with instrument.collecting() as col:
            col.declare("never.fired")
        assert col.counters["never.fired"] == 0

    def test_gauge_overwrites(self):
        with instrument.collecting() as col:
            instrument.gauge("g", 1.5)
            instrument.gauge("g", 2.5)
        assert col.gauges["g"] == 2.5

    def test_events_are_ordered(self):
        with instrument.collecting() as col:
            instrument.event("first", x=1)
            instrument.event("second", y="z")
        assert [e["event"] for e in col.events] == ["first", "second"]
        assert [e["seq"] for e in col.events] == [1, 2]

    def test_disabled_collector_records_nothing(self):
        null = instrument.active()
        assert not null.enabled
        instrument.count("dropped", 100)
        instrument.gauge("dropped.gauge", 1.0)
        instrument.event("dropped.event")
        null.declare("dropped.declared")
        assert null.counters == {}
        assert null.gauges == {}
        assert null.events == []


class TestRouterCounters:
    def test_exact_mbfs_node_count_on_tiny_route(self):
        _, net = make_tiny_design()
        with instrument.collecting() as col:
            result = LevelBRouter(Rect(0, 0, 160, 160), [net]).route()
        assert result.completion_rate == 1.0
        # The counter must agree with the router's own accounting, and
        # the route is small enough to pin the exact expansion count.
        assert col.counters[names.MBFS_NODES_EXPANDED] == result.nodes_created
        assert col.counters[names.MBFS_NODES_EXPANDED] == 33
        assert col.counters[names.MAZE_FALLBACKS] == 0
        assert col.counters[names.NETS_ROUTED] == 1
        assert col.counters[names.NETS_FAILED] == 0
        assert col.counters[names.CONNECTIONS_ROUTED] == 1
        assert col.counters[names.OCC_CELLS_TOUCHED] > 0
        assert [e["event"] for e in col.events] == [names.EVT_NET_ROUTED]

    def test_toy_design_counter_matches_router_accounting(self):
        design = make_toy_design()
        with instrument.collecting() as col:
            result = LevelBRouter(
                Rect(0, 0, 256, 256), list(design.nets.values())
            ).route()
        assert col.counters[names.MAZE_FALLBACKS] == 0
        assert col.counters[names.MBFS_NODES_EXPANDED] == result.nodes_created
        assert col.counters[names.NETS_ROUTED] == result.nets_completed

    def test_elapsed_comes_from_span_tree(self):
        _, net = make_tiny_design()
        with instrument.collecting() as col:
            result = LevelBRouter(Rect(0, 0, 160, 160), [net]).route()
        node = col.root.find(names.SPAN_LEVELB_ROUTE)
        assert node is not None and node.calls == 1
        assert node.total_s == pytest.approx(result.elapsed_s)
        assert node.find(names.SPAN_LEVELB_NET).calls == 1

    def test_collection_does_not_change_routing(self):
        _, net_a = make_tiny_design()
        plain = LevelBRouter(Rect(0, 0, 160, 160), [net_a]).route()
        _, net_b = make_tiny_design()
        with instrument.collecting():
            collected = LevelBRouter(Rect(0, 0, 160, 160), [net_b]).route()
        assert plain.total_wire_length == collected.total_wire_length
        assert plain.total_vias == collected.total_vias
        # With collection off the router must still time itself.
        assert plain.elapsed_s > 0.0


class TestChannelCounters:
    def test_vcg_cycle_counts_and_logs(self):
        from repro.channels import (
            ChannelProblem,
            ChannelRoutingError,
            LeftEdgeRouter,
        )

        problem = ChannelProblem(top=[1, 2], bottom=[2, 1])
        with instrument.collecting() as col, pytest.raises(ChannelRoutingError):
            LeftEdgeRouter().route(problem)
        assert col.counters[names.VCG_CYCLES] == 1
        assert col.events[0]["event"] == names.EVT_CHANNEL_CYCLIC

    def test_greedy_channel_counters(self):
        from repro.channels import GreedyChannelRouter

        from conftest import make_random_channel_problem

        problem = make_random_channel_problem(length=12, num_nets=5, seed=3)
        with instrument.collecting() as col:
            GreedyChannelRouter().route(problem)
        assert col.counters[names.GREEDY_COLUMNS] >= 12
        assert col.root.find(names.SPAN_CHANNEL_GREEDY).calls == 1


class TestExporters:
    def _collected_route(self):
        _, net = make_tiny_design()
        with instrument.collecting() as col:
            LevelBRouter(Rect(0, 0, 160, 160), [net]).route()
        return col

    def test_snapshot_round_trip(self):
        col = self._collected_route()
        doc = instrument.snapshot(col)
        rebuilt = instrument.profile_from_dict(doc)
        assert instrument.snapshot(rebuilt) == doc

    def test_snapshot_without_events_keeps_total(self):
        col = self._collected_route()
        doc = instrument.snapshot(col, include_events=False)
        assert "events" not in doc
        assert doc["events_total"] == len(col.events)

    def test_json_export_parses(self):
        col = self._collected_route()
        doc = json.loads(instrument.to_json(col))
        assert doc["format"] == instrument.PROFILE_FORMAT
        assert doc["spans"]["name"] == "root"

    def test_profile_from_dict_rejects_other_formats(self):
        with pytest.raises(ValueError):
            instrument.profile_from_dict({"format": "something-else"})

    def test_counters_csv(self):
        col = self._collected_route()
        rows = list(csv.reader(io.StringIO(instrument.counters_to_csv(col))))
        assert rows[0] == ["counter", "value"]
        table = {name: value for name, value in rows[1:]}
        assert int(table[names.MBFS_NODES_EXPANDED]) == 33

    def test_spans_csv_paths(self):
        col = self._collected_route()
        rows = list(csv.reader(io.StringIO(instrument.spans_to_csv(col))))
        paths = [r[0] for r in rows[1:]]
        assert names.SPAN_LEVELB_ROUTE in paths
        assert f"{names.SPAN_LEVELB_ROUTE}/{names.SPAN_LEVELB_NET}" in paths

    def test_events_csv(self):
        col = self._collected_route()
        rows = list(csv.reader(io.StringIO(instrument.events_to_csv(col))))
        assert rows[0] == ["seq", "event", "data"]
        assert rows[1][1] == names.EVT_NET_ROUTED

    def test_tree_report_mentions_spans_and_counters(self):
        col = self._collected_route()
        report = instrument.tree_report(col)
        assert names.SPAN_LEVELB_ROUTE in report
        assert names.MBFS_NODES_EXPANDED in report
        assert "events: 1 recorded" in report


class TestFlowProfile:
    def test_flow_attaches_profile_only_when_collecting(self):
        from repro.bench_suite import random_design
        from repro.flow import two_layer_flow

        design = random_design("inst", seed=3, num_cells=6, num_nets=10,
                               num_critical=1)
        plain = two_layer_flow(design)
        assert plain.profile is None
        design = random_design("inst", seed=3, num_cells=6, num_nets=10,
                               num_critical=1)
        with instrument.collecting():
            collected = two_layer_flow(design)
        assert collected.profile is not None
        assert collected.profile["format"] == instrument.PROFILE_FORMAT
        assert collected.profile["spans"]["children"][0]["name"] == (
            names.SPAN_FLOW_TWO_LAYER
        )
        assert plain.wire_length == collected.wire_length
        assert plain.via_count == collected.via_count


class TestProfileCli:
    def test_profile_smoke(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "p.json"
        rc = main([
            "profile", "--suite", "ami33", "--flow", "overcell",
            "--out", str(out), "--csv", str(tmp_path / "prof"),
        ])
        assert rc == 0
        doc = json.loads(out.read_text())
        assert doc["format"] == instrument.PROFILE_FORMAT
        flow_span = doc["spans"]["children"][0]
        assert flow_span["name"] == names.SPAN_FLOW_OVERCELL
        assert flow_span["total_s"] > 0.0
        for key in (
            names.MBFS_NODES_EXPANDED,
            names.PST_BACKTRACK_STEPS,
            names.REGION_EXPANSIONS,
            names.MAZE_FALLBACKS,
            names.RIPUPS,
            names.NETS_ROUTED,
        ):
            assert key in doc["counters"]
        assert doc["counters"][names.MBFS_NODES_EXPANDED] > 0
        assert (tmp_path / "prof.counters.csv").exists()
        assert (tmp_path / "prof.spans.csv").exists()
        assert (tmp_path / "prof.events.csv").exists()
        assert "span tree" in capsys.readouterr().out

    def test_profile_leaves_global_collector_disabled(self, tmp_path):
        from repro.cli import main

        main([
            "profile", "--suite", "ami33", "--out", str(tmp_path / "p.json"),
        ])
        assert not instrument.enabled()
