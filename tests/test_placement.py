"""Tests for the row/shelf placer."""

import pytest

from repro.netlist import Design
from repro.placement import RowPlacement


def make_design(num_cells=8, w=64, h=48):
    d = Design("p")
    for i in range(num_cells):
        d.add_cell(f"c{i}", w + 8 * (i % 3), h + 8 * (i % 2))
    return d


class TestBuild:
    def test_empty_design_rejected(self):
        with pytest.raises(ValueError):
            RowPlacement.build(Design("empty"))

    def test_every_cell_assigned(self):
        d = make_design()
        pl = RowPlacement.build(d)
        assert set(pl.row_of_cell) == set(d.cells)
        assert sum(len(r.cells) for r in pl.rows) == len(d.cells)

    def test_x_positions_snapped(self):
        pl = RowPlacement.build(make_design(), pitch=8)
        assert all(x % 8 == 0 for x in pl.cell_x.values())

    def test_no_x_overlap_within_row(self):
        pl = RowPlacement.build(make_design())
        for row in pl.rows:
            spans = sorted(
                (pl.cell_x[c.name], pl.cell_x[c.name] + c.width) for c in row.cells
            )
            for (a1, a2), (b1, b2) in zip(spans, spans[1:]):
                assert a2 < b1  # gap enforced

    def test_rows_respect_width_target(self):
        pl = RowPlacement.build(make_design(12), row_width_target=200)
        for row in pl.rows:
            # First cell always fits; others keep the row near target.
            last = row.cells[-1]
            assert pl.cell_x[last.name] <= 200

    def test_channel_count(self):
        pl = RowPlacement.build(make_design())
        assert pl.channel_count == pl.num_rows + 1

    def test_single_huge_cell(self):
        d = Design("one")
        d.add_cell("big", 400, 100)
        pl = RowPlacement.build(d)
        assert pl.num_rows == 1


class TestRealize:
    def test_wrong_height_count_rejected(self):
        pl = RowPlacement.build(make_design())
        with pytest.raises(ValueError):
            pl.realize([8])

    def test_all_cells_placed_inside_bounds(self):
        d = make_design()
        pl = RowPlacement.build(d)
        heights = [16] * pl.channel_count
        bounds = pl.realize(heights, left_width=24, right_width=8, margin=16)
        assert d.is_placed
        for cell in d.cells.values():
            assert bounds.contains_rect(cell.bounds)

    def test_no_cell_overlap(self):
        d = make_design(10)
        pl = RowPlacement.build(d)
        pl.realize([8] * pl.channel_count)
        assert d.validate() == []

    def test_channel_heights_separate_rows(self):
        d = make_design()
        pl = RowPlacement.build(d)
        heights = [24] * pl.channel_count
        pl.realize(heights)
        for upper_row in pl.rows[1:]:
            lower_row = pl.rows[upper_row.index - 1]
            lower_top = max(c.bounds.y2 for c in lower_row.cells)
            upper_bottom = min(c.bounds.y1 for c in upper_row.cells)
            assert upper_bottom - lower_top == 24

    def test_taller_channels_grow_layout(self):
        d = make_design()
        pl = RowPlacement.build(d)
        small = pl.realize([8] * pl.channel_count)
        big = pl.realize([80] * pl.channel_count)
        assert big.height > small.height
        assert big.width == small.width

    def test_side_widths_shift_core(self):
        d = make_design()
        pl = RowPlacement.build(d)
        pl.realize([8] * pl.channel_count, left_width=0)
        x_without = min(c.bounds.x1 for c in d.cells.values())
        pl.realize([8] * pl.channel_count, left_width=40)
        x_with = min(c.bounds.x1 for c in d.cells.values())
        assert x_with - x_without == 40

    def test_repeated_realize_is_idempotent_geometry(self):
        d = make_design()
        pl = RowPlacement.build(d)
        b1 = pl.realize([8] * pl.channel_count, margin=16)
        b2 = pl.realize([8] * pl.channel_count, margin=16)
        assert b1 == b2

    def test_channel_y_ranges(self):
        d = make_design()
        pl = RowPlacement.build(d)
        heights = [16] * pl.channel_count
        pl.realize(heights)
        strips = pl.channel_y_ranges(heights)
        assert len(strips) == pl.channel_count
        for strip in strips:
            assert strip.height == 16


class TestDeterminism:
    def test_same_input_same_placement(self):
        d1, d2 = make_design(), make_design()
        p1 = RowPlacement.build(d1)
        p2 = RowPlacement.build(d2)
        assert p1.cell_x == p2.cell_x
        assert [len(r.cells) for r in p1.rows] == [len(r.cells) for r in p2.rows]
