"""Tests for repro.grid.occupancy (the O(h*v) occupancy array)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry import Interval, Rect
from repro.grid import FREE, OBSTACLE, RoutingGrid, TrackSet


def make_grid(nv=10, nh=8) -> RoutingGrid:
    return RoutingGrid(
        TrackSet(range(0, nv * 10, 10)), TrackSet(range(0, nh * 10, 10))
    )


class TestBasics:
    def test_shape(self):
        g = make_grid(10, 8)
        assert g.num_vtracks == 10
        assert g.num_htracks == 8
        assert g.num_intersections == 80

    def test_coord_of(self):
        g = make_grid()
        assert g.coord_of(3, 2) == (30, 20)

    def test_fresh_grid_fully_free(self):
        g = make_grid()
        assert g.utilization() == 0.0
        assert g.corner_free(4, 4, 1)
        assert g.owners() == []


class TestObstacles:
    def test_add_obstacle_blocks_both(self):
        g = make_grid()
        blocked = g.add_obstacle(Rect(20, 20, 40, 30))
        assert blocked == 6  # 3 v-tracks x 2 h-tracks
        assert not g.corner_free(2, 2, 1)
        assert g.h_slot(2, 2) == OBSTACLE
        assert g.v_slot(2, 2) == OBSTACLE

    def test_one_direction_obstacle(self):
        g = make_grid()
        g.add_obstacle(Rect(20, 20, 20, 20), block_h=True, block_v=False)
        assert g.h_slot(2, 2) == OBSTACLE
        assert g.v_slot(2, 2) == FREE
        assert not g.corner_free(2, 2, 1)

    def test_obstacle_outside_tracks_is_noop(self):
        g = make_grid()
        assert g.add_obstacle(Rect(5, 5, 7, 7)) == 0

    def test_obstacle_over_wire_rejected(self):
        g = make_grid()
        g.occupy_h(2, 0, 5, net_id=1)
        with pytest.raises(ValueError):
            g.add_obstacle(Rect(0, 20, 90, 20))

    def test_double_obstacle_counts_once(self):
        g = make_grid()
        g.add_obstacle(Rect(20, 20, 20, 20))
        assert g.add_obstacle(Rect(20, 20, 20, 20)) == 0


class TestTerminals:
    def test_reserve_blocks_other_nets(self):
        g = make_grid()
        g.reserve_terminal(3, 3, net_id=1)
        assert g.corner_free(3, 3, 1)
        assert not g.corner_free(3, 3, 2)

    def test_reserve_collision_rejected(self):
        g = make_grid()
        g.reserve_terminal(3, 3, net_id=1)
        with pytest.raises(ValueError):
            g.reserve_terminal(3, 3, net_id=2)

    def test_reserve_requires_positive_id(self):
        g = make_grid()
        with pytest.raises(ValueError):
            g.reserve_terminal(0, 0, net_id=0)

    def test_unrouted_terminal_counting(self):
        g = make_grid()
        g.reserve_terminal(3, 3, net_id=1)
        g.reserve_terminal(5, 5, net_id=1)
        assert g.unrouted_terminals_near(4, 4, radius=2) == 2
        g.mark_terminal_routed(3, 3)
        assert g.unrouted_terminals_near(4, 4, radius=2) == 1
        g.mark_terminal_routed(3, 3)  # extra mark is harmless
        assert g.unrouted_terminals_near(4, 4, radius=2) == 1


class TestSpans:
    def test_occupy_and_query_h(self):
        g = make_grid()
        g.occupy_h(2, 1, 4, net_id=7)
        assert g.h_slot(3, 2) == 7
        assert g.span_usable_h(2, 1, 4, net_id=7)
        assert not g.span_usable_h(2, 1, 4, net_id=8)
        # Crossing stays open: vertical slots untouched.
        assert g.v_slot(3, 2) == FREE
        assert g.span_usable_v(3, 0, 7, net_id=8)

    def test_occupy_conflict_raises(self):
        g = make_grid()
        g.occupy_h(2, 1, 4, net_id=7)
        with pytest.raises(ValueError):
            g.occupy_h(2, 3, 6, net_id=8)
        g.occupy_h(2, 3, 6, net_id=7)  # same net may extend

    def test_occupy_v(self):
        g = make_grid()
        g.occupy_v(5, 0, 3, net_id=2)
        assert g.v_slot(5, 1) == 2
        with pytest.raises(ValueError):
            g.occupy_v(5, 2, 5, net_id=3)

    def test_occupy_corner(self):
        g = make_grid()
        g.occupy_corner(4, 4, net_id=3)
        assert g.h_slot(4, 4) == 3 and g.v_slot(4, 4) == 3
        with pytest.raises(ValueError):
            g.occupy_corner(4, 4, net_id=5)

    def test_swapped_bounds_accepted(self):
        g = make_grid()
        g.occupy_h(1, 5, 2, net_id=1)
        assert g.h_slot(3, 1) == 1


class TestFreeSpan:
    def test_full_row_free(self):
        g = make_grid(10, 8)
        assert g.free_span_h(3, 5, net_id=1) == Interval(0, 9)

    def test_blocked_entry_returns_none(self):
        g = make_grid()
        g.occupy_h(3, 5, 5, net_id=2)
        assert g.free_span_h(3, 5, net_id=1) is None
        assert g.free_span_h(3, 5, net_id=2) == Interval(0, 9)

    def test_span_stops_at_foreign_wire(self):
        g = make_grid()
        g.occupy_h(3, 2, 2, net_id=2)
        g.occupy_h(3, 8, 8, net_id=2)
        assert g.free_span_h(3, 5, net_id=1) == Interval(3, 7)

    def test_window_clipping(self):
        g = make_grid()
        assert g.free_span_h(3, 5, net_id=1, within=Interval(4, 6)) == Interval(4, 6)
        assert g.free_span_h(3, 5, net_id=1, within=Interval(6, 8)) is None

    def test_free_span_v(self):
        g = make_grid()
        g.occupy_v(4, 6, 7, net_id=9)
        assert g.free_span_v(4, 2, net_id=1) == Interval(0, 5)

    @settings(max_examples=60)
    @given(
        st.lists(
            st.tuples(st.integers(0, 9), st.integers(1, 3)), max_size=6
        ),
        st.integers(0, 9),
    )
    def test_free_span_matches_naive(self, blocks, probe):
        g = make_grid(10, 4)
        occupied = set()
        for start, width in blocks:
            end = min(9, start + width - 1)
            if g.span_usable_h(2, start, end, net_id=2):
                g.occupy_h(2, start, end, net_id=2)
                occupied.update(range(start, end + 1))
        span = g.free_span_h(2, probe, net_id=1)
        if probe in occupied:
            assert span is None
        else:
            assert span is not None and span.contains(probe)
            assert all(i not in occupied for i in span)
            if span.lo > 0:
                assert span.lo - 1 in occupied
            if span.hi < 9:
                assert span.hi + 1 in occupied


class TestStatistics:
    def test_densities(self):
        g = make_grid(5, 5)
        g.occupy_h(2, 0, 4, net_id=1)
        assert g.routed_density_near(2, 2, radius=2) > 0
        assert g.congestion_near(2, 2, radius=2) >= g.routed_density_near(2, 2, 2)

    def test_congestion_counts_obstacles(self):
        g = make_grid(5, 5)
        g.add_obstacle(Rect(0, 0, 40, 40))
        assert g.routed_density_near(2, 2, radius=2) == 0.0
        assert g.congestion_near(2, 2, radius=2) == 1.0

    def test_owners(self):
        g = make_grid()
        g.occupy_h(1, 0, 2, net_id=5)
        g.occupy_v(7, 0, 2, net_id=3)
        assert g.owners() == [3, 5]

    def test_clear_net(self):
        g = make_grid()
        g.occupy_h(1, 0, 2, net_id=5)
        g.occupy_corner(6, 6, net_id=5)
        freed = g.clear_net(5)
        assert freed == 5  # 3 h-slots + corner's h and v slots
        assert g.owners() == []
        with pytest.raises(ValueError):
            g.clear_net(0)

    def test_owners_near(self):
        g = make_grid()
        g.occupy_h(2, 2, 3, net_id=4)
        g.occupy_v(8, 0, 1, net_id=6)
        assert g.owners_near(2, 2, radius=1) == [4]
        assert 6 in g.owners_near(8, 1, radius=1)


class TestClearNetRoundTrip:
    """clear_net must exactly undo a net's commits (rip-up safety)."""

    @given(st.integers(0, 5000))
    @settings(max_examples=20, deadline=None)
    def test_commit_clear_restores_grid(self, seed):
        import random as _random
        from repro.core.router import commit_points
        from repro.geometry import Point

        rng = _random.Random(seed)
        g = make_grid(12, 12)
        # Pre-existing foreign wiring that must survive untouched.
        g.occupy_h(2, 0, 5, net_id=7)
        g.occupy_v(9, 3, 8, net_id=7)
        before = g.snapshot()
        # Commit a random staircase for net 3 in the free region.
        x = rng.randrange(3, 8) * 10
        y = rng.randrange(4, 8) * 10
        points = [Point(x, y)]
        for _ in range(3):
            last = points[-1]
            if rng.random() < 0.5:
                points.append(Point(min(110, last.x + 10), last.y))
            else:
                points.append(Point(last.x, max(40, min(110, last.y + 10))))
        dedup = [points[0]]
        for p in points[1:]:
            if p != dedup[-1]:
                dedup.append(p)
        corners = []
        for a, b, c in zip(dedup, dedup[1:], dedup[2:]):
            if (a.x == b.x) != (b.x == c.x):
                corners.append(
                    (g.vtracks.index_of(b.x), g.htracks.index_of(b.y))
                )
        try:
            commit_points(g, 3, dedup, corners)
        except ValueError:
            return  # collided with the foreign wiring; nothing to test
        g.clear_net(3)
        assert g.matches(before)


class TestIndexValidation:
    """Index-taking accessors reject out-of-range (esp. negative) indices.

    Python's negative indexing used to wrap around silently, returning
    the wrong cell instead of failing; every point accessor now raises
    ``IndexError`` naming the offending index.
    """

    def test_coord_of_negative_v(self):
        g = make_grid()
        with pytest.raises(IndexError, match="v-track index -1"):
            g.coord_of(-1, 2)

    def test_coord_of_negative_h(self):
        g = make_grid()
        with pytest.raises(IndexError, match="h-track index -3"):
            g.coord_of(3, -3)

    def test_coord_of_too_large(self):
        g = make_grid(10, 8)
        with pytest.raises(IndexError, match="v-track index 10"):
            g.coord_of(10, 0)
        with pytest.raises(IndexError, match="h-track index 8"):
            g.coord_of(0, 8)

    def test_slot_accessors_validate(self):
        g = make_grid()
        for call in (
            lambda: g.h_slot(-1, 0),
            lambda: g.v_slot(0, -2),
            lambda: g.corner_free(-4, 0, 1),
        ):
            with pytest.raises(IndexError):
                call()

    def test_mutators_validate(self):
        g = make_grid()
        with pytest.raises(IndexError):
            g.reserve_terminal(-1, 0, net_id=1)
        with pytest.raises(IndexError):
            g.occupy_corner(0, -1, net_id=1)
        with pytest.raises(IndexError):
            g.mark_terminal_routed(-2, -2)

    def test_rejected_mutation_leaves_grid_clean(self):
        g = make_grid()
        before = g.snapshot()
        with pytest.raises(IndexError):
            g.reserve_terminal(-1, 3, net_id=5)
        assert g.matches(before)

    def test_window_snapshot_entirely_off_grid(self):
        g = make_grid(10, 8)
        with pytest.raises(IndexError):
            g.window_snapshot(Interval(-5, -1), Interval(0, 3))
        with pytest.raises(IndexError):
            g.window_snapshot(Interval(0, 3), Interval(8, 11))

    def test_window_snapshot_partial_overhang_still_clamps(self):
        # Padded search windows legitimately poke past the edge; only a
        # fully off-grid window is an error.
        g = make_grid(10, 8)
        snap = g.window_snapshot(Interval(-2, 4), Interval(5, 9))
        assert g.window_matches(snap)
