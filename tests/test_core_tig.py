"""Tests for repro.core.tig (Track Intersection Graph)."""

import pytest

from repro.geometry import Point, Rect
from repro.grid import TrackSet
from repro.core.tig import GridTerminal, TrackIntersectionGraph


class TestConstruction:
    def test_over_area_threads_terminal_tracks(self):
        tig = TrackIntersectionGraph.over_area(
            Rect(0, 0, 100, 100), v_pitch=12, h_pitch=12,
            terminal_points=[Point(7, 31)],
        )
        assert tig.grid.vtracks.has(7)
        assert tig.grid.htracks.has(31)

    def test_over_area_covers_bounds(self):
        tig = TrackIntersectionGraph.over_area(
            Rect(0, 0, 100, 50), v_pitch=12, h_pitch=10
        )
        assert tig.grid.vtracks.span.lo == 0
        assert tig.grid.vtracks.span.hi == 100
        assert tig.grid.htracks.span.hi == 50

    def test_terminal_at_requires_exact_tracks(self):
        tig = TrackIntersectionGraph(TrackSet([0, 10]), TrackSet([0, 10]))
        assert tig.terminal_at(Point(10, 0)) == GridTerminal(1, 0)
        with pytest.raises(KeyError):
            tig.terminal_at(Point(5, 0))


class TestTerminals:
    def test_register_net(self):
        tig = TrackIntersectionGraph(TrackSet([0, 10, 20]), TrackSet([0, 10, 20]))
        terms = tig.register_net(1, [Point(0, 0), Point(20, 20)])
        assert len(terms) == 2
        assert tig.terminals_of(1) == terms
        assert not tig.edge_usable(0, 0)  # reserved for net 1
        assert tig.edge_usable(0, 0, net_id=1)

    def test_all_terminals(self):
        tig = TrackIntersectionGraph(TrackSet([0, 10]), TrackSet([0, 10]))
        tig.register_net(1, [Point(0, 0)])
        tig.register_net(2, [Point(10, 10)])
        assert set(tig.all_terminals()) == {1, 2}

    def test_terminal_position_roundtrip(self):
        tig = TrackIntersectionGraph(TrackSet([0, 10]), TrackSet([0, 30]))
        term = tig.terminal_at(Point(10, 30))
        assert term.position(tig.grid) == Point(10, 30)


class TestGraphView:
    def test_vertex_names(self):
        tig = TrackIntersectionGraph(TrackSet([0, 10, 20]), TrackSet([0, 10]))
        vs, hs = tig.vertex_names()
        assert vs == ["v1", "v2", "v3"]
        assert hs == ["h1", "h2"]

    def test_edges_enumeration_full_grid(self):
        tig = TrackIntersectionGraph(TrackSet([0, 10]), TrackSet([0, 10]))
        assert len(list(tig.edges())) == 4

    def test_obstacle_removes_edges(self):
        tig = TrackIntersectionGraph(TrackSet([0, 10, 20]), TrackSet([0, 10, 20]))
        blocked = tig.add_obstacle(Rect(10, 10, 10, 10))
        assert blocked == 1
        assert (1, 1) not in set(tig.edges())
        assert len(list(tig.edges())) == 8

    def test_degree(self):
        tig = TrackIntersectionGraph(TrackSet([0, 10, 20]), TrackSet([0, 10]))
        assert tig.degree("v1") == 2
        assert tig.degree("h2") == 3
        tig.add_obstacle(Rect(0, 10, 0, 10))
        assert tig.degree("h2") == 2
        with pytest.raises(ValueError):
            tig.degree("x1")

    def test_bipartite_edge_count_invariant(self):
        """Sum of v-degrees equals sum of h-degrees equals |E|."""
        tig = TrackIntersectionGraph(TrackSet([0, 10, 20, 30]), TrackSet([0, 10, 20]))
        tig.add_obstacle(Rect(10, 0, 20, 10))
        v_sum = sum(tig.degree(f"v{i+1}") for i in range(4))
        h_sum = sum(tig.degree(f"h{j+1}") for j in range(3))
        assert v_sum == h_sum == len(list(tig.edges()))
