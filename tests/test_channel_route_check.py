"""Tests that ChannelRoute.check actually catches violations."""

import pytest

from repro.channels import (
    ChannelProblem,
    ChannelRoutingError,
    ChannelRoute,
    HorizontalSpan,
    VerticalJog,
)


def simple_problem():
    # Net 1: top pin col 0, bottom pin col 2.
    return ChannelProblem(top=[1, 0, 0], bottom=[0, 0, 1])


def good_route():
    return ChannelRoute(
        tracks=1,
        length=3,
        spans=[HorizontalSpan(net=1, track=0, c1=0, c2=2)],
        jogs=[
            VerticalJog(net=1, column=0, r1=-1, r2=0),
            VerticalJog(net=1, column=2, r1=0, r2=1),
        ],
    )


class TestValidRoute:
    def test_good_route_passes(self):
        good_route().check(simple_problem())

    def test_metrics(self):
        r = good_route()
        assert r.via_count() == 2
        assert r.height(8) == 16
        assert r.wire_length(8, 8) == 2 * 8 + 8 + 8


class TestViolationsCaught:
    def test_missing_top_pin_jog(self):
        r = good_route()
        r.jogs.pop(0)
        with pytest.raises(ChannelRoutingError, match="top pin"):
            r.check(simple_problem())

    def test_missing_bottom_pin_jog(self):
        r = good_route()
        r.jogs.pop(1)
        with pytest.raises(ChannelRoutingError, match="bottom pin"):
            r.check(simple_problem())

    def test_overlapping_spans_different_nets(self):
        r = good_route()
        r.spans.append(HorizontalSpan(net=2, track=0, c1=1, c2=2))
        with pytest.raises(ChannelRoutingError, match="overlap"):
            r.check(simple_problem())

    def test_same_net_spans_may_abut(self):
        p = simple_problem()
        r = ChannelRoute(
            tracks=1,
            length=3,
            spans=[
                HorizontalSpan(net=1, track=0, c1=0, c2=1),
                HorizontalSpan(net=1, track=0, c1=1, c2=2),
            ],
            jogs=[
                VerticalJog(net=1, column=0, r1=-1, r2=0),
                VerticalJog(net=1, column=2, r1=0, r2=1),
            ],
        )
        r.check(p)

    def test_overlapping_jogs_different_nets(self):
        p = ChannelProblem(top=[1, 0, 0], bottom=[2, 0, 1])
        r = ChannelRoute(
            tracks=2,
            length=3,
            spans=[
                HorizontalSpan(net=1, track=0, c1=0, c2=2),
                HorizontalSpan(net=2, track=1, c1=0, c2=0),
            ],
            jogs=[
                VerticalJog(net=1, column=0, r1=-1, r2=0),
                VerticalJog(net=2, column=0, r1=0, r2=2),  # crosses net 1 jog
                VerticalJog(net=1, column=2, r1=0, r2=2),
            ],
        )
        with pytest.raises(ChannelRoutingError):
            r.check(p)

    def test_jog_endpoint_off_trunk(self):
        r = good_route()
        r.jogs[1] = VerticalJog(net=1, column=1, r1=0, r2=1)
        # Bottom pin is at column 2 but the jog lands mid-span at col 1:
        # the pin connectivity check fires first.
        with pytest.raises(ChannelRoutingError):
            r.check(simple_problem())

    def test_disconnected_net(self):
        p = ChannelProblem(top=[1, 0, 1], bottom=[0, 0, 0])
        r = ChannelRoute(
            tracks=2,
            length=3,
            spans=[
                HorizontalSpan(net=1, track=0, c1=0, c2=0),
                HorizontalSpan(net=1, track=1, c1=2, c2=2),
            ],
            jogs=[
                VerticalJog(net=1, column=0, r1=-1, r2=0),
                VerticalJog(net=1, column=2, r1=-1, r2=1),
            ],
        )
        # Each pin connects to its own island but jog at column 2
        # passes track 0 without net-1 metal there... the r1=-1,r2=1
        # jog touches both tracks; at column 2 net 1 has metal only on
        # track 1 so the check accepts the pass-through and the net IS
        # connected. Make it genuinely disconnected instead:
        r.jogs[1] = VerticalJog(net=1, column=2, r1=0, r2=1)
        with pytest.raises(ChannelRoutingError):
            r.check(p)

    def test_span_off_grid(self):
        r = good_route()
        r.spans.append(HorizontalSpan(net=1, track=5, c1=0, c2=1))
        with pytest.raises(ChannelRoutingError, match="off-track"):
            r.check(simple_problem())

    def test_span_outside_channel(self):
        r = good_route()
        r.spans[0] = HorizontalSpan(net=1, track=0, c1=0, c2=9)
        with pytest.raises(ChannelRoutingError, match="outside"):
            r.check(simple_problem())

    def test_jog_outside_channel(self):
        r = good_route()
        r.jogs.append(VerticalJog(net=1, column=9, r1=-1, r2=0))
        with pytest.raises(ChannelRoutingError, match="outside"):
            r.check(simple_problem())

    def test_touching_jogs_different_nets_rejected(self):
        p = ChannelProblem(top=[1], bottom=[2])
        r = ChannelRoute(
            tracks=2,
            length=1,
            spans=[
                HorizontalSpan(net=1, track=0, c1=0, c2=0),
                HorizontalSpan(net=2, track=1, c1=0, c2=0),
            ],
            jogs=[
                VerticalJog(net=1, column=0, r1=-1, r2=1),  # overshoots to row 1
                VerticalJog(net=2, column=0, r1=1, r2=2),
            ],
        )
        with pytest.raises(ChannelRoutingError):
            r.check(p)


class TestDataValidation:
    def test_span_orders(self):
        with pytest.raises(ValueError):
            HorizontalSpan(net=1, track=0, c1=5, c2=2)

    def test_jog_orders(self):
        with pytest.raises(ValueError):
            VerticalJog(net=1, column=0, r1=3, r2=3)
