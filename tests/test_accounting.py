"""Cross-checks of the flow metric accounting and rendering overlays."""

import pytest

from repro.bench_suite import random_design
from repro.flow import overcell_flow, two_layer_flow


@pytest.fixture(scope="module")
def baseline():
    design = random_design("acct", seed=27, num_cells=8, num_nets=22,
                           num_critical=2)
    return two_layer_flow(design)


class TestLevelAWireAccounting:
    def test_wire_is_channels_plus_side_model(self, baseline):
        """FlowResult.wire_length must equal the documented formula."""
        pitch = 8
        channel_wire = sum(
            route.wire_length(pitch, pitch) for route in baseline.channel_routes
        )
        row_heights = [r.height for r in baseline.placement.rows]
        side_wire = baseline.global_route.side_wire_length(
            row_heights, baseline.channel_heights
        )
        stub_wire = 0
        for use in baseline.global_route.side_uses.values():
            width = (
                baseline.side_widths[0]
                if use.side == "L"
                else baseline.side_widths[1]
            )
            stub_wire += len(use.exits) * (width // 2)
        assert baseline.wire_length == channel_wire + side_wire + stub_wire

    def test_vias_are_channel_vias(self, baseline):
        assert baseline.via_count == sum(
            r.via_count() for r in baseline.channel_routes
        )

    def test_bounds_width_decomposition(self, baseline):
        margin = 16  # FlowParams default
        expected = (
            2 * margin
            + baseline.side_widths[0]
            + baseline.side_widths[1]
            + baseline.placement.core_width
        )
        # realize() snaps up to the pitch.
        assert expected <= baseline.bounds.width < expected + 8

    def test_bounds_height_decomposition(self, baseline):
        margin = 16
        expected = (
            2 * margin
            + sum(baseline.channel_heights)
            + sum(r.height for r in baseline.placement.rows)
        )
        assert expected <= baseline.bounds.height < expected + 8


class TestOvercellWireAccounting:
    def test_wire_splits_into_levels(self):
        design = random_design("acct2", seed=28, num_cells=8, num_nets=22,
                               num_critical=3)
        result = overcell_flow(design)
        assert result.wire_length == (
            result.notes["level_a_wire"] + result.notes["level_b_wire"]
        )
        assert result.notes["level_b_wire"] == result.levelb.total_wire_length

    def test_vias_split_into_levels(self):
        design = random_design("acct3", seed=29, num_cells=8, num_nets=22,
                               num_critical=3)
        result = overcell_flow(design)
        channel_vias = sum(r.via_count() for r in result.channel_routes)
        assert result.via_count == channel_vias + result.levelb.total_vias


class TestSvgOverlay:
    def test_overlay_scales_with_channel_content(self, baseline):
        from repro.viz.svg import svg_flow_result

        with_overlay = svg_flow_result(baseline, show_level_a=True)
        without = svg_flow_result(baseline, show_level_a=False)
        extra_lines = with_overlay.count("<line") - without.count("<line")
        expected = sum(
            len(r.spans) + len(r.jogs) for r in baseline.channel_routes
        )
        # Empty channels are skipped, so extra <= expected, but the
        # overlay must draw the overwhelming majority of the wiring.
        assert 0 < extra_lines <= expected
        assert extra_lines >= expected * 0.9

    def test_overlay_grouped_and_grey(self, baseline):
        from repro.viz.svg import svg_flow_result

        doc = svg_flow_result(baseline)
        assert '<g stroke="#9a9a9a"' in doc
        assert doc.count("</g>") >= 1


class TestCandidateDistinctness:
    def test_candidates_have_distinct_sequences(self):
        from repro.core.search import MBFSearch, candidate_paths
        from repro.core.tig import TrackIntersectionGraph
        from repro.geometry import Point
        from repro.grid import TrackSet

        tig = TrackIntersectionGraph(
            TrackSet(range(0, 90, 10)), TrackSet(range(0, 90, 10))
        )
        terms = tig.register_net(1, [Point(0, 0), Point(80, 80)])
        res = MBFSearch(tig.grid, 1, *terms).run()
        cands = candidate_paths(res, tig.grid)
        assert len(cands) == len(res.leaves)
        sequences = [tuple(c.leaf.track_sequence()) for c in cands]
        assert len(sequences) == len(set(sequences))
