"""Property-based tests for the verification engine.

Two properties, both over randomly generated level B instances:

* **soundness on honest output** - a legally constructed design (every
  net on its own exclusive tracks, terminals at path ends, corners
  claimed exactly where the path turns) verifies CLEAN;
* **sensitivity to corruption** - any of the canonical corruptions
  applied to an honest design is flagged, and with the right rule id.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.check import (
    RULE_CORNER_CLAIM,
    RULE_DANGLING,
    RULE_OPEN,
    RULE_SHORT,
    RULE_TRACK,
    check_levelb,
)
from repro.core.engine import RoutedConnection
from repro.core.router import LevelBResult, RoutedNet
from repro.core.tig import GridTerminal, TrackIntersectionGraph
from repro.geometry import Path, Point, Segment
from repro.grid import TrackSet

#: 16 tracks at pitch 10 per axis; net ``i`` owns index block
#: ``4i .. 4i+3`` on both axes, so distinct nets can never interact.
PITCH = 10
NUM_TRACKS = 16
COORDS = [i * PITCH for i in range(NUM_TRACKS)]


def _path(points):
    pts = [Point(*p) for p in points]
    return Path(tuple(Segment(a, b) for a, b in zip(pts, pts[1:])))


def _connection(points, corners):
    return RoutedConnection(
        source=GridTerminal(0, 0),
        target=GridTerminal(0, 0),
        path=_path(points),
        corners=list(corners),
        cost=0.0,
        expansions_used=0,
    )


class _Net:
    is_sensitive = False

    def __init__(self, name, pins):
        self.name = name
        self._pins = [Point(*p) for p in pins]

    def pin_positions(self):
        return list(self._pins)

    @property
    def degree(self):
        return len(self._pins)


@st.composite
def honest_results(draw, min_nets=1):
    """A legally wired LevelBResult with 1-3 nets on exclusive tracks."""
    k = draw(st.integers(min_value=min_nets, max_value=3))
    tig = TrackIntersectionGraph(TrackSet(COORDS), TrackSet(COORDS))
    routed = []
    for i in range(k):
        lo = 4 * i  # this net's exclusive track-index block
        vi = sorted(
            draw(
                st.lists(
                    st.integers(lo, lo + 3), min_size=2, max_size=2,
                    unique=True,
                )
            )
        )
        hi = sorted(
            draw(
                st.lists(
                    st.integers(lo, lo + 3), min_size=2, max_size=2,
                    unique=True,
                )
            )
        )
        x1, x2 = COORDS[vi[0]], COORDS[vi[1]]
        y1, y2 = COORDS[hi[0]], COORDS[hi[1]]
        shape = draw(st.sampled_from(["H", "V", "L"]))
        if shape == "H":
            points, corners = [(x1, y1), (x2, y1)], []
        elif shape == "V":
            points, corners = [(x1, y1), (x1, y2)], []
        else:  # L: vertical riser then horizontal trunk, one corner
            points = [(x1, y1), (x1, y2), (x2, y2)]
            corners = [(vi[0], hi[1])]
        net = _Net(f"n{i}", [points[0], points[-1]])
        routed.append(
            RoutedNet(
                net=net,
                net_id=i + 1,
                connections=[_connection(points, corners)],
            )
        )
    return LevelBResult(tig=tig, routed=routed, elapsed_s=0.0,
                        nodes_created=0)


@settings(max_examples=60, deadline=None)
@given(honest_results())
def test_honest_designs_verify_clean(result):
    report = check_levelb(result)
    assert report.ok, report.render()
    assert report.violations == []


@settings(max_examples=60, deadline=None)
@given(honest_results(), st.integers(min_value=1, max_value=PITCH - 1),
       st.data())
def test_corruptions_are_always_flagged(result, dx, data):
    corruption = data.draw(
        st.sampled_from(["off-track", "open", "corner", "dangling"])
    )
    victim = data.draw(
        st.integers(min_value=0, max_value=len(result.routed) - 1)
    )
    conn = result.routed[victim].connections[0]
    if corruption == "off-track":
        # Slide the whole path sideways off the track grid.
        shifted = [(p.x + dx, p.y) for p in conn.path.waypoints()]
        conn.path = _path(shifted)
        expected = RULE_TRACK
    elif corruption == "open":
        # The net still claims completion but has no wiring at all.
        result.routed[victim].connections = []
        expected = RULE_OPEN
    elif corruption == "corner":
        # Claim a corner the geometry does not have.  (15,15) is index
        # space: outside every net's block's turn points by construction.
        conn.corners = [*conn.corners, (NUM_TRACKS - 1, NUM_TRACKS - 1)]
        expected = RULE_CORNER_CLAIM
    else:  # dangling: orphan metal connected to nothing
        # The orphan sits on track y=150, above every net's block
        # (blocks stop at index 11), so it can only dangle.
        orphan = _connection(
            [(0, COORDS[-1]), (PITCH, COORDS[-1])], []
        )
        result.routed[victim].connections.append(orphan)
        expected = RULE_DANGLING
    report = check_levelb(result)
    assert expected in report.counts(), (
        corruption,
        report.render(),
    )
    assert not report.ok or expected == RULE_DANGLING


@settings(max_examples=40, deadline=None)
@given(honest_results(min_nets=2), st.data())
def test_cloned_wiring_is_a_short(result, data):
    """Routing one net on top of another always raises drc.short."""
    a, b = data.draw(
        st.permutations(range(len(result.routed))).map(lambda p: p[:2])
    )
    src = result.routed[a].connections[0]
    dst = result.routed[b].connections[0]
    dst.path = _path([(p.x, p.y) for p in src.path.waypoints()])
    dst.corners = list(src.corners)
    report = check_levelb(result)
    assert RULE_SHORT in report.counts(), report.render()
    assert not report.ok
