"""Tests for the end-to-end flows on small designs."""

import pytest

from repro.bench_suite import random_design
from repro.flow import (
    FlowParams,
    multilayer_channel_flow,
    overcell_flow,
    percent_reduction,
    two_layer_flow,
)
from repro.partition import PartitionStrategy


@pytest.fixture(scope="module")
def small_design():
    return random_design("flowtest", seed=11, num_cells=8, num_nets=24, num_critical=3)


@pytest.fixture(scope="module")
def baseline(small_design):
    return two_layer_flow(small_design)


@pytest.fixture(scope="module")
def overcell(small_design):
    return overcell_flow(small_design)


class TestTwoLayerFlow:
    def test_completes(self, baseline):
        assert baseline.completion == 1.0
        assert baseline.layout_area > 0
        assert baseline.wire_length > 0
        assert baseline.via_count > 0

    def test_channel_routes_validated(self, baseline):
        # Pipeline already calls check(); re-verify here explicitly.
        for spec, route in zip(
            baseline.global_route.specs, baseline.channel_routes
        ):
            route.check(spec.problem)

    def test_geometry_consistent(self, baseline, small_design):
        assert small_design.is_placed
        for cell in small_design.cells.values():
            assert baseline.bounds.contains_rect(cell.bounds)

    def test_channel_tracks_recorded(self, baseline):
        assert len(baseline.channel_tracks) == baseline.placement.channel_count
        assert any(t > 0 for t in baseline.channel_tracks)


class TestOvercellFlow:
    def test_completes(self, overcell):
        assert overcell.completion == 1.0
        assert overcell.levelb is not None

    def test_partition_notes(self, overcell, small_design):
        crit = sum(1 for n in small_design.nets.values() if n.is_critical)
        assert overcell.notes["level_a_nets"] == crit
        assert overcell.notes["level_b_nets"] == len(small_design.nets) - crit

    def test_levelb_pins_inside_bounds(self, overcell):
        grid = overcell.levelb.tig.grid
        assert grid.vtracks.span.hi <= overcell.bounds.x2
        assert grid.htracks.span.hi <= overcell.bounds.y2

    def test_paper_claims_hold(self, baseline, overcell):
        """Table 2's shape: the over-cell flow reduces all three metrics."""
        assert overcell.layout_area < baseline.layout_area
        assert overcell.wire_length < baseline.wire_length
        assert overcell.via_count < baseline.via_count

    def test_channels_shrink(self, baseline, overcell):
        assert sum(overcell.channel_heights) < sum(baseline.channel_heights)

    def test_all_b_partition(self, small_design):
        params = FlowParams(partition=PartitionStrategy.ALL_B)
        result = overcell_flow(small_design, params)
        assert result.notes["level_a_nets"] == 0
        assert result.completion == 1.0
        # Without channel nets every channel keeps minimum clearance.
        assert all(h == 8 for h in result.channel_heights)

    def test_long_to_b_partition(self, small_design):
        params = FlowParams(
            partition=PartitionStrategy.LONG_TO_B, length_threshold=100
        )
        result = overcell_flow(small_design, params)
        assert result.completion == 1.0
        assert result.notes["level_a_nets"] > 0


class TestMultilayerChannelFlow:
    def test_optimistic_model(self, small_design, baseline):
        ml = multilayer_channel_flow(small_design)
        assert ml.layout_area < baseline.layout_area
        assert "optimistic" in ml.flow

    def test_optimistic_halves_channel_heights(self, small_design, baseline):
        ml = multilayer_channel_flow(small_design)
        for half, full in zip(ml.channel_heights, baseline.channel_heights):
            assert half <= (full + 1) // 2 + 1

    def test_design_rule_aware_larger_than_optimistic(self, small_design):
        opt = multilayer_channel_flow(small_design)
        dra = multilayer_channel_flow(small_design, design_rule_aware=True)
        # The paper's argument: with real design rules the saving shrinks.
        assert dra.layout_area >= opt.layout_area

    def test_table3_shape(self, small_design):
        """Over-cell beats even the optimistic 4-layer channel model."""
        ml = multilayer_channel_flow(small_design)
        oc = overcell_flow(small_design)
        assert oc.layout_area < ml.layout_area

    def test_custom_area_factor(self, small_design, baseline):
        params = FlowParams(channel_area_factor=0.75)
        ml = multilayer_channel_flow(small_design, params)
        ml50 = multilayer_channel_flow(small_design)
        assert ml.layout_area >= ml50.layout_area


class TestHelpers:
    def test_percent_reduction(self):
        assert percent_reduction(200, 100) == 50.0
        assert percent_reduction(0, 100) == 0.0
        assert percent_reduction(100, 120) == pytest.approx(-20.0)

    def test_summary_strings(self, baseline, overcell):
        assert "area=" in baseline.summary()
        assert overcell.design in overcell.summary()

    def test_flows_deterministic(self, small_design):
        a = overcell_flow(small_design)
        b = overcell_flow(small_design)
        assert a.layout_area == b.layout_area
        assert a.wire_length == b.wire_length
        assert a.via_count == b.via_count


class TestChannelRouterChoice:
    def test_left_edge_flow_completes(self, small_design):
        params = FlowParams(channel_router="left-edge")
        result = two_layer_flow(small_design, params)
        assert result.completion == 1.0
        for spec, route in zip(result.global_route.specs, result.channel_routes):
            route.check(spec.problem)

    def test_unknown_router_rejected(self, small_design):
        with pytest.raises(ValueError, match="channel router"):
            two_layer_flow(small_design, FlowParams(channel_router="magic"))

    def test_router_choice_changes_nothing_fundamental(self, small_design, baseline):
        lea = two_layer_flow(small_design, FlowParams(channel_router="left-edge"))
        # Same decomposition, possibly different track counts.
        assert len(lea.channel_tracks) == len(baseline.channel_tracks)
        assert lea.completion == baseline.completion == 1.0
