"""End-to-end integration tests across the whole stack."""

import os
import runpy
import sys

import pytest

from repro.bench_suite import ami33_like, random_design
from repro.flow import (
    FlowParams,
    multilayer_channel_flow,
    overcell_flow,
    two_layer_flow,
)


class TestMidSizeEndToEnd:
    """A 30-net design through every flow, with invariants checked."""

    @pytest.fixture(scope="class")
    def design(self):
        return random_design("integ", seed=77, num_cells=10, num_nets=30,
                             num_critical=4)

    def test_three_flows_consistent(self, design):
        base = two_layer_flow(design)
        oc = overcell_flow(design)
        ml = multilayer_channel_flow(design)
        # Monotone ordering the paper's story predicts:
        assert oc.layout_area < ml.layout_area < base.layout_area
        assert oc.completion == 1.0

    def test_levelb_occupancy_matches_paths(self, design):
        oc = overcell_flow(design)
        grid = oc.levelb.tig.grid
        claimed_ids = set(grid.owners())
        routed_ids = {r.net_id for r in oc.levelb.routed}
        assert claimed_ids <= routed_ids

    def test_cells_inside_layout_and_disjoint(self, design):
        oc = overcell_flow(design)
        assert design.validate() == []
        for cell in design.cells.values():
            assert oc.bounds.contains_rect(cell.bounds)

    def test_channel_heights_match_routes(self, design):
        base = two_layer_flow(design)
        pitch = FlowParams().channel_pitch
        for route, height in zip(base.channel_routes, base.channel_heights):
            if route.tracks or route.jogs:
                assert height == (route.tracks + 1) * pitch
            else:
                assert height == pitch


class TestSuiteSmoke:
    """One full suite end to end (the slowest single test in the repo)."""

    def test_ami33_full_run(self):
        design = ami33_like()
        oc = overcell_flow(design)
        assert oc.completion == 1.0
        assert oc.notes["level_a_nets"] == 4
        assert oc.levelb.total_wire_length > 0
        # Every level B net either completed all its connections or is
        # accounted as failed (none here).
        for routed in oc.levelb.routed:
            assert routed.complete
            assert len(routed.connections) >= routed.net.degree - 1 - \
                routed.failed_terminals


class TestExamplesRun:
    """Each example must execute cleanly (they are part of the API)."""

    def _run(self, name, tmp_path, monkeypatch, argv=None):
        path = os.path.join(
            os.path.dirname(__file__), "..", "examples", name
        )
        monkeypatch.chdir(tmp_path)  # examples write SVGs into cwd
        monkeypatch.setattr(sys, "argv", [name, *(argv or [])])
        runpy.run_path(os.path.abspath(path), run_name="__main__")

    def test_quickstart(self, tmp_path, monkeypatch, capsys):
        self._run("quickstart.py", tmp_path, monkeypatch)
        out = capsys.readouterr().out
        assert "Track Intersection Graph" in out
        assert "Path Selection Tree" in out
        assert "completion: 100%" in out

    def test_channel_router_demo(self, tmp_path, monkeypatch, capsys):
        self._run("channel_router_demo.py", tmp_path, monkeypatch)
        out = capsys.readouterr().out
        assert "greedy:" in out
        assert "left-edge completed" in out

    def test_obstacle_example(self, tmp_path, monkeypatch, capsys):
        self._run("obstacle_aware_routing.py", tmp_path, monkeypatch)
        out = capsys.readouterr().out
        assert "must be 0" in out
        assert "0 (must be 0)" in out
        assert (tmp_path / "obstacles.svg").exists()

    def test_partition_example(self, tmp_path, monkeypatch, capsys):
        self._run("partition_and_weights.py", tmp_path, monkeypatch)
        out = capsys.readouterr().out
        assert "Partition strategy sweep" in out
        assert "Cost-weight sweep" in out

    def test_process_exploration_example(self, tmp_path, monkeypatch, capsys):
        self._run("process_exploration.py", tmp_path, monkeypatch)
        out = capsys.readouterr().out
        assert "process exploration" in out
        assert "baseline (paper-like)" in out
