"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.channels import ChannelProblem
from repro.geometry import Point, Rect
from repro.grid import TrackSet
from repro.netlist import Design, Edge
from repro.core.tig import TrackIntersectionGraph


def make_random_channel_problem(
    length: int, num_nets: int, seed: int
) -> ChannelProblem:
    """A random well-formed channel problem (used across router tests)."""
    rng = random.Random(seed)
    top = [0] * length
    bottom = [0] * length
    slots = [(side, col) for side in (0, 1) for col in range(length)]
    rng.shuffle(slots)
    i = 0
    for net in range(1, num_nets + 1):
        for _ in range(rng.randint(2, 4)):
            if i >= len(slots):
                break
            side, col = slots[i]
            i += 1
            if side == 0:
                top[col] = net
            else:
                bottom[col] = net
    return ChannelProblem(top=top, bottom=bottom)


def make_figure1_instance() -> tuple[TrackIntersectionGraph, dict]:
    """A small instance shaped like the paper's Figure 1.

    Six vertical tracks (v1..v6), five horizontal (h1..h5); net A and C
    pre-routed conceptually as obstacles is overkill - instead we give
    three nets A, B, C and an obstacle O1 between B's terminals.
    Returns the TIG and a dict of net name -> (net_id, terminals).
    """
    vt = TrackSet([0, 10, 20, 30, 40, 50])
    ht = TrackSet([0, 10, 20, 30, 40])
    tig = TrackIntersectionGraph(vt, ht)
    nets = {}
    nets["A"] = (1, tig.register_net(1, [Point(0, 0), Point(20, 40)]))
    nets["B"] = (2, tig.register_net(2, [Point(10, 10), Point(50, 30)]))
    nets["C"] = (3, tig.register_net(3, [Point(40, 0), Point(40, 40)]))
    tig.add_obstacle(Rect(25, 15, 35, 25))
    return tig, nets


def make_toy_design(seed: int = 7, nets: int = 6) -> Design:
    """A small placed 4-cell design for router tests."""
    rng = random.Random(seed)
    d = Design(f"toy{seed}")
    for i in range(4):
        c = d.add_cell(f"c{i}", 80, 64)
        c.place(16 + (i % 2) * 120, 16 + (i // 2) * 104)
    pins = []
    for i in range(4):
        for j in range(6):
            edge = Edge.TOP if j % 2 == 0 else Edge.BOTTOM
            pins.append(d.add_pin(f"c{i}", f"p{j}", edge, 8 + j * 8))
    rng.shuffle(pins)
    idx = 0
    sizes = [2, 2, 3, 2, 4, 3, 2, 3][:nets]
    for k, size in enumerate(sizes):
        if idx + size > len(pins):
            break
        net = d.add_net(f"n{k}")
        for p in pins[idx : idx + size]:
            net.add_pin(p)
        idx += size
    return d


@pytest.fixture
def figure1():
    return make_figure1_instance()


@pytest.fixture
def toy_design():
    return make_toy_design()
