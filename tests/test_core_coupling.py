"""Tests for the parallel-run cost term and coupling analysis."""

import pytest

from repro.geometry import Point, Rect
from repro.grid import RoutingGrid, TrackSet
from repro.core import LevelBConfig, LevelBRouter
from repro.core.coupling import ParallelRunPenalty, parallel_exposure
from repro.netlist import Design, Edge


def make_grid(n=12):
    ts = TrackSet(range(0, n * 10, 10))
    return RoutingGrid(ts, TrackSet(range(0, n * 10, 10)))


class TestParallelRunPenalty:
    def test_validation(self):
        with pytest.raises(ValueError):
            ParallelRunPenalty([1], weight=-1.0)
        with pytest.raises(ValueError):
            ParallelRunPenalty([1], separation=0)

    def test_no_wiring_no_cost(self):
        grid = make_grid()
        term = ParallelRunPenalty([9])
        pts = [Point(0, 50), Point(110, 50)]
        assert term.cost(grid, pts, []) == 0.0

    def test_adjacent_parallel_run_charged(self):
        grid = make_grid()
        # Sensitive net 9 runs horizontally on track y=60 (h_idx 6).
        grid.occupy_h(6, 0, 11, net_id=9)
        term = ParallelRunPenalty([9], weight=1.0, separation=1)
        beside = [Point(0, 50), Point(110, 50)]  # the track just below
        far = [Point(0, 10), Point(110, 10)]
        assert term.cost(grid, beside, []) == 12.0  # all 12 columns adjacent
        assert term.cost(grid, far, []) == 0.0

    def test_crossing_not_charged(self):
        grid = make_grid()
        grid.occupy_h(6, 0, 11, net_id=9)
        term = ParallelRunPenalty([9], weight=1.0)
        crossing = [Point(50, 0), Point(50, 110)]  # vertical across it
        assert term.cost(grid, crossing, []) == 0.0

    def test_separation_widens_window(self):
        grid = make_grid()
        grid.occupy_h(6, 0, 11, net_id=9)
        two_below = [Point(0, 40), Point(110, 40)]
        assert ParallelRunPenalty([9], 1.0, separation=1).cost(
            grid, two_below, []
        ) == 0.0
        assert ParallelRunPenalty([9], 1.0, separation=2).cost(
            grid, two_below, []
        ) == 12.0

    def test_exclude_self(self):
        grid = make_grid()
        grid.occupy_h(6, 0, 11, net_id=9)
        term = ParallelRunPenalty(None, weight=1.0, exclude=9)
        beside = [Point(0, 50), Point(110, 50)]
        assert term.cost(grid, beside, []) == 0.0

    def test_avoid_all_mode(self):
        grid = make_grid()
        grid.occupy_h(6, 0, 11, net_id=3)  # any foreign net
        term = ParallelRunPenalty(None, weight=1.0, exclude=7)
        beside = [Point(0, 50), Point(110, 50)]
        assert term.cost(grid, beside, []) == 12.0

    def test_empty_targets_free(self):
        grid = make_grid()
        grid.occupy_h(6, 0, 11, net_id=3)
        term = ParallelRunPenalty([], weight=1.0)
        assert term.cost(grid, [Point(0, 50), Point(110, 50)], []) == 0.0


class TestParallelExposure:
    def test_symmetric_count(self):
        grid = make_grid()
        grid.occupy_h(5, 0, 11, net_id=1)
        grid.occupy_h(6, 0, 11, net_id=2)
        assert parallel_exposure(grid, 1, [2]) == 12
        assert parallel_exposure(grid, 2, [1]) == 12

    def test_distance_beyond_separation_ignored(self):
        grid = make_grid()
        grid.occupy_h(3, 0, 11, net_id=1)
        grid.occupy_h(6, 0, 11, net_id=2)
        assert parallel_exposure(grid, 1, [2], separation=1) == 0
        assert parallel_exposure(grid, 1, [2], separation=3) == 12

    def test_self_excluded(self):
        grid = make_grid()
        grid.occupy_h(5, 0, 11, net_id=1)
        grid.occupy_h(6, 0, 11, net_id=1)
        assert parallel_exposure(grid, 1, [1]) == 0

    def test_vertical_direction_counted(self):
        grid = make_grid()
        grid.occupy_v(5, 0, 11, net_id=1)
        grid.occupy_v(6, 0, 11, net_id=2)
        assert parallel_exposure(grid, 1, [2]) == 12


class TestRouterIntegration:
    def sensitive_design(self):
        """A sensitive straight net plus a same-direction neighbour.

        Net "victim" runs horizontally across the middle; net "noisy"
        connects two points one track away whose cheapest equal-length
        routes include one hugging the victim.
        """
        d = Design("coupled")
        def pin_at(name, x, y):
            cell = d.add_cell(name, 8, 8)
            cell.place(x, y - 8)
            return d.add_pin(name, "p", Edge.TOP, 0)

        victim = d.add_net("victim", is_critical=False)
        victim.is_sensitive = True
        victim.add_pin(pin_at("v1", 0, 60))
        victim.add_pin(pin_at("v2", 200, 60))
        noisy = d.add_net("noisy")
        noisy.add_pin(pin_at("n1", 20, 48))
        noisy.add_pin(pin_at("n2", 180, 100))
        return d

    def route(self, **cfg):
        design = self.sensitive_design()
        config = LevelBConfig(**cfg)
        router = LevelBRouter(
            Rect(-20, 0, 240, 140), list(design.nets.values()), config=config
        )
        result = router.route()
        grid = result.tig.grid
        victim_id = router.net_id(design.nets["victim"])
        noisy_id = router.net_id(design.nets["noisy"])
        return result, parallel_exposure(grid, noisy_id, [victim_id], separation=1)

    def test_term_reduces_exposure(self):
        _, exposure_on = self.route(parallel_run_weight=50.0)
        _, exposure_off = self.route(parallel_run_weight=0.0)
        assert exposure_on <= exposure_off

    def test_routing_still_completes(self):
        result, _ = self.route(parallel_run_weight=50.0)
        assert result.completion_rate == 1.0
