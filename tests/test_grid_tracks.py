"""Tests for repro.grid.tracks."""

import pytest
from hypothesis import given, strategies as st

from repro.geometry import Interval
from repro.grid import TrackSet


class TestTrackSetConstruction:
    def test_sorted_deduped(self):
        ts = TrackSet([5, 1, 3, 3, 1])
        assert list(ts) == [1, 3, 5]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            TrackSet([])

    def test_uniform_includes_endpoints(self):
        ts = TrackSet.uniform(0, 25, 10)
        assert list(ts) == [0, 10, 20, 25]

    def test_uniform_exact_fit(self):
        ts = TrackSet.uniform(0, 20, 10)
        assert list(ts) == [0, 10, 20]

    def test_uniform_with_extra(self):
        ts = TrackSet.uniform(0, 30, 10, extra=[7, 13])
        assert list(ts) == [0, 7, 10, 13, 20, 30]

    def test_uniform_extra_outside_rejected(self):
        with pytest.raises(ValueError):
            TrackSet.uniform(0, 30, 10, extra=[35])

    def test_uniform_bad_args(self):
        with pytest.raises(ValueError):
            TrackSet.uniform(0, 30, 0)
        with pytest.raises(ValueError):
            TrackSet.uniform(30, 0, 10)


class TestTrackSetQueries:
    def test_index_of(self):
        ts = TrackSet([0, 10, 20])
        assert ts.index_of(10) == 1
        with pytest.raises(KeyError):
            ts.index_of(15)

    def test_has(self):
        ts = TrackSet([0, 10])
        assert ts.has(10) and not ts.has(5)

    def test_nearest_index(self):
        ts = TrackSet([0, 10, 20])
        assert ts.nearest_index(-5) == 0
        assert ts.nearest_index(26) == 2
        assert ts.nearest_index(12) == 1
        assert ts.nearest_index(17) == 2
        assert ts.nearest_index(5) == 0  # ties go low

    def test_index_range(self):
        ts = TrackSet([0, 8, 16, 24, 32])
        assert list(ts.index_range(8, 24)) == [1, 2, 3]
        assert list(ts.index_range(9, 15)) == []
        assert list(ts.index_range(-5, 100)) == [0, 1, 2, 3, 4]

    def test_clip_indices(self):
        ts = TrackSet([0, 8, 16])
        assert ts.clip_indices(Interval(-4, 99)) == Interval(0, 2)

    def test_distance(self):
        ts = TrackSet([0, 8, 20])
        assert ts.distance(0, 2) == 20
        assert ts.distance(2, 1) == 12

    def test_span(self):
        ts = TrackSet([3, 8, 20])
        assert ts.span == Interval(3, 20)

    @given(st.lists(st.integers(-500, 500), min_size=1, max_size=40),
           st.integers(-600, 600))
    def test_nearest_is_truly_nearest(self, coords, probe):
        ts = TrackSet(coords)
        best = ts[ts.nearest_index(probe)]
        assert all(abs(best - probe) <= abs(c - probe) for c in ts)
