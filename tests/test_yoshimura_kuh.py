"""Tests for the Yoshimura-Kuh net-merging channel router."""

import pytest

from repro.channels import (
    ChannelProblem,
    ChannelRoutingError,
    GreedyChannelRouter,
    LeftEdgeRouter,
    YKChannelRouter,
)

from conftest import make_random_channel_problem


class TestBasics:
    def test_simple_problem(self):
        p = ChannelProblem(top=[1, 0, 2], bottom=[0, 1, 0])
        route = YKChannelRouter().route(p)
        route.check(p)

    def test_single_column_two_sided_net(self):
        p = ChannelProblem(top=[1], bottom=[1])
        route = YKChannelRouter().route(p)
        route.check(p)
        assert route.tracks == 0

    def test_single_pin_net_ignored(self):
        p = ChannelProblem(top=[9, 1, 1], bottom=[0, 0, 0])
        route = YKChannelRouter().route(p)
        route.check(p)
        assert all(s.net != 9 for s in route.spans)

    def test_cycle_raises(self):
        p = ChannelProblem(top=[1, 2], bottom=[2, 1])
        with pytest.raises(ChannelRoutingError, match="cycle"):
            YKChannelRouter().route(p)

    def test_merging_shares_track(self):
        """Two disjoint unconstrained nets must share one track."""
        #  net 1 spans columns 0-2, net 2 spans 4-6; no constraints.
        p = ChannelProblem(
            top=[1, 0, 1, 0, 2, 0, 2],
            bottom=[0] * 7,
        )
        route = YKChannelRouter().route(p)
        route.check(p)
        assert route.tracks == 1

    def test_merge_respects_vcg(self):
        """Merging may not create a constraint cycle."""
        # Net 1 (cols 0-1) must be above net 2 at col 1; net 3 (cols
        # 3-4) must be above net 1-candidate... construct: net 2 above
        # net 1's merge partner would cycle.
        p = ChannelProblem(
            top=[1, 1, 0, 2, 2],
            bottom=[0, 2, 0, 1, 0],
        )
        # Net-level VCG: 1 -> 2 (col 1) and 2 -> 1 (col 3): cycle.
        with pytest.raises(ChannelRoutingError):
            YKChannelRouter().route(p)

    def test_constrained_chain_tracks(self):
        # 1 above 2 above 3, all overlapping: needs 3 tracks.
        p = ChannelProblem(
            top=[1, 1, 2, 0],
            bottom=[0, 2, 3, 3],
        )
        route = YKChannelRouter().route(p)
        route.check(p)
        assert route.tracks == 3


class TestQuality:
    @pytest.mark.parametrize("seed", range(30))
    def test_random_valid_or_cycle(self, seed):
        p = make_random_channel_problem(30, 8, seed=seed)
        try:
            route = YKChannelRouter().route(p)
        except ChannelRoutingError:
            return
        route.check(p)
        assert route.tracks >= p.density()

    def test_never_worse_than_no_merging_on_average(self):
        """Across a batch, YK merging beats plain left-edge tracks."""
        yk_total = lea_total = 0
        cases = 0
        for seed in range(40):
            p = make_random_channel_problem(30, 8, seed=seed)
            try:
                yk = YKChannelRouter().route(p)
                lea = LeftEdgeRouter(dogleg=False).route(p)
            except ChannelRoutingError:
                continue
            yk.check(p)
            yk_total += yk.tracks
            lea_total += lea.tracks
            cases += 1
        assert cases > 10
        assert yk_total <= lea_total

    @pytest.mark.parametrize("seed", range(10))
    def test_deterministic(self, seed):
        p = make_random_channel_problem(30, 8, seed=seed)
        try:
            a = YKChannelRouter().route(p)
            b = YKChannelRouter().route(p)
        except ChannelRoutingError:
            return
        assert a.tracks == b.tracks
        assert sorted(map(str, a.spans)) == sorted(map(str, b.spans))

    @pytest.mark.parametrize("seed", [0, 3, 6, 9])
    def test_comparable_to_greedy(self, seed):
        p = make_random_channel_problem(30, 8, seed=seed)
        greedy = GreedyChannelRouter().route(p)
        try:
            yk = YKChannelRouter().route(p)
        except ChannelRoutingError:
            pytest.skip("cyclic instance")
        assert yk.tracks <= 2 * greedy.tracks + 2
