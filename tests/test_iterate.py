"""Tests for ``repro.iterate`` — the negotiated-congestion loop.

Four layers of coverage (docs/ITERATION.md):

* the :class:`TrackHistory` cost carrier and its fold into the
  section 3.2 evaluator (one-pass costs must stay bit-identical);
* the ordering-policy registry and the determinism contract every
  policy inherits from ``core/ordering.py``;
* the convergence loop itself — converged-at-zero bit-identity with
  the seed digests, real recovery on a one-pass-failing design,
  honest stalling, and grid/state hygiene after every outcome;
* the knobs' ride through ``FlowParams`` and the serve wire protocol
  (digest classification per the ``digest.fields`` contract).
"""

from __future__ import annotations

import random

import pytest

from repro.core import LevelBRouter
from repro.core.cost import CornerCostEvaluator, CostWeights, TrackHistory
from repro.core.ordering import NetOrdering, order_nets
from repro.geometry import Point, Rect
from repro.grid import RoutingGrid, TrackSet
from repro.iterate import (
    CostSchedule,
    FeatureOrderingPolicy,
    FeatureWeights,
    IterateConfig,
    OrderingPolicy,
    available_policies,
    get_policy,
    iterate_levelb,
    register_policy,
    tune_feature_policy,
)
from repro.iterate.policies import NO_FEEDBACK, NetFeedback, _REGISTRY

from conftest import make_toy_design


def make_grid(n=9):
    ts = TrackSet(range(0, n * 10, 10))
    return RoutingGrid(ts, TrackSet(range(0, n * 10, 10)))


def levelb_instance(seed: int, num_cells: int = 6, num_nets: int = 40):
    """A level B router over the real over-cell pipeline's geometry."""
    from repro.bench_suite import random_design
    from repro.flow import FlowParams
    from repro.flow.pipeline import _run_channel_pipeline
    from repro.partition import partition_nets

    design = random_design(
        f"iter{seed}", seed=seed, num_cells=num_cells, num_nets=num_nets
    )
    params = FlowParams()
    nets = design.routable_nets()
    set_a, set_b = partition_nets(
        nets, params.partition, length_threshold=params.length_threshold
    )
    placement, _gr, _routes, heights, side_widths = _run_channel_pipeline(
        design, set_a, params
    )
    bounds = placement.realize(
        heights,
        left_width=side_widths[0],
        right_width=side_widths[1],
        margin=params.margin,
    )
    return LevelBRouter(bounds, set_b)


# ----------------------------------------------------------------------
# TrackHistory
# ----------------------------------------------------------------------
class TestTrackHistory:
    def test_starts_uncharged(self):
        h = TrackHistory(4, 4)
        assert not h.charged
        assert h.peak() == 0.0

    def test_charge_window_hits_crossing_tracks(self):
        h = TrackHistory(6, 6)
        h.charge_window(1, 3, 2, 2, 1.5)
        assert h.v == [0.0, 1.5, 1.5, 1.5, 0.0, 0.0]
        assert h.h == [0.0, 0.0, 1.5, 0.0, 0.0, 0.0]
        assert h.charged
        assert h.peak() == 1.5

    def test_charge_window_clamps_to_bounds(self):
        h = TrackHistory(3, 3)
        h.charge_window(-5, 99, -1, 99, 1.0)
        assert h.v == [1.0, 1.0, 1.0]
        assert h.h == [1.0, 1.0, 1.0]

    def test_negative_charge_rejected(self):
        h = TrackHistory(3, 3)
        with pytest.raises(ValueError):
            h.charge_window(0, 1, 0, 1, -0.5)

    def test_decay(self):
        h = TrackHistory(2, 2)
        h.charge_window(0, 1, 0, 1, 4.0)
        h.decay(0.5)
        assert h.v == [2.0, 2.0]
        h.decay(0.0)
        assert not h.charged
        with pytest.raises(ValueError):
            h.decay(1.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            TrackHistory(0, 4)
        with pytest.raises(ValueError):
            TrackHistory(4, 4, weight=-1.0)

    def test_window_slice_matches_global_indices(self):
        h = TrackHistory(8, 8, weight=2.0)
        h.charge_window(2, 5, 3, 6, 1.0)
        sliced = h.window(2, 5, 3, 6)
        assert sliced.weight == 2.0
        assert sliced.v == h.v[2:6]
        assert sliced.h == h.h[3:7]

    def test_segment_cost_charges_tracks_once_per_segment(self):
        grid = make_grid(9)
        h = TrackHistory(9, 9, weight=2.0)
        h.charge_window(3, 3, 5, 5, 1.0)  # v-track 3 and h-track 5
        # h-run on y=50 (h index 5), corner, v-run on x=30 (v index 3).
        points = [Point(0, 50), Point(30, 50), Point(30, 0)]
        assert h.segment_cost(grid, points) == pytest.approx(2.0 * 2.0)
        # An uncharged path pays nothing.
        clean = [Point(0, 10), Point(20, 10)]
        assert h.segment_cost(grid, clean) == 0.0

    def test_segment_cost_zero_weight_shortcut(self):
        grid = make_grid(9)
        h = TrackHistory(9, 9, weight=0.0)
        h.charge_window(0, 8, 0, 8, 5.0)
        assert h.segment_cost(grid, [Point(0, 0), Point(40, 0)]) == 0.0


class TestEvaluatorFold:
    def test_no_history_is_seed_identical(self):
        grid = make_grid()
        base = CornerCostEvaluator(grid, CostWeights())
        assert base.history is None
        points = [Point(0, 20), Point(40, 20)]
        assert base.extra_cost(points, []) == 0.0

    def test_history_surcharge_is_additive(self):
        grid = make_grid()
        h = TrackHistory(9, 9, weight=3.0)
        h.charge_window(0, 8, 2, 2, 1.0)  # h-track at y=20
        ev = CornerCostEvaluator(grid, CostWeights(), history=h)
        points = [Point(0, 20), Point(40, 20)]
        assert ev.extra_cost(points, []) == pytest.approx(3.0)
        # The memoised corner term stays history-free.
        assert ev.corner_cost(4, 2) == CornerCostEvaluator(
            grid, CostWeights()
        ).corner_cost(4, 2)


# ----------------------------------------------------------------------
# CostSchedule
# ----------------------------------------------------------------------
class TestCostSchedule:
    def test_weight_grows_per_iteration(self):
        s = CostSchedule(history_weight=6.0, present_base=1.0, present_growth=0.5)
        assert s.weight_at(1) == pytest.approx(6.0)
        assert s.weight_at(2) == pytest.approx(9.0)
        assert s.weight_at(3) == pytest.approx(12.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            CostSchedule(history_weight=-1.0)
        with pytest.raises(ValueError):
            CostSchedule(decay=1.5)
        with pytest.raises(ValueError):
            CostSchedule(present_growth=-0.1)


# ----------------------------------------------------------------------
# Policy registry
# ----------------------------------------------------------------------
class TestPolicyRegistry:
    def test_builtins_registered(self):
        assert available_policies() == ("congestion", "feature", "longest-first")

    def test_get_policy_returns_fresh_instances(self):
        a = get_policy("congestion")
        b = get_policy("congestion")
        assert a is not b
        assert a.name == "congestion"

    def test_unknown_policy_lists_available(self):
        with pytest.raises(ValueError, match="longest-first"):
            get_policy("nope")

    def test_register_rejects_duplicates_and_empty_names(self):
        class Dup(OrderingPolicy):
            name = "longest-first"

            def reorder(self, nets, feedback):  # pragma: no cover
                return list(nets)

        with pytest.raises(ValueError, match="already registered"):
            register_policy(Dup)

        class Anon(OrderingPolicy):
            def reorder(self, nets, feedback):  # pragma: no cover
                return list(nets)

        with pytest.raises(ValueError, match="non-empty"):
            register_policy(Anon)
        assert "nameless" not in _REGISTRY


class TestPolicyDeterminism:
    def _nets(self):
        design = make_toy_design(nets=6)
        return list(design.nets.values())

    def _feedback(self, nets):
        # Synthetic feedback with deliberate ties: half the nets
        # failed, overflow/demand repeat across nets.
        fb = {}
        for i, n in enumerate(sorted(nets, key=lambda n: n.name)):
            fb[n.name] = NetFeedback(
                failed=i % 2 == 0,
                overflow=i % 3,
                demand=float(i % 2),
                wire_length=100,
            )
        return fb

    def test_initial_order_matches_seed_ordering(self):
        nets = self._nets()
        expected = [
            n.name for n in order_nets(nets, NetOrdering.LONGEST_FIRST)
        ]
        for name in available_policies():
            policy = get_policy(name)
            got = [n.name for n in policy.initial_order(nets)]
            assert sorted(got) == sorted(n.name for n in nets), name
            if name == "longest-first":
                assert got == expected

    def test_reorder_is_shuffle_invariant_permutation(self):
        nets = self._nets()
        feedback = self._feedback(nets)
        rng = random.Random(99)
        for name in available_policies():
            policy = get_policy(name)
            baseline = [n.name for n in policy.reorder(nets, feedback)]
            assert sorted(baseline) == sorted(n.name for n in nets), name
            for _ in range(10):
                shuffled = list(nets)
                rng.shuffle(shuffled)
                got = [n.name for n in policy.reorder(shuffled, feedback)]
                assert got == baseline, name

    def test_failed_nets_route_first(self):
        nets = self._nets()
        feedback = self._feedback(nets)
        failed = {name for name, fb in feedback.items() if fb.failed}
        for name in ("longest-first", "congestion"):
            ordered = get_policy(name).reorder(nets, feedback)
            head = {n.name for n in ordered[: len(failed)]}
            assert head == failed, name

    def test_no_feedback_default(self):
        assert not NO_FEEDBACK.failed
        assert NO_FEEDBACK.overflow == 0

    def test_feature_weights_change_the_order(self):
        nets = self._nets()
        feedback = self._feedback(nets)
        length_led = FeatureOrderingPolicy(
            FeatureWeights(fail=0, overflow=0, demand=0, length=1, degree=0)
        )
        fail_led = FeatureOrderingPolicy(
            FeatureWeights(fail=10, overflow=0, demand=0, length=0, degree=0)
        )
        by_length = [n.name for n in length_led.reorder(nets, feedback)]
        by_fail = [n.name for n in fail_led.reorder(nets, feedback)]
        failed = {name for name, fb in feedback.items() if fb.failed}
        assert {n for n in by_fail[: len(failed)]} == failed
        assert by_length != by_fail


# ----------------------------------------------------------------------
# The loop
# ----------------------------------------------------------------------
class TestIterateLoop:
    def test_converged_at_zero_is_one_pass_identical(self):
        """A design that completes one-pass takes the identical path."""
        design = make_toy_design()
        plain = LevelBRouter(Rect(0, 0, 256, 256), list(design.nets.values()))
        reference = plain.route()
        assert reference.completion_rate == 1.0

        router = LevelBRouter(Rect(0, 0, 256, 256), list(design.nets.values()))
        result, report = iterate_levelb(router)
        assert report.iterations == 0
        assert report.converged and not report.stalled
        assert len(report.records) == 1 and report.records[0].committed
        assert result.total_wire_length == reference.total_wire_length
        assert result.total_corners == reference.total_corners
        got = {
            r.net.name: [tuple(c.path.waypoints()) for c in r.connections]
            for r in result.routed
        }
        want = {
            r.net.name: [tuple(c.path.waypoints()) for c in r.connections]
            for r in reference.routed
        }
        assert got == want
        assert router.history is None

    def test_recovers_a_one_pass_failure(self):
        """The acceptance property, in miniature: a design the one-pass
        router cannot finish completes under iteration."""
        one_pass = levelb_instance(9).route()
        assert one_pass.completion_rate < 1.0

        router = levelb_instance(9)
        result, report = iterate_levelb(
            router, IterateConfig(max_iterations=4, policy="congestion")
        )
        assert report.converged
        assert result.completion_rate == 1.0
        assert report.iterations >= 1
        assert report.records[0].completion == one_pass.completion_rate
        assert report.final.completion == 1.0
        assert router.history is None
        # The committed wiring on the grid is the returned best: a rip
        # of every routed net must free exactly what the grid holds.
        grid_router = router
        txn = grid_router.tig.planes.begin()
        for routed in result.routed:
            grid_router.unroute(routed.net)
        txn.rollback()

    def test_stall_never_ends_worse_than_one_pass(self):
        one_pass = levelb_instance(5).route()
        assert one_pass.completion_rate < 1.0

        router = levelb_instance(5)
        result, report = iterate_levelb(
            router, IterateConfig(max_iterations=6, stall_limit=2)
        )
        assert not report.converged
        assert report.stalled
        assert result.completion_rate >= one_pass.completion_rate
        assert result.total_wire_length >= 0
        # Non-improving passes are recorded but not committed.
        assert any(not r.committed for r in report.records)
        assert report.final.committed

    def test_max_iterations_zero_is_single_pass(self):
        router = levelb_instance(9)
        result, report = iterate_levelb(router, IterateConfig(max_iterations=0))
        assert report.iterations == 0
        assert len(report.records) == 1
        assert result.completion_rate < 1.0
        assert not report.converged

    def test_config_validation(self):
        with pytest.raises(ValueError):
            IterateConfig(max_iterations=-1)
        with pytest.raises(ValueError):
            IterateConfig(stall_limit=0)

    def test_report_serialises(self):
        router = levelb_instance(9)
        _result, report = iterate_levelb(
            router, IterateConfig(max_iterations=2, policy="feature")
        )
        doc = report.to_dict()
        assert doc["policy"] == "feature"
        assert isinstance(doc["iterations"], int)
        assert isinstance(doc["converged"], bool)
        for rec in doc["records"]:
            assert set(rec) == {
                "iteration",
                "completion",
                "failed_nets",
                "wire_length",
                "corners",
                "nets_ripped",
                "history_peak",
                "committed",
            }

    def test_iterate_counters_emitted(self):
        from repro import instrument
        from repro.instrument.names import (
            ITERATE_NETS_RIPPED,
            ITERATE_PASSES,
        )

        router = levelb_instance(9)
        with instrument.collecting() as col:
            _result, report = iterate_levelb(
                router, IterateConfig(max_iterations=4, policy="congestion")
            )
        assert col.counters[ITERATE_PASSES] == report.iterations
        assert col.counters[ITERATE_NETS_RIPPED] >= len(router.nets)


# ----------------------------------------------------------------------
# Tuning harness
# ----------------------------------------------------------------------
class TestTuning:
    def test_tune_feature_policy_ranks_candidates(self):
        from repro.bench_suite import random_corpus

        designs = random_corpus(2, num_cells=8, num_nets=24)
        candidates = (
            FeatureWeights(),
            FeatureWeights(fail=0.0, overflow=0.0, demand=0.0, length=1.0),
        )
        report = tune_feature_policy(
            designs, candidates, max_iterations=2
        )
        assert len(report.scores) == 2
        assert report.best is report.scores[0]
        assert report.best.key == min(s.key for s in report.scores)
        doc = report.to_dict()
        assert doc["best"]["weights"] in [
            c["weights"] for c in doc["candidates"]
        ]

    def test_tuning_is_deterministic(self):
        from repro.bench_suite import random_corpus

        designs = random_corpus(1, num_cells=8, num_nets=24)
        candidates = (FeatureWeights(),)
        a = tune_feature_policy(designs, candidates, max_iterations=1)
        b = tune_feature_policy(designs, candidates, max_iterations=1)
        assert a.to_dict() == b.to_dict()


# ----------------------------------------------------------------------
# The knobs' ride through flow and serve
# ----------------------------------------------------------------------
class TestServeProtocol:
    def _spec(self, **extra):
        from repro.serve.protocol import JobSpec

        return JobSpec.from_dict({"design": "ami33", **extra})

    def test_spec_defaults_off(self):
        spec = self._spec()
        assert spec.iterate is False
        assert spec.max_iterations == 8
        assert spec.ordering_policy == "longest-first"

    def test_spec_validation(self):
        from repro.serve.protocol import SpecError

        with pytest.raises(SpecError, match="iterate"):
            self._spec(iterate="yes")
        with pytest.raises(SpecError, match="max_iterations"):
            self._spec(max_iterations=-1)
        with pytest.raises(SpecError, match="ordering policy"):
            self._spec(ordering_policy="nope")

    def test_iterate_knobs_key_the_cache(self):
        base = self._spec()
        assert self._spec(iterate=True).digest() != base.digest()
        assert self._spec(max_iterations=3).digest() != base.digest()
        assert (
            self._spec(ordering_policy="congestion").digest() != base.digest()
        )
        # Bit-identical-result knobs still share the entry.
        assert self._spec(parallel=4).digest() == base.digest()

    def test_probe_digest_ignores_iterate(self):
        from repro.io import canonical_digest
        from repro.serve.protocol import probe_canonical

        base = canonical_digest(probe_canonical(self._spec()))
        iterated = canonical_digest(
            probe_canonical(
                self._spec(iterate=True, ordering_policy="congestion")
            )
        )
        assert base == iterated

    def test_build_params_threads_the_knobs(self):
        from repro.serve.protocol import build_params

        params = build_params(
            self._spec(iterate=True, max_iterations=3, ordering_policy="feature")
        )
        assert params.iterate is True
        assert params.max_iterations == 3
        assert params.ordering_policy == "feature"
