"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_suite_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["suite", "--name", "nope", "--out", "x"])


class TestSuiteCommand:
    def test_writes_design_json(self, tmp_path, capsys):
        out = tmp_path / "d.json"
        rc = main(["suite", "--name", "ami33", "--out", str(out)])
        assert rc == 0
        doc = json.loads(out.read_text())
        assert doc["format"] == "repro-design"
        assert len(doc["cells"]) == 33
        assert "wrote" in capsys.readouterr().out


class TestFlowCommand:
    @pytest.fixture()
    def design_file(self, tmp_path):
        from repro.bench_suite import random_design
        from repro.io import save_design

        design = random_design("clid", seed=8, num_cells=6, num_nets=14,
                               num_critical=2)
        path = tmp_path / "design.json"
        save_design(design, path)
        return path

    def test_flow_from_design_file(self, design_file, tmp_path, capsys):
        svg = tmp_path / "out.svg"
        summary = tmp_path / "summary.json"
        rc = main([
            "flow", "--design", str(design_file), "--flow", "overcell",
            "--svg", str(svg), "--json", str(summary),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "overcell" in out
        assert svg.read_text().startswith("<svg")
        doc = json.loads(summary.read_text())
        assert doc["completion"] == 1.0

    def test_flow_two_layer(self, design_file, capsys):
        rc = main(["flow", "--design", str(design_file), "--flow", "two-layer"])
        assert rc == 0
        assert "two-layer-channel" in capsys.readouterr().out

    def test_flow_requires_input(self):
        with pytest.raises(SystemExit):
            main(["flow", "--flow", "overcell"])


class TestRouteCommand:
    @pytest.fixture()
    def design_file(self, tmp_path):
        from repro.bench_suite import random_design
        from repro.io import save_design

        design = random_design("clirt", seed=11, num_cells=6, num_nets=14,
                               num_critical=2)
        path = tmp_path / "design.json"
        save_design(design, path)
        return path

    def test_route_two_planes(self, design_file, tmp_path, capsys):
        svg = tmp_path / "out.svg"
        summary = tmp_path / "summary.json"
        rc = main([
            "route", "--design", str(design_file), "--planes", "2",
            "--svg", str(svg), "--json", str(summary),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "overcell-6layer" in out
        assert "plane 0 (metal3/metal4):" in out
        assert "plane 1 (metal5/metal6):" in out
        # The SVG carries the per-plane legend.
        assert "plane 1: metal5/metal6" in svg.read_text()
        doc = json.loads(summary.read_text())
        assert doc["levelb"]["planes"] == 2
        assert all("plane" in net for net in doc["levelb"]["nets"])

    def test_route_default_single_plane(self, design_file, capsys):
        rc = main(["route", "--design", str(design_file)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "overcell-4layer" in out
        assert "plane 0 (metal3/metal4):" in out
        assert "plane 1" not in out


class TestCheckCommand:
    @pytest.fixture()
    def design_file(self, tmp_path):
        from repro.bench_suite import random_design
        from repro.io import save_design

        design = random_design("clichk", seed=9, num_cells=6, num_nets=14,
                               num_critical=2)
        path = tmp_path / "design.json"
        save_design(design, path)
        return path

    def test_check_clean_design(self, design_file, tmp_path, capsys):
        report_json = tmp_path / "report.json"
        rc = main([
            "check", "--design", str(design_file), "--flow", "overcell",
            "--json", str(report_json),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "CLEAN" in out
        doc = json.loads(report_json.read_text())
        assert doc["ok"] is True
        assert doc["violations"] == []
        assert "drc.short" in doc["rules_run"]

    def test_check_two_layer_flow(self, design_file, capsys):
        rc = main([
            "check", "--design", str(design_file), "--flow", "two-layer",
        ])
        assert rc == 0
        # Only the channel rule applies: the two-layer flow has no
        # level B wiring to verify.
        assert "CLEAN (1 rules checked)" in capsys.readouterr().out

    def test_check_requires_input(self):
        with pytest.raises(SystemExit):
            main(["check", "--flow", "overcell"])

    def test_check_two_planes_strict(self, design_file, capsys):
        rc = main([
            "check", "--design", str(design_file), "--flow", "overcell",
            "--planes", "2", "--strict",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "overcell-6layer" in out
        assert "CLEAN" in out


class TestTablesCommand:
    def test_tables_from_design_file(self, tmp_path, capsys):
        from repro.bench_suite import random_design
        from repro.io import save_design

        design = random_design("clit", seed=12, num_cells=6, num_nets=16,
                               num_critical=2)
        path = tmp_path / "d.json"
        save_design(design, path)
        rc = main(["tables", "--design", str(path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "Table 2" in out
        assert "Table 3" in out


class TestReportCommand:
    def test_report_from_design_file(self, tmp_path, capsys):
        from repro.bench_suite import random_design
        from repro.io import save_design

        design = random_design("clir", seed=14, num_cells=6, num_nets=14,
                               num_critical=2)
        path = tmp_path / "d.json"
        save_design(design, path)
        rc = main(["report", "--design", str(path), "--top", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Routing report" in out
        assert "Level B" in out


class TestTechOption:
    def test_flow_with_custom_technology(self, tmp_path, capsys):
        from repro.bench_suite import random_design
        from repro.io import save_design, save_technology
        from repro.technology import Technology

        design = random_design("clitech", seed=17, num_cells=6, num_nets=12,
                               num_critical=1)
        dpath = tmp_path / "d.json"
        save_design(design, dpath)
        tpath = tmp_path / "t.json"
        save_technology(Technology.four_layer(), tpath)
        rc = main([
            "flow", "--design", str(dpath), "--flow", "overcell",
            "--tech", str(tpath),
        ])
        assert rc == 0
        assert "overcell" in capsys.readouterr().out
