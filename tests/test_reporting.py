"""Tests for table formatting and comparison helpers."""

from repro.bench_suite import random_design
from repro.flow import multilayer_channel_flow, overcell_flow, two_layer_flow
from repro.reporting import (
    PaperComparison,
    format_table,
    table1_rows,
    table2_rows,
    table3_rows,
)
from repro.reporting.tables import TABLE1_HEADERS, TABLE2_HEADERS, TABLE3_HEADERS


class TestFormatTable:
    def test_alignment(self):
        out = format_table(["a", "bee"], [["x", 1], ["longer", 22]])
        lines = out.splitlines()
        assert lines[0].startswith("a")
        assert set(lines[1]) <= {"-", " "}
        assert len(lines) == 4

    def test_empty_rows(self):
        out = format_table(["h1"], [])
        assert "h1" in out


class TestPaperComparison:
    def test_row_with_value(self):
        c = PaperComparison("t2", "area", 17.1, 20.5)
        row = c.row()
        assert row[0] == "t2"
        assert "17.10" in row[2]

    def test_row_without_value(self):
        c = PaperComparison("t2", "area", None, 20.5)
        assert "n/a" in c.row()[2]


class TestTableBuilders:
    def setup_method(self):
        self.design = random_design("rep", seed=9, num_cells=6, num_nets=16,
                                    num_critical=2)
        self.base = two_layer_flow(self.design)
        self.oc = overcell_flow(self.design)
        self.ml = multilayer_channel_flow(self.design)

    def test_table1(self):
        rows = table1_rows(self.design, self.oc)
        assert rows[0][0] == "rep"
        assert rows[0][1] == 6
        assert len(rows[0]) == len(TABLE1_HEADERS)

    def test_table2(self):
        rows = table2_rows(self.base, self.oc)
        assert len(rows[0]) == len(TABLE2_HEADERS)
        # All three reductions should be positive on this design.
        assert all(float(v) > 0 for v in rows[0][1:])

    def test_table3(self):
        rows = table3_rows(self.ml, self.oc)
        assert len(rows[0]) == len(TABLE3_HEADERS)
        assert float(rows[0][3]) > 0

    def test_tables_format(self):
        out = format_table(TABLE2_HEADERS, table2_rows(self.base, self.oc))
        assert "Layout Area %" in out


class TestHtmlReport:
    def test_structure(self):
        from repro.reporting import html_report

        design = random_design("html1", seed=22, num_cells=6, num_nets=14,
                               num_critical=2)
        result = overcell_flow(design)
        doc = html_report(result)
        assert doc.startswith("<!DOCTYPE html>")
        assert doc.rstrip().endswith("</html>")
        assert "<svg" in doc
        assert "Routing report" in doc
        assert "congestion" in doc
        # Metrics tiles present.
        assert "layout area" in doc
        assert f"{result.layout_area:,}" in doc

    def test_without_levelb(self):
        from repro.reporting import html_report

        design = random_design("html2", seed=23, num_cells=6, num_nets=12)
        result = two_layer_flow(design)
        doc = html_report(result)
        assert "level B nets" not in doc
        assert "<svg" in doc

    def test_text_escaped(self):
        from repro.reporting import html_report

        design = random_design("html<&>", seed=24, num_cells=6, num_nets=12)
        result = two_layer_flow(design)
        doc = html_report(result)
        assert "html<&>" not in doc.split("<title>")[1].split("</title>")[0] \
            or "&lt;" in doc
