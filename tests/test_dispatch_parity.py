"""The dispatch determinism contract, end to end (property-style).

For every bench-suite design, routing with speculative parallelism
enabled must produce **bit-identical** results to serial routing —
identical per-net geometry, identical wirelength — and the parallel
run's output must pass the independent checker CLEAN.  This is the
acceptance property of docs/PARALLELISM.md: speculation may only ever
change how fast the answer arrives, never the answer.

``mode="serial"`` exercises the full plan/speculate/validate/merge
machinery deterministically in-process; one suite additionally runs on
a real thread pool to cover cross-thread scheduling.
"""

from __future__ import annotations

import pytest

from repro.bench_suite import SUITES, random_corpus
from repro.check import check_flow
from repro.flow import FlowParams, overcell_flow


def net_geometry(result):
    """Canonical committed-geometry fingerprint of a flow result."""
    return sorted(
        (
            routed.net.name,
            routed.failed_terminals,
            tuple(
                (
                    tuple(c.path.waypoints()),
                    tuple(c.corners),
                    c.cost,
                    c.expansions_used,
                )
                for c in routed.connections
            ),
        )
        for routed in result.levelb.routed
    )


@pytest.mark.parametrize("suite", sorted(SUITES))
def test_parallel_routing_is_bit_identical(suite):
    serial = overcell_flow(SUITES[suite](), FlowParams())
    parallel = overcell_flow(
        SUITES[suite](), FlowParams(parallel=2, parallel_mode="serial")
    )
    assert net_geometry(parallel) == net_geometry(serial)
    assert parallel.wire_length == serial.wire_length
    assert parallel.via_count == serial.via_count
    assert parallel.completion == serial.completion
    report = check_flow(parallel)
    assert report.ok, report.render(limit=5)


def test_parallel_routing_thread_pool_parity():
    """A real concurrent pool must not change the answer either."""
    serial = overcell_flow(SUITES["ami33"](), FlowParams())
    threaded = overcell_flow(
        SUITES["ami33"](), FlowParams(parallel=4, parallel_mode="thread")
    )
    assert net_geometry(threaded) == net_geometry(serial)
    assert threaded.wire_length == serial.wire_length


def test_parallel_parity_random_corpus():
    """The contract holds across generated designs, not just the suites."""
    for design_serial, design_par in zip(
        random_corpus(3, corpus_seed=42, num_cells=8, num_nets=24),
        random_corpus(3, corpus_seed=42, num_cells=8, num_nets=24),
    ):
        serial = overcell_flow(design_serial, FlowParams())
        parallel = overcell_flow(
            design_par, FlowParams(parallel=2, parallel_mode="serial")
        )
        assert net_geometry(parallel) == net_geometry(serial)
        assert parallel.wire_length == serial.wire_length


def test_iterate_mode_parity():
    """The contract extends to iterative routing (docs/ITERATION.md).

    Every iterate pass re-routes through the same dispatch machinery,
    with the per-plane history costs window-sliced into each worker's
    NetTask — so a dispatch-backed iterative run must commit geometry
    bit-identical to the serial iterative run, pass for pass, and the
    convergence reports must agree exactly.
    """
    from repro.bench_suite import random_design

    def make():
        return random_design("iterpar", seed=9, num_cells=6, num_nets=40)

    params = dict(iterate=True, max_iterations=4, ordering_policy="congestion")
    serial = overcell_flow(make(), FlowParams(**params))
    parallel = overcell_flow(
        make(), FlowParams(parallel=2, parallel_mode="serial", **params)
    )
    # The fixture fails one-pass routing, so parity here covers real
    # re-route passes (history charged, order re-chosen), not just the
    # initial pass.
    assert serial.notes["iterate"]["iterations"] >= 1
    assert serial.completion == 1.0
    assert net_geometry(parallel) == net_geometry(serial)
    assert parallel.wire_length == serial.wire_length
    assert parallel.via_count == serial.via_count
    assert parallel.notes["iterate"] == serial.notes["iterate"]


def test_iterate_mode_parity_thread_pool():
    """Same, on a real thread pool."""
    from repro.bench_suite import random_design

    def make():
        return random_design("iterpar", seed=9, num_cells=6, num_nets=40)

    params = dict(iterate=True, max_iterations=4, ordering_policy="congestion")
    serial = overcell_flow(make(), FlowParams(**params))
    threaded = overcell_flow(
        make(), FlowParams(parallel=4, parallel_mode="thread", **params)
    )
    assert net_geometry(threaded) == net_geometry(serial)
    assert threaded.notes["iterate"] == serial.notes["iterate"]
