"""Tests for repro.serve — server, queue, cache, protocol, streaming."""

from __future__ import annotations

import json
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from conftest import make_toy_design
from repro.io import canonical_digest, design_to_dict
from repro.serve import (
    EventBuffer,
    JobQueue,
    JobSpec,
    QueueClosed,
    ResultCache,
    RoutingServer,
    ServeClient,
    ServeError,
    SpecError,
    probe_canonical,
)


def toy_spec(seed: int = 7, **overrides) -> dict:
    """An inline-design job spec that routes in milliseconds."""
    doc = design_to_dict(make_toy_design(seed=seed))
    spec = {"design": doc, "flow": "overcell"}
    spec.update(overrides)
    return spec


# ----------------------------------------------------------------------
# Protocol: validation and digests
# ----------------------------------------------------------------------
class TestJobSpec:
    def test_suite_name_accepted(self):
        spec = JobSpec.from_dict({"design": "ex3"})
        assert spec.design == "ex3"
        assert spec.flow == "overcell"

    def test_unknown_suite_rejected(self):
        with pytest.raises(SpecError, match="unknown suite"):
            JobSpec.from_dict({"design": "nonexistent"})

    def test_unknown_keys_rejected(self):
        with pytest.raises(SpecError, match="unknown job spec keys"):
            JobSpec.from_dict({"design": "ex3", "bogus": 1})

    def test_missing_design_rejected(self):
        with pytest.raises(SpecError, match="requires a 'design'"):
            JobSpec.from_dict({"flow": "overcell"})

    def test_bad_flow_rejected(self):
        with pytest.raises(SpecError, match="unknown flow"):
            JobSpec.from_dict({"design": "ex3", "flow": "quantum"})

    def test_inline_design_needs_format_marker(self):
        with pytest.raises(SpecError, match="repro-design"):
            JobSpec.from_dict({"design": {"name": "x"}})

    def test_bad_planes_rejected(self):
        with pytest.raises(SpecError, match="planes"):
            JobSpec.from_dict({"design": "ex3", "planes": 0})

    def test_digest_ignores_parallel(self):
        a = JobSpec.from_dict({"design": "ex3", "parallel": 0})
        b = JobSpec.from_dict({"design": "ex3", "parallel": 4})
        assert a.digest() == b.digest()

    def test_digest_ignores_backend_and_hierarchical(self):
        # Like parallel, these are bit-identical-result knobs: they
        # must share one cache entry (docs/SCALING.md).
        base = JobSpec.from_dict({"design": "ex3"})
        assert base.digest() == JobSpec.from_dict(
            {"design": "ex3", "backend": "sparse"}
        ).digest()
        assert base.digest() == JobSpec.from_dict(
            {"design": "ex3", "hierarchical": True}
        ).digest()
        assert base.digest() == JobSpec.from_dict(
            {"design": "ex3", "backend": "sparse", "hierarchical": True,
             "parallel": 2}
        ).digest()

    def test_bad_backend_rejected(self):
        with pytest.raises(SpecError, match="unknown backend"):
            JobSpec.from_dict({"design": "ex3", "backend": "ramdisk"})

    def test_bad_hierarchical_rejected(self):
        with pytest.raises(SpecError, match="hierarchical"):
            JobSpec.from_dict({"design": "ex3", "hierarchical": 1})

    def test_digest_sees_planes_and_check(self):
        base = JobSpec.from_dict({"design": "ex3"})
        assert base.digest() != JobSpec.from_dict(
            {"design": "ex3", "planes": 2}
        ).digest()
        assert base.digest() != JobSpec.from_dict(
            {"design": "ex3", "check": True}
        ).digest()

    def test_probe_digest_is_separate_namespace(self):
        spec = JobSpec.from_dict({"design": "ex3"})
        assert canonical_digest(probe_canonical(spec)) != spec.digest()

    def test_inline_digest_stable_under_key_order(self):
        doc = toy_spec()["design"]
        reordered = {k: doc[k] for k in reversed(list(doc))}
        a = JobSpec.from_dict({"design": doc})
        b = JobSpec.from_dict({"design": reordered})
        assert a.digest() == b.digest()


# ----------------------------------------------------------------------
# Result cache
# ----------------------------------------------------------------------
class TestResultCache:
    def test_hit_miss_counters(self):
        cache = ResultCache(4)
        assert cache.get("a") is None
        cache.put("a", {"v": 1})
        assert cache.get("a") == {"v": 1}
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1

    def test_lru_eviction_order(self):
        cache = ResultCache(2)
        cache.put("a", {"v": 1})
        cache.put("b", {"v": 2})
        cache.get("a")  # freshen a; b becomes LRU
        cache.put("c", {"v": 3})
        assert cache.peek("a")
        assert not cache.peek("b")
        assert cache.stats()["evictions"] == 1

    def test_peek_does_not_touch_counters(self):
        cache = ResultCache(2)
        cache.put("a", {})
        cache.peek("a")
        cache.peek("zzz")
        stats = cache.stats()
        assert stats["hits"] == 0
        assert stats["misses"] == 0


# ----------------------------------------------------------------------
# Event buffer
# ----------------------------------------------------------------------
class TestEventBuffer:
    def test_paged_reads(self):
        buf = EventBuffer()
        buf.append({"n": 1})
        buf.append({"n": 2})
        events, nxt, closed = buf.read(0)
        assert [e["n"] for e in events] == [1, 2]
        assert nxt == 2
        assert not closed
        events, nxt, _ = buf.read(nxt)
        assert events == []

    def test_blocking_read_wakes_on_append(self):
        buf = EventBuffer()
        result = {}

        def reader():
            result["got"] = buf.read(0, wait_s=5.0)

        t = threading.Thread(target=reader)
        t.start()
        time.sleep(0.05)
        buf.append({"n": 1})
        t.join(timeout=5.0)
        events, nxt, _ = result["got"]
        assert [e["n"] for e in events] == [1]

    def test_blocking_read_wakes_on_close(self):
        buf = EventBuffer()
        threading.Timer(0.05, buf.close).start()
        events, _, closed = buf.read(0, wait_s=5.0)
        assert events == []
        assert closed

    def test_overflow_drops_newest_and_counts(self):
        buf = EventBuffer(max_events=2)
        buf.extend([{"n": 1}, {"n": 2}, {"n": 3}])
        assert len(buf) == 2
        assert buf.dropped == 1

    def test_append_after_close_is_noop(self):
        buf = EventBuffer()
        buf.close()
        buf.append({"n": 1})
        assert len(buf) == 0


# ----------------------------------------------------------------------
# Job queue (no HTTP)
# ----------------------------------------------------------------------
class TestJobQueue:
    def test_submit_execute_and_cache(self):
        q = JobQueue(workers=1, queue_size=8)
        q.start()
        try:
            spec = JobSpec.from_dict(toy_spec())
            record = q.submit(spec)
            assert record.wait(timeout_s=30.0)
            assert record.state == "done"
            assert record.ok is True
            assert record.payload is not None
            assert record.payload["completion"] == 1.0
            # identical resubmission answers from cache instantly
            dup = q.submit(spec)
            assert dup.cache_hit
            assert dup.terminal
            assert dup.payload == record.payload
            assert q.counters["cache_hits"] == 1
        finally:
            q.close()

    def test_worker_events_reach_buffer(self):
        q = JobQueue(workers=1)
        q.start()
        try:
            record = q.submit(JobSpec.from_dict(toy_spec()))
            record.wait(timeout_s=30.0)
            events = record.events.snapshot()
            names = {e.get("event") for e in events}
            # queue lifecycle plus live routing progress from the flow
            assert "serve.job_state" in names
            assert "net.routed" in names
        finally:
            q.close()

    def test_coalesced_duplicates_share_one_run(self):
        q = JobQueue(workers=1, queue_size=8)
        try:
            # workers not started: submissions pile up, so duplicates
            # provably coalesce instead of racing the cache
            spec = JobSpec.from_dict(toy_spec())
            primary = q.submit(spec)
            follower = q.submit(spec)
            assert follower.coalesced
            q.start()
            assert primary.wait(timeout_s=30.0)
            assert follower.wait(timeout_s=30.0)
            assert follower.payload == primary.payload
            assert follower.cache_hit
            assert q.counters["coalesced"] == 1
            assert q.counters["submitted"] == 2
        finally:
            q.close()

    def test_failed_job_records_error(self):
        bad = toy_spec()
        bad["design"] = dict(bad["design"], cells=[])  # no cells: flow dies
        q = JobQueue(workers=1, retries=0)
        q.start()
        try:
            record = q.submit(JobSpec.from_dict(bad))
            assert record.wait(timeout_s=30.0)
            assert record.state == "failed"
            assert record.ok is False
            assert record.error
            assert q.counters["failed"] == 1
        finally:
            q.close()

    def test_closed_queue_refuses_submissions(self):
        q = JobQueue(workers=1)
        q.start()
        q.close()
        with pytest.raises(QueueClosed):
            q.submit(JobSpec.from_dict(toy_spec()))

    def test_close_without_drain_fails_queued_jobs(self):
        q = JobQueue(workers=1, queue_size=8)  # never started
        record = q.submit(JobSpec.from_dict(toy_spec()))
        q.close(drain=False)
        assert record.state == "failed"
        assert "shutdown" in (record.error or "")


# ----------------------------------------------------------------------
# HTTP server end-to-end
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def server():
    srv = RoutingServer(port=0, workers=2, cache_size=128, queue_size=256)
    srv.start()
    yield srv
    srv.stop(drain=False)


@pytest.fixture()
def client(server):
    return ServeClient(server.host, server.port, timeout_s=60.0)


class TestServerEndpoints:
    def test_healthz(self, client):
        doc = client.health()
        assert doc["ok"] is True
        assert doc["state"] == "serving"

    def test_unknown_endpoint_404(self, client):
        with pytest.raises(ServeError) as exc:
            client._request("GET", "/nope")
        assert exc.value.status == 404

    def test_unknown_job_404(self, client):
        with pytest.raises(ServeError) as exc:
            client.status("j999999")
        assert exc.value.status == 404

    def test_invalid_spec_400(self, client):
        with pytest.raises(ServeError) as exc:
            client.submit({"design": "nonexistent"})
        assert exc.value.status == 400

    def test_submit_wait_result(self, client):
        record = client.submit(toy_spec(seed=100))
        assert record["_status"] == 202
        assert record["state"] == "queued"
        final = client.wait(record["id"], timeout_s=60.0)
        assert final["state"] == "done"
        assert final["ok"] is True
        result = client.result(record["id"])
        payload = result["payload"]
        assert payload["completion"] == 1.0
        assert payload["digest"] == record["digest"]
        assert payload["result"]["format"] == "repro-flow-result"

    def test_result_conflict_before_done(self, client):
        # ami33 routes in ~1s, so the result endpoint answers 409
        # while the job is still queued or running
        record = client.submit({"design": "ami33"})
        if record["state"] not in ("done", "failed"):
            with pytest.raises(ServeError) as exc:
                client.result(record["id"])
            assert exc.value.status == 409
        client.wait(record["id"], timeout_s=120.0)
        assert client.result(record["id"])["payload"]["completion"] == 1.0

    def test_duplicate_submission_is_cache_hit(self, client):
        spec = toy_spec(seed=200)
        first = client.submit(spec)
        client.wait(first["id"], timeout_s=60.0)
        second = client.submit(spec)
        assert second["_status"] == 200
        assert second["state"] == "done"
        assert second["cache_hit"] is True
        assert client.result(second["id"])["payload"] == (
            client.result(first["id"])["payload"]
        )

    def test_parallel_variant_shares_cache_entry(self, client):
        spec = toy_spec(seed=201)
        first = client.submit(spec)
        client.wait(first["id"], timeout_s=60.0)
        variant = client.submit(dict(spec, parallel=2))
        assert variant["cache_hit"] is True

    def test_backend_variant_shares_cache_entry(self, client):
        # A dense-routed answer serves sparse/hierarchical requests:
        # the backends are bit-identical, so the cache key ignores
        # them (docs/SCALING.md).
        spec = toy_spec(seed=208)
        first = client.submit(spec)
        client.wait(first["id"], timeout_s=60.0)
        sparse = client.submit(dict(spec, backend="sparse"))
        assert sparse["cache_hit"] is True
        hier = client.submit(
            dict(spec, backend="sparse", hierarchical=True)
        )
        assert hier["cache_hit"] is True

    def test_events_pagination(self, client):
        record = client.submit(toy_spec(seed=202))
        client.wait(record["id"], timeout_s=60.0)
        page = client.events(record["id"], since=0)
        assert page["events"]
        assert page["next"] == len(page["events"])
        rest = client.events(record["id"], since=page["next"])
        assert rest["events"] == []
        assert rest["done"] is True

    def test_stream_yields_progress_then_end(self, client):
        record = client.submit(toy_spec(seed=203))
        events = list(client.stream(record["id"]))
        names = [e.get("event") for e in events]
        assert names[-1] == "serve.stream_end"
        assert "serve.job_state" in names
        assert "net.routed" in names
        assert events[-1]["state"] == "done"

    def test_long_poll_returns_terminal_state(self, client):
        record = client.submit(toy_spec(seed=204))
        final = client.status(record["id"], wait_s=30.0)
        assert final["state"] in ("done", "failed")

    def test_checked_job_reports_clean(self, client):
        record = client.submit(toy_spec(seed=205, check=True))
        final = client.wait(record["id"], timeout_s=60.0)
        assert final["ok"] is True
        payload = client.result(record["id"])["payload"]
        assert payload["check_clean"] is True
        assert payload["check_violations"] == 0

    def test_probe_endpoint_and_cache(self, client):
        spec = {"design": toy_spec(seed=206)["design"]}
        first = client.probe(spec)
        assert first["routable"] is True
        assert first["cache_hit"] is False
        second = client.probe(spec)
        assert second["cache_hit"] is True

    def test_stats_shape(self, client):
        stats = client.stats()
        assert stats["format"] == "repro-serve-stats"
        assert "queue" in stats and "cache" in stats
        assert stats["queue"]["counters"]["submitted"] >= 1

    def test_jobs_listing(self, client):
        client.submit(toy_spec(seed=207))
        listing = client.jobs()
        assert listing
        assert all("payload" not in r for r in listing)


class TestServerShutdown:
    def test_drain_shutdown_finishes_queued_work(self):
        srv = RoutingServer(port=0, workers=1, queue_size=64).start()
        client = ServeClient(srv.host, srv.port, timeout_s=60.0)
        ids = [client.submit(toy_spec(seed=400 + i))["id"] for i in range(3)]
        client.shutdown(drain=True)
        assert srv.wait_stopped(timeout_s=60.0)
        for job_id in ids:
            record = srv.jobs.get(job_id)
            assert record is not None
            assert record.state == "done"

    def test_submissions_refused_while_draining(self):
        srv = RoutingServer(port=0, workers=1).start()
        srv.jobs.close(drain=True)
        client = ServeClient(srv.host, srv.port, timeout_s=30.0)
        with pytest.raises(ServeError) as exc:
            client.submit(toy_spec(seed=500))
        assert exc.value.status == 503
        srv.stop(drain=False)


# ----------------------------------------------------------------------
# The load-bearing e2e: many concurrent clients, duplicates and
# distinct jobs, all streamed, duplicates cache-answered, and a served
# result that survives `repro check --strict`.
# ----------------------------------------------------------------------
class TestConcurrentClients:
    N_CLIENTS = 50
    N_DISTINCT = 10

    def test_fifty_concurrent_clients(self, tmp_path: Path):
        srv = RoutingServer(
            port=0, workers=2, cache_size=64, queue_size=256
        ).start()
        results: list[dict] = []
        errors: list[BaseException] = []
        lock = threading.Lock()

        def one_client(i: int) -> None:
            try:
                # 10 distinct designs, each submitted 5 times
                spec = toy_spec(seed=1000 + (i % self.N_DISTINCT))
                client = ServeClient(srv.host, srv.port, timeout_s=120.0)
                record = client.submit(spec)
                streamed = list(client.stream(record["id"]))
                final = client.wait(record["id"], timeout_s=120.0)
                payload = client.result(record["id"])["payload"]
                with lock:
                    results.append(
                        {
                            "i": i,
                            "id": record["id"],
                            "state": final["state"],
                            "ok": final["ok"],
                            "cache_hit": final["cache_hit"],
                            "coalesced": final["coalesced"],
                            "completion": payload["completion"],
                            "digest": payload["digest"],
                            "streamed": len(streamed),
                        }
                    )
            except BaseException as exc:  # noqa: BLE001 - collect for assert
                with lock:
                    errors.append(exc)

        threads = [
            threading.Thread(target=one_client, args=(i,))
            for i in range(self.N_CLIENTS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=300.0)

        try:
            assert not errors, f"client failures: {errors[:3]}"
            assert len(results) == self.N_CLIENTS
            # every job completed correctly
            assert all(r["state"] == "done" for r in results)
            assert all(r["ok"] for r in results)
            assert all(r["completion"] == 1.0 for r in results)
            # every client saw streamed progress (at least the
            # lifecycle transitions and the stream terminator)
            assert all(r["streamed"] >= 2 for r in results)
            # identical specs converged on identical digests/payloads
            digests = {r["digest"] for r in results}
            assert len(digests) == self.N_DISTINCT
            # duplicates were answered from cache or coalesced onto an
            # in-flight run -- either way the router ran once per digest
            stats = srv.jobs.stats()["counters"]
            hits = stats["cache_hits"]
            assert hits > 0, f"expected cache hits, got {stats}"
            assert (
                stats["cache_misses"] + stats["coalesced"] + hits
                >= self.N_CLIENTS
            )
            assert stats["cache_misses"] == self.N_DISTINCT
            # a served design passes the independent verifier
            served = next(r for r in results if not r["cache_hit"])
            record = srv.jobs.get(served["id"])
            assert record is not None and record.spec is not None
            design_path = tmp_path / "served_design.json"
            design_path.write_text(json.dumps(record.spec.design))
            check = subprocess.run(
                [
                    sys.executable,
                    "-m",
                    "repro",
                    "check",
                    "--design",
                    str(design_path),
                    "--strict",
                ],
                capture_output=True,
                text=True,
                env={
                    "PYTHONPATH": str(
                        Path(__file__).resolve().parents[1] / "src"
                    ),
                    "PATH": "/usr/bin:/bin",
                },
                timeout=120,
            )
            assert check.returncode == 0, check.stdout + check.stderr
            assert "CLEAN" in check.stdout.upper() or not check.returncode
        finally:
            srv.stop(drain=False)


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------
class TestServeCli:
    def test_parser_accepts_serve_flags(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            [
                "serve",
                "--port",
                "0",
                "--workers",
                "3",
                "--cache-size",
                "16",
                "--queue-size",
                "8",
            ]
        )
        assert args.port == 0
        assert args.workers == 3
        assert args.cache_size == 16
        assert args.func.__name__ == "_cmd_serve"
