"""Tests for congestion maps and routing reports."""

import pytest

from repro.analysis import CongestionMap, congestion_map, routing_report
from repro.bench_suite import random_design
from repro.flow import overcell_flow, two_layer_flow
from repro.grid import RoutingGrid, TrackSet


def make_grid(n=20):
    ts = TrackSet(range(0, n * 10, 10))
    return RoutingGrid(ts, TrackSet(range(0, n * 10, 10)))


class TestCongestionMap:
    def test_empty_grid_all_zero(self):
        cmap = congestion_map(make_grid(), bins_x=4, bins_y=4)
        assert cmap.shape == (4, 4)
        assert cmap.peak == 0.0
        assert cmap.mean == 0.0
        assert cmap.hotspots() == []

    def test_wire_raises_local_bin(self):
        grid = make_grid()
        grid.occupy_h(2, 0, 9, net_id=1)  # bottom-left region
        cmap = congestion_map(grid, bins_x=2, bins_y=2)
        assert cmap.values[0][0] > 0.0  # bottom-left bin
        assert cmap.values[1][1] == 0.0  # top-right untouched

    def test_obstacles_count(self):
        from repro.geometry import Rect

        grid = make_grid()
        grid.add_obstacle(Rect(0, 0, 90, 90))
        cmap = congestion_map(grid, bins_x=2, bins_y=2)
        assert cmap.values[0][0] > 0.5

    def test_full_grid_peak_one(self):
        grid = make_grid(4)
        for h in range(4):
            grid.occupy_h(h, 0, 3, net_id=1)
        for v in range(4):
            grid.occupy_v(v, 0, 3, net_id=1)
        cmap = congestion_map(grid, bins_x=1, bins_y=1)
        assert cmap.peak == 1.0
        assert cmap.hotspots(0.9) == [(0, 0)]

    def test_ascii_shape(self):
        cmap = congestion_map(make_grid(), bins_x=6, bins_y=3)
        art = cmap.to_ascii()
        lines = art.splitlines()
        assert len(lines) == 3
        assert all(len(line) == 6 for line in lines)
        assert set("".join(lines)) == {"."}

    def test_bins_validated(self):
        with pytest.raises(ValueError):
            congestion_map(make_grid(), bins_x=0)

    def test_more_bins_than_tracks(self):
        cmap = congestion_map(make_grid(4), bins_x=10, bins_y=10)
        assert cmap.shape == (10, 10)


class TestRoutingReport:
    @pytest.fixture(scope="class")
    def overcell_result(self):
        design = random_design("rep1", seed=15, num_cells=8, num_nets=20,
                               num_critical=2)
        return overcell_flow(design)

    def test_report_sections(self, overcell_result):
        report = routing_report(overcell_result)
        assert "Routing report" in report
        assert "Level B (over-cell" in report
        assert "congestion:" in report
        assert "slowest level B pins" in report
        assert "ps" in report

    def test_report_without_levelb(self):
        design = random_design("rep2", seed=16, num_cells=8, num_nets=20)
        result = two_layer_flow(design)
        report = routing_report(result)
        assert "Level B" not in report
        assert "channels:" in report

    def test_top_n_respected(self, overcell_result):
        short = routing_report(overcell_result, top_n=2)
        pin_lines = [l for l in short.splitlines() if "->" in l]
        assert len(pin_lines) <= 2


class TestWirelengthStats:
    def test_stats_on_routed_design(self):
        from repro.analysis import wirelength_stats

        design = random_design("wl1", seed=18, num_cells=8, num_nets=18,
                               num_critical=2)
        result = overcell_flow(design)
        stats = wirelength_stats(result.levelb)
        assert stats.nets > 0
        assert stats.total_routed >= stats.total_hpwl
        assert stats.mean_ratio >= 1.0
        assert stats.max_ratio >= stats.mean_ratio
        assert stats.worst_net is not None
        # Paths should stay near the HPWL lower bound on a light design.
        assert stats.overall_ratio < 1.6

    def test_empty_result(self):
        from repro.analysis import wirelength_stats
        from repro.core.router import LevelBResult
        from repro.core.tig import TrackIntersectionGraph
        from repro.grid import TrackSet

        tig = TrackIntersectionGraph(TrackSet([0, 8]), TrackSet([0, 8]))
        empty = LevelBResult(tig=tig, routed=[], elapsed_s=0.0, nodes_created=0)
        stats = wirelength_stats(empty)
        assert stats.nets == 0
        assert stats.overall_ratio == 1.0

    def test_report_includes_quality_line(self):
        from repro.analysis import routing_report

        design = random_design("wl2", seed=19, num_cells=8, num_nets=16,
                               num_critical=2)
        result = overcell_flow(design)
        assert "wire quality:" in routing_report(result)
