"""The project-contract static analyzer (repro.lint).

Three test families:

* **Fixture pairs** — for every rule id, one miniature module that
  violates the contract and one that honours it, written under a
  ``src/repro/...`` layout in ``tmp_path`` so module-name-scoped rules
  resolve exactly as they do over the real tree.
* **Machinery** — pragma suppression (reasoned, reasonless, stale),
  the baseline file, rule selection, report shapes.
* **Self-lint** — the shipped tree must be CLEAN with the shipped
  (empty) baseline; the linter's own determinism is asserted by
  running it twice and comparing serialised reports.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.lint import (
    ALL_RULES,
    PRAGMA_RULE_ID,
    LintReport,
    LintViolation,
    Severity,
    all_rule_ids,
    lint_paths,
    load_baseline,
    rules_for_ids,
    save_baseline,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_REPRO = REPO_ROOT / "src" / "repro"


# ----------------------------------------------------------------------
# Fixture projects
# ----------------------------------------------------------------------
def write_module(root: Path, dotted: str, source: str) -> Path:
    """Write ``source`` as ``<root>/src/<dotted path>.py``."""
    rel = Path("src", *dotted.split("."))
    path = root / rel.with_suffix(".py")
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source, encoding="utf-8")
    return path


def run_lint(root: Path, **kwargs) -> LintReport:
    return lint_paths([root / "src"], root=root, **kwargs)


def rules_fired(report: LintReport) -> set[str]:
    return {v.rule for v in report.violations}


#: (rule id, violating source, clean source, module). Each pair is a
#: minimal program that trips exactly the targeted contract.
FIXTURES = [
    (
        "det.clock",
        "import time\n\ndef stamp():\n    return time.time()\n",
        "import time\n\ndef stamp():\n    return time.perf_counter()\n",
        "repro.core.fx_clock",
    ),
    (
        "det.random",
        "import random\n\ndef pick(xs):\n    return random.choice(xs)\n",
        "import random\n\ndef pick(xs, seed):\n"
        "    return random.Random(seed).choice(xs)\n",
        "repro.maze.fx_random",
    ),
    (
        "det.idkey",
        "def order(nets):\n    return sorted(nets, key=id)\n",
        "def order(nets):\n"
        "    return sorted(nets, key=lambda n: n.name)\n",
        "repro.dispatch.fx_idkey",
    ),
    (
        "det.setorder",
        "def walk(nets):\n    out = []\n"
        "    for n in {x.lower() for x in nets}:\n"
        "        out.append(n)\n    return out\n",
        "def walk(nets):\n    out = []\n"
        "    for n in sorted({x.lower() for x in nets}):\n"
        "        out.append(n)\n    return out\n",
        "repro.globalroute.fx_setorder",
    ),
    (
        "txn.commit",
        "def apply(grid, net, pts):\n"
        "    grid.commit_path(net, pts, [])\n",
        "def apply(grid, net, pts):\n"
        "    with grid.transaction():\n"
        "        grid.commit_path(net, pts, [])\n",
        "repro.core.fx_commit",
    ),
    (
        "txn.mutate",
        "def clobber(grid, net):\n    grid._h_owner[0, 0] = net\n",
        "def clobber(grid, net):\n    grid.occupy_h(0, 0, net)\n",
        "repro.core.fx_mutate",
    ),
    (
        "pool.payload",
        "def fan(executor, items):\n"
        "    return [executor.submit(lambda x: x, i) for i in items]\n",
        "def work(item):\n    return item\n\n"
        "def fan(executor, items):\n"
        "    return [executor.submit(work, i) for i in items]\n",
        "repro.dispatch.fx_payload",
    ),
    (
        "pool.default",
        "def route(net, seen=[]):\n    seen.append(net)\n"
        "    return seen\n",
        "def route(net, seen=None):\n"
        "    seen = [] if seen is None else seen\n"
        "    seen.append(net)\n    return seen\n",
        "repro.serve.fx_default",
    ),
    (
        "serve.lock",
        "import threading\n\nclass Queue:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
        "        self.jobs = []\n"
        "    def push(self, job):\n"
        "        self.jobs.append(job)\n",
        "import threading\n\nclass Queue:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
        "        self.jobs = []\n"
        "    def push(self, job):\n"
        "        with self._lock:\n"
        "            self.jobs.append(job)\n",
        "repro.serve.fx_lock",
    ),
]

PARAMS_OK = (
    "class FlowParams:\n"
    "    planes: int = 1\n"
    "    parallel: int = 0\n"
)
PROTOCOL_OK = (
    "DIGESTED_FIELDS = {'planes': 'planes'}\n"
    "DIGEST_EXCLUDED = frozenset({'parallel'})\n"
    "SERVER_DEFAULTED = frozenset()\n\n"
    "class JobSpec:\n"
    "    planes: int = 1\n"
    "    parallel: int = 0\n"
    "    def canonical(self):\n"
    "        return {'kind': 'job', 'planes': self.planes}\n"
)
#: FlowParams grows a field nobody classified.
PARAMS_BAD = PARAMS_OK + "    hotness: float = 1.0\n"


@pytest.mark.parametrize(
    "rule_id,bad,good,module",
    FIXTURES,
    ids=[f[0] for f in FIXTURES],
)
def test_rule_fires_on_violating_fixture(
    tmp_path, rule_id, bad, good, module
):
    write_module(tmp_path, module, bad)
    report = run_lint(tmp_path, select={rule_id})
    assert rule_id in rules_fired(report), report.render()


@pytest.mark.parametrize(
    "rule_id,bad,good,module",
    FIXTURES,
    ids=[f[0] for f in FIXTURES],
)
def test_rule_quiet_on_clean_fixture(
    tmp_path, rule_id, bad, good, module
):
    write_module(tmp_path, module, good)
    report = run_lint(tmp_path, select={rule_id})
    assert rule_id not in rules_fired(report), report.render()


def test_digest_fields_fires_on_unclassified_field(tmp_path):
    write_module(tmp_path, "repro.flow.params", PARAMS_BAD)
    write_module(tmp_path, "repro.serve.protocol", PROTOCOL_OK)
    report = run_lint(tmp_path, select={"digest.fields"})
    assert "digest.fields" in rules_fired(report)
    assert any("hotness" in v.message for v in report.violations)


def test_digest_fields_quiet_on_classified_fields(tmp_path):
    write_module(tmp_path, "repro.flow.params", PARAMS_OK)
    write_module(tmp_path, "repro.serve.protocol", PROTOCOL_OK)
    report = run_lint(tmp_path, select={"digest.fields"})
    assert report.violations == [], report.render()


def test_digest_fields_fires_on_stale_classification(tmp_path):
    write_module(tmp_path, "repro.flow.params", PARAMS_OK)
    protocol = PROTOCOL_OK.replace(
        "frozenset({'parallel'})",
        "frozenset({'parallel', 'retired_knob'})",
    )
    write_module(tmp_path, "repro.serve.protocol", protocol)
    report = run_lint(tmp_path, select={"digest.fields"})
    assert any("retired_knob" in v.message for v in report.violations)


def test_digest_fields_fires_on_uncanonical_jobspec_field(tmp_path):
    write_module(tmp_path, "repro.flow.params", PARAMS_OK)
    protocol = PROTOCOL_OK + "    stealth: bool = False\n"
    write_module(tmp_path, "repro.serve.protocol", protocol)
    report = run_lint(tmp_path, select={"digest.fields"})
    assert any("stealth" in v.message for v in report.violations)


def test_lint_pragma_fires_on_reasonless_pragma(tmp_path):
    write_module(
        tmp_path,
        "repro.core.fx_noreason",
        "import time\n\ndef stamp():\n"
        "    return time.time()  # repro: allow[det.clock]\n",
    )
    report = run_lint(tmp_path)
    fired = rules_fired(report)
    # The reasonless pragma suppresses nothing AND is itself reported.
    assert "det.clock" in fired
    assert PRAGMA_RULE_ID in fired
    assert report.suppressed == 0


def test_lint_pragma_quiet_on_reasoned_matching_pragma(tmp_path):
    write_module(
        tmp_path,
        "repro.core.fx_reason",
        "import time\n\ndef stamp():\n"
        "    return time.time()  # repro: allow[det.clock] ts is "
        "display-only, never a routing input\n",
    )
    report = run_lint(tmp_path)
    assert report.violations == [], report.render()
    assert report.suppressed == 1


# ----------------------------------------------------------------------
# Machinery: pragmas, baseline, selection, determinism
# ----------------------------------------------------------------------
def test_pragma_on_comment_line_above(tmp_path):
    write_module(
        tmp_path,
        "repro.core.fx_above",
        "import time\n\ndef stamp():\n"
        "    # repro: allow[det.clock] display-only timestamp\n"
        "    return time.time()\n",
    )
    report = run_lint(tmp_path)
    assert report.violations == []
    assert report.suppressed == 1


def test_stale_pragma_reported_on_full_runs_only(tmp_path):
    write_module(
        tmp_path,
        "repro.core.fx_stale",
        "def quiet():  # repro: allow[det.clock] nothing here anymore\n"
        "    return 0\n",
    )
    full = run_lint(tmp_path)
    assert rules_fired(full) == {PRAGMA_RULE_ID}
    assert "stale" in full.violations[0].message
    # A filtered run must not flag staleness: the suppressed rule may
    # simply not have been selected.
    partial = run_lint(tmp_path, select={"det.random"})
    assert partial.violations == []


def test_pragma_in_docstring_is_inert(tmp_path):
    write_module(
        tmp_path,
        "repro.core.fx_doc",
        '"""Docs quoting the syntax: # repro: allow[det.clock] why."""\n'
        "import time\n\ndef stamp():\n    return time.time()\n",
    )
    report = run_lint(tmp_path)
    fired = rules_fired(report)
    assert "det.clock" in fired  # the string did not suppress it
    assert PRAGMA_RULE_ID not in fired  # ...and is not itself a pragma


def test_baseline_roundtrip_filters_known_findings(tmp_path):
    write_module(
        tmp_path,
        "repro.core.fx_base",
        "import time\n\ndef stamp():\n    return time.time()\n",
    )
    first = run_lint(tmp_path)
    assert first.violations
    baseline_path = tmp_path / "lint-baseline.json"
    save_baseline(baseline_path, first.violations)
    assert load_baseline(baseline_path)
    second = run_lint(tmp_path, baseline_path=baseline_path)
    assert second.violations == []
    assert second.baselined == len(first.violations)


def test_baseline_survives_line_drift(tmp_path):
    path = write_module(
        tmp_path,
        "repro.core.fx_drift",
        "import time\n\ndef stamp():\n    return time.time()\n",
    )
    baseline_path = tmp_path / "lint-baseline.json"
    save_baseline(baseline_path, run_lint(tmp_path).violations)
    # Unrelated lines added above shift line numbers, not identity.
    path.write_text(
        "import time\n\nPAD = 1\nPAD2 = 2\n\ndef stamp():\n"
        "    return time.time()\n",
        encoding="utf-8",
    )
    report = run_lint(tmp_path, baseline_path=baseline_path)
    assert report.violations == []
    assert report.baselined == 1


def test_rule_selection_by_group_and_id():
    det = rules_for_ids({"det"})
    assert {r.rule_id for r in det} == {
        "det.clock",
        "det.idkey",
        "det.random",
        "det.setorder",
    }
    one = rules_for_ids({"txn.commit"})
    assert [r.rule_id for r in one] == ["txn.commit"]
    with pytest.raises(ValueError, match="unknown rule"):
        rules_for_ids({"det.clcok"})


def test_rule_catalogue_shape():
    ids = all_rule_ids()
    assert len(set(ids)) == len(ids)
    assert PRAGMA_RULE_ID in ids
    # ISSUE acceptance: at least five distinct rule ids in the engine.
    assert len([r for r in ALL_RULES if r.rule_id]) >= 5
    for rule in ALL_RULES:
        assert rule.rule_id and rule.contract


def test_report_serialisation_and_severity_gate(tmp_path):
    write_module(
        tmp_path,
        "repro.core.fx_json",
        "import time\n\ndef stamp():\n    return time.time()\n",
    )
    report = run_lint(tmp_path)
    doc = report.to_dict()
    assert doc["format"] == "repro-lint-report"
    assert doc["ok"] is False
    assert doc["counts"]["det.clock"] == 1
    v = LintViolation(
        rule="x.y",
        path="p.py",
        line=3,
        col=1,
        message="m",
        severity=Severity.WARNING,
    )
    warn_only = LintReport(violations=[v])
    assert warn_only.ok  # warnings do not fail the default gate


def test_lint_runs_are_deterministic(tmp_path):
    for rule_id, bad, _good, module in FIXTURES:
        write_module(tmp_path, module + "_det", bad)
    one = run_lint(tmp_path).to_dict()
    two = run_lint(tmp_path).to_dict()
    assert one == two


def test_syntax_error_is_reported_not_raised(tmp_path):
    write_module(tmp_path, "repro.core.fx_broken", "def broken(:\n")
    report = run_lint(tmp_path)
    assert rules_fired(report) == {"lint.parse"}
    assert not report.ok


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def run_cli(*argv: str, cwd: Path | None = None):
    env_src = str(REPO_ROOT / "src")
    return subprocess.run(
        [sys.executable, "-m", "repro", "lint", *argv],
        capture_output=True,
        text=True,
        cwd=cwd or REPO_ROOT,
        env={"PYTHONPATH": env_src, "PATH": "/usr/bin:/bin"},
    )


def test_cli_strict_clean_exit_zero(tmp_path):
    out = run_cli("--strict", "--json", str(tmp_path / "r.json"))
    assert out.returncode == 0, out.stdout + out.stderr
    doc = json.loads((tmp_path / "r.json").read_text())
    assert doc["format"] == "repro-lint-report"
    assert doc["ok"] is True


def test_cli_nonzero_on_violation_and_json_payload(tmp_path):
    bad = write_module(
        tmp_path,
        "repro.core.fx_cli",
        "import time\n\ndef stamp():\n    return time.time()\n",
    )
    report_path = tmp_path / "report.json"
    out = run_cli(
        str(bad),
        "--root",
        str(tmp_path),
        "--no-baseline",
        "--json",
        str(report_path),
    )
    assert out.returncode == 1
    doc = json.loads(report_path.read_text())
    assert doc["counts"] == {"det.clock": 1}
    assert doc["violations"][0]["rule"] == "det.clock"


def test_cli_unknown_rule_exits_two(tmp_path):
    out = run_cli("--rule", "no.such")
    assert out.returncode == 2
    assert "unknown rule" in out.stderr


def test_cli_list_rules():
    out = run_cli("--list-rules")
    assert out.returncode == 0
    for rule in ALL_RULES:
        assert rule.rule_id in out.stdout


def test_cli_write_baseline_then_clean(tmp_path):
    write_module(
        tmp_path,
        "repro.core.fx_wb",
        "import time\n\ndef stamp():\n    return time.time()\n",
    )
    baseline = tmp_path / "base.json"
    out = run_cli(
        str(tmp_path / "src"),
        "--root",
        str(tmp_path),
        "--write-baseline",
        str(baseline),
    )
    assert out.returncode == 0, out.stdout + out.stderr
    out = run_cli(
        str(tmp_path / "src"),
        "--root",
        str(tmp_path),
        "--baseline",
        str(baseline),
        "--strict",
    )
    assert out.returncode == 0, out.stdout + out.stderr


# ----------------------------------------------------------------------
# Self-lint: the shipped tree honours its own contracts
# ----------------------------------------------------------------------
def test_shipped_tree_is_clean_with_shipped_baseline():
    report = lint_paths(
        [SRC_REPRO],
        root=REPO_ROOT,
        baseline_path=REPO_ROOT / "lint-baseline.json",
    )
    assert report.violations == [], report.render()
    assert report.files_scanned > 100
    assert len(report.rules_run) >= 5


def test_shipped_baseline_is_empty():
    entries = load_baseline(REPO_ROOT / "lint-baseline.json")
    assert entries == set()


def test_lint_emits_instrument_counters():
    from repro import instrument
    from repro.instrument.names import LINT_RUNS, LINT_VIOLATIONS

    with instrument.collecting() as collector:
        lint_paths([SRC_REPRO / "lint"], root=REPO_ROOT)
    assert collector.counters.get(LINT_RUNS) == 1
    assert LINT_VIOLATIONS in collector.counters
