"""Property/fuzz tests and failure injection for the level B router."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bench_suite import random_design
from repro.core import LevelBConfig, LevelBRouter
from repro.geometry import Rect
from repro.netlist import Design, Edge
from repro.placement import RowPlacement


def routed_random_design(seed, num_nets=16):
    design = random_design(
        f"fuzz{seed}", seed=seed, num_cells=8, num_nets=num_nets, num_critical=0
    )
    placement = RowPlacement.build(design, pitch=8)
    placement.realize([16] * placement.channel_count, margin=16)
    bounds = design.cell_bounds().expanded(24)
    router = LevelBRouter(bounds, list(design.nets.values()))
    return router, router.route()


class TestFuzzInvariants:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 10_000))
    def test_router_invariants(self, seed):
        router, result = routed_random_design(seed)
        ids = {r.net_id for r in result.routed}
        # 1. Occupancy owners are exactly (a subset of) routed nets.
        assert set(result.tig.grid.owners()) <= ids
        # 2. Accounting: complete nets have degree-1 connections for
        #    their unique terminals; failures are counted.
        for routed in result.routed:
            unique_terms = len(set(router.tig.terminals_of(routed.net_id)))
            if routed.complete:
                assert len(routed.connections) == unique_terms - 1
            else:
                assert routed.failed_terminals >= 1
        # 3. Path legality: segments alternate and stay on-grid.
        grid = result.tig.grid
        for routed in result.routed:
            for conn in routed.connections:
                for seg in conn.path:
                    if seg.is_point:
                        continue
                    if seg.is_horizontal:
                        assert grid.htracks.has(seg.a.y)
                    else:
                        assert grid.vtracks.has(seg.a.x)
        # 4. Via accounting.
        assert result.total_vias == result.total_corners + sum(
            r.net.degree - r.failed_terminals for r in result.routed
        )

    @settings(max_examples=8, deadline=None)
    @given(st.integers(0, 10_000))
    def test_deterministic_across_runs(self, seed):
        _, a = routed_random_design(seed)
        _, b = routed_random_design(seed)
        assert a.total_wire_length == b.total_wire_length
        assert a.total_corners == b.total_corners
        assert a.nets_completed == b.nets_completed


class TestFailureInjection:
    def walled_design(self):
        """Terminal t1 is walled in by obstacles on all four sides."""
        d = Design("walled")
        for name, x, y in (("c1", 200, 192), ("c2", 400, 32)):
            cell = d.add_cell(name, 16, 16)
            cell.place(x, y)
        net = d.add_net("trapped")
        net.add_pin(d.add_pin("c1", "p", Edge.TOP, 8))
        net.add_pin(d.add_pin("c2", "p", Edge.TOP, 8))
        easy = d.add_net("easy")
        easy.add_pin(d.add_pin("c1", "q", Edge.BOTTOM, 8))
        easy.add_pin(d.add_pin("c2", "q", Edge.BOTTOM, 8))
        # Wall around (208, 208) = c1's top pin; the BOTTOM pin at
        # (208, 192) stays outside the walls.
        walls = [
            Rect(188, 216, 228, 224),  # above
            Rect(188, 196, 200, 204),  # left
            Rect(216, 196, 228, 204),  # right
            Rect(188, 200, 204, 202),
        ]
        return d, walls

    def test_unroutable_reported_not_raised(self):
        d, walls = self.walled_design()
        bounds = Rect(0, 0, 520, 320)
        router = LevelBRouter(
            bounds,
            list(d.nets.values()),
            obstacles=walls,
            config=LevelBConfig(max_ripups=0),
        )
        result = router.route()
        trapped = result.net_result("trapped")
        # The walls block every escape except possibly a gap; whatever
        # happens, the router must report rather than crash, and the
        # easy net must still route.
        assert result.net_result("easy").complete
        assert trapped.complete or trapped.failed_terminals >= 1
        assert 0.0 <= result.completion_rate <= 1.0

    def test_flow_surfaces_incompletion(self):
        """A flow whose level B fails must expose completion < 1."""
        from repro.flow import FlowParams, overcell_flow
        from repro.core.router import Obstacle

        design = random_design("inj", seed=31, num_cells=6, num_nets=10,
                               num_critical=1)
        # First run cleanly to learn the geometry, then re-run with a
        # full-width both-layer wall through a pin-free y band: any net
        # with pins on both sides becomes unroutable.
        clean = overcell_flow(design)
        grid = clean.levelb.tig.grid
        pin_pts = sorted(
            t.position(grid)
            for terms in clean.levelb.tig.all_terminals().values()
            for t in terms
        )
        ys = sorted({p.y for p in pin_pts})
        gaps = [(b - a, a, b) for a, b in zip(ys, ys[1:])]
        width, lo, hi = max(gaps)
        if width < 24:
            pytest.skip("no pin-free band wide enough for a wall")
        bounds = clean.bounds
        wall = Rect(bounds.x1, lo + 8, bounds.x2, hi - 8)
        crossing_nets = sum(
            1
            for net in design.nets.values()
            if net.degree >= 2
            and min(p.y for p in net.pin_positions()) <= lo
            and max(p.y for p in net.pin_positions()) >= hi
        )
        design2 = random_design("inj", seed=31, num_cells=6, num_nets=10,
                                num_critical=1)
        params = FlowParams(obstacles=(Obstacle(wall),))
        result = overcell_flow(design2, params)
        if crossing_nets:
            assert result.completion < 1.0
        assert 0.0 <= result.completion <= 1.0


class TestRegionExpansion:
    def test_detour_uses_expansion(self):
        """A long wall between terminals forces region escalation."""
        d = Design("detour")
        for name, x in (("c1", 0), ("c2", 400)):
            cell = d.add_cell(name, 16, 16)
            cell.place(x, 192)
        net = d.add_net("n")
        net.add_pin(d.add_pin("c1", "p", Edge.TOP, 8))
        net.add_pin(d.add_pin("c2", "p", Edge.TOP, 8))
        # A tall vertical wall centred between the pins: the direct
        # region cannot contain any path, forcing growth.
        wall = Rect(200, 0, 216, 400)
        router = LevelBRouter(
            Rect(-16, 0, 440, 480),
            [net],
            obstacles=[wall],
            config=LevelBConfig(region_margin_tracks=2, maze_fallback=False),
        )
        result = router.route()
        routed = result.routed[0]
        assert routed.complete
        assert routed.connections[0].expansions_used > 0
        # The path must clear the wall vertically.
        ys = [p.y for p in routed.connections[0].path.waypoints()]
        assert max(ys) > 400 or min(ys) < 0
