"""Tests for the LevelBRouter orchestrator."""

import pytest

from repro.geometry import Rect
from repro.netlist import Edge
from repro.core import LevelBConfig, LevelBRouter
from repro.core.cost import CostWeights
from repro.core.ordering import NetOrdering
from repro.core.router import Obstacle

from conftest import make_toy_design


def route_toy(**cfg_kwargs):
    design = make_toy_design()
    bounds = Rect(0, 0, 256, 256)
    config = LevelBConfig(**cfg_kwargs) if cfg_kwargs else None
    router = LevelBRouter(bounds, list(design.nets.values()), config=config)
    return router.route()


class TestBasicRouting:
    def test_toy_design_routes_completely(self):
        result = route_toy()
        assert result.completion_rate == 1.0
        assert result.total_wire_length > 0
        assert result.nets_completed == result.nets_attempted

    def test_connection_counts(self):
        result = route_toy()
        for routed in result.routed:
            # A degree-d net needs d-1 connections (unless pins coincide).
            assert len(routed.connections) == routed.net.degree - 1

    def test_paths_connect_net_terminals(self):
        result = route_toy()
        grid = result.tig.grid
        for routed in result.routed:
            positions = set(routed.net.pin_positions())
            touched = set()
            for conn in routed.connections:
                touched.add(conn.path.start)
                touched.add(conn.path.end)
            # Every pin position is an endpoint of some connection or
            # lies on a routed segment (Steiner attachment).
            for pos in positions:
                on_path = any(
                    seg.contains_point(pos)
                    for c in routed.connections
                    for seg in c.path
                )
                assert pos in touched or on_path

    def test_vias_counted(self):
        result = route_toy()
        assert result.total_vias == result.total_corners + sum(
            r.net.degree for r in result.routed
        )

    def test_deterministic(self):
        r1 = route_toy()
        r2 = route_toy()
        assert r1.total_wire_length == r2.total_wire_length
        assert r1.total_corners == r2.total_corners


class TestValidation:
    def test_terminal_outside_bounds_rejected(self):
        design = make_toy_design()
        with pytest.raises(ValueError):
            LevelBRouter(Rect(0, 0, 50, 50), list(design.nets.values()))

    def test_two_layer_tech_rejected(self):
        from repro.technology import Technology

        design = make_toy_design()
        with pytest.raises(ValueError):
            LevelBRouter(
                Rect(0, 0, 256, 256),
                list(design.nets.values()),
                technology=Technology.two_layer(),
            )

    def test_single_pin_nets_ignored(self):
        design = make_toy_design()
        lone = design.add_net("lonely")
        lone.add_pin(design.add_pin("c0", "extra", Edge.TOP, 16))
        router = LevelBRouter(Rect(0, 0, 256, 256), list(design.nets.values()))
        result = router.route()
        assert all(r.net.name != "lonely" for r in result.routed)


class TestObstacles:
    def test_routes_avoid_obstacles(self):
        design = make_toy_design()
        bounds = Rect(0, 0, 256, 256)
        obstacle = Rect(100, 100, 140, 140)
        router = LevelBRouter(
            bounds, list(design.nets.values()), obstacles=[obstacle]
        )
        result = router.route()
        assert result.completion_rate == 1.0
        # The invariant: no slot inside the obstacle carries wire.
        grid = result.tig.grid
        for v in grid.vtracks.index_range(obstacle.x1, obstacle.x2):
            for h in grid.htracks.index_range(obstacle.y1, obstacle.y2):
                assert grid.h_slot(v, h) == -1
                assert grid.v_slot(v, h) == -1

    def test_directional_obstacle(self):
        design = make_toy_design()
        bounds = Rect(0, 0, 256, 256)
        obs = Obstacle(rect=Rect(100, 100, 140, 140), block_h=True, block_v=False)
        router = LevelBRouter(bounds, list(design.nets.values()), obstacles=[obs])
        result = router.route()
        grid = result.tig.grid
        for v in grid.vtracks.index_range(100, 140):
            for h in grid.htracks.index_range(100, 140):
                assert grid.h_slot(v, h) == -1  # horizontal blocked
        assert result.completion_rate == 1.0

    def test_obstacle_over_terminal_rejected(self):
        design = make_toy_design()
        pin_pos = next(iter(design.nets.values())).pin_positions()[0]
        obstacle = Rect(pin_pos.x - 4, pin_pos.y - 4, pin_pos.x + 4, pin_pos.y + 4)
        with pytest.raises(ValueError):
            LevelBRouter(
                Rect(0, 0, 256, 256),
                list(design.nets.values()),
                obstacles=[obstacle],
            )


class TestConfiguration:
    def test_orderings_all_complete(self):
        for ordering in NetOrdering:
            result = route_toy(ordering=ordering)
            assert result.completion_rate == 1.0

    def test_dense_weights_work(self):
        result = route_toy(weights=CostWeights.dense())
        assert result.completion_rate == 1.0

    def test_no_maze_fallback_still_routes_toy(self):
        result = route_toy(maze_fallback=False)
        assert result.completion_rate == 1.0

    def test_no_ripups_on_easy_design(self):
        result = route_toy(max_ripups=0)
        assert result.completion_rate == 1.0
        assert result.ripups == 0


class TestOccupancyConsistency:
    def test_wirelength_matches_occupancy(self):
        """Each net's claimed slots must cover its path cells."""
        result = route_toy()
        grid = result.tig.grid
        for routed in result.routed:
            nid = routed.net_id
            for conn in routed.connections:
                for seg in conn.path:
                    if seg.is_point:
                        continue
                    if seg.is_horizontal:
                        h = grid.htracks.index_of(seg.a.y)
                        rng = grid.vtracks.index_range(
                            seg.bounds.x1, seg.bounds.x2
                        )
                        assert grid.span_usable_h(h, rng.start, rng.stop - 1, nid)
                    else:
                        v = grid.vtracks.index_of(seg.a.x)
                        rng = grid.htracks.index_range(
                            seg.bounds.y1, seg.bounds.y2
                        )
                        assert grid.span_usable_v(v, rng.start, rng.stop - 1, nid)

    def test_no_foreign_overlap(self):
        """Owners on the grid are exactly the routed nets."""
        result = route_toy()
        ids = {r.net_id for r in result.routed}
        assert set(result.tig.grid.owners()) <= ids


class TestRefinement:
    def test_refinement_never_worse(self):
        base = route_toy()
        refined = route_toy(refinement_passes=1)
        assert refined.completion_rate >= base.completion_rate
        assert refined.total_wire_length <= base.total_wire_length

    def test_multiple_passes_monotone(self):
        one = route_toy(refinement_passes=1)
        three = route_toy(refinement_passes=3)
        assert three.total_wire_length <= one.total_wire_length
        assert three.completion_rate == 1.0

    def test_refinement_on_congested_design(self):
        """On a denser random instance the pass must hold completion
        and not regress quality."""
        from repro.bench_suite import random_design
        from repro.placement import RowPlacement
        from repro.core import LevelBConfig, LevelBRouter

        def run(passes):
            design = random_design("refine", seed=4, num_cells=10,
                                   num_nets=36, num_critical=0)
            pl = RowPlacement.build(design, pitch=8)
            pl.realize([16] * pl.channel_count, margin=16)
            bounds = design.cell_bounds().expanded(24)
            router = LevelBRouter(
                bounds, list(design.nets.values()),
                config=LevelBConfig(refinement_passes=passes),
            )
            return router.route()

        base = run(0)
        refined = run(1)
        assert refined.nets_completed >= base.nets_completed
        if refined.nets_completed == base.nets_completed:
            assert refined.total_wire_length <= base.total_wire_length
