"""Tests for the Steiner-Prim multi-terminal builder (core grid form)."""

import pytest

from repro.geometry import Point
from repro.grid import TrackSet
from repro.core.steiner import SteinerTreeBuilder
from repro.core.tig import TrackIntersectionGraph


def make_tig(n=11):
    ts = TrackSet(range(0, n * 10, 10))
    return TrackIntersectionGraph(ts, TrackSet(range(0, n * 10, 10)))


class TestBuilderBasics:
    def test_needs_two_terminals(self):
        tig = make_tig()
        t = tig.register_net(1, [Point(0, 0)])
        with pytest.raises(ValueError):
            SteinerTreeBuilder(tig.grid, 1, t)

    def test_start_near_centroid(self):
        tig = make_tig()
        terms = tig.register_net(
            1, [Point(0, 0), Point(100, 0), Point(50, 100), Point(50, 50)]
        )
        builder = SteinerTreeBuilder(tig.grid, 1, terms)
        # The centroid-nearest terminal (50,50) is connected first, so
        # it is not among the remaining sources.
        first = builder.next_source()
        assert first.position(tig.grid) != Point(50, 50)

    def test_next_source_is_nearest(self):
        tig = make_tig()
        terms = tig.register_net(1, [Point(50, 50), Point(60, 50), Point(0, 100)])
        builder = SteinerTreeBuilder(tig.grid, 1, terms)
        src = builder.next_source()
        assert src.position(tig.grid) == Point(60, 50)

    def test_commit_progresses_to_done(self):
        tig = make_tig()
        terms = tig.register_net(1, [Point(0, 0), Point(50, 0), Point(100, 0)])
        builder = SteinerTreeBuilder(tig.grid, 1, terms)
        while not builder.done:
            src = builder.next_source()
            targets = builder.attach_candidates(src)
            assert targets, "connected terminals must always be offered"
            dst = targets[0]
            builder.commit(src, [src.position(tig.grid), dst.position(tig.grid)])
        assert builder.done
        assert not builder.failed_terminals

    def test_fail_records_terminal(self):
        tig = make_tig()
        terms = tig.register_net(1, [Point(0, 0), Point(50, 0)])
        builder = SteinerTreeBuilder(tig.grid, 1, terms)
        src = builder.next_source()
        builder.fail(src)
        assert builder.done
        assert builder.failed_terminals == [src]


class TestSteinerPoints:
    def test_attach_candidates_include_steiner_point(self):
        """A terminal near the middle of a routed trunk should be
        offered a Steiner attach point on the trunk, closer than any
        terminal."""
        tig = make_tig()
        terms = tig.register_net(
            1, [Point(0, 50), Point(100, 50), Point(50, 0)]
        )
        a = next(t for t in terms if t.position(tig.grid) == Point(0, 50))
        b = next(t for t in terms if t.position(tig.grid) == Point(100, 50))
        c = next(t for t in terms if t.position(tig.grid) == Point(50, 0))
        builder = SteinerTreeBuilder(tig.grid, 1, terms)
        # Force the component state: ends connected by a trunk at y=50.
        builder._connected = [a]
        builder._remaining = [b, c]
        builder.commit(b, [a.position(tig.grid), b.position(tig.grid)])
        tig.grid.occupy_h(5, 0, 10, net_id=1)  # realise the trunk
        src = builder.next_source()
        assert src.position(tig.grid) == Point(50, 0)
        best = builder.attach_candidates(src)[0]
        assert best.position(tig.grid) == Point(50, 50)

    def test_blocked_steiner_point_skipped(self):
        tig = make_tig()
        terms = tig.register_net(1, [Point(0, 50), Point(100, 50), Point(50, 0)])
        a = next(t for t in terms if t.position(tig.grid) == Point(0, 50))
        b = next(t for t in terms if t.position(tig.grid) == Point(100, 50))
        builder = SteinerTreeBuilder(tig.grid, 1, terms)
        builder._connected = [a]
        builder._remaining = [t for t in terms if t != a]
        builder.commit(b, [a.position(tig.grid), b.position(tig.grid)])
        tig.grid.occupy_h(5, 0, 10, net_id=1)
        # A foreign vertical through (50,50) blocks the corner there.
        tig.grid.occupy_v(5, 4, 6, net_id=9)
        src = builder.next_source()
        candidates = builder.attach_candidates(src)
        positions = [c.position(tig.grid) for c in candidates]
        assert Point(50, 50) not in positions
        # Fallback terminals still offered.
        assert positions, "must offer fallbacks"

    def test_candidates_sorted_by_distance(self):
        tig = make_tig()
        terms = tig.register_net(
            1, [Point(0, 0), Point(100, 0), Point(20, 30)]
        )
        builder = SteinerTreeBuilder(tig.grid, 1, terms)
        a = next(t for t in terms if t.position(tig.grid) == Point(0, 0))
        b = next(t for t in terms if t.position(tig.grid) == Point(100, 0))
        builder._connected = [a, b]
        builder._remaining = [t for t in terms if t.position(tig.grid) == Point(20, 30)]
        builder._tree_segments = []
        src = builder.next_source()
        cands = builder.attach_candidates(src)
        dists = [src.position(tig.grid).manhattan_to(c.position(tig.grid)) for c in cands]
        assert dists == sorted(dists)
