"""Tests for the left-edge (dogleg) channel router."""

import pytest

from repro.channels import (
    ChannelProblem,
    ChannelRoutingError,
    GreedyChannelRouter,
    LeftEdgeRouter,
)

from conftest import make_random_channel_problem


class TestBasics:
    def test_simple_problem(self):
        p = ChannelProblem(top=[1, 0, 2], bottom=[0, 1, 0])
        for dogleg in (False, True):
            route = LeftEdgeRouter(dogleg=dogleg).route(p)
            route.check(p)

    def test_single_column_two_sided_net(self):
        p = ChannelProblem(top=[1], bottom=[1])
        route = LeftEdgeRouter().route(p)
        route.check(p)
        assert route.tracks == 0  # a through jog, no trunk needed

    def test_single_pin_net_ignored(self):
        p = ChannelProblem(top=[9, 1, 1], bottom=[0, 0, 0])
        route = LeftEdgeRouter().route(p)
        route.check(p)
        assert all(s.net != 9 for s in route.spans)

    def test_cycle_raises(self):
        # Classic 2-net vertical constraint cycle, undogleggable
        # (each net has only two pins so splitting cannot help).
        p = ChannelProblem(top=[1, 2], bottom=[2, 1])
        with pytest.raises(ChannelRoutingError):
            LeftEdgeRouter(dogleg=True).route(p)

    def test_dogleg_breaks_breakable_cycle(self):
        # Net 1: top pins at 0 and 2, bottom at 4; net 2 interleaved so
        # the net-level VCG has a cycle but subnet splitting breaks it.
        p = ChannelProblem(
            top=[1, 2, 1, 0, 2],
            bottom=[2, 1, 0, 2, 1],
        )
        # Net-level VCG is cyclic:
        from repro.channels import VerticalConstraintGraph

        g = VerticalConstraintGraph.from_problem(p)
        assert g.has_cycle()
        try:
            route = LeftEdgeRouter(dogleg=True).route(p)
        except ChannelRoutingError:
            pytest.skip("this interleave is not dogleg-breakable")
        route.check(p)

    def test_non_dogleg_uses_more_or_equal_tracks(self):
        p = make_random_channel_problem(30, 6, seed=13)
        try:
            plain = LeftEdgeRouter(dogleg=False).route(p)
            dog = LeftEdgeRouter(dogleg=True).route(p)
        except ChannelRoutingError:
            pytest.skip("cyclic instance")
        assert dog.tracks <= plain.tracks


class TestTrackAssignment:
    def test_tracks_at_least_density(self):
        p = make_random_channel_problem(30, 8, seed=3)
        try:
            route = LeftEdgeRouter().route(p)
        except ChannelRoutingError:
            pytest.skip("cyclic instance")
        assert route.tracks >= p.density()

    def test_vcg_respected(self):
        """At any column with a top and a bottom pin of different nets,
        every top-net trunk at that column sits above every bottom-net
        trunk."""
        p = make_random_channel_problem(30, 8, seed=7)
        try:
            route = LeftEdgeRouter().route(p)
        except ChannelRoutingError:
            pytest.skip("cyclic instance")
        route.check(p)
        for col in range(p.length):
            u, w = p.top[col], p.bottom[col]
            if not u or not w or u == w:
                continue
            u_rows = [
                s.track for s in route.spans
                if s.net == u and (s.c1 == col or s.c2 == col)
            ]
            w_rows = [
                s.track for s in route.spans
                if s.net == w and (s.c1 == col or s.c2 == col)
            ]
            if u_rows and w_rows:
                assert max(u_rows) < min(w_rows)


class TestComparisons:
    @pytest.mark.parametrize("seed", range(25))
    def test_valid_or_cycle(self, seed):
        p = make_random_channel_problem(30, 8, seed=seed)
        try:
            route = LeftEdgeRouter().route(p)
        except ChannelRoutingError as err:
            assert "cycle" in str(err) or "stalled" in str(err)
            return
        route.check(p)

    @pytest.mark.parametrize("seed", [0, 2, 4, 6, 8])
    def test_comparable_to_greedy(self, seed):
        """When LEA succeeds, its track count is in the same ballpark."""
        p = make_random_channel_problem(30, 8, seed=seed)
        greedy = GreedyChannelRouter().route(p)
        try:
            lea = LeftEdgeRouter().route(p)
        except ChannelRoutingError:
            pytest.skip("cyclic instance")
        assert lea.tracks <= 2 * greedy.tracks + 2
        assert greedy.tracks <= 2 * lea.tracks + 2
