"""Table 3 - over-cell router vs an optimistic 4-layer channel router.

The paper had no complete multi-layer channel router available, so it
granted the comparison an *optimistic* 50% channel-area reduction over
the two-layer result and still measured a further area win for the
over-cell approach (ami33: 2,261,480 -> 1,874,880, about 17%; ex3:
3,548,475 -> 3,061,635, about 14%; the Xerox row is only partially
legible).  Shape asserted here: the over-cell flow's area undercuts
the optimistic model on every suite.  A design-rule-aware variant of
the model (track halving at coarser upper-layer pitch) is reported
alongside as an ablation of the paper's 50% assumption.
"""

from repro.bench_suite import SUITES
from repro.flow import multilayer_channel_flow, percent_reduction
from repro.reporting import format_table, table3_rows
from repro.reporting.tables import TABLE3_HEADERS

from conftest import SUITE_NAMES, print_experiment

PAPER_REDUCTIONS = {"ami33": 17.1, "ex3": 13.7}  # from the legible rows


def test_table3(benchmark, flow_results):
    def run_ml_all():
        out = {}
        for suite in SUITE_NAMES:
            out[suite, "optimistic"] = multilayer_channel_flow(SUITES[suite]())
            out[suite, "dra"] = multilayer_channel_flow(
                SUITES[suite](), model="design-rule"
            )
            out[suite, "hvh"] = multilayer_channel_flow(
                SUITES[suite](), model="hvh"
            )
        return out

    ml = benchmark.pedantic(run_ml_all, rounds=1, iterations=1)

    rows = []
    ablation_rows = []
    for suite in SUITE_NAMES:
        overcell = flow_results[(suite, "overcell")]
        optimistic = ml[suite, "optimistic"]
        rows += table3_rows(optimistic, overcell)
        reduction = percent_reduction(
            optimistic.layout_area, overcell.layout_area
        )
        # The paper's headline: a further reduction remains even
        # against the optimistic channel model.
        assert reduction > 0.0, f"{suite}: over-cell must still win"
        dra = ml[suite, "dra"]
        hvh = ml[suite, "hvh"]
        ablation_rows.append([
            suite,
            f"{optimistic.layout_area:,}",
            f"{dra.layout_area:,}",
            f"{hvh.layout_area:,}",
            f"{percent_reduction(hvh.layout_area, optimistic.layout_area):.1f}",
        ])
        # Design-rule awareness can only hurt the channel model, and
        # the *real* HVH router lands near the design-rule model, not
        # the optimistic one - vindicating the paper's area argument.
        assert dra.layout_area >= optimistic.layout_area
        assert hvh.layout_area >= optimistic.layout_area
        # Over-cell beats even the real multi-layer channel router.
        assert overcell.layout_area < hvh.layout_area
    print_experiment(
        "Table 3: optimistic 4-layer channel model vs 4-layer over-cell router",
        format_table(TABLE3_HEADERS, rows)
        + "\n\nAblation - what the 50% assumption hides (design-rule model "
        "and a real HVH 3-layer router):\n"
        + format_table(
            ["Example", "Optimistic", "Design-rule", "Real HVH",
             "Optimism vs HVH %"],
            ablation_rows,
        ),
    )
