"""Dump an instrumented profile of the paper's benchmark suites.

Runs the selected flow on each suite inside its own
``instrument.collecting()`` block and writes one JSON document with the
per-suite span trees, counters and gauges — the seed of the benchmark
trajectory: commit the artifact, diff it across PRs, and any hot-path
regression (nodes expanded, wall time per phase) shows up as a numeric
delta rather than an anecdote.

Usage::

    PYTHONPATH=src python benchmarks/export_profile.py \
        [--out benchmarks/artifacts/BENCH_profile.json] \
        [--suites ami33 xerox ex3] [--flow overcell]

The event log is omitted from the artifact (``events_total`` is kept)
so the file stays small and diffs stay readable.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
)

from repro import instrument  # noqa: E402
from repro.bench_suite import SUITES  # noqa: E402
from repro.flow import (  # noqa: E402
    multilayer_channel_flow,
    overcell_flow,
    two_layer_flow,
)

_FLOWS = {
    "two-layer": two_layer_flow,
    "overcell": overcell_flow,
    "ml-channel": multilayer_channel_flow,
}

DEFAULT_OUT = os.path.join(
    os.path.dirname(__file__), "artifacts", "BENCH_profile.json"
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default=DEFAULT_OUT)
    parser.add_argument(
        "--suites", nargs="+", default=["ami33", "xerox", "ex3"],
        choices=sorted(SUITES),
    )
    parser.add_argument(
        "--flow", default="overcell", choices=sorted(_FLOWS)
    )
    args = parser.parse_args(argv)

    runs = {}
    for suite in args.suites:
        design = SUITES[suite]()
        with instrument.collecting() as col:
            result = _FLOWS[args.flow](design)
        print(result.summary())
        runs[suite] = {
            "summary": {
                "layout_area": result.layout_area,
                "wire_length": result.wire_length,
                "via_count": result.via_count,
                "completion": result.completion,
            },
            "profile": instrument.snapshot(col, include_events=False),
        }

    doc = {"format": "repro-bench-profile", "flow": args.flow, "runs": runs}
    with open(args.out, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"bench profile written to {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
