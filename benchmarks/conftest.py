"""Shared fixtures for the benchmark harness.

Each paper experiment regenerates from a session-scoped run of the
three flows on the three synthetic suites.  Flow runs are cached so the
whole harness costs one pass per (suite, flow) pair; the ``benchmark``
fixture then times the interesting kernel of each experiment.
"""

from __future__ import annotations


import pytest

from repro.bench_suite import SUITES
from repro.flow import (
    FlowResult,
    multilayer_channel_flow,
    overcell_flow,
    two_layer_flow,
)

SUITE_NAMES = ("ami33", "xerox", "ex3")


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--quick",
        action="store_true",
        default=False,
        help=(
            "time-budget mode: scale benchmarks run only the quick "
            "tier (used by the CI scale job)"
        ),
    )

_FLOWS = {
    "two-layer": two_layer_flow,
    "overcell": overcell_flow,
    "ml-channel": multilayer_channel_flow,
}


@pytest.fixture(scope="session")
def flow_results() -> dict[tuple[str, str], FlowResult]:
    """All (suite, flow) results, computed once per session.

    Each flow gets its own freshly generated design: flows mutate cell
    placement, so sharing one Design across flows would let the last
    ``realize`` corrupt earlier results' pin-position bookkeeping.
    """
    results: dict[tuple[str, str], FlowResult] = {}
    for suite in SUITE_NAMES:
        for flow_name, flow in _FLOWS.items():
            design = SUITES[suite]()
            results[(suite, flow_name)] = flow(design)
    return results


@pytest.fixture(scope="session")
def designs():
    return {name: SUITES[name]() for name in SUITE_NAMES}


def print_experiment(title: str, body: str) -> None:
    """Uniform experiment banner in benchmark output."""
    bar = "=" * 72
    print(f"\n{bar}\n{title}\n{bar}\n{body}\n")
