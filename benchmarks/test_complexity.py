"""Section 3.4 - complexity claims of the level B algorithm.

Paper: storage is ``O(h*v)`` (the Track Intersection Graph array);
updating the array after a completed connection is ``O(t)``,
``t = max(h, v)``; total routing time is ``O(n*h*v)`` for ``n``
two-terminal connections.

Measured here on grid-size sweeps:

* storage: the occupancy arrays are exactly ``2*h*v`` int32 slots;
* update: committing a straight connection touches O(t) cells -
  timed across t to show near-linear growth;
* search: unbounded-region single connections across grid sizes -
  node creation should grow no faster than ``h*v``.
"""

import time

from repro.core.search import MBFSearch
from repro.core.tig import TrackIntersectionGraph
from repro.core.router import commit_points
from repro.geometry import Point, Rect
from repro.reporting import format_table

from conftest import print_experiment


def make_instance(n):
    """An n x n grid with one corner-to-corner net."""
    pitch = 10
    size = (n - 1) * pitch
    tig = TrackIntersectionGraph.over_area(
        Rect(0, 0, size, size), v_pitch=pitch, h_pitch=pitch
    )
    terms = tig.register_net(1, [Point(0, 0), Point(size, size)])
    return tig, terms


def test_storage_is_h_times_v(benchmark):
    def build():
        return {n: make_instance(n)[0] for n in (16, 32, 64)}

    tigs = benchmark.pedantic(build, rounds=1, iterations=1)
    rows = []
    for n, tig in tigs.items():
        grid = tig.grid
        slots = grid._h_owner.size + grid._v_owner.size
        assert slots == 2 * grid.num_vtracks * grid.num_htracks
        rows.append([f"{n}x{n}", grid.num_intersections, slots])
    print_experiment(
        "Storage: occupancy slots = 2*h*v (paper: O(h*v))",
        format_table(["Grid", "Intersections", "Slots"], rows),
    )


def test_update_is_linear_in_t(benchmark):
    """Committing a straight t-track connection costs O(t)."""

    def measure():
        out = []
        for n in (64, 128, 256, 512):
            tig, _ = make_instance(n)
            grid = tig.grid
            reps = 200
            started = time.perf_counter()
            for r in range(reps):
                h_idx = 1 + (r % (n - 2))
                points = [Point(0, h_idx * 10), Point((n - 1) * 10, h_idx * 10)]
                commit_points(grid, 1, points, [])
            elapsed = (time.perf_counter() - started) / reps
            out.append((n, elapsed))
        return out

    data = benchmark.pedantic(measure, rounds=1, iterations=1)
    rows = [[n, f"{t * 1e6:.1f}"] for n, t in data]
    print_experiment(
        "Occupancy update per connection (paper: O(t), t = max(h, v))",
        format_table(["t (tracks)", "us / update"], rows),
    )
    # Near-linear: time for 8x the tracks within ~24x (generous bound
    # that excludes quadratic growth, which would be 64x).
    t_small = data[0][1]
    t_large = data[-1][1]
    assert t_large < 24 * max(t_small, 1e-7)


def test_search_scales_with_grid(benchmark):
    """Unbounded corner-to-corner searches across grid sizes."""

    def measure():
        out = []
        for n in (16, 32, 64):
            tig, (a, b) = make_instance(n)
            started = time.perf_counter()
            result = MBFSearch(tig.grid, 1, a, b).run()
            elapsed = time.perf_counter() - started
            assert result.found
            out.append((n, result.nodes_created, elapsed))
        return out

    data = benchmark.pedantic(measure, rounds=1, iterations=1)
    rows = [
        [f"{n}x{n}", nodes, f"{t * 1000:.2f}"] for n, nodes, t in data
    ]
    print_experiment(
        "Single-connection search effort vs grid size (paper: O(h*v) worst case)",
        format_table(["Grid", "Nodes created", "ms"], rows),
    )
    # Node creation stays within O(h*v): quadrupling the grid area may
    # grow nodes by at most ~the same factor (with slack).
    for (n1, nodes1, _), (n2, nodes2, _) in zip(data, data[1:]):
        area_ratio = (n2 * n2) / (n1 * n1)
        assert nodes2 <= 2 * area_ratio * nodes1
