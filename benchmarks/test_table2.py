"""Table 2 - % reductions of the proposed router over two-layer channel.

The paper reports "a significant reduction in all three metrics"
(layout area, total wire length, number of vias) on all three
examples.  The exact percentages are not legible in the surviving
scan, so the asserted *shape* is: every reduction is strictly
positive on every example, with layout-area and wire-length
reductions being large (>25%).  The benchmark times the proposed
flow end-to-end on each suite.
"""

from repro.bench_suite import SUITES
from repro.flow import overcell_flow, percent_reduction
from repro.reporting import format_table, table2_rows
from repro.reporting.tables import TABLE2_HEADERS

from conftest import SUITE_NAMES, print_experiment


def test_table2(benchmark, flow_results):
    def run_overcell_all():
        return {
            suite: overcell_flow(SUITES[suite]()) for suite in SUITE_NAMES
        }

    fresh = benchmark.pedantic(run_overcell_all, rounds=1, iterations=1)

    rows = []
    for suite in SUITE_NAMES:
        baseline = flow_results[(suite, "two-layer")]
        overcell = fresh[suite]
        rows += table2_rows(baseline, overcell)
        area = percent_reduction(baseline.layout_area, overcell.layout_area)
        wire = percent_reduction(baseline.wire_length, overcell.wire_length)
        vias = percent_reduction(baseline.via_count, overcell.via_count)
        # The paper's qualitative claim: all three metrics improve.
        assert area > 25.0, f"{suite}: area reduction {area:.1f}% too small"
        assert wire > 25.0, f"{suite}: wire reduction {wire:.1f}% too small"
        assert vias > 0.0, f"{suite}: via count must improve"
        assert overcell.completion == 1.0
    print_experiment(
        "Table 2: % reduction, 4-layer over-cell flow vs 2-layer channel flow",
        format_table(TABLE2_HEADERS, rows),
    )
