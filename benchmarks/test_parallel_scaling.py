"""Parallel dispatch scaling: serial vs 2- and 4-worker level B runs.

Measures wall time of the over-cell flow on the largest suite design
with speculative net-level parallelism off, then at 2 and 4 workers
(docs/PARALLELISM.md), asserting the determinism contract held on
every run and exporting ``benchmarks/artifacts/BENCH_parallel.json``.

The speedup assertion is gated on machines with at least 4 CPUs: on
starved runners (CI containers often expose 1 core) the experiment
still runs and exports, but only parity is enforced — speculation can
never change the answer, whatever the core count.
"""

from __future__ import annotations

import json
import os
import time

from repro.bench_suite import SUITES
from repro.flow import FlowParams, overcell_flow

from conftest import print_experiment

ARTIFACTS = os.path.join(os.path.dirname(__file__), "artifacts")

# ex3 has the most level B nets of the three suites - the largest
# speculative workload.
DESIGN = "ex3"
WORKER_COUNTS = (2, 4)
MIN_SPEEDUP_AT_4 = 1.3


def timed_flow(parallel: int) -> tuple[float, object]:
    design = SUITES[DESIGN]()
    params = FlowParams(parallel=parallel)
    started = time.perf_counter()
    result = overcell_flow(design, params)
    return time.perf_counter() - started, result


def test_parallel_scaling():
    serial_s, serial = timed_flow(0)
    runs = {"serial": {"workers": 0, "wall_s": round(serial_s, 4)}}
    lines = [f"serial: {serial_s:6.2f}s  wl={serial.wire_length:,}"]
    for workers in WORKER_COUNTS:
        wall_s, result = timed_flow(workers)
        # The determinism contract: speculation never changes the answer.
        assert result.wire_length == serial.wire_length
        assert result.via_count == serial.via_count
        assert result.completion == serial.completion
        speedup = serial_s / wall_s if wall_s else 0.0
        runs[f"workers{workers}"] = {
            "workers": workers,
            "wall_s": round(wall_s, 4),
            "speedup": round(speedup, 3),
        }
        lines.append(f"{workers} workers: {wall_s:6.2f}s  speedup {speedup:.2f}x")

    cpus = os.cpu_count() or 1
    doc = {
        "format": "repro-bench-parallel",
        "design": DESIGN,
        "cpus": cpus,
        "runs": runs,
    }
    os.makedirs(ARTIFACTS, exist_ok=True)
    out = os.path.join(ARTIFACTS, "BENCH_parallel.json")
    with open(out, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    lines.append(f"({cpus} CPUs; exported {out})")
    print_experiment(f"Parallel dispatch scaling - {DESIGN}", "\n".join(lines))

    if cpus >= 4:
        assert runs["workers4"]["speedup"] >= MIN_SPEEDUP_AT_4, (
            f"expected >= {MIN_SPEEDUP_AT_4}x at 4 workers on {cpus} CPUs, "
            f"got {runs['workers4']['speedup']}x"
        )
