"""Flow-level scalability (the O(n*h*v) claim, end to end).

Section 3.4 bounds the level B routing time by O(n*h*v).  With
bounded search regions the practical per-connection cost is far below
the h*v worst case; this experiment runs the full over-cell flow on a
family of growing random designs and checks that measured time per
two-terminal connection grows sub-linearly in the design size (i.e.
total time stays well under the quadratic envelope).
"""

import time

from repro.bench_suite import make_design
from repro.bench_suite.generator import SuiteProfile
from repro.flow import overcell_flow
from repro.reporting import format_table

from conftest import print_experiment

# Constant net and pin density (ami33-like cells at ~3.5 nets/cell) so
# the family scales the problem without saturating the over-cell area.
SIZES = [
    # (cells, nets)
    (9, 30),
    (18, 60),
    (29, 100),
    (46, 160),
]


def scaled_design(cells: int, nets: int):
    return make_design(
        SuiteProfile(
            name=f"scale{nets}",
            seed=nets,
            num_cells=cells,
            cell_width_range=(96, 240),
            cell_height_range=(64, 160),
            num_regular_nets=nets - max(1, nets // 20),
            critical_pin_counts=tuple(
                6 for _ in range(max(1, nets // 20))
            ),
        )
    )


def test_flow_scalability(benchmark):
    def sweep():
        rows = []
        for cells, nets in SIZES:
            design = scaled_design(cells, nets)
            started = time.perf_counter()
            result = overcell_flow(design)
            elapsed = time.perf_counter() - started
            connections = sum(
                len(r.connections) for r in result.levelb.routed
            )
            grid = result.levelb.tig.grid
            rows.append(
                (
                    nets,
                    connections,
                    grid.num_vtracks * grid.num_htracks,
                    elapsed,
                    result.completion,
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = [
        [nets, conns, f"{hv:,}", f"{elapsed*1000:.0f}",
         f"{elapsed*1e6/max(conns,1):.0f}", f"{done:.0%}"]
        for nets, conns, hv, elapsed, done in rows
    ]
    print_experiment(
        "Over-cell flow scalability (time vs design size)",
        format_table(
            ["Nets", "2-term conns", "h*v", "Flow ms", "us/conn", "Done"],
            table,
        ),
    )
    for nets, conns, hv, elapsed, done in rows:
        assert done == 1.0
    # Sub-quadratic end to end: growing connections by a factor f must
    # not grow total time by more than ~f^2 (generous; the paper's
    # bound would allow f * (h*v growth)).
    first, last = rows[0], rows[-1]
    conn_factor = last[1] / first[1]
    time_factor = last[3] / max(first[3], 1e-9)
    assert time_factor < conn_factor ** 2, (
        f"time grew {time_factor:.1f}x for {conn_factor:.1f}x connections"
    )
