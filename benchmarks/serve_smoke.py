"""CI smoke for routing-as-a-service (docs/SERVING.md).

Boots a server, submits a bundled-suite job, streams its progress
events live, verifies the result, resubmits the identical spec and
requires a cache hit, then drains cleanly.  Exits non-zero on any
deviation so the CI serve job gates on the full request lifecycle.

Usage: PYTHONPATH=src python benchmarks/serve_smoke.py [suite]
"""

from __future__ import annotations

import sys

from repro.serve import RoutingServer, ServeClient


def main() -> int:
    suite = sys.argv[1] if len(sys.argv) > 1 else "ami33"
    server = RoutingServer(port=0, workers=2, cache_size=32).start()
    print(f"serve smoke: server on {server.address}")
    try:
        client = ServeClient(server.host, server.port, timeout_s=300.0)
        health = client.health()
        assert health["ok"] and health["state"] == "serving", health

        spec = {"design": suite, "flow": "overcell", "check": True}
        record = client.submit(spec)
        print(f"submitted {record['id']} ({suite}, checked)")

        streamed = list(client.stream(record["id"]))
        names = [e.get("event") for e in streamed]
        assert names[-1] == "serve.stream_end", names[-10:]
        assert "serve.job_state" in names
        assert "net.routed" in names, "no live routing progress streamed"
        print(f"streamed {len(streamed)} progress events")

        final = client.wait(record["id"], timeout_s=300.0)
        assert final["state"] == "done" and final["ok"], final
        payload = client.result(record["id"])["payload"]
        assert payload["completion"] == 1.0, payload
        assert payload["check_clean"] is True, payload
        print(
            f"routed {suite}: completion {payload['completion']}, "
            f"check CLEAN, wl={payload['wire_length']:,}"
        )

        duplicate = client.submit(spec)
        assert duplicate["cache_hit"] is True, duplicate
        assert duplicate["state"] == "done", duplicate
        print(f"resubmission answered from cache ({duplicate['id']})")

        stats = client.stats()
        counters = stats["queue"]["counters"]
        assert counters["cache_hits"] >= 1, counters
        print(f"counters: {counters}")

        client.shutdown(drain=True)
        assert server.wait_stopped(timeout_s=60.0), "shutdown did not drain"
        print("serve smoke: OK")
        return 0
    finally:
        server.stop(drain=False)


if __name__ == "__main__":
    sys.exit(main())
