"""Channel-router quality comparison (level A substrate).

Not a table in the paper, but the substrate the paper's baselines
stand on: compares the three detailed channel routers (greedy,
dogleg left-edge, Yoshimura-Kuh net merging) against the density
lower bound across a batch of random channels, plus the three suites'
actual channels from the two-layer flow.
"""

from repro.channels import (
    ChannelRoutingError,
    GreedyChannelRouter,
    LeftEdgeRouter,
    YKChannelRouter,
)
from repro.reporting import format_table

import random

from conftest import SUITE_NAMES, print_experiment


def random_problem(seed, length=40, nets=12):
    rng = random.Random(seed)
    top, bottom = [0] * length, [0] * length
    slots = [(s, c) for s in (0, 1) for c in range(length)]
    rng.shuffle(slots)
    i = 0
    for net in range(1, nets + 1):
        for _ in range(rng.randint(2, 4)):
            if i >= len(slots):
                break
            side, col = slots[i]
            i += 1
            (top if side == 0 else bottom)[col] = net
    from repro.channels import ChannelProblem

    return ChannelProblem(top=top, bottom=bottom)


ROUTERS = {
    "greedy": GreedyChannelRouter(),
    "left-edge": LeftEdgeRouter(),
    "yoshimura-kuh": YKChannelRouter(),
}


def test_channel_router_quality(benchmark):
    def sweep():
        stats = {
            name: {"tracks": 0, "density": 0, "done": 0, "wire": 0, "vias": 0}
            for name in ROUTERS
        }
        for seed in range(40):
            problem = random_problem(seed)
            density = problem.density()
            for name, router in ROUTERS.items():
                try:
                    route = router.route(problem)
                except ChannelRoutingError:
                    continue
                route.check(problem)
                entry = stats[name]
                entry["tracks"] += route.tracks
                entry["density"] += density
                entry["done"] += 1
                entry["wire"] += route.wire_length(8, 8)
                entry["vias"] += route.via_count()
        return stats

    stats = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = []
    for name, entry in stats.items():
        done = entry["done"]
        rows.append([
            name,
            f"{done}/40",
            f"{entry['tracks'] / done:.2f}",
            f"{entry['density'] / done:.2f}",
            f"{entry['tracks'] / max(entry['density'], 1):.3f}",
            f"{entry['wire'] // done}",
            f"{entry['vias'] / done:.1f}",
        ])
    print_experiment(
        "Channel router quality on 40 random channels",
        format_table(
            ["Router", "Completed", "Avg tracks", "Avg density",
             "Tracks/density", "Avg wire", "Avg vias"],
            rows,
        ),
    )
    greedy = stats["greedy"]
    assert greedy["done"] == 40  # the greedy router never fails
    # All routers stay near the density lower bound (within 40%).
    for entry in stats.values():
        assert entry["tracks"] <= 1.4 * entry["density"] + entry["done"]


def test_suite_channels(benchmark, flow_results):
    """The actual channels of the two-layer flows, per suite."""

    def collect():
        rows = []
        for suite in SUITE_NAMES:
            result = flow_results[(suite, "two-layer")]
            tracks = result.channel_tracks
            densities = [
                spec.problem.density() for spec in result.global_route.specs
            ]
            rows.append([
                suite,
                len(tracks),
                sum(tracks),
                sum(densities),
                f"{sum(tracks) / max(1, sum(densities)):.3f}",
            ])
        return rows

    rows = benchmark.pedantic(collect, rounds=1, iterations=1)
    print_experiment(
        "Two-layer flow channels: tracks vs density lower bound",
        format_table(
            ["Suite", "Channels", "Total tracks", "Total density", "Ratio"],
            rows,
        ),
    )
    for row in rows:
        assert float(row[4]) <= 1.6  # stays near the lower bound
