"""Serve load test: concurrent clients against one routing server.

Boots a :class:`repro.serve.RoutingServer` in-process, fires a burst of
concurrent clients at it — a small pool of distinct designs, each
requested many times, the realistic shape of a what-if serving
workload — and measures per-request latency end to end (submit until
the terminal record is in hand).  Duplicates must be answered from the
content-addressed cache or coalesced onto an in-flight run, so the
router executes once per distinct design no matter the request count.

Exports ``benchmarks/artifacts/BENCH_serve.json`` with p50/p99 latency,
throughput, and the cache hit-rate; asserts correctness (every request
completes with full routing) and that the cache actually absorbed the
duplicate load.
"""

from __future__ import annotations

import json
import os
import random
import threading
import time

from repro.io import design_to_dict
from repro.netlist import Design, Edge
from repro.serve import RoutingServer, ServeClient

from conftest import print_experiment

ARTIFACTS = os.path.join(os.path.dirname(__file__), "artifacts")

N_REQUESTS = 200
N_CLIENTS = 20
N_DISTINCT = 10
MIN_HIT_RATE = 0.5  # 10 distinct designs over 200 requests -> ~0.95


def make_small_design(seed: int) -> Design:
    """A placed 4-cell design that routes in milliseconds."""
    rng = random.Random(seed)
    design = Design(f"load{seed}")
    for i in range(4):
        cell = design.add_cell(f"c{i}", 80, 64)
        cell.place(16 + (i % 2) * 120, 16 + (i // 2) * 104)
    pins = []
    for i in range(4):
        for j in range(6):
            edge = Edge.TOP if j % 2 == 0 else Edge.BOTTOM
            pins.append(design.add_pin(f"c{i}", f"p{j}", edge, 8 + j * 8))
    rng.shuffle(pins)
    idx = 0
    for k, size in enumerate([2, 2, 3, 2, 4, 3]):
        net = design.add_net(f"n{k}")
        for pin in pins[idx : idx + size]:
            net.add_pin(pin)
        idx += size
    return design


def percentile(sorted_values: list[float], p: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(
        len(sorted_values) - 1, int(round(p * (len(sorted_values) - 1)))
    )
    return sorted_values[index]


def test_serve_load():
    specs = [
        {"design": design_to_dict(make_small_design(seed))}
        for seed in range(N_DISTINCT)
    ]
    server = RoutingServer(
        port=0, workers=2, cache_size=64, queue_size=N_REQUESTS + 16
    ).start()

    latencies: list[float] = []
    failures: list[str] = []
    lock = threading.Lock()
    assignments = [specs[i % N_DISTINCT] for i in range(N_REQUESTS)]
    cursor = {"next": 0}

    def client_loop() -> None:
        client = ServeClient(server.host, server.port, timeout_s=120.0)
        while True:
            with lock:
                i = cursor["next"]
                if i >= N_REQUESTS:
                    return
                cursor["next"] = i + 1
            spec = assignments[i]
            started = time.perf_counter()
            try:
                record = client.submit(spec)
                if record["state"] not in ("done", "failed"):
                    record = client.wait(record["id"], timeout_s=120.0)
                elapsed = time.perf_counter() - started
                if record["state"] != "done" or not record["ok"]:
                    raise RuntimeError(
                        f"job {record['id']} ended {record['state']}: "
                        f"{record.get('error')}"
                    )
                with lock:
                    latencies.append(elapsed)
            except Exception as exc:  # noqa: BLE001 - collected for assert
                with lock:
                    failures.append(f"request {i}: {exc}")
                return

    wall_started = time.perf_counter()
    threads = [
        threading.Thread(target=client_loop) for _ in range(N_CLIENTS)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=600.0)
    wall_s = time.perf_counter() - wall_started

    stats = server.stats()
    server.stop(drain=False)

    assert not failures, failures[:5]
    assert len(latencies) == N_REQUESTS

    counters = stats["queue"]["counters"]
    hits = counters["cache_hits"]
    hit_rate = hits / N_REQUESTS
    # the router ran once per distinct design; everything else was
    # absorbed by the cache or coalesced onto an in-flight run
    assert counters["cache_misses"] == N_DISTINCT
    assert hit_rate >= MIN_HIT_RATE, f"hit rate {hit_rate:.2f} ({counters})"

    latencies.sort()
    p50 = percentile(latencies, 0.50)
    p99 = percentile(latencies, 0.99)
    doc = {
        "format": "repro-bench-serve",
        "requests": N_REQUESTS,
        "clients": N_CLIENTS,
        "distinct_designs": N_DISTINCT,
        "workers": 2,
        "cpus": os.cpu_count() or 1,
        "wall_s": round(wall_s, 4),
        "throughput_rps": round(N_REQUESTS / wall_s, 2),
        "latency_s": {
            "p50": round(p50, 5),
            "p99": round(p99, 5),
            "min": round(latencies[0], 5),
            "max": round(latencies[-1], 5),
        },
        "cache": {
            "hits": hits,
            "misses": counters["cache_misses"],
            "coalesced": counters["coalesced"],
            "hit_rate": round(hit_rate, 4),
        },
    }
    os.makedirs(ARTIFACTS, exist_ok=True)
    out = os.path.join(ARTIFACTS, "BENCH_serve.json")
    with open(out, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")

    print_experiment(
        "Serve load - concurrent clients vs one server",
        "\n".join(
            [
                f"{N_REQUESTS} requests / {N_CLIENTS} clients / "
                f"{N_DISTINCT} distinct designs",
                f"wall {wall_s:6.2f}s  throughput "
                f"{doc['throughput_rps']:.1f} req/s",
                f"latency p50 {p50 * 1000:7.1f}ms  p99 {p99 * 1000:7.1f}ms",
                f"cache hit-rate {hit_rate:.1%} "
                f"({hits} hits, {counters['coalesced']} coalesced)",
                f"(exported {out})",
            ]
        ),
    )
