"""Plane-count sweep: the over-cell flow at 1 and 2 routing planes.

Runs every bundled suite through ``overcell_flow`` at ``planes=1`` and
``planes=2`` (docs/LAYERS.md), records wire length, via count, level B
completion and wall time per configuration, and exports
``benchmarks/artifacts/BENCH_layers.json`` so the cost of altitude —
more via levels per terminal stack, less congestion per plane — is on
record for every revision.

Assertions are portability-safe: both configurations must complete
fully, and the two-plane run must actually use the second plane on
every suite.  Runtime is exported but not asserted (CI wall time is
too noisy to gate on).
"""

from __future__ import annotations

import json
import os
import time

from repro.bench_suite import SUITES
from repro.flow import FlowParams, overcell_flow

from conftest import SUITE_NAMES, print_experiment

ARTIFACTS = os.path.join(os.path.dirname(__file__), "artifacts")

PLANE_COUNTS = (1, 2)


def timed_flow(suite: str, planes: int):
    design = SUITES[suite]()
    started = time.perf_counter()
    result = overcell_flow(design, FlowParams(planes=planes))
    return time.perf_counter() - started, result


def test_plane_sweep():
    sweeps = {}
    lines = []
    for suite in SUITE_NAMES:
        per_suite = {}
        for planes in PLANE_COUNTS:
            wall_s, result = timed_flow(suite, planes)
            levelb = result.levelb
            assert levelb is not None
            assert levelb.num_planes == planes
            assert result.completion == 1.0
            planes_used = sorted({r.plane for r in levelb.routed})
            if planes == 2:
                # The sweep is only informative if the second plane
                # actually carries nets on every suite.
                assert planes_used == [0, 1]
            per_suite[f"planes{planes}"] = {
                "planes": planes,
                "flow": result.flow,
                "wire_length": result.wire_length,
                "vias": result.via_count,
                "completion": result.completion,
                "wall_s": round(wall_s, 4),
                "nets_per_plane": [
                    len(levelb.nets_on_plane(p)) for p in range(planes)
                ],
            }
            lines.append(
                f"{suite:6s} planes={planes}: wl={result.wire_length:>7,} "
                f"vias={result.via_count:>5,} {wall_s:6.2f}s"
            )
        sweeps[suite] = per_suite

    doc = {
        "format": "repro-bench-layers",
        "plane_counts": list(PLANE_COUNTS),
        "suites": sweeps,
    }
    os.makedirs(ARTIFACTS, exist_ok=True)
    out = os.path.join(ARTIFACTS, "BENCH_layers.json")
    with open(out, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    lines.append(f"(exported {out})")
    print_experiment("Plane-count sweep - over-cell flow", "\n".join(lines))
