"""Section 2's delay motivation, quantified.

Paper: "long distance interconnections are routed in level B using
wider lines to yield shorter propagation delays".  For every routed
level B net of the ami33 suite we compute the Elmore delay over its
actual m3/m4 geometry and compare against the lumped estimate of the
same net routed in m1/m2 channels.  Asserted shape: long nets are
faster over-cell, and the advantage grows with length.
"""

from repro.technology import Technology
from repro.reporting import format_table
from repro.timing import channel_net_delay_estimate, levelb_net_delays

from conftest import print_experiment

BUCKETS = ((0, 200), (200, 500), (500, 10**9))


def test_delay_motivation(benchmark, flow_results):
    overcell = flow_results[("ami33", "overcell")]
    tech = Technology.four_layer()

    def analyse():
        stats = {b: [0, 0.0, 0.0] for b in BUCKETS}  # count, lb, ch
        for routed in overcell.levelb.routed:
            delays = levelb_net_delays(routed, tech)
            if not delays:
                continue
            levelb_worst = max(delays.values())
            channel = channel_net_delay_estimate(routed.net, tech)
            hpwl = routed.net.half_perimeter
            for lo, hi in BUCKETS:
                if lo <= hpwl < hi:
                    entry = stats[(lo, hi)]
                    entry[0] += 1
                    entry[1] += levelb_worst
                    entry[2] += channel
        return stats

    stats = benchmark.pedantic(analyse, rounds=1, iterations=1)

    rows = []
    for (lo, hi), (count, lb, ch) in stats.items():
        if count == 0:
            continue
        label = f"{lo}-{hi if hi < 10**9 else 'inf'}"
        speedup = ch / lb if lb else float("inf")
        rows.append([
            label, count, f"{lb / count:.2f}", f"{ch / count:.2f}",
            f"{speedup:.2f}x",
        ])
    print_experiment(
        "Delay motivation: level B (m3/m4 Elmore) vs channel estimate (m1/m2)",
        format_table(
            ["HPWL bucket", "Nets", "Level B avg ps", "Channel avg ps", "Speedup"],
            rows,
        ),
    )
    # Long nets must be faster over-cell; the advantage must grow with
    # length (the paper's reason to send long nets to level B).
    long_bucket = stats[BUCKETS[-1]]
    assert long_bucket[0] > 0
    assert long_bucket[1] < long_bucket[2], "long nets must be faster on m3/m4"
    speedups = []
    for bucket in BUCKETS:
        count, lb, ch = stats[bucket]
        if count:
            speedups.append(ch / lb)
    assert speedups == sorted(speedups), "advantage must grow with length"
