"""The iterate tier: negotiated congestion vs one-pass routing.

Runs the over-cell flow on the dense tier (``repro.bench_suite.
DENSE_TIERS`` — small over-cell areas under heavy, low-locality demand,
tuned to sit just past the one-pass routability boundary) and the
``scale-quick`` tier, once per registered ordering policy with the
iterative driver on, asserting the acceptance property of
docs/ITERATION.md:

* the dense tier genuinely **fails** one-pass routing (otherwise the
  experiment proves nothing);
* with ``iterate`` on, at least one policy routes it to 100 %
  completion, and no policy ends worse than one-pass;
* the already-routable scale tier converges at iteration zero — the
  loop costs nothing when there is nothing to negotiate.

Exports ``benchmarks/artifacts/BENCH_iterate.json`` with completion
rate, wirelength, pass count and convergence per (tier, policy).  With
``--quick`` (the CI bench-iterate job) the dense ``full`` tier is
skipped.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.bench_suite import dense_design, dense_profile, scale_design
from repro.flow import FlowParams, overcell_flow
from repro.iterate import available_policies

from conftest import print_experiment

ARTIFACTS = os.path.join(os.path.dirname(__file__), "artifacts")


def _iterated_run(design, policy: str) -> dict:
    started = time.perf_counter()
    result = overcell_flow(
        design,
        FlowParams(iterate=True, max_iterations=8, ordering_policy=policy),
    )
    wall_s = time.perf_counter() - started
    report = result.notes["iterate"]
    return {
        "policy": policy,
        "wall_s": round(wall_s, 2),
        "completion": result.completion,
        "wire_length": result.wire_length,
        "via_count": result.via_count,
        "iterations": report["iterations"],
        "converged": report["converged"],
        "stalled": report["stalled"],
        "one_pass_completion": report["records"][0]["completion"],
    }


def _tier_runs(make_design) -> tuple[dict, list[dict]]:
    one_pass = overcell_flow(make_design(), FlowParams())
    baseline = {
        "completion": one_pass.completion,
        "wire_length": one_pass.wire_length,
        "via_count": one_pass.via_count,
    }
    runs = [_iterated_run(make_design(), p) for p in available_policies()]
    return baseline, runs


def _render(tier: str, baseline: dict, runs: list[dict]) -> list[str]:
    lines = [
        f"{tier:12s} {'one-pass':14s} completion={baseline['completion']:.3f}  "
        f"wl={baseline['wire_length']:>9,}"
    ]
    for run in runs:
        status = (
            "converged"
            if run["converged"]
            else ("stalled" if run["stalled"] else "budget")
        )
        lines.append(
            f"{tier:12s} {run['policy']:14s} completion={run['completion']:.3f}  "
            f"wl={run['wire_length']:>9,}  passes={run['iterations']}  "
            f"{status}  wall={run['wall_s']:6.2f}s"
        )
    return lines


def test_iterate_tiers(request: pytest.FixtureRequest) -> None:
    quick = request.config.getoption("--quick")

    # -- dense tier: the design one-pass routing cannot finish --------
    dense_base, dense_runs = _tier_runs(lambda: dense_design("quick"))
    assert dense_base["completion"] < 1.0, (
        "dense-quick must fail one-pass routing; retune DENSE_TIERS"
    )
    assert any(run["converged"] for run in dense_runs), (
        "no ordering policy recovered the dense tier"
    )
    for run in dense_runs:
        # Commit-if-better: iteration can never end worse than one pass.
        assert run["completion"] >= run["one_pass_completion"], run["policy"]

    # -- scale tier: already routable, the loop must cost nothing -----
    scale_base, scale_runs = _tier_runs(lambda: scale_design("quick"))
    assert scale_base["completion"] == 1.0
    for run in scale_runs:
        assert run["completion"] == 1.0, run["policy"]
        assert run["converged"] and run["iterations"] == 0, run["policy"]

    profile = dense_profile("quick")
    doc = {
        "format": "repro-bench-iterate",
        "policies": list(available_policies()),
        "tiers": {
            "dense-quick": {
                "design": {
                    "name": profile.name,
                    "cells": profile.num_cells,
                    "nets": profile.num_regular_nets
                    + len(profile.critical_pin_counts),
                },
                "one_pass": dense_base,
                "runs": dense_runs,
            },
            "scale-quick": {
                "one_pass": scale_base,
                "runs": scale_runs,
            },
        },
    }
    lines = _render("dense-quick", dense_base, dense_runs)
    lines += _render("scale-quick", scale_base, scale_runs)

    if not quick:
        full_base, full_runs = _tier_runs(lambda: dense_design("full"))
        assert full_base["completion"] < 1.0
        for run in full_runs:
            assert run["completion"] >= run["one_pass_completion"]
        doc["tiers"]["dense-full"] = {
            "one_pass": full_base,
            "runs": full_runs,
        }
        lines += _render("dense-full", full_base, full_runs)

    os.makedirs(ARTIFACTS, exist_ok=True)
    out = os.path.join(ARTIFACTS, "BENCH_iterate.json")
    with open(out, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    lines.append(f"(exported {out})")
    print_experiment(
        "Iterate tier - negotiated congestion vs one-pass routing",
        "\n".join(lines),
    )
