"""Section 3's speed claim - MBFS vs maze-type algorithms.

Paper: "The proposed router adopts a different representation for the
solution space ... that results in faster completion of the
interconnections on the average when compared to maze type
algorithms."

Both routers here share the occupancy grid, net ordering, Steiner
decomposition and commit logic; they differ only in the per-connection
search (track-graph MBFS vs Lee/Dijkstra wave expansion).  Asserted
shape: on the same workload the MBFS creates far fewer search nodes
per connection and is faster in wall-clock terms.
"""

import time

from repro.bench_suite import random_design
from repro.core import LevelBConfig, LevelBRouter
from repro.maze import MazeRouter
from repro.placement import RowPlacement
from repro.reporting import format_table

from conftest import print_experiment


def build_workload(seed):
    # 48 nets on 14 cells: busy but fully routable by both engines, so
    # the timing compares the same realised set of connections.  (At
    # saturation both engines spend most time proving failures, which
    # measures exhaustion, not search.)
    design = random_design(
        f"speed{seed}", seed=seed, num_cells=14, num_nets=48, num_critical=0
    )
    placement = RowPlacement.build(design, pitch=8)
    placement.realize([16] * placement.channel_count, margin=16)
    bounds = design.cell_bounds().expanded(24)
    return design, bounds


def route_with(router_cls, seed):
    design, bounds = build_workload(seed)
    config = LevelBConfig(maze_fallback=False, max_ripups=0)
    router = router_cls(bounds, list(design.nets.values()), config=config)
    started = time.perf_counter()
    result = router.route()
    elapsed = time.perf_counter() - started
    return result, elapsed


def test_mbfs_vs_maze(benchmark):
    seeds = (1, 2, 3)

    def run_all():
        out = {}
        for seed in seeds:
            out["mbfs", seed] = route_with(LevelBRouter, seed)
            out["maze", seed] = route_with(MazeRouter, seed)
        return out

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    total = {"mbfs": [0, 0.0, 0], "maze": [0, 0.0, 0]}
    for engine in ("mbfs", "maze"):
        for seed in seeds:
            result, elapsed = results[engine, seed]
            conns = sum(len(r.connections) for r in result.routed)
            rows.append([
                engine, seed, conns,
                f"{result.completion_rate:.0%}",
                result.nodes_created,
                f"{elapsed * 1000:.0f}",
                result.total_wire_length,
            ])
            total[engine][0] += result.nodes_created
            total[engine][1] += elapsed
            total[engine][2] += result.total_wire_length
    print_experiment(
        "MBFS vs maze search (same occupancy model, same workload)",
        format_table(
            ["Engine", "Seed", "Conns", "Done", "Search nodes", "ms", "Wire"],
            rows,
        )
        + f"\n\ntotals: MBFS {total['mbfs'][0]:,} nodes / "
        f"{total['mbfs'][1]*1000:.0f} ms; "
        f"maze {total['maze'][0]:,} nodes / {total['maze'][1]*1000:.0f} ms",
    )
    # The paper's claim, on averages across the workload:
    assert total["mbfs"][0] < total["maze"][0], "MBFS must search fewer nodes"
    assert total["mbfs"][1] < total["maze"][1], "MBFS must be faster on average"
    # Quality stays comparable (within 25% total wire length).
    assert total["mbfs"][2] < 1.25 * total["maze"][2]
