"""Table 1 - information about the three layout examples.

Paper: per example, the number of level A nets and their average pins
per net were 4 (44.25) for ami33, 21 (9.19) for Xerox and 56 (3.23)
for ex3.  The synthetic suites reproduce those partition statistics
exactly; the benchmark times suite generation plus partitioning.
"""

import pytest

from repro.bench_suite import SUITES
from repro.partition import partition_nets
from repro.reporting import format_table, table1_rows
from repro.reporting.tables import TABLE1_HEADERS

from conftest import SUITE_NAMES, print_experiment

PAPER_LEVEL_A = {
    "ami33": (4, 44.25),
    "xerox": (21, 9.19),
    "ex3": (56, 3.23),
}


def test_table1(benchmark, flow_results, designs):
    def build_all():
        out = {}
        for suite in SUITE_NAMES:
            design = SUITES[suite]()
            set_a, set_b = partition_nets(design.routable_nets())
            out[suite] = (design, set_a, set_b)
        return out

    built = benchmark.pedantic(build_all, rounds=1, iterations=1)

    rows = []
    for suite in SUITE_NAMES:
        design, set_a, set_b = built[suite]
        rows += table1_rows(design, flow_results[(suite, "overcell")])
        paper_nets, paper_avg = PAPER_LEVEL_A[suite]
        assert len(set_a) == paper_nets
        avg = sum(n.degree for n in set_a) / len(set_a)
        assert avg == pytest.approx(paper_avg, abs=0.01)
    print_experiment(
        "Table 1: example information (level A partition as in the paper)",
        format_table(TABLE1_HEADERS, rows),
    )
