"""The scale tier: sparse vs dense occupancy backends at size.

Routes the ``scale-quick`` design (thousands of cells over a grid an
order of magnitude larger than the paper suites — see
``repro.bench_suite.SCALE_TIERS`` and docs/SCALING.md) through the
over-cell flow on both backends, asserting:

* backend parity — identical wire length, via count and completion on
  dense and sparse, flat and hierarchical;
* the sparse memory win — the grid's dense-array footprint is at
  least ``MIN_MEMORY_RATIO``x the sparse backend's allocated bytes;
* verification — the hierarchical sparse run is CLEAN under the
  independent checker (``repro.check``), strict mode.

Exports ``benchmarks/artifacts/BENCH_scale.json``.  With ``--quick``
(the CI scale job) only the quick tier runs; without it the ``full``
tier adds a sparse hierarchical leg at ~4x the area.

The sparse runs execute *before* the dense one: ``ru_maxrss`` is
process-wide and monotonic, so only the first runs' peak RSS is
unpolluted by earlier allocations.  The backend-level gauges
(``mem.grid_bytes`` vs ``mem.grid_dense_equiv_bytes``) are per-run
exact either way and carry the ratio assertion.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro import instrument
from repro.bench_suite import scale_design, scale_profile
from repro.check import check_flow
from repro.flow import FlowParams, overcell_flow

from conftest import print_experiment

ARTIFACTS = os.path.join(os.path.dirname(__file__), "artifacts")

#: The acceptance bar: dense-array footprint >= 10x sparse allocation.
MIN_MEMORY_RATIO = 10.0


def _routed_run(tier: str, params: FlowParams) -> tuple[dict, object]:
    design = scale_design(tier)
    started = time.perf_counter()
    with instrument.collecting():
        result = overcell_flow(design, params)
    wall_s = time.perf_counter() - started
    gauges = result.profile["gauges"]
    grid_bytes = gauges["mem.grid_bytes"]
    dense_equiv = gauges["mem.grid_dense_equiv_bytes"]
    record = {
        "backend": params.backend,
        "hierarchical": params.hierarchical,
        "wall_s": round(wall_s, 2),
        "completion": result.completion,
        "wire_length": result.wire_length,
        "via_count": result.via_count,
        "grid_bytes": int(grid_bytes),
        "grid_dense_equiv_bytes": int(dense_equiv),
        "memory_ratio": round(dense_equiv / grid_bytes, 2),
        "peak_rss_bytes": int(gauges["mem.peak_rss_bytes"]),
    }
    return record, result


def test_scale_backends(request: pytest.FixtureRequest) -> None:
    quick = request.config.getoption("--quick")
    profile = scale_profile("quick")

    # Sparse legs first (see module docstring for the RSS caveat).
    sparse, sparse_result = _routed_run("quick", FlowParams(backend="sparse"))
    hier, hier_result = _routed_run(
        "quick", FlowParams(backend="sparse", hierarchical=True)
    )
    dense, dense_result = _routed_run("quick", FlowParams())

    # Backend parity: storage engines and wave-planning strategy must
    # never change the answer.
    for run, result in (("sparse", sparse_result), ("hier", hier_result)):
        assert result.wire_length == dense_result.wire_length, run
        assert result.via_count == dense_result.via_count, run
        assert result.completion == dense_result.completion, run
    assert dense_result.completion == 1.0

    # The memory win the sparse backend exists for.
    for run in (sparse, hier):
        assert run["memory_ratio"] >= MIN_MEMORY_RATIO, (
            f"dense footprint only {run['memory_ratio']}x the sparse "
            f"allocation (need >= {MIN_MEMORY_RATIO}x)"
        )

    # Independent verification of the hierarchical sparse run (the
    # same engine `repro check --strict` runs).
    report = check_flow(hier_result)
    assert not report.violations, report.render(limit=20)

    doc = {
        "format": "repro-bench-scale",
        "tier": "quick",
        "design": {
            "name": profile.name,
            "cells": profile.num_cells,
            "nets": profile.num_regular_nets + len(profile.critical_pin_counts),
        },
        "min_memory_ratio": MIN_MEMORY_RATIO,
        "check_clean": not report.violations,
        "runs": {"sparse": sparse, "sparse_hier": hier, "dense": dense},
    }

    lines = [
        f"{name:12s} wall={run['wall_s']:7.2f}s  "
        f"mem={run['grid_bytes']:>12,}B  "
        f"dense-equiv={run['grid_dense_equiv_bytes']:>12,}B  "
        f"ratio={run['memory_ratio']:5.2f}x"
        for name, run in doc["runs"].items()
    ]

    if not quick:
        full_profile = scale_profile("full")
        full, full_result = _routed_run(
            "full", FlowParams(backend="sparse", hierarchical=True)
        )
        assert full["memory_ratio"] >= MIN_MEMORY_RATIO
        doc["full"] = {
            "design": {
                "name": full_profile.name,
                "cells": full_profile.num_cells,
                "nets": full_profile.num_regular_nets
                + len(full_profile.critical_pin_counts),
            },
            "run": full,
        }
        lines.append(
            f"{'full/hier':12s} wall={full['wall_s']:7.2f}s  "
            f"mem={full['grid_bytes']:>12,}B  "
            f"dense-equiv={full['grid_dense_equiv_bytes']:>12,}B  "
            f"ratio={full['memory_ratio']:5.2f}x  "
            f"completion={full['completion']:.3f}"
        )

    os.makedirs(ARTIFACTS, exist_ok=True)
    out = os.path.join(ARTIFACTS, "BENCH_scale.json")
    with open(out, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    lines.append(f"(exported {out})")
    print_experiment(
        f"Scale tier - {profile.name}: sparse vs dense backends",
        "\n".join(lines),
    )
