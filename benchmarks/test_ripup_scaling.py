"""Rip-up cost scaling: O(cells the net touches), not O(grid).

The seed implementation's ``clear_net`` masked the full occupancy
arrays (``2*h*v`` slots scanned per rip); the ledger-based ``rip_net``
replays only the ripped net's own mutation records.  This experiment
rips an identical fixed-size net off grids of growing size and checks
that the measured work (journal undo cells) stays constant while the
grid grows by orders of magnitude.  Wall time is reported for context
but not asserted (CI machines are noisy).
"""

import time

from repro import instrument
from repro.instrument.names import TXN_UNDO_CELLS
from repro.grid import RoutingGrid
from repro.grid.tracks import TrackSet
from repro.reporting import format_table

from conftest import print_experiment

NET_ID = 7
NET_SPAN = 40  # cells per direction, identical on every grid


def make_grid(n: int) -> RoutingGrid:
    tracks = TrackSet.uniform(0, 8 * (n - 1), 8)
    return RoutingGrid(tracks, tracks)


def wire_fixed_net(grid: RoutingGrid) -> None:
    grid.occupy_h(5, 0, NET_SPAN - 1, NET_ID)
    grid.occupy_corner(NET_SPAN - 1, 5, NET_ID)
    grid.occupy_v(NET_SPAN - 1, 5, 5 + NET_SPAN - 1, NET_ID)


def measure(n: int, repeats: int = 50):
    grid = make_grid(n)
    wire_fixed_net(grid)
    recorded = grid.net_cells_recorded(NET_ID)
    with instrument.collecting() as col:
        start = time.perf_counter()
        for _ in range(repeats):
            txn = grid.begin()
            freed = grid.rip_net(NET_ID)
            txn.rollback()  # restores wiring + ledger for the next round
        elapsed = (time.perf_counter() - start) / repeats
    undo_cells = col.counters[TXN_UNDO_CELLS] // repeats
    return {
        "grid": f"{n}x{n}",
        "slots": 2 * n * n,
        "net_cells": recorded,
        "freed": freed,
        "undo_cells": undo_cells,
        "rip+rollback_us": round(elapsed * 1e6, 1),
    }


def test_ripup_work_independent_of_grid_size():
    sizes = (100, 200, 400, 800)
    rows = [measure(n) for n in sizes]
    body = format_table(
        ["grid", "slots", "net_cells", "freed", "undo_cells", "rip+rollback_us"],
        [[r[k] for k in r] for r in rows],
    )
    print_experiment(
        "Rip-up scaling: ledger replay vs grid size", body
    )
    # The work metric must be flat across a 64x growth in grid slots.
    undo = [r["undo_cells"] for r in rows]
    assert len(set(undo)) == 1, f"undo cells varied with grid size: {undo}"
    net_cells = [r["net_cells"] for r in rows]
    assert len(set(net_cells)) == 1
    # And tiny compared to the arrays a full scan would visit.
    assert undo[0] < rows[0]["slots"] // 10
