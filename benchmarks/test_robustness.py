"""Robustness of the Table 2 result across random designs.

The paper evaluates three examples; a natural question is whether the
over-cell win is an artefact of those inputs.  This experiment repeats
the Table 2 comparison across a population of random macro-cell
designs of varying size and reports the reduction distribution.
Asserted shape: the over-cell flow wins on layout area and wire length
on *every* sampled design, and on vias in the large majority.
"""

from repro.bench_suite import random_design
from repro.flow import overcell_flow, percent_reduction, two_layer_flow
from repro.reporting import format_table

from conftest import print_experiment

POPULATION = [
    # (seed, cells, nets, critical)
    (101, 8, 24, 2),
    (102, 10, 32, 3),
    (103, 12, 40, 4),
    (104, 16, 56, 4),
    (105, 20, 72, 5),
    (106, 14, 48, 3),
]


def test_table2_robustness(benchmark):
    def sweep():
        rows = []
        for seed, cells, nets, critical in POPULATION:
            design_a = random_design(
                f"rob{seed}", seed=seed, num_cells=cells, num_nets=nets,
                num_critical=critical,
            )
            base = two_layer_flow(design_a)
            design_b = random_design(
                f"rob{seed}", seed=seed, num_cells=cells, num_nets=nets,
                num_critical=critical,
            )
            over = overcell_flow(design_b)
            rows.append(
                (
                    seed,
                    cells,
                    nets,
                    percent_reduction(base.layout_area, over.layout_area),
                    percent_reduction(base.wire_length, over.wire_length),
                    percent_reduction(base.via_count, over.via_count),
                    over.completion,
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = [
        [seed, f"{cells}c/{nets}n", f"{area:.1f}", f"{wire:.1f}",
         f"{vias:.1f}", f"{done:.0%}"]
        for seed, cells, nets, area, wire, vias, done in rows
    ]
    print_experiment(
        "Table 2 robustness across random designs (% reductions)",
        format_table(
            ["Seed", "Size", "Area %", "Wire %", "Vias %", "Done"], table
        ),
    )
    for seed, cells, nets, area, wire, vias, done in rows:
        assert area > 0, f"seed {seed}: area must improve"
        assert wire > 0, f"seed {seed}: wire must improve"
        assert done == 1.0, f"seed {seed}: over-cell flow must complete"
    via_wins = sum(1 for r in rows if r[5] > 0)
    assert via_wins >= len(rows) - 1, "vias must improve almost always"
