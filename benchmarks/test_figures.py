"""Figures 1-3 - the paper's illustrations, regenerated.

* Figure 1: a level B instance and its Track Intersection Graph.
* Figure 2: the Path Selection Trees for net B of that instance.
* Figure 3: the level B routing of the ami33 example (SVG + ASCII).

Artifacts are written into ``benchmarks/artifacts/``.
"""

import os

from repro.core.search import MBFSearch, candidate_paths
from repro.core.tig import TrackIntersectionGraph
from repro.geometry import Point, Rect
from repro.grid import TrackSet
from repro.viz import render_levelb_ascii, render_pst, render_tig
from repro.viz.svg import svg_flow_result

from conftest import print_experiment

ARTIFACTS = os.path.join(os.path.dirname(__file__), "artifacts")


def figure1_instance():
    tig = TrackIntersectionGraph(
        TrackSet([0, 10, 20, 30, 40, 50]), TrackSet([0, 10, 20, 30, 40])
    )
    tig.register_net(1, [Point(0, 0), Point(20, 40)])   # net A
    tig.register_net(2, [Point(10, 10), Point(50, 30)])  # net B
    tig.register_net(3, [Point(40, 0), Point(40, 40)])   # net C
    tig.add_obstacle(Rect(25, 15, 35, 25))               # obstacle O1
    return tig


def test_figure1(benchmark):
    """Level B instance + TIG; the obstacle removes edge (v4,h3)."""
    tig = benchmark.pedantic(figure1_instance, rounds=1, iterations=1)
    art = render_tig(tig)
    # Bipartite sanity and the obstacle's missing edge.
    v4_line = next(l for l in art.splitlines() if l.strip().startswith("v4:"))
    assert "h3" not in v4_line
    assert len(list(tig.edges())) == 6 * 5 - 1 - 6  # obstacle + 6 terminals
    print_experiment("Figure 1: Track Intersection Graph", art)


def test_figure2(benchmark):
    """Path Selection Trees for net B: all minimum-corner paths."""
    tig = figure1_instance()
    source, target = tig.terminals_of(2)

    def search():
        return MBFSearch(tig.grid, 2, source, target).run()

    result = benchmark.pedantic(search, rounds=1, iterations=1)
    assert result.found
    assert result.min_corners == 1
    body = []
    for i, root in enumerate(result.roots):
        body.append(f"Tree {i + 1} (rooted at {root.name()}):")
        body.append(render_pst(root, result.leaves))
    body.append("")
    for cand in candidate_paths(result, tig.grid):
        seq = ", ".join(cand.leaf.track_sequence())
        body.append(
            f"candidate ({seq}, terminal): corners={cand.corner_count} "
            f"length={cand.length}"
        )
    print_experiment("Figure 2: Path Selection Trees for net B", "\n".join(body))


def test_figure3(benchmark, flow_results):
    """Level B routing of ami33, rendered to SVG and ASCII."""
    overcell = flow_results[("ami33", "overcell")]

    def render():
        return svg_flow_result(overcell), render_levelb_ascii(
            overcell.levelb,
            width=100,
            cells=overcell.placement.design.cells.values(),
        )

    svg, ascii_art = benchmark.pedantic(render, rounds=1, iterations=1)
    os.makedirs(ARTIFACTS, exist_ok=True)
    path = os.path.join(ARTIFACTS, "figure3_ami33_levelb.svg")
    with open(path, "w") as fh:
        fh.write(svg)
    assert svg.startswith("<svg") and "<line" in svg
    assert overcell.levelb.total_wire_length > 0
    print_experiment(
        f"Figure 3: level B routing of ami33 (SVG at {path})", ascii_art
    )
