"""The technology tier: width classes and the via-minimization mode.

Routes the wide-net tier (``repro.bench_suite.WIDE_TIERS`` — designs
carrying clock and power nets that claim multi-track footprints) under
the golden width-spacing stackup (``tests/golden/stackup_wide.json``)
with both level B objectives, asserting the acceptance properties of
docs/TECHNOLOGY.md:

* the quick tier routes to completion under the default wire
  objective — wide footprints and guard spacing do not break
  routability on a well-sized design.  The full tier is deliberately
  dense enough that a handful of terminals get pinched inside
  wide-net claims (the best-effort semantics of docs/TECHNOLOGY.md),
  so it holds a completion floor instead, with the pinched count
  recorded per run;
* ``objective="vias"`` spends measurably fewer level B vias than the
  wire objective on the nets both objectives complete.  Repricing
  altitude concentrates nets on the low planes, which on a saturated
  tier can cost a few completions — each tier bounds that deficit
  relative to its own wire run (``VIAS_COMPLETION_TOLERANCE``) and
  makes the via comparison over the common complete-net set so failed
  nets never flatter it;
* the run under the data-driven stackup passes the full independent
  verification, including the width-dependent spacing DRC.

Exports ``benchmarks/artifacts/BENCH_technology.json`` with via count
and wirelength per (tier, objective).  With ``--quick`` (the CI
bench-technology job) the ``full`` tier is skipped.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.bench_suite import wide_design, wide_profile
from repro.check import check_flow
from repro.flow import FlowParams, overcell_flow
from repro.technology import technology_from_any

from conftest import print_experiment

ARTIFACTS = os.path.join(os.path.dirname(__file__), "artifacts")
GOLDEN = os.path.join(
    os.path.dirname(__file__), os.pardir, "tests", "golden", "stackup_wide.json"
)

# Per-tier wire-objective completion expectations.  The quick tier is
# sized so wide footprints route fully.  The full tier packs enough
# pins that a few terminals land inside wide-net claims and are
# pinched (docs/TECHNOLOGY.md best-effort semantics) — its floor
# tolerates that known deficit while still catching real routability
# regressions.
WIRE_COMPLETION_FLOOR = {"wide-quick": 1.0, "wide-full": 0.90}

# The vias objective trades completion for via count on a saturated
# tier (docs/TECHNOLOGY.md): pricing altitude pushes nets down to
# plane 0, and the nets the wire objective would have lifted upward
# can run out of room there.  Bounded relative to the same tier's
# wire run, which already accounts for its pinched terminals.
VIAS_COMPLETION_TOLERANCE = 0.08


def _golden_technology():
    with open(GOLDEN) as fh:
        return technology_from_any(json.load(fh))


def _run(tier: str, objective: str) -> dict:
    started = time.perf_counter()
    result = overcell_flow(
        wide_design(tier),
        FlowParams(technology=_golden_technology(), planes=2, objective=objective),
    )
    wall_s = time.perf_counter() - started
    levelb = result.levelb
    pinched = sum(
        len(levelb.tig.pinched_terminals(r.net_id)) for r in levelb.routed
    )
    return {
        "objective": objective,
        "wall_s": round(wall_s, 2),
        "completion": result.completion,
        "wire_length": result.wire_length,
        "via_count": result.via_count,
        "level_b_vias": result.notes["level_b_vias"],
        "pinched_terminals": pinched,
        "_result": result,
    }


def _tier_runs(tier: str) -> dict[str, dict]:
    return {obj: _run(tier, obj) for obj in ("wire", "vias")}


def _common_net_vias(runs: dict[str, dict]) -> dict[str, int]:
    """Level B vias per objective, over nets complete under *both*.

    A net the vias objective failed contributes zero vias, which would
    flatter a raw total; restricting the sum to the common complete-net
    set makes "fewer vias" a statement about identical routed work.
    """
    per_net = {
        obj: {r.net.name: r.via_count for r in run["_result"].levelb.routed if r.complete}
        for obj, run in runs.items()
    }
    common = set.intersection(*(set(nets) for nets in per_net.values()))
    return {obj: sum(nets[name] for name in common) for obj, nets in per_net.items()}


def _assert_tier(tier: str, runs: dict[str, dict]) -> None:
    wire, vias = runs["wire"], runs["vias"]
    floor = WIRE_COMPLETION_FLOOR[tier]
    assert wire["completion"] >= floor, (
        f"{tier}: wire objective completion {wire['completion']:.4f} fell "
        f"below the tier floor {floor}"
    )
    assert vias["completion"] >= wire["completion"] - VIAS_COMPLETION_TOLERANCE, (
        f"{tier}: objective='vias' completion {vias['completion']:.4f} fell "
        f"more than {VIAS_COMPLETION_TOLERANCE} below the wire run's "
        f"{wire['completion']:.4f}"
    )
    common = _common_net_vias(runs)
    for run in runs.values():
        run["common_net_vias"] = common[run["objective"]]
    assert common["vias"] < common["wire"], (
        f"{tier}: objective='vias' must measurably reduce level B vias on "
        f"the nets both objectives complete "
        f"(wire={common['wire']}, vias={common['vias']})"
    )
    # The whole point of data-driven rules: the run verifies clean,
    # width-dependent spacing DRC included.
    report = check_flow(wire.pop("_result"))
    assert report.ok, report.summary()
    vias.pop("_result")


def _render(tier: str, runs: dict[str, dict]) -> list[str]:
    return [
        f"{tier:12s} {run['objective']:5s} completion={run['completion']:.3f}  "
        f"wl={run['wire_length']:>9,}  level_b_vias={run['level_b_vias']:>5,}  "
        f"common_net_vias={run['common_net_vias']:>5,}  "
        f"pinched={run['pinched_terminals']}  wall={run['wall_s']:6.2f}s"
        for run in runs.values()
    ]


def _design_stats(tier: str) -> dict:
    profile = wide_profile(tier)
    return {
        "name": profile.name,
        "cells": profile.num_cells,
        "signal_nets": profile.num_regular_nets
        + len(profile.critical_pin_counts),
        "clock_nets": profile.clock_nets,
        "power_nets": profile.power_nets,
    }


def test_technology_tiers(request: pytest.FixtureRequest) -> None:
    quick = request.config.getoption("--quick")

    quick_runs = _tier_runs("quick")
    _assert_tier("wide-quick", quick_runs)

    doc = {
        "format": "repro-bench-technology",
        "stackup": os.path.basename(GOLDEN),
        "objectives": ["wire", "vias"],
        "tiers": {
            "wide-quick": {"design": _design_stats("quick"), "runs": quick_runs},
        },
    }
    lines = _render("wide-quick", quick_runs)

    if not quick:
        full_runs = _tier_runs("full")
        _assert_tier("wide-full", full_runs)
        doc["tiers"]["wide-full"] = {
            "design": _design_stats("full"),
            "runs": full_runs,
        }
        lines += _render("wide-full", full_runs)

    os.makedirs(ARTIFACTS, exist_ok=True)
    out = os.path.join(ARTIFACTS, "BENCH_technology.json")
    with open(out, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    lines.append(f"(exported {out})")
    print_experiment(
        "Technology tier - width classes and the via objective",
        "\n".join(lines),
    )
