"""Ablations of the design choices the paper calls out.

* Cost weights (section 3.2): sparse w2*=10 vs dense w2*=30 vs
  length-only - the corner-context terms exist to avoid blocking
  unrouted nets, so removing them must not *improve* completion.
* Net ordering (section 3): longest-distance-first vs alternatives.
* The one-corner-per-track restriction (section 3.1), approximated by
  the per-track duplicate-entry budget: 1 vs the default 8.
* The Steiner-Prim multi-terminal heuristic vs a plain rectilinear
  MST on terminal positions (section 3.3's motivation).
"""

from repro.bench_suite import random_design
from repro.core import LevelBConfig, LevelBRouter
from repro.core.cost import CostWeights
from repro.core.ordering import NetOrdering
from repro.geometry import Point
from repro.placement import RowPlacement
from repro.reporting import format_table
from repro.steiner import rectilinear_mst, steiner_prim_tree, tree_length

from conftest import print_experiment

SEEDS = (5, 6, 7)


def build_workload(seed, num_nets=44):
    design = random_design(
        f"abl{seed}", seed=seed, num_cells=12, num_nets=num_nets, num_critical=0
    )
    placement = RowPlacement.build(design, pitch=8)
    placement.realize([16] * placement.channel_count, margin=16)
    return design, design.cell_bounds().expanded(24)


def run_config(config):
    total = {"wire": 0, "corners": 0, "complete": 0, "nets": 0}
    for seed in SEEDS:
        design, bounds = build_workload(seed)
        router = LevelBRouter(bounds, list(design.nets.values()), config=config)
        result = router.route()
        total["wire"] += result.total_wire_length
        total["corners"] += result.total_corners
        total["complete"] += result.nets_completed
        total["nets"] += result.nets_attempted
    return total


def test_cost_weight_ablation(benchmark):
    def sweep():
        return {
            "sparse (paper)": run_config(LevelBConfig(weights=CostWeights.sparse())),
            "dense": run_config(LevelBConfig(weights=CostWeights.dense())),
            "length-only": run_config(
                LevelBConfig(weights=CostWeights.length_only())
            ),
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        [name, f"{r['complete']}/{r['nets']}", r["wire"], r["corners"]]
        for name, r in results.items()
    ]
    print_experiment(
        "Ablation: cost weights (w1=1; w2* = 10 / 30 / 0)",
        format_table(["Weights", "Completed", "Wire", "Corners"], rows),
    )
    paper = results["sparse (paper)"]
    blind = results["length-only"]
    assert paper["complete"] >= blind["complete"]


def test_net_ordering_ablation(benchmark):
    def sweep():
        return {
            ordering.value: run_config(LevelBConfig(ordering=ordering))
            for ordering in (
                NetOrdering.LONGEST_FIRST,
                NetOrdering.SHORTEST_FIRST,
                NetOrdering.MOST_PINS_FIRST,
                NetOrdering.NAME,
            )
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        [name, f"{r['complete']}/{r['nets']}", r["wire"], r["corners"]]
        for name, r in results.items()
    ]
    print_experiment(
        "Ablation: serial net ordering (paper default: longest first)",
        format_table(["Ordering", "Completed", "Wire", "Corners"], rows),
    )
    longest = results[NetOrdering.LONGEST_FIRST.value]
    assert longest["complete"] == longest["nets"], (
        "the paper's default ordering must complete the workload"
    )


def test_track_reentry_budget_ablation(benchmark):
    """The visited-once rule's duplicate-entry budget: 1 vs 8."""

    def sweep():
        return {
            budget: run_config(LevelBConfig(max_entries_per_track=budget))
            for budget in (1, 2, 8)
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        [budget, f"{r['complete']}/{r['nets']}", r["wire"], r["corners"]]
        for budget, r in results.items()
    ]
    print_experiment(
        "Ablation: same-level duplicate PST entries per track",
        format_table(["Budget", "Completed", "Wire", "Corners"], rows),
    )
    # More path diversity can only help the selected wire length.
    assert results[8]["wire"] <= results[1]["wire"]


def test_refinement_ablation(benchmark):
    """Post-routing refinement passes (beyond the paper): rip up and
    reroute each net with full knowledge of the others."""

    def sweep():
        return {
            passes: run_config(LevelBConfig(refinement_passes=passes))
            for passes in (0, 1, 2)
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        [passes, f"{r['complete']}/{r['nets']}", r["wire"], r["corners"]]
        for passes, r in results.items()
    ]
    print_experiment(
        "Ablation: post-routing refinement passes",
        format_table(["Passes", "Completed", "Wire", "Corners"], rows),
    )
    assert results[1]["wire"] <= results[0]["wire"]
    assert results[2]["wire"] <= results[1]["wire"]
    assert results[2]["complete"] >= results[0]["complete"]


def test_partition_strategy_ablation(benchmark, flow_results):
    """Section 5: "If layout area optimization is the priority, channel
    areas can be eliminated and the entire set of interconnections can
    be routed in level B."  Measured on the ami33 suite."""
    from repro.bench_suite import SUITES
    from repro.flow import FlowParams, overcell_flow
    from repro.partition import PartitionStrategy

    def sweep():
        out = {}
        for strategy, threshold in (
            (PartitionStrategy.CRITICAL_TO_A, None),
            (PartitionStrategy.ALL_B, None),
            (PartitionStrategy.LONG_TO_B, 400),
        ):
            params = FlowParams(partition=strategy, length_threshold=threshold)
            out[strategy.value] = overcell_flow(SUITES["ami33"](), params)
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    baseline = flow_results[("ami33", "two-layer")]
    rows = [["two-layer baseline", "-", f"{baseline.layout_area:,}",
             f"{baseline.wire_length:,}", "100%"]]
    for name, res in results.items():
        rows.append([
            name,
            f"{res.notes['level_a_nets']}/{res.notes['level_b_nets']}",
            f"{res.layout_area:,}",
            f"{res.wire_length:,}",
            f"{res.completion:.0%}",
        ])
    print_experiment(
        "Ablation: net partitioning strategies (ami33)",
        format_table(["Strategy", "A/B nets", "Area", "Wire", "Done"], rows)
        + "\n\nNote: all-b eliminates the channels (minimum area) but "
        "saturates the over-cell space on this example - the paper's own "
        "caveat: channel elimination works only 'assuming that the "
        "solution space for level B routing guarantees 100% routing "
        "completion'.",
    )
    paper = results["critical-to-a"]
    all_b = results["all-b"]
    # The paper's experimental setting must complete fully.
    assert paper.completion == 1.0
    assert paper.layout_area < baseline.layout_area
    # Eliminating channels minimises area, as section 5 predicts...
    assert all_b.layout_area <= paper.layout_area
    # ...but completion is only guaranteed when the solution space
    # allows it; on this dense example it falls short, which is the
    # caveat the paper itself states.
    assert all_b.completion <= 1.0


def test_steiner_vs_mst(benchmark):
    """Section 3.3: the Steiner-Prim heuristic vs terminal-only MST."""
    import random

    def sweep():
        rng = random.Random(99)
        total_mst = total_steiner = 0
        cases = 0
        for _ in range(300):
            k = rng.randint(3, 9)
            pts = []
            while len(pts) < k:
                p = Point(rng.randrange(0, 400), rng.randrange(0, 400))
                if p not in pts:
                    pts.append(p)
            mst = tree_length(rectilinear_mst(pts))
            steiner = steiner_prim_tree(pts).length
            assert steiner <= mst
            total_mst += mst
            total_steiner += steiner
            cases += 1
        return total_mst, total_steiner, cases

    total_mst, total_steiner, cases = benchmark.pedantic(
        sweep, rounds=1, iterations=1
    )
    saving = 100.0 * (total_mst - total_steiner) / total_mst
    print_experiment(
        "Ablation: Steiner-Prim vs rectilinear MST on multi-terminal nets",
        f"{cases} random nets (3-9 pins): MST length {total_mst:,}, "
        f"Steiner-Prim {total_steiner:,} ({saving:.1f}% shorter)",
    )
    assert saving > 1.0  # the Steiner points must pay for themselves
