"""Setuptools shim.

The project metadata lives in ``pyproject.toml``; this file exists so
``pip install -e . --no-use-pep517`` works on offline machines that
lack the ``wheel`` package required for PEP 660 editable installs.
"""

from setuptools import setup

setup()
