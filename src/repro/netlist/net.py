"""Nets: named collections of pins with criticality attributes."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.geometry import Point, Rect
from repro.geometry.point import bounding_box_half_perimeter
from repro.netlist.pin import Pin
from repro.technology import NetClass


@dataclass
class Net:
    """A multi-terminal net.

    Attributes
    ----------
    name:
        Unique net name within a design.
    pins:
        The net's terminals (at least two for a routable net).
    is_critical:
        Marks critical/timing nets.  The paper's experiments route
        critical and timing nets in level A (channels, fine-pitch
        m1/m2) and everything else in level B over the cells.
    is_sensitive:
        Marks nets that must not run parallel to other wiring for long
        stretches (the paper's cross-talk case); the level B router
        adds a parallel-run cost term when sensitive nets are present.
    weight:
        User net weight; available to ordering criteria.
    net_class:
        Width class (:class:`~repro.technology.NetClass`): signal nets
        route at one track, clock and power nets occupy wider multi-track
        footprints per the technology's spacing tables.
    """

    name: str
    pins: list[Pin] = field(default_factory=list)
    is_critical: bool = False
    is_sensitive: bool = False
    weight: float = 1.0
    net_class: NetClass = NetClass.SIGNAL

    def add_pin(self, pin: Pin) -> None:
        """Attach ``pin`` and set its back-reference."""
        if pin.net is not None and pin.net is not self:
            raise ValueError(f"pin {pin.full_name} already on net {pin.net.name}")
        pin.net = self
        self.pins.append(pin)

    @property
    def degree(self) -> int:
        """Number of terminals."""
        return len(self.pins)

    @property
    def is_multi_terminal(self) -> bool:
        return self.degree > 2

    def pin_positions(self) -> list[Point]:
        """Absolute positions of all terminals (requires placement)."""
        return [pin.position for pin in self.pins]

    @property
    def bounding_box(self) -> Rect:
        return Rect.bounding(self.pin_positions())

    @property
    def half_perimeter(self) -> int:
        """HPWL estimate; the paper's "longest distance" ordering key."""
        return bounding_box_half_perimeter(self.pin_positions())

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"Net({self.name}, {self.degree} pins)"

    def __hash__(self) -> int:
        return id(self)

    def __eq__(self, other: object) -> bool:
        return self is other
