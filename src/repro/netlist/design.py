"""The :class:`Design` container tying cells and nets together."""

from __future__ import annotations

from dataclasses import dataclass

from repro.geometry import Rect
from repro.netlist.cell import Cell, Edge
from repro.netlist.net import Net
from repro.netlist.pin import Pin
from repro.technology import NetClass


@dataclass(frozen=True)
class DesignStats:
    """Summary statistics of a design (the Table 1 columns)."""

    name: str
    num_cells: int
    num_nets: int
    num_pins: int
    avg_pins_per_net: float
    total_cell_area: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.name}: {self.num_cells} cells, {self.num_nets} nets, "
            f"{self.num_pins} pins ({self.avg_pins_per_net:.2f}/net)"
        )


class Design:
    """A macro-cell design: named cells plus named nets.

    The class is a plain container with construction helpers and
    validation; placement and routing state live in the flow layer so a
    design can be run through several flows unchanged.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.cells: dict[str, Cell] = {}
        self.nets: dict[str, Net] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_cell(self, name: str, width: int, height: int) -> Cell:
        """Create and register a cell."""
        if name in self.cells:
            raise ValueError(f"duplicate cell {name!r}")
        cell = Cell(name=name, width=width, height=height)
        self.cells[name] = cell
        return cell

    def add_net(
        self,
        name: str,
        *,
        is_critical: bool = False,
        weight: float = 1.0,
        net_class: NetClass = NetClass.SIGNAL,
    ) -> Net:
        """Create and register a net."""
        if name in self.nets:
            raise ValueError(f"duplicate net {name!r}")
        net = Net(
            name=name, is_critical=is_critical, weight=weight, net_class=net_class
        )
        self.nets[name] = net
        return net

    def add_pin(
        self, cell_name: str, pin_name: str, edge: Edge, offset: int
    ) -> Pin:
        """Create a pin on ``cell_name`` and attach it to the cell."""
        cell = self.cells[cell_name]
        pin = Pin(name=pin_name, cell=cell, edge=edge, offset=offset)
        cell.add_pin(pin)
        return pin

    def connect(self, net_name: str, pin: Pin) -> None:
        """Attach an existing pin to an existing net."""
        self.nets[net_name].add_pin(pin)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def is_placed(self) -> bool:
        return all(cell.is_placed for cell in self.cells.values())

    def all_pins(self) -> list[Pin]:
        return [pin for cell in self.cells.values() for pin in cell.pins]

    def routable_nets(self) -> list[Net]:
        """Nets with at least two pins, in insertion order."""
        return [net for net in self.nets.values() if net.degree >= 2]

    def cell_bounds(self) -> Rect:
        """Bounding box of all placed cells."""
        boxes = [cell.bounds for cell in self.cells.values()]
        if not boxes:
            raise ValueError("design has no cells")
        out = boxes[0]
        for box in boxes[1:]:
            out = out.hull(box)
        return out

    def stats(self) -> DesignStats:
        """Table 1-style statistics."""
        nets = self.routable_nets()
        num_pins = sum(net.degree for net in nets)
        return DesignStats(
            name=self.name,
            num_cells=len(self.cells),
            num_nets=len(nets),
            num_pins=num_pins,
            avg_pins_per_net=(num_pins / len(nets)) if nets else 0.0,
            total_cell_area=sum(c.area for c in self.cells.values()),
        )

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self) -> list[str]:
        """Structural checks; returns a list of problem descriptions."""
        problems: list[str] = []
        for net in self.nets.values():
            if net.degree < 2:
                problems.append(f"net {net.name} has fewer than two pins")
            for pin in net.pins:
                if pin.net is not net:
                    problems.append(
                        f"pin {pin.full_name} back-reference mismatch on {net.name}"
                    )
        seen_pins = set()
        for cell in self.cells.values():
            for pin in cell.pins:
                if id(pin) in seen_pins:
                    problems.append(f"pin {pin.full_name} attached twice")
                seen_pins.add(id(pin))
        if self.is_placed:
            cells = list(self.cells.values())
            for i, a in enumerate(cells):
                for b in cells[i + 1 :]:
                    if a.bounds.overlaps_open(b.bounds):
                        problems.append(
                            f"cells {a.name} and {b.name} overlap"
                        )
        return problems

    def check(self) -> None:
        """Raise :class:`ValueError` when :meth:`validate` finds problems."""
        problems = self.validate()
        if problems:
            raise ValueError("; ".join(problems))

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"Design({self.name}: {len(self.cells)} cells, {len(self.nets)} nets)"
