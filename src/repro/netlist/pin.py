"""Pins on macro-cell boundaries."""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.geometry import Point
from repro.netlist.cell import Cell, Edge

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.netlist.net import Net


@dataclass
class Pin:
    """A terminal on a cell edge.

    ``offset`` is measured along the edge from the cell's lower-left
    corner (x-wise for TOP/BOTTOM, y-wise for LEFT/RIGHT).  The pin's
    absolute :attr:`position` is defined once its cell is placed.

    The paper assumes terminal geometry can absorb the via stack up to
    its routing plane's horizontal layer (section 2), so a pin is a
    legal attachment point for both level A (m1/m2) and level B
    (over-cell plane) wiring.
    """

    name: str
    cell: Cell
    edge: Edge
    offset: int
    net: "Net" | None = None

    @property
    def position(self) -> Point:
        """Absolute placed position."""
        return self.cell.pin_position(self)

    @property
    def full_name(self) -> str:
        return f"{self.cell.name}.{self.name}"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.full_name

    def __hash__(self) -> int:
        return id(self)

    def __eq__(self, other: object) -> bool:
        return self is other
