"""Macro cells."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.geometry import Point, Rect

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.netlist.pin import Pin


class Edge(enum.Enum):
    """A side of a cell on which a pin sits."""

    TOP = "top"
    BOTTOM = "bottom"
    LEFT = "left"
    RIGHT = "right"

    @property
    def is_horizontal(self) -> bool:
        """True for TOP/BOTTOM (the pin moves along x)."""
        return self in (Edge.TOP, Edge.BOTTOM)


@dataclass
class Cell:
    """A rectangular macro cell.

    ``origin`` (lower-left corner) is ``None`` until the placer runs;
    geometric queries raise until then, which keeps "forgot to place"
    failures loud.
    """

    name: str
    width: int
    height: int
    origin: Point | None = None
    pins: list["Pin"] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ValueError(f"cell {self.name}: non-positive dimensions")

    # ------------------------------------------------------------------
    @property
    def is_placed(self) -> bool:
        return self.origin is not None

    @property
    def area(self) -> int:
        return self.width * self.height

    @property
    def bounds(self) -> Rect:
        """Placed bounding rectangle."""
        if self.origin is None:
            raise RuntimeError(f"cell {self.name} is not placed")
        return Rect(
            self.origin.x,
            self.origin.y,
            self.origin.x + self.width,
            self.origin.y + self.height,
        )

    def place(self, x: int, y: int) -> None:
        """Set the lower-left corner."""
        self.origin = Point(x, y)

    def add_pin(self, pin: "Pin") -> None:
        """Attach ``pin`` (validates the offset fits the edge)."""
        limit = self.width if pin.edge.is_horizontal else self.height
        if not 0 <= pin.offset <= limit:
            raise ValueError(
                f"pin {pin.name} offset {pin.offset} outside cell "
                f"{self.name} edge length {limit}"
            )
        self.pins.append(pin)

    def pin_position(self, pin: "Pin") -> Point:
        """Absolute position of ``pin`` on the placed cell boundary."""
        box = self.bounds
        if pin.edge is Edge.BOTTOM:
            return Point(box.x1 + pin.offset, box.y1)
        if pin.edge is Edge.TOP:
            return Point(box.x1 + pin.offset, box.y2)
        if pin.edge is Edge.LEFT:
            return Point(box.x1, box.y1 + pin.offset)
        return Point(box.x2, box.y1 + pin.offset)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"Cell({self.name} {self.width}x{self.height})"
