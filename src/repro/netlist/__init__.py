"""Netlist and layout model: cells, pins, nets, designs.

The model mirrors the macro-cell layout style the paper targets:
arbitrary rectangular macros with pins on their boundary, connected by
multi-terminal nets.  Placement (``repro.placement``) assigns cell
origins; all downstream routing reads absolute pin positions from here.
"""

from repro.netlist.cell import Cell, Edge
from repro.netlist.pin import Pin
from repro.netlist.net import Net
from repro.netlist.design import Design, DesignStats

__all__ = ["Cell", "Edge", "Pin", "Net", "Design", "DesignStats"]
