"""Structured lint findings and reports.

A :class:`LintViolation` is one contract breach at one source location;
a :class:`LintReport` aggregates a whole analysis run.  The shapes
mirror :mod:`repro.check.violations` (the runtime verification engine)
so the two subsystems serialise and render the same way: plain data,
rule-id keyed, ``--json``-friendly.

Lint reuses the checker's :class:`~repro.check.violations.Severity`
scale.  ``ERROR`` marks a broken project contract (the build should
fail); ``WARNING`` marks heuristic findings that need a human read
(``repro lint --strict`` gates on those too).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.check.violations import Severity

__all__ = ["LintReport", "LintViolation", "Severity"]


@dataclass(frozen=True)
class LintViolation:
    """One contract breach at one source location.

    Attributes
    ----------
    rule:
        A rule id from :mod:`repro.lint.rules` (``det.clock``,
        ``txn.commit``, ...; catalogued in docs/STATIC_ANALYSIS.md).
    path:
        Repo-relative posix path of the offending file.
    line / col:
        1-based line and 0-based column of the offending node.
    message:
        Human-readable description naming the contract and the fix.
    severity:
        See :class:`~repro.check.violations.Severity`.
    snippet:
        The stripped source line — the stable part of the baseline
        key, so grandfathered findings survive unrelated line drift.
    """

    rule: str
    path: str
    line: int
    col: int
    message: str
    severity: Severity = Severity.ERROR
    snippet: str = ""

    def key(self) -> tuple[str, str, str]:
        """Baseline identity: location-stable (no line numbers)."""
        return (self.path, self.rule, self.snippet)

    def to_dict(self) -> dict[str, Any]:
        return {
            "rule": self.rule,
            "severity": self.severity.value,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "snippet": self.snippet,
        }

    def __str__(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.severity.value.upper()} {self.rule}: {self.message}"
        )


@dataclass
class LintReport:
    """Aggregate outcome of one static-analysis run."""

    violations: list[LintViolation] = field(default_factory=list)
    rules_run: tuple[str, ...] = ()
    files_scanned: int = 0
    #: Findings silenced by an in-source suppression pragma.
    suppressed: int = 0
    #: Findings silenced by the committed baseline file.
    baselined: int = 0

    def extend(self, violations: list[LintViolation]) -> None:
        self.violations.extend(violations)

    @property
    def ok(self) -> bool:
        """True when no ERROR-severity violation survived filtering."""
        return not any(
            v.severity is Severity.ERROR for v in self.violations
        )

    @property
    def error_count(self) -> int:
        return sum(
            1 for v in self.violations if v.severity is Severity.ERROR
        )

    def by_rule(self, rule: str) -> list[LintViolation]:
        return [v for v in self.violations if v.rule == rule]

    def counts(self) -> dict[str, int]:
        """Violation count per rule id (only rules that fired)."""
        out: dict[str, int] = {}
        for v in self.violations:
            out[v.rule] = out.get(v.rule, 0) + 1
        return out

    def summary(self) -> str:
        """One-line human-readable verdict."""
        filtered = ""
        if self.suppressed or self.baselined:
            filtered = (
                f" ({self.suppressed} pragma-suppressed, "
                f"{self.baselined} baselined)"
            )
        if not self.violations:
            return (
                f"lint: CLEAN — {self.files_scanned} file(s), "
                f"{len(self.rules_run)} rule(s){filtered}"
            )
        parts = ", ".join(
            f"{rule}={n}" for rule, n in sorted(self.counts().items())
        )
        return (
            f"lint: {self.error_count} error(s), "
            f"{len(self.violations)} violation(s): {parts}{filtered}"
        )

    def render(self, limit: int = 50) -> str:
        """Multi-line report: summary plus the first ``limit`` findings."""
        lines = [self.summary()]
        lines.extend(f"  {v}" for v in self.violations[:limit])
        if len(self.violations) > limit:
            lines.append(f"  ... and {len(self.violations) - limit} more")
        return "\n".join(lines)

    def to_dict(self) -> dict[str, Any]:
        return {
            "format": "repro-lint-report",
            "ok": self.ok,
            "files_scanned": self.files_scanned,
            "rules_run": list(self.rules_run),
            "counts": self.counts(),
            "suppressed": self.suppressed,
            "baselined": self.baselined,
            "violations": [v.to_dict() for v in self.violations],
        }
