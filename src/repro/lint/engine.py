"""The lint engine: parse, run rules, filter pragmas, apply baseline.

``lint_paths`` is the one entry point; the CLI (``repro lint``) and the
self-lint test are thin wrappers over it.  The run is deterministic by
construction — files are scanned in sorted order, rules run in
registry order, findings sort by location — so two runs over the same
tree produce byte-identical reports (the linter holds itself to the
contract it enforces).

Filtering happens in three layers, in order:

1. **Pragmas** — ``# repro: allow[rule-id] reason`` at the offending
   line (or on a comment line directly above).  A pragma without a
   reason suppresses nothing and is itself a finding
   (``lint.pragma``); on full runs, a pragma that silenced nothing is
   reported as stale.
2. **Baseline** — the committed ``lint-baseline.json`` grandfathers
   findings by ``(path, rule, snippet)``.  Shipped empty.
3. **Severity** — ``LintReport.ok`` gates on ERROR; ``--strict`` in
   the CLI gates on any surviving finding.

The run is observable through :mod:`repro.instrument` exactly like the
runtime checker: a ``lint`` span, ``lint.*`` counters and one
``lint.violation`` event per surviving finding.
"""

from __future__ import annotations

from pathlib import Path

from repro import instrument
from repro.instrument.names import (
    EVT_LINT_VIOLATION,
    LINT_FILES,
    LINT_RULES_EVALUATED,
    LINT_RUNS,
    LINT_SUPPRESSED,
    LINT_VIOLATIONS,
    SPAN_LINT,
)
from repro.lint.baseline import load_baseline
from repro.lint.context import ModuleContext, ProjectContext
from repro.lint.rules import (
    PRAGMA_RULE_ID,
    FileRule,
    ProjectRule,
    rules_for_ids,
)
from repro.lint.violations import LintReport, LintViolation, Severity

__all__ = ["iter_python_files", "lint_paths"]

#: Engine-owned rule id for files the parser rejects.
PARSE_RULE_ID = "lint.parse"


def iter_python_files(paths: list[Path]) -> list[Path]:
    """Every ``.py`` file under ``paths``, sorted and deduplicated."""
    found: set[Path] = set()
    for path in paths:
        if path.is_dir():
            found.update(p for p in path.rglob("*.py") if p.is_file())
        elif path.suffix == ".py" and path.is_file():
            found.add(path)
    return sorted(found)


def _parse_modules(
    files: list[Path], root: Path
) -> tuple[list[ModuleContext], list[LintViolation]]:
    modules: list[ModuleContext] = []
    failures: list[LintViolation] = []
    for path in files:
        source = path.read_text(encoding="utf-8")
        try:
            modules.append(ModuleContext(path, root, source))
        except SyntaxError as exc:
            try:
                rel = path.resolve().relative_to(root.resolve()).as_posix()
            except ValueError:
                rel = path.as_posix()
            failures.append(
                LintViolation(
                    rule=PARSE_RULE_ID,
                    path=rel,
                    line=exc.lineno or 1,
                    col=(exc.offset or 1) - 1,
                    message=f"file does not parse: {exc.msg}",
                    severity=Severity.ERROR,
                )
            )
    return modules, failures


def _pragma_findings(
    modules: list[ModuleContext], *, full_run: bool
) -> list[LintViolation]:
    """Reasonless pragmas always; stale pragmas only on full runs."""
    out: list[LintViolation] = []
    for ctx in modules:
        for pragma in ctx.pragmas.values():
            if not pragma.has_reason:
                out.append(
                    LintViolation(
                        rule=PRAGMA_RULE_ID,
                        path=ctx.rel,
                        line=pragma.line,
                        col=0,
                        message=(
                            "suppression pragma without a reason: "
                            "`# repro: allow[rule] <why this site is "
                            "safe>` — a reasonless pragma suppresses "
                            "nothing"
                        ),
                        snippet=ctx.line_at(pragma.line),
                    )
                )
            elif full_run and not pragma.used:
                out.append(
                    LintViolation(
                        rule=PRAGMA_RULE_ID,
                        path=ctx.rel,
                        line=pragma.line,
                        col=0,
                        message=(
                            "stale suppression pragma: no finding for "
                            f"[{', '.join(pragma.rules)}] here — "
                            "delete it so suppressions do not outlive "
                            "the code they excused"
                        ),
                        snippet=ctx.line_at(pragma.line),
                    )
                )
    return out


def lint_paths(
    paths: list[Path],
    *,
    root: Path | None = None,
    select: set[str] | None = None,
    baseline_path: Path | None = None,
) -> LintReport:
    """Run the contract linter over ``paths`` and return the report.

    Parameters
    ----------
    paths:
        Files and/or directories to scan (directories recurse).
    root:
        Project root that repo-relative paths and dotted module names
        are computed against; defaults to the current directory.
    select:
        Rule ids (``det.clock``) or group prefixes (``det``) to run;
        ``None`` runs everything including the pragma audit.
    baseline_path:
        Committed baseline file; listed findings are filtered out and
        counted in ``LintReport.baselined``.
    """
    root = (root or Path.cwd()).resolve()
    with instrument.span(SPAN_LINT):
        report = _lint(paths, root, select, baseline_path)
    inst = instrument.active()
    inst.count(LINT_RUNS)
    inst.count(LINT_FILES, report.files_scanned)
    inst.count(LINT_RULES_EVALUATED, len(report.rules_run))
    inst.count(LINT_VIOLATIONS, len(report.violations))
    inst.count(LINT_SUPPRESSED, report.suppressed)
    for v in report.violations:
        inst.event(
            EVT_LINT_VIOLATION,
            rule=v.rule,
            severity=v.severity.value,
            path=v.path,
            line=v.line,
        )
    return report


def _lint(
    paths: list[Path],
    root: Path,
    select: set[str] | None,
    baseline_path: Path | None,
) -> LintReport:
    rules = rules_for_ids(select)
    pragma_audit = select is None or bool(
        select & {PRAGMA_RULE_ID, PRAGMA_RULE_ID.split(".")[0]}
    )
    full_run = select is None

    files = iter_python_files(paths)
    modules, raw = _parse_modules(files, root)
    by_rel = {ctx.rel: ctx for ctx in modules}
    project = ProjectContext(root, modules)

    for rule in rules:
        if isinstance(rule, FileRule):
            for ctx in modules:
                if rule.applies_to(ctx):
                    raw.extend(rule.check(ctx))
        elif isinstance(rule, ProjectRule):
            raw.extend(rule.check_project(project))

    # Pragma filtering: a reasoned pragma at the finding's line (or the
    # comment line above) silences it and is marked used.
    report = LintReport(
        rules_run=tuple(
            [r.rule_id for r in rules]
            + ([PRAGMA_RULE_ID] if pragma_audit else [])
        ),
        files_scanned=len(modules),
    )
    kept: list[LintViolation] = []
    for v in raw:
        ctx = by_rel.get(v.path)
        pragma = (
            ctx.pragma_for(v.line, v.rule) if ctx is not None else None
        )
        if pragma is not None and pragma.has_reason:
            pragma.used.add(v.rule)
            report.suppressed += 1
            continue
        kept.append(v)

    if pragma_audit:
        kept.extend(_pragma_findings(modules, full_run=full_run))

    if baseline_path is not None:
        baseline = load_baseline(baseline_path)
        surviving = []
        for v in kept:
            if v.key() in baseline:
                report.baselined += 1
            else:
                surviving.append(v)
        kept = surviving

    kept.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
    report.extend(kept)
    return report
