"""The committed lint baseline: grandfathered findings, keyed stably.

A baseline entry identifies a finding by ``(path, rule, snippet)`` —
the stripped source line, not the line number — so entries survive
unrelated edits above the offending line.  The shipped baseline
(``lint-baseline.json``) is empty: every pre-existing finding was
fixed or pragma-justified in source.  The mechanism stays for
downstream forks adopting the linter over a dirty tree.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.lint.violations import LintViolation

__all__ = ["load_baseline", "save_baseline"]

FORMAT = "repro-lint-baseline"
VERSION = 1

BaselineKey = tuple[str, str, str]


def load_baseline(path: Path) -> set[BaselineKey]:
    """The grandfathered finding keys in ``path`` (empty if absent)."""
    if not path.exists():
        return set()
    data = json.loads(path.read_text(encoding="utf-8"))
    if data.get("format") != FORMAT:
        raise ValueError(
            f"{path}: not a {FORMAT} file (format={data.get('format')!r})"
        )
    keys: set[BaselineKey] = set()
    for entry in data.get("entries", []):
        keys.add((entry["path"], entry["rule"], entry["snippet"]))
    return keys


def save_baseline(path: Path, violations: list[LintViolation]) -> int:
    """Write the baseline covering ``violations``; returns entry count."""
    entries = sorted({v.key() for v in violations})
    payload = {
        "format": FORMAT,
        "version": VERSION,
        "entries": [
            {"path": p, "rule": r, "snippet": s} for p, r, s in entries
        ],
    }
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return len(entries)
