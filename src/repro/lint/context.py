"""Parsed-module contexts and the pragma suppression syntax.

One :class:`ModuleContext` per analysed file: the AST, the source
lines, a lazily built parent map (``ast`` has no parent links) and the
file's suppression pragmas.  A :class:`ProjectContext` holds every
scanned module by dotted name so cross-file rules (``digest.fields``)
can read two ASTs side by side.

Pragma syntax
-------------
A finding is suppressed *at the offending line* (or on a comment line
directly above it) with::

    grid.rip_net(net_id)  # repro: allow[txn.commit] ambient txn held by caller

The bracket takes one or more comma-separated rule ids; everything
after the bracket is the mandatory justification.  A pragma without a
reason suppresses nothing and is itself reported (rule
``lint.pragma``), as is a pragma that no finding matched — stale
suppressions must not outlive the code they excused.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "ModuleContext",
    "Pragma",
    "ProjectContext",
    "dotted_name",
    "module_name_for",
]

PRAGMA_RE = re.compile(r"#\s*repro:\s*allow\[([^\]]*)\]\s*(.*)$")


@dataclass
class Pragma:
    """One ``# repro: allow[rule, ...] reason`` suppression comment."""

    line: int
    rules: tuple[str, ...]
    reason: str
    #: Rule ids this pragma actually silenced (engine bookkeeping;
    #: a pragma that silenced nothing is reported as stale).
    used: set[str] = field(default_factory=set)

    @property
    def has_reason(self) -> bool:
        return bool(self.reason.strip())


def module_name_for(path: Path, root: Path) -> str:
    """Dotted module name of ``path`` relative to the project ``root``.

    ``<root>/src/repro/core/router.py`` maps to ``repro.core.router``;
    a path outside the root falls back to its bare stem.  The ``src``
    layout hop is recognised anywhere in the relative path so fixture
    trees in tests resolve the same way the real tree does.
    """
    try:
        rel = path.resolve().relative_to(root.resolve())
    except ValueError:
        rel = Path(path.name)
    parts = list(rel.with_suffix("").parts)
    if "src" in parts:
        parts = parts[parts.index("src") + 1 :]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class ModuleContext:
    """One parsed source file plus per-file analysis helpers."""

    def __init__(self, path: Path, root: Path, source: str) -> None:
        self.path = path
        self.root = root
        try:
            self.rel = path.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            self.rel = path.as_posix()
        self.module = module_name_for(path, root)
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=str(path))
        self.pragmas: dict[int, Pragma] = self._scan_pragmas()
        self._parents: dict[int, ast.AST] | None = None

    # ------------------------------------------------------------------
    def _scan_pragmas(self) -> dict[int, Pragma]:
        """Pragmas from *comment tokens* only.

        Tokenizing (rather than regex over raw lines) keeps pragma
        examples inside docstrings and string literals from counting
        as live suppressions.
        """
        pragmas: dict[int, Pragma] = {}
        try:
            tokens = list(
                tokenize.generate_tokens(io.StringIO(self.source).readline)
            )
        except (tokenize.TokenError, IndentationError):
            return pragmas
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            m = PRAGMA_RE.search(tok.string)
            if m is None:
                continue
            lineno = tok.start[0]
            rules = tuple(
                r.strip() for r in m.group(1).split(",") if r.strip()
            )
            pragmas[lineno] = Pragma(
                line=lineno, rules=rules, reason=m.group(2).strip()
            )
        return pragmas

    def pragma_for(self, line: int, rule: str) -> Pragma | None:
        """The pragma suppressing ``rule`` at ``line``, if any.

        Looks at the line itself, then at a comment-only line directly
        above it (the standalone-pragma form).
        """
        for candidate in (line, line - 1):
            pragma = self.pragmas.get(candidate)
            if pragma is None or rule not in pragma.rules:
                continue
            if candidate != line:
                text = self.lines[candidate - 1].lstrip()
                if not text.startswith("#"):
                    continue
            return pragma
        return None

    # ------------------------------------------------------------------
    @property
    def parents(self) -> dict[int, ast.AST]:
        """``id(node) -> parent`` for every node in the tree."""
        if self._parents is None:
            parents: dict[int, ast.AST] = {}
            for parent in ast.walk(self.tree):
                for child in ast.iter_child_nodes(parent):
                    parents[id(child)] = parent
            self._parents = parents
        return self._parents

    def parent_of(self, node: ast.AST) -> ast.AST | None:
        return self.parents.get(id(node))

    def ancestors(self, node: ast.AST) -> list[ast.AST]:
        """Parents of ``node``, nearest first."""
        out: list[ast.AST] = []
        current = self.parent_of(node)
        while current is not None:
            out.append(current)
            current = self.parent_of(current)
        return out

    def line_at(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    # ------------------------------------------------------------------
    def top_level_names(self) -> set[str]:
        """Names bound at module level: defs, classes and imports."""
        names: set[str] = set()
        for node in self.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                names.add(node.name)
            elif isinstance(node, ast.ClassDef):
                names.add(node.name)
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    names.add((alias.asname or alias.name).split(".")[0])
            elif isinstance(node, ast.ImportFrom):
                for alias in node.names:
                    names.add(alias.asname or alias.name)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
            elif isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                names.add(node.target.id)
        return names

    def imported_modules(self) -> set[str]:
        """Local names that are bound to *modules* by imports."""
        names: set[str] = set()
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    names.add((alias.asname or alias.name).split(".")[0])
        return names


class ProjectContext:
    """Every scanned module, addressable by dotted name."""

    def __init__(self, root: Path, modules: list[ModuleContext]) -> None:
        self.root = root
        self.modules: dict[str, ModuleContext] = {
            m.module: m for m in modules
        }

    def get(self, module: str) -> ModuleContext | None:
        return self.modules.get(module)
