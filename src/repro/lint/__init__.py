"""Static analysis of the project's own contracts.

``repro.lint`` is the compile-time sibling of :mod:`repro.check`: the
checker verifies a *routed result* against the paper's geometric
rules; the linter verifies the *source tree* against the invariants
the codebase promises — determinism of the routing packages,
transaction discipline around the occupancy journal, process-pool
payload safety, serve-layer lock coverage, digest completeness.

Dependency-free (stdlib ``ast`` only), deterministic (sorted files,
registry-ordered rules, location-sorted findings) and suppression is
in-source and justified::

    grid.rip_net(net_id)  # repro: allow[txn.commit] ambient txn held by caller

Entry points: :func:`lint_paths` (library), ``repro lint`` (CLI).
The rule catalogue lives in docs/STATIC_ANALYSIS.md.
"""

from repro.lint.base import FileRule, ProjectRule, Rule
from repro.lint.baseline import load_baseline, save_baseline
from repro.lint.context import ModuleContext, Pragma, ProjectContext
from repro.lint.engine import iter_python_files, lint_paths
from repro.lint.rules import (
    ALL_RULES,
    FILE_RULES,
    PRAGMA_RULE_ID,
    PROJECT_RULES,
    all_rule_ids,
    rules_for_ids,
)
from repro.lint.violations import LintReport, LintViolation, Severity

__all__ = [
    "ALL_RULES",
    "FILE_RULES",
    "PRAGMA_RULE_ID",
    "PROJECT_RULES",
    "FileRule",
    "LintReport",
    "LintViolation",
    "ModuleContext",
    "Pragma",
    "ProjectContext",
    "ProjectRule",
    "Rule",
    "Severity",
    "all_rule_ids",
    "iter_python_files",
    "lint_paths",
    "load_baseline",
    "rules_for_ids",
    "save_baseline",
]
