"""Rule base classes for the project-contract linter.

Two rule shapes exist:

* :class:`FileRule` — runs once per analysed module, sees one
  :class:`~repro.lint.context.ModuleContext`.  Most rules are these.
* :class:`ProjectRule` — runs once per analysis run, sees the whole
  :class:`~repro.lint.context.ProjectContext`; for contracts that span
  files (``digest.fields`` cross-checks two ASTs).

A rule declares the *contract* it encodes (shown by ``repro lint
--list-rules`` and in docs/STATIC_ANALYSIS.md) and optionally the
dotted-module prefixes it applies to — the determinism rules, for
example, police only the packages the determinism contract covers.
"""

from __future__ import annotations

from typing import ClassVar

from repro.lint.context import ModuleContext, ProjectContext
from repro.lint.violations import LintViolation, Severity

__all__ = ["FileRule", "ProjectRule", "Rule"]


class Rule:
    """Shared rule metadata."""

    rule_id: ClassVar[str] = ""
    #: One-line statement of the project contract the rule enforces.
    contract: ClassVar[str] = ""
    severity: ClassVar[Severity] = Severity.ERROR
    #: Dotted module prefixes the rule polices; ``None`` means every
    #: analysed module.
    packages: ClassVar[tuple[str, ...] | None] = None

    def applies_to(self, ctx: ModuleContext) -> bool:
        if self.packages is None:
            return True
        return any(
            ctx.module == p or ctx.module.startswith(p + ".")
            for p in self.packages
        )

    def violation(
        self,
        ctx: ModuleContext,
        line: int,
        col: int,
        message: str,
        *,
        severity: Severity | None = None,
    ) -> LintViolation:
        return LintViolation(
            rule=self.rule_id,
            path=ctx.rel,
            line=line,
            col=col,
            message=message,
            severity=severity if severity is not None else self.severity,
            snippet=ctx.line_at(line),
        )


class FileRule(Rule):
    """A rule evaluated independently on each module."""

    def check(self, ctx: ModuleContext) -> list[LintViolation]:
        raise NotImplementedError


class ProjectRule(Rule):
    """A rule evaluated once over the whole scanned project."""

    def check_project(self, project: ProjectContext) -> list[LintViolation]:
        raise NotImplementedError
