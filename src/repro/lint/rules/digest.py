"""Digest-completeness rule: the cache key covers every routing knob.

The serve result cache (PR 6, docs/SERVING.md) answers repeated
requests by content digest.  Its correctness rests on a completeness
invariant: **every** ``FlowParams`` field either contributes to the
digest, or is explicitly classified as digest-irrelevant.  A field
added to ``FlowParams`` without a classification silently produces
stale cache hits — two requests that differ in the new knob share one
entry.

``digest.fields`` checks the invariant statically, by reading two
ASTs side by side:

* ``repro/flow/params.py`` — the ``FlowParams`` dataclass fields;
* ``repro/serve/protocol.py`` — the classification literals
  (``DIGESTED_FIELDS``, ``DIGEST_EXCLUDED``, ``SERVER_DEFAULTED``),
  the ``JobSpec`` dataclass and the dict literal ``canonical()``
  returns.

Checked invariants:

1. FlowParams fields = DIGESTED_FIELDS keys ∪ DIGEST_EXCLUDED ∪
   SERVER_DEFAULTED, with no overlap and nothing stale.
2. Every DIGESTED_FIELDS value is a key of the ``canonical()`` dict.
3. Every JobSpec field is a ``canonical()`` key or in DIGEST_EXCLUDED.

The rule runs only when both modules are in the scanned set; fixture
projects exercise it by shipping miniature copies of the two files.
"""

from __future__ import annotations

import ast

from repro.lint.base import ProjectRule
from repro.lint.context import ModuleContext, ProjectContext
from repro.lint.violations import LintViolation

__all__ = ["DigestFieldsRule"]

PARAMS_MODULE = "repro.flow.params"
PROTOCOL_MODULE = "repro.serve.protocol"


def _dataclass_fields(ctx: ModuleContext, class_name: str) -> list[tuple[str, int]] | None:
    for node in ctx.tree.body:
        if isinstance(node, ast.ClassDef) and node.name == class_name:
            fields = []
            for stmt in node.body:
                if isinstance(stmt, ast.AnnAssign) and isinstance(
                    stmt.target, ast.Name
                ):
                    fields.append((stmt.target.id, stmt.lineno))
            return fields
    return None


def _module_literal(
    ctx: ModuleContext, name: str
) -> tuple[ast.expr, int] | None:
    for node in ctx.tree.body:
        value: ast.expr | None = None
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == name:
                    value = node.value
        elif (
            isinstance(node, ast.AnnAssign)
            and isinstance(node.target, ast.Name)
            and node.target.id == name
        ):
            value = node.value
        if value is not None:
            return value, node.lineno
    return None


def _string_set(node: ast.expr) -> set[str] | None:
    """String elements of a set/frozenset/list/tuple literal."""
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    ):
        # frozenset({...}) / set([...]); bare frozenset() is empty.
        if not node.args:
            return set()
        return _string_set(node.args[0])
    elements: list[ast.expr]
    if isinstance(node, (ast.Set, ast.List, ast.Tuple)):
        elements = list(node.elts)
    else:
        return None
    out: set[str] = set()
    for el in elements:
        if isinstance(el, ast.Constant) and isinstance(el.value, str):
            out.add(el.value)
        else:
            return None
    return out


def _string_dict(node: ast.expr) -> dict[str, str] | None:
    if not isinstance(node, ast.Dict):
        return None
    out: dict[str, str] = {}
    for key, value in zip(node.keys, node.values):
        if (
            isinstance(key, ast.Constant)
            and isinstance(key.value, str)
            and isinstance(value, ast.Constant)
            and isinstance(value.value, str)
        ):
            out[key.value] = value.value
        else:
            return None
    return out


def _canonical_keys(
    ctx: ModuleContext, class_name: str, method: str
) -> tuple[set[str], int] | None:
    """String keys of every dict literal ``method`` returns."""
    for node in ctx.tree.body:
        if not (
            isinstance(node, ast.ClassDef) and node.name == class_name
        ):
            continue
        for stmt in node.body:
            if not (
                isinstance(stmt, ast.FunctionDef)
                and stmt.name == method
            ):
                continue
            keys: set[str] = set()
            for sub in ast.walk(stmt):
                if not isinstance(sub, ast.Return) or sub.value is None:
                    continue
                for d in ast.walk(sub.value):
                    if isinstance(d, ast.Dict):
                        for key in d.keys:
                            if isinstance(
                                key, ast.Constant
                            ) and isinstance(key.value, str):
                                keys.add(key.value)
            return keys, stmt.lineno
    return None


class DigestFieldsRule(ProjectRule):
    rule_id = "digest.fields"
    contract = (
        "Every FlowParams field is classified for the serve cache "
        "digest: digested (with its canonical key), excluded as a "
        "bit-identical-result knob, or unreachable from the protocol."
    )

    def check_project(
        self, project: ProjectContext
    ) -> list[LintViolation]:
        params = project.get(PARAMS_MODULE)
        protocol = project.get(PROTOCOL_MODULE)
        if params is None or protocol is None:
            return []
        out: list[LintViolation] = []

        fields = _dataclass_fields(params, "FlowParams")
        if fields is None:
            return [
                self.violation(
                    params, 1, 0, "FlowParams dataclass not found"
                )
            ]
        field_names = {name for name, _ in fields}
        field_lines = dict(fields)

        digested = self._literal_dict(protocol, "DIGESTED_FIELDS", out)
        excluded = self._literal_set(protocol, "DIGEST_EXCLUDED", out)
        defaulted = self._literal_set(protocol, "SERVER_DEFAULTED", out)
        if digested is None or excluded is None or defaulted is None:
            return out

        canonical = _canonical_keys(protocol, "JobSpec", "canonical")
        if canonical is None:
            out.append(
                self.violation(
                    protocol, 1, 0, "JobSpec.canonical() not found"
                )
            )
            return out
        canonical_keys, canonical_line = canonical

        classified = set(digested) | excluded | defaulted
        for name in sorted(field_names - classified):
            out.append(
                self.violation(
                    params,
                    field_lines[name],
                    0,
                    f"FlowParams.{name} is not classified for the "
                    "serve cache digest; add it to DIGESTED_FIELDS, "
                    "DIGEST_EXCLUDED or SERVER_DEFAULTED in "
                    "repro/serve/protocol.py (an unclassified knob "
                    "silently fragments or poisons the cache)",
                )
            )
        for name in sorted(classified - field_names):
            out.append(
                self.violation(
                    protocol,
                    1,
                    0,
                    f"digest classification names {name!r}, which is "
                    "not a FlowParams field (stale entry)",
                )
            )
        for a, b, names in (
            ("DIGESTED_FIELDS", "DIGEST_EXCLUDED", set(digested) & excluded),
            ("DIGESTED_FIELDS", "SERVER_DEFAULTED", set(digested) & defaulted),
            ("DIGEST_EXCLUDED", "SERVER_DEFAULTED", excluded & defaulted),
        ):
            for name in sorted(names):
                out.append(
                    self.violation(
                        protocol,
                        1,
                        0,
                        f"{name!r} classified in both {a} and {b}",
                    )
                )
        for field, key in sorted(digested.items()):
            if key not in canonical_keys:
                out.append(
                    self.violation(
                        protocol,
                        canonical_line,
                        0,
                        f"DIGESTED_FIELDS maps {field!r} to canonical "
                        f"key {key!r}, which JobSpec.canonical() does "
                        "not emit",
                    )
                )

        spec_fields = _dataclass_fields(protocol, "JobSpec")
        if spec_fields is not None:
            for name, line in spec_fields:
                if name not in canonical_keys and name not in excluded:
                    out.append(
                        self.violation(
                            protocol,
                            line,
                            0,
                            f"JobSpec.{name} neither reaches "
                            "canonical() nor appears in "
                            "DIGEST_EXCLUDED: requests differing in "
                            "it would share a cache entry "
                            "undocumented",
                        )
                    )
        return out

    # ------------------------------------------------------------------
    def _literal_dict(
        self,
        ctx: ModuleContext,
        name: str,
        out: list[LintViolation],
    ) -> dict[str, str] | None:
        found = _module_literal(ctx, name)
        if found is None:
            out.append(
                self.violation(
                    ctx,
                    1,
                    0,
                    f"module literal {name} missing: the digest "
                    "classification must be declared statically",
                )
            )
            return None
        value, line = found
        parsed = _string_dict(value)
        if parsed is None:
            out.append(
                self.violation(
                    ctx,
                    line,
                    0,
                    f"{name} must be a literal dict of strings "
                    "(statically readable)",
                )
            )
        return parsed

    def _literal_set(
        self,
        ctx: ModuleContext,
        name: str,
        out: list[LintViolation],
    ) -> set[str] | None:
        found = _module_literal(ctx, name)
        if found is None:
            out.append(
                self.violation(
                    ctx,
                    1,
                    0,
                    f"module literal {name} missing: the digest "
                    "classification must be declared statically",
                )
            )
            return None
        value, line = found
        parsed = _string_set(value)
        if parsed is None:
            out.append(
                self.violation(
                    ctx,
                    line,
                    0,
                    f"{name} must be a literal set of strings "
                    "(statically readable)",
                )
            )
        return parsed
