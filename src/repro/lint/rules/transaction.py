"""Transaction-discipline rules: the journal contract, enforced.

The transactional state layer (PR 2, docs/ARCHITECTURE.md) guarantees
O(cells-touched) rip-up and exact rollback *only if* every occupancy
mutation flows through the journaling primitives:

* ``txn.commit`` — ``commit_path`` / ``rip_net`` calls outside the
  grid package must sit lexically inside a ``with *.transaction():``
  block.  Sites that run under an *ambient* transaction held by a
  caller are legitimate but invisible to a lexical check — they carry
  a pragma naming the caller that owns the scope, which is exactly the
  documentation the contract wants at each call site.
* ``txn.mutate`` — nothing outside ``grid/occupancy.py`` and
  ``grid/backend.py`` may *write* the private occupancy state
  (``_h_owner``, ``_v_owner``, ``_unrouted_terms``, ``_net_ledger``,
  ``_journal``, ``_txns``): a direct array store bypasses the ledger
  and the journal, silently breaking rip-up and rollback.  Reads of
  the private arrays outside the grid package are warnings — they
  bypass the backend encapsulation (a sparse store may not expose
  numpy semantics) and should go through ``snapshot()`` or the query
  API.
"""

from __future__ import annotations

import ast

from repro.lint.base import FileRule
from repro.lint.context import ModuleContext, dotted_name
from repro.lint.violations import LintViolation, Severity

__all__ = ["CommitScopeRule", "OccupancyMutationRule"]

#: Modules allowed to call the journaling primitives bare: the storage
#: layer itself owns the journal.
_GRID_PACKAGE = "repro.grid"

_JOURNALED_CALLS = frozenset({"commit_path", "rip_net", "clear_net"})

#: Private occupancy state. Everything here is owned by the
#: ledger/journal machinery in grid/occupancy.py + grid/backend.py.
_OCC_PRIVATE = frozenset(
    {
        "_h_owner",
        "_v_owner",
        "_unrouted_terms",
        "_net_ledger",
        "_journal",
        "_txns",
    }
)

#: Container-mutating method names (list/dict/set): calling one of
#: these *through* a private occupancy attribute is a write.
_MUTATOR_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "remove",
        "clear",
        "update",
        "setdefault",
        "pop",
        "popitem",
        "add",
        "discard",
    }
)

#: Modules allowed to touch the private occupancy state directly.
_OCC_OWNERS = ("repro.grid.occupancy", "repro.grid.backend")


class CommitScopeRule(FileRule):
    rule_id = "txn.commit"
    contract = (
        "commit_path/rip_net outside repro.grid must run inside a "
        "grid transaction (lexically, or under a pragma naming the "
        "caller that holds the ambient transaction)."
    )

    def check(self, ctx: ModuleContext) -> list[LintViolation]:
        if ctx.module == _GRID_PACKAGE or ctx.module.startswith(
            _GRID_PACKAGE + "."
        ):
            return []
        out: list[LintViolation] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (
                not isinstance(func, ast.Attribute)
                or func.attr not in _JOURNALED_CALLS
            ):
                continue
            if self._under_transaction(ctx, node):
                continue
            out.append(
                self.violation(
                    ctx,
                    node.lineno,
                    node.col_offset,
                    f".{func.attr}() outside a lexical grid "
                    "transaction: wrap in `with grid.transaction():` "
                    "or pragma naming the caller that holds the "
                    "ambient transaction",
                )
            )
        return out

    @staticmethod
    def _under_transaction(ctx: ModuleContext, node: ast.AST) -> bool:
        for ancestor in ctx.ancestors(node):
            if not isinstance(ancestor, ast.With):
                continue
            for item in ancestor.items:
                expr = item.context_expr
                if isinstance(expr, ast.Call):
                    name = dotted_name(expr.func)
                    if name is not None and name.split(".")[-1] == (
                        "transaction"
                    ):
                        return True
        return False


class OccupancyMutationRule(FileRule):
    rule_id = "txn.mutate"
    contract = (
        "Private occupancy state is written only by grid/occupancy.py "
        "and grid/backend.py; direct stores elsewhere bypass the "
        "ledger and journal.  Reads elsewhere bypass the backend "
        "encapsulation (warning)."
    )

    def check(self, ctx: ModuleContext) -> list[LintViolation]:
        if ctx.module in _OCC_OWNERS:
            return []
        out: list[LintViolation] = []
        flagged_lines: set[tuple[int, str]] = set()

        def flag(
            node: ast.AST, message: str, severity: Severity
        ) -> None:
            key = (node.lineno, message.split(";")[0])
            if key in flagged_lines:
                return
            flagged_lines.add(key)
            out.append(
                self.violation(
                    ctx,
                    node.lineno,
                    node.col_offset,
                    message,
                    severity=severity,
                )
            )

        written: set[int] = set()
        for node in ast.walk(ctx.tree):
            targets: list[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            elif isinstance(node, ast.Delete):
                targets = list(node.targets)
            for target in targets:
                priv = self._private_attr(target)
                if priv is not None:
                    written.add(id(priv))
                    flag(
                        target,
                        f"direct write to private occupancy state "
                        f".{priv.attr}; mutate through the "
                        "RoutingGrid API (occupy_*/commit_path/"
                        "rip_net) so the ledger and journal stay "
                        "exact",
                        Severity.ERROR,
                    )
            if isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ):
                if node.func.attr in _MUTATOR_METHODS:
                    priv = self._private_attr(node.func.value)
                    if priv is not None:
                        written.add(id(priv))
                        flag(
                            node,
                            f"mutating call through private occupancy "
                            f"state .{priv.attr}; use the RoutingGrid "
                            "API instead",
                            Severity.ERROR,
                        )
        # Read pass: any remaining Load access to the private names.
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Attribute)
                and node.attr in _OCC_PRIVATE
                and id(node) not in written
                and isinstance(node.ctx, ast.Load)
                and not (
                    isinstance(node.value, ast.Name)
                    and node.value.id == "self"
                )
            ):
                flag(
                    node,
                    f"read of private occupancy state .{node.attr} "
                    "outside the grid package; use snapshot()/the "
                    "query API (backends need not expose numpy "
                    "array semantics)",
                    Severity.WARNING,
                )
        out.sort(key=lambda v: (v.line, v.col))
        return out

    @staticmethod
    def _private_attr(node: ast.expr) -> ast.Attribute | None:
        """The private-occupancy Attribute inside a target expression.

        Only *foreign*-private access counts: ``grid._h_owner`` reaches
        into another object's journal state, ``self._txns`` is a
        class's own attribute that merely shares a name (e.g.
        ``PlaneSetTransaction`` aggregates per-plane transactions in
        its own ``_txns``).
        """
        for sub in ast.walk(node):
            if (
                isinstance(sub, ast.Attribute)
                and sub.attr in _OCC_PRIVATE
                and not (
                    isinstance(sub.value, ast.Name)
                    and sub.value.id == "self"
                )
            ):
                return sub
        return None
