"""Serve thread-safety rule: shared state writes happen under the lock.

The routing server (PR 6) shares its cache, queue and job records
across HTTP handler threads and routing workers.  The convention the
code established — every shared class owns a ``threading.Lock`` /
``RLock`` / ``Condition`` and mutates its fields only inside ``with
self._lock:`` — is exactly the kind of invariant that erodes one
innocent-looking assignment at a time.

``serve.lock`` makes it mechanical: in any ``repro.serve`` class whose
``__init__`` creates a lock attribute, every ``self.<field>``
assignment (or container-mutating call through one) in a non-dunder
method must sit lexically inside a ``with self.<lock>:`` block.
Deliberately lock-free fields (single-writer hand-offs, monotonic
flags) carry a pragma stating why they are safe — turning the
convention into documentation at each site.
"""

from __future__ import annotations

import ast

from repro.lint.base import FileRule
from repro.lint.context import ModuleContext, dotted_name
from repro.lint.violations import LintViolation

__all__ = ["ServeLockRule"]

_LOCK_FACTORIES = frozenset(
    {
        "threading.Lock",
        "threading.RLock",
        "threading.Condition",
        "Lock",
        "RLock",
        "Condition",
    }
)

_CONTAINER_MUTATORS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "remove",
        "clear",
        "update",
        "setdefault",
        "pop",
        "popitem",
        "add",
        "discard",
        "move_to_end",
    }
)


class ServeLockRule(FileRule):
    rule_id = "serve.lock"
    contract = (
        "In serve classes that own a lock, every self-field write in "
        "a non-init method happens inside `with self.<lock>:` (or is "
        "documented lock-free with a pragma)."
    )
    packages = ("repro.serve",)

    def check(self, ctx: ModuleContext) -> list[LintViolation]:
        out: list[LintViolation] = []
        for node in ctx.tree.body:
            if isinstance(node, ast.ClassDef):
                out.extend(self._check_class(ctx, node))
        return out

    # ------------------------------------------------------------------
    def _check_class(
        self, ctx: ModuleContext, cls: ast.ClassDef
    ) -> list[LintViolation]:
        locks = self._lock_attrs(cls)
        if not locks:
            return []
        out: list[LintViolation] = []
        for method in cls.body:
            if not isinstance(
                method, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            if method.name.startswith("__") and method.name.endswith(
                "__"
            ):
                continue  # __init__ runs before sharing; dunders vary
            out.extend(self._check_method(ctx, method, locks))
        return out

    @staticmethod
    def _lock_attrs(cls: ast.ClassDef) -> set[str]:
        """self-attributes ``__init__`` binds to a threading lock."""
        locks: set[str] = set()
        for method in cls.body:
            if (
                not isinstance(method, ast.FunctionDef)
                or method.name != "__init__"
            ):
                continue
            for node in ast.walk(method):
                if not isinstance(node, ast.Assign):
                    continue
                if not isinstance(node.value, ast.Call):
                    continue
                name = dotted_name(node.value.func)
                if name not in _LOCK_FACTORIES:
                    continue
                for target in node.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        locks.add(target.attr)
        return locks

    def _check_method(
        self,
        ctx: ModuleContext,
        method: ast.FunctionDef | ast.AsyncFunctionDef,
        locks: set[str],
    ) -> list[LintViolation]:
        out: list[LintViolation] = []
        for node in ast.walk(method):
            attr: ast.Attribute | None = None
            kind = "write to"
            targets: list[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            for target in targets:
                attr = self._self_attr(target)
                if attr is not None:
                    break
            if attr is None and isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in _CONTAINER_MUTATORS
                ):
                    attr = self._self_attr(func.value)
                    kind = "mutating call through"
            if attr is None or attr.attr in locks:
                continue
            if self._under_lock(ctx, node, locks):
                continue
            out.append(
                self.violation(
                    ctx,
                    attr.lineno,
                    attr.col_offset,
                    f"{kind} self.{attr.attr} in {method.name}() "
                    "outside the instance lock; wrap in `with "
                    "self.<lock>:` or pragma why the field is "
                    "lock-free",
                )
            )
        return out

    @staticmethod
    def _self_attr(node: ast.expr) -> ast.Attribute | None:
        """The ``self.<attr>`` an expression stores through, if any.

        Handles plain fields (``self.x = ...``) and container cells
        (``self.d[k] = ...`` stores through ``self.d``).
        """
        current: ast.expr = node
        while isinstance(current, ast.Subscript):
            current = current.value
        if (
            isinstance(current, ast.Attribute)
            and isinstance(current.value, ast.Name)
            and current.value.id == "self"
        ):
            return current
        return None

    @staticmethod
    def _under_lock(
        ctx: ModuleContext, node: ast.AST, locks: set[str]
    ) -> bool:
        for ancestor in ctx.ancestors(node):
            if isinstance(
                ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                break  # do not credit an outer function's lock scope
            if not isinstance(ancestor, ast.With):
                continue
            for item in ancestor.items:
                expr = item.context_expr
                if (
                    isinstance(expr, ast.Attribute)
                    and expr.attr in locks
                    and isinstance(expr.value, ast.Name)
                    and expr.value.id == "self"
                ):
                    return True
        return False
