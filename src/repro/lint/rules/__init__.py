"""The rule registry for the project-contract linter.

One instance of every rule, catalogued by id.  ``repro lint
--list-rules`` and docs/STATIC_ANALYSIS.md render the catalogue;
``--rule``/``--select`` filter against it.
"""

from __future__ import annotations

from repro.lint.base import FileRule, ProjectRule, Rule
from repro.lint.rules.concurrency import MutableDefaultRule, PoolPayloadRule
from repro.lint.rules.determinism import (
    DETERMINISM_PACKAGES,
    ClockRule,
    IdKeyRule,
    RandomRule,
    SetOrderRule,
)
from repro.lint.rules.digest import DigestFieldsRule
from repro.lint.rules.servelock import ServeLockRule
from repro.lint.rules.transaction import CommitScopeRule, OccupancyMutationRule

__all__ = [
    "ALL_RULES",
    "DETERMINISM_PACKAGES",
    "FILE_RULES",
    "PRAGMA_RULE_ID",
    "PROJECT_RULES",
    "all_rule_ids",
    "rules_for_ids",
]

#: Engine-owned rule id for malformed suppressions (reasonless or
#: stale pragmas); not a Rule class — the engine emits it directly.
PRAGMA_RULE_ID = "lint.pragma"

FILE_RULES: tuple[FileRule, ...] = (
    ClockRule(),
    RandomRule(),
    IdKeyRule(),
    SetOrderRule(),
    CommitScopeRule(),
    OccupancyMutationRule(),
    PoolPayloadRule(),
    MutableDefaultRule(),
    ServeLockRule(),
)

PROJECT_RULES: tuple[ProjectRule, ...] = (DigestFieldsRule(),)

ALL_RULES: tuple[Rule, ...] = FILE_RULES + PROJECT_RULES


def all_rule_ids() -> tuple[str, ...]:
    """Every selectable rule id, sorted (includes ``lint.pragma``)."""
    return tuple(
        sorted([*(r.rule_id for r in ALL_RULES), PRAGMA_RULE_ID])
    )


def rules_for_ids(select: set[str] | None) -> tuple[Rule, ...]:
    """The registered rules matching ``select`` (``None`` = all).

    Ids may be exact (``det.clock``) or a group prefix (``det``).
    Unknown ids raise ``ValueError`` so CLI typos fail loudly.
    """
    if select is None:
        return ALL_RULES
    known = {r.rule_id for r in ALL_RULES} | {PRAGMA_RULE_ID}
    groups = {rid.split(".")[0] for rid in known}
    unknown = [
        s for s in select if s not in known and s not in groups
    ]
    if unknown:
        raise ValueError(
            f"unknown rule id(s): {', '.join(sorted(unknown))}; "
            f"known: {', '.join(sorted(known))}"
        )
    return tuple(
        r
        for r in ALL_RULES
        if r.rule_id in select or r.rule_id.split(".")[0] in select
    )
