"""Determinism rules: the bit-identity contract, enforced at the source.

Everything the routing stack guarantees since PR 4 — serial/parallel
bit-identity, sha256 route-digest parity across occupancy backends,
content-addressed serve caching — assumes that routing *decisions* are
pure functions of the input.  These rules police the packages that
contract covers (``core``, ``grid``, ``maze``, ``dispatch``,
``globalroute``, ``io``) for the classic leak vectors:

* ``det.clock`` — wall-clock reads (``time.time``, ``datetime.now``,
  ...).  Elapsed-time *measurement* is fine (``perf_counter`` /
  ``monotonic`` feed the instrument spans and never a decision); a
  wall-clock timestamp inside a routing package is either dead weight
  or a nondeterminism bug.
* ``det.random`` — unseeded randomness: module-level ``random.*``
  calls, ``os.urandom``, ``uuid.uuid1/uuid4``, ``secrets.*``.
  Explicitly seeded ``random.Random(seed)`` instances are the
  sanctioned pattern (``bench_suite`` derives per-design seeds by
  sha256) and are not flagged.
* ``det.idkey`` — ``id()`` used to order things: ``key=id``, ``id()``
  inside a ``sorted``/``.sort`` call.  CPython ids are allocation
  addresses; orderings keyed on them differ run to run.
* ``det.setorder`` — iterating a hash-ordered ``set`` where the
  iteration order can escape: a set display/constructor consumed by a
  ``for`` loop, a comprehension, ``list``/``tuple``/``enumerate``/
  ``join``.  Wrap in ``sorted(...)`` (or reduce commutatively and
  pragma with the reason).  Direct set expressions are errors; names a
  light dataflow pass proves set-valued are flagged as warnings.
"""

from __future__ import annotations

import ast

from repro.lint.base import FileRule
from repro.lint.context import ModuleContext, dotted_name
from repro.lint.violations import LintViolation, Severity

__all__ = ["ClockRule", "IdKeyRule", "RandomRule", "SetOrderRule"]

#: The packages the determinism contract covers (docs/PARALLELISM.md,
#: docs/SERVING.md): everything that feeds routing decisions, committed
#: geometry or canonical digests.
DETERMINISM_PACKAGES = (
    "repro.core",
    "repro.grid",
    "repro.maze",
    "repro.dispatch",
    "repro.globalroute",
    "repro.io",
    "repro.iterate",
)

_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.localtime",
        "time.gmtime",
        "time.ctime",
        "datetime.now",
        "datetime.utcnow",
        "datetime.today",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "date.today",
        "datetime.date.today",
    }
)

_RANDOM_CALLS = frozenset(
    {
        "os.urandom",
        "uuid.uuid1",
        "uuid.uuid4",
    }
)


class ClockRule(FileRule):
    rule_id = "det.clock"
    contract = (
        "No wall-clock reads inside the determinism packages: routing "
        "decisions and digests must be pure functions of the input."
    )
    packages = DETERMINISM_PACKAGES

    def check(self, ctx: ModuleContext) -> list[LintViolation]:
        out: list[LintViolation] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name in _CLOCK_CALLS:
                out.append(
                    self.violation(
                        ctx,
                        node.lineno,
                        node.col_offset,
                        f"wall-clock call {name}() in a determinism "
                        "package; use instrument spans "
                        "(perf_counter) for timing, or pass "
                        "timestamps in from the serving layer",
                    )
                )
        return out


class RandomRule(FileRule):
    rule_id = "det.random"
    contract = (
        "No unseeded randomness inside the determinism packages; "
        "random.Random(seed) instances with derived seeds are the "
        "sanctioned pattern."
    )
    packages = DETERMINISM_PACKAGES

    def check(self, ctx: ModuleContext) -> list[LintViolation]:
        out: list[LintViolation] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None:
                continue
            bad = (
                (name.startswith("random.") and name != "random.Random")
                or name in _RANDOM_CALLS
                or name.startswith("secrets.")
            )
            if bad:
                out.append(
                    self.violation(
                        ctx,
                        node.lineno,
                        node.col_offset,
                        f"unseeded randomness {name}() in a "
                        "determinism package; derive a seed and use "
                        "a random.Random(seed) instance",
                    )
                )
        return out


class IdKeyRule(FileRule):
    rule_id = "det.idkey"
    contract = (
        "id() must not order or key anything: CPython ids are "
        "allocation addresses and differ run to run."
    )
    packages = DETERMINISM_PACKAGES

    def check(self, ctx: ModuleContext) -> list[LintViolation]:
        out: list[LintViolation] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            # key=id / key=lambda x: id(x) on any call.
            for kw in node.keywords:
                if kw.arg != "key":
                    continue
                if self._is_id_keyed(kw.value):
                    out.append(
                        self.violation(
                            ctx,
                            node.lineno,
                            node.col_offset,
                            "ordering keyed on id(): run-to-run "
                            "nondeterministic; key on a stable field "
                            "(name, index) instead",
                        )
                    )
            # id(...) anywhere inside a sorted(...) / .sort(...) call.
            if self._is_sort_call(node):
                for arg in node.args:
                    for sub in ast.walk(arg):
                        if (
                            isinstance(sub, ast.Call)
                            and isinstance(sub.func, ast.Name)
                            and sub.func.id == "id"
                        ):
                            out.append(
                                self.violation(
                                    ctx,
                                    sub.lineno,
                                    sub.col_offset,
                                    "id() feeding a sort: run-to-run "
                                    "nondeterministic ordering",
                                )
                            )
        return out

    @staticmethod
    def _is_id_keyed(value: ast.AST) -> bool:
        if isinstance(value, ast.Name) and value.id == "id":
            return True
        if isinstance(value, ast.Lambda):
            for sub in ast.walk(value.body):
                if (
                    isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Name)
                    and sub.func.id == "id"
                ):
                    return True
        return False

    @staticmethod
    def _is_sort_call(node: ast.Call) -> bool:
        if isinstance(node.func, ast.Name) and node.func.id == "sorted":
            return True
        return (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "sort"
        )


#: Wrapping one of these around a set expression neutralises the
#: iteration-order hazard (the consumer is order-insensitive).
_ORDER_SAFE_CONSUMERS = frozenset(
    {"sorted", "min", "max", "sum", "len", "any", "all", "set", "frozenset", "bool"}
)
#: These consumers materialise or expose the hash order.
_ORDER_LEAKING_CONSUMERS = frozenset(
    {"list", "tuple", "enumerate", "iter", "reversed", "next"}
)


class SetOrderRule(FileRule):
    rule_id = "det.setorder"
    contract = (
        "Set iteration order is hash order: sets feeding loops, "
        "sequences or joins inside the determinism packages must be "
        "sorted first."
    )
    packages = DETERMINISM_PACKAGES

    def check(self, ctx: ModuleContext) -> list[LintViolation]:
        out: list[LintViolation] = []
        for node in ast.walk(ctx.tree):
            if not self._is_set_expr(node):
                continue
            leak = self._leak_context(ctx, node)
            if leak is not None:
                out.append(
                    self.violation(
                        ctx,
                        node.lineno,
                        node.col_offset,
                        f"set iterated {leak}: iteration order is "
                        "hash order; wrap in sorted(...) or justify "
                        "with a pragma",
                    )
                )
        out.extend(self._inferred_set_loops(ctx))
        return out

    # ------------------------------------------------------------------
    @classmethod
    def _is_set_expr(cls, node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("set", "frozenset")
        ):
            return True
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
        ):
            return cls._is_set_expr(node.left) or cls._is_set_expr(
                node.right
            )
        return False

    def _leak_context(
        self, ctx: ModuleContext, node: ast.AST
    ) -> str | None:
        """How this set's order escapes, or None when it cannot."""
        parent = ctx.parent_of(node)
        # Hop over binop composition: the leak belongs to the outermost
        # set-valued expression only (children are reported via it).
        if isinstance(parent, ast.BinOp) and self._is_set_expr(parent):
            return None
        if isinstance(parent, ast.For) and parent.iter is node:
            return "by a for loop" if not self._order_safe(ctx, node) else None
        if isinstance(parent, ast.comprehension) and parent.iter is node:
            return (
                "by a comprehension"
                if not self._order_safe(ctx, node)
                else None
            )
        if isinstance(parent, ast.Call) and node in parent.args:
            func = parent.func
            if (
                isinstance(func, ast.Name)
                and func.id in _ORDER_LEAKING_CONSUMERS
                and not self._order_safe(ctx, parent)
            ):
                return f"through {func.id}(...)"
            if isinstance(func, ast.Attribute) and func.attr == "join":
                return "through str.join(...)"
        if isinstance(parent, ast.Starred):
            return "by star-unpacking"
        return None

    def _order_safe(self, ctx: ModuleContext, node: ast.AST) -> bool:
        """Is some enclosing call order-insensitive (sorted, sum, ...)?"""
        for ancestor in ctx.ancestors(node):
            if isinstance(ancestor, ast.Call) and isinstance(
                ancestor.func, ast.Name
            ):
                if ancestor.func.id in _ORDER_SAFE_CONSUMERS:
                    return True
            if isinstance(ancestor, ast.stmt):
                break
        return False

    # ------------------------------------------------------------------
    def _inferred_set_loops(
        self, ctx: ModuleContext
    ) -> list[LintViolation]:
        """WARNING-level pass: loops over names proven set-valued.

        Within each function, a name whose every assignment is a set
        expression is set-valued; a bare ``for`` over it leaks hash
        order.  Reported as warnings — the dataflow is deliberately
        shallow (no attributes, no cross-function flow).
        """
        out: list[LintViolation] = []
        for func in ast.walk(ctx.tree):
            if not isinstance(
                func, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            assigned: dict[str, list[bool]] = {}
            for node in ast.walk(func):
                if isinstance(node, ast.Assign):
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            assigned.setdefault(target.id, []).append(
                                self._is_set_expr(node.value)
                            )
                elif isinstance(node, ast.AugAssign) and isinstance(
                    node.target, ast.Name
                ):
                    # s |= {...} keeps a set a set; anything else may not.
                    assigned.setdefault(node.target.id, []).append(
                        isinstance(node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor))
                    )
            set_named = {
                name
                for name, flags in assigned.items()
                if flags and all(flags)
            }
            for node in ast.walk(func):
                if (
                    isinstance(node, ast.For)
                    and isinstance(node.iter, ast.Name)
                    and node.iter.id in set_named
                ):
                    out.append(
                        self.violation(
                            ctx,
                            node.lineno,
                            node.col_offset,
                            f"loop over set-valued name "
                            f"{node.iter.id!r}: iteration order is "
                            "hash order; sort it or justify with a "
                            "pragma",
                            severity=Severity.WARNING,
                        )
                    )
        return out
