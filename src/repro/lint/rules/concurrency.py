"""Process-pool safety rules for the dispatch and serve subsystems.

Speculative routing (PR 4) and the serve job queue (PR 6) push work
onto ``concurrent.futures`` executors.  Process pools pickle the
callable and its arguments; anything that is not a module-level
function — a lambda, a nested ``def`` closing over local state, a
bound method — either fails to pickle or, worse, pickles a *copy* of
shared-mutable state and silently diverges from the serial run.

* ``pool.payload`` — the callable handed to an *executor's*
  ``.submit(...)`` must be a module-level function (or a module
  attribute).  Thread-mode-only submission paths that deliberately
  accept closures carry a pragma naming the runtime guard that keeps
  them off process pools.  The rule keys on the receiver name — a
  ``.submit`` through anything named ``*executor*`` — so domain-level
  ``submit`` methods that take *data* (``WorkerPool.submit(task)``,
  ``JobQueue.submit(spec)``) are out of scope; the convention is that
  raw ``concurrent.futures`` handles are named ``executor``/
  ``_executor``, which the codebase already follows.
* ``pool.default`` — mutable default arguments (``[]``, ``{}``,
  ``set()``) on functions in the worker-payload modules: defaults are
  evaluated once per process, so a mutable default is state shared
  between jobs in the same worker but *not* across workers — the
  exact shape of bug the bit-identity contract exists to prevent.
"""

from __future__ import annotations

import ast

from repro.lint.base import FileRule
from repro.lint.context import ModuleContext
from repro.lint.violations import LintViolation

__all__ = ["MutableDefaultRule", "PoolPayloadRule"]

POOL_PACKAGES = ("repro.dispatch", "repro.serve")

_MUTABLE_CALLS = frozenset({"list", "dict", "set", "bytearray"})


class PoolPayloadRule(FileRule):
    rule_id = "pool.payload"
    contract = (
        "Callables submitted to executors must be module-level "
        "functions: closures and bound methods are unpicklable or "
        "smuggle shared-mutable state into workers."
    )
    packages = POOL_PACKAGES

    def check(self, ctx: ModuleContext) -> list[LintViolation]:
        out: list[LintViolation] = []
        top_level = ctx.top_level_names()
        modules = ctx.imported_modules()
        nested = self._nested_def_names(ctx)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (
                isinstance(func, ast.Attribute) and func.attr == "submit"
            ):
                continue
            if not self._is_executor_receiver(func.value):
                continue
            if not node.args:
                continue
            payload = node.args[0]
            reason = self._payload_problem(
                payload, top_level, modules, nested
            )
            if reason is not None:
                out.append(
                    self.violation(
                        ctx,
                        payload.lineno,
                        payload.col_offset,
                        f"executor payload is {reason}; submit a "
                        "module-level function so process pools can "
                        "pickle it (or pragma naming the runtime "
                        "guard that keeps this path thread-only)",
                    )
                )
        return out

    @staticmethod
    def _is_executor_receiver(node: ast.expr) -> bool:
        """Does the ``.submit`` receiver look like a futures executor?

        Matches any Name/Attribute chain whose last component contains
        ``executor`` (``executor``, ``self._executor``, ``pool.executor``).
        """
        if isinstance(node, ast.Attribute):
            return "executor" in node.attr.lower()
        if isinstance(node, ast.Name):
            return "executor" in node.id.lower()
        return False

    @staticmethod
    def _nested_def_names(ctx: ModuleContext) -> set[str]:
        """Names of functions defined inside other functions."""
        nested: set[str] = set()
        for outer in ast.walk(ctx.tree):
            if not isinstance(
                outer, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            for sub in ast.walk(outer):
                if sub is outer:
                    continue
                if isinstance(
                    sub, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    nested.add(sub.name)
        return nested

    @staticmethod
    def _payload_problem(
        payload: ast.expr,
        top_level: set[str],
        modules: set[str],
        nested: set[str],
    ) -> str | None:
        if isinstance(payload, ast.Lambda):
            return "a lambda"
        if isinstance(payload, ast.Name):
            if payload.id in nested:
                return f"the nested function {payload.id!r} (a closure)"
            if payload.id in top_level:
                return None
            return f"the local name {payload.id!r} (not module-level)"
        if isinstance(payload, ast.Attribute):
            base = payload.value
            if isinstance(base, ast.Name) and base.id in modules:
                return None  # module.function — picklable by name
            return (
                f"the bound attribute .{payload.attr} (instance state "
                "travels with it)"
            )
        if isinstance(payload, ast.Call):
            return "a call result (evaluate to a module-level function)"
        return "not a module-level function"


class MutableDefaultRule(FileRule):
    rule_id = "pool.default"
    contract = (
        "No mutable default arguments in worker-payload modules: "
        "defaults evaluate once per process and become state shared "
        "between jobs on the same worker."
    )
    packages = POOL_PACKAGES

    def check(self, ctx: ModuleContext) -> list[LintViolation]:
        out: list[LintViolation] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if self._is_mutable(default):
                    out.append(
                        self.violation(
                            ctx,
                            default.lineno,
                            default.col_offset,
                            f"mutable default argument on "
                            f"{node.name}(); default to None (or a "
                            "frozen value) and build the container "
                            "in the body",
                        )
                    )
        return out

    @staticmethod
    def _is_mutable(node: ast.expr) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set)):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in _MUTABLE_CALLS
        )
