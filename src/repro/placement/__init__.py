"""Row/shelf macro-cell placement.

The flows need a placement topology with explicit channels, matching
the macro-cell layout style the paper's experiments use: cells are
shelf-packed into horizontal rows, the regions between (and outside)
the rows are the level A channels, and two vertical side channels carry
inter-row connections of channel-routed nets.

Placement is two-phase on purpose: :meth:`RowPlacement.build` fixes the
row assignment and x coordinates (which is all channel *problems* need),
and :meth:`RowPlacement.realize` assigns y coordinates once the channel
heights are known after detailed routing - mirroring how the paper's
level A determines the final layout dimensions before level B starts.
"""

from repro.placement.rows import PlacedRow, RowPlacement

__all__ = ["PlacedRow", "RowPlacement"]
