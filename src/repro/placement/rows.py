"""Shelf packing of macro cells into rows with x-coordinate assignment."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from collections.abc import Sequence

from repro.geometry import Rect
from repro.netlist import Cell, Design


@dataclass
class PlacedRow:
    """One shelf of cells (left to right)."""

    index: int
    cells: list[Cell] = field(default_factory=list)

    @property
    def height(self) -> int:
        return max((c.height for c in self.cells), default=0)


class RowPlacement:
    """Row assignment plus x coordinates for a design's cells.

    ``channel_count`` is ``rows + 1``: channel 0 runs below row 0,
    channel ``i`` between rows ``i-1`` and ``i``, and the last channel
    above the top row, so every TOP/BOTTOM cell pin faces a channel.
    """

    def __init__(
        self,
        design: Design,
        rows: list[PlacedRow],
        cell_x: dict[str, int],
        pitch: int,
        cell_gap: int,
    ) -> None:
        self.design = design
        self.rows = rows
        self.cell_x = cell_x
        self.pitch = pitch
        self.cell_gap = cell_gap
        self.row_of_cell: dict[str, int] = {}
        for row in rows:
            for cell in row.cells:
                self.row_of_cell[cell.name] = row.index

    # ------------------------------------------------------------------
    @staticmethod
    def build(
        design: Design,
        *,
        pitch: int = 8,
        cell_gap: int | None = None,
        row_width_target: int | None = None,
        aspect: float = 1.0,
    ) -> "RowPlacement":
        """Shelf-pack the design's cells into rows.

        Cells are sorted by decreasing height (classic shelf packing,
        deterministic with name tie-breaks) and packed left to right
        until the row reaches ``row_width_target`` (default: sized for
        roughly the requested ``aspect`` ratio).  All x coordinates are
        snapped up to ``pitch`` so pins land on routing columns.
        """
        if not design.cells:
            raise ValueError("cannot place an empty design")
        gap = cell_gap if cell_gap is not None else 2 * pitch
        cells = sorted(
            design.cells.values(), key=lambda c: (-c.height, -c.width, c.name)
        )
        if row_width_target is None:
            total_area = sum(c.area for c in cells)
            row_width_target = max(
                max(c.width for c in cells),
                int(math.sqrt(total_area * aspect)),
            )
        rows: list[PlacedRow] = []
        cell_x: dict[str, int] = {}
        current = PlacedRow(index=0)
        cursor = 0
        for cell in cells:
            if current.cells and cursor + cell.width > row_width_target:
                rows.append(current)
                current = PlacedRow(index=len(rows))
                cursor = 0
            cell_x[cell.name] = cursor
            current.cells.append(cell)
            cursor += cell.width + gap
            cursor = _snap_up(cursor, pitch)
        rows.append(current)
        return RowPlacement(design, rows, cell_x, pitch, gap)

    # ------------------------------------------------------------------
    @property
    def num_rows(self) -> int:
        return len(self.rows)

    @property
    def channel_count(self) -> int:
        return self.num_rows + 1

    @property
    def core_width(self) -> int:
        """Width of the widest row."""
        return max(
            (
                self.cell_x[row.cells[-1].name] + row.cells[-1].width
                for row in self.rows
                if row.cells
            ),
            default=0,
        )

    def channel_of_pin_row(self, row_index: int, on_top_edge: bool) -> int:
        """Channel a pin faces: TOP-edge pins look up, BOTTOM-edge down."""
        return row_index + 1 if on_top_edge else row_index

    # ------------------------------------------------------------------
    def realize(
        self,
        channel_heights: Sequence[int],
        *,
        left_width: int = 0,
        right_width: int = 0,
        margin: int = 0,
    ) -> Rect:
        """Assign cell origins given the routed channel heights.

        Returns the full layout bounding rectangle (including side
        channels and margins).  May be called repeatedly with different
        heights: each call re-places every cell.
        """
        if len(channel_heights) != self.channel_count:
            raise ValueError(
                f"need {self.channel_count} channel heights, "
                f"got {len(channel_heights)}"
            )
        x0 = margin + left_width
        y = margin
        for i, row in enumerate(self.rows):
            y += channel_heights[i]
            for cell in row.cells:
                cell.place(x0 + self.cell_x[cell.name], y)
            y += row.height
        y += channel_heights[-1]
        total_w = margin * 2 + left_width + right_width + self.core_width
        total_h = y + margin
        return Rect(0, 0, _snap_up(total_w, self.pitch), _snap_up(total_h, self.pitch))

    def channel_y_ranges(
        self, channel_heights: Sequence[int], *, margin: int = 0
    ) -> list[Rect]:
        """The channel strips' y extents (x spans the core width).

        Useful for visualisation; must be called with the same heights
        passed to :meth:`realize`.
        """
        out: list[Rect] = []
        y = margin
        width = self.core_width
        for i in range(self.channel_count):
            out.append(Rect(0, y, width, y + channel_heights[i]))
            y += channel_heights[i]
            if i < self.num_rows:
                y += self.rows[i].height
        return out


def _snap_up(value: int, pitch: int) -> int:
    return ((value + pitch - 1) // pitch) * pitch
