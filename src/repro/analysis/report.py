"""Human-readable routing reports for flow results."""

from __future__ import annotations


from repro.analysis.congestion import congestion_map
from repro.technology import Technology, ensure_overcell_planes
from repro.timing import DriverModel, levelb_net_delays


def _plane_labels(tech: Technology, num_planes: int) -> list[str]:
    """Layer-pair labels for the first ``num_planes`` over-cell planes.

    Derived from the technology's layer names (extrapolating upward
    when the stack is shorter than the result's plane count), never
    hard-coded.
    """
    stack = ensure_overcell_planes(tech, num_planes).layer_stack()
    return stack.labels()[:num_planes]


def routing_report(
    result,
    *,
    technology: Technology | None = None,
    driver: DriverModel | None = None,
    top_n: int = 5,
) -> str:
    """A multi-section text report for a :class:`~repro.flow.FlowResult`.

    Sections: headline metrics, channel usage, and - when the flow
    carried a level B stage - over-cell statistics, the congestion
    heatmap, and the slowest nets by Elmore delay.
    """
    tech = technology or Technology.four_layer()
    lines: list[str] = []
    lines.append(f"Routing report: {result.design} / {result.flow}")
    lines.append("=" * len(lines[0]))
    lines.append(
        f"layout  : {result.bounds.width} x {result.bounds.height} "
        f"= {result.layout_area:,} lambda^2"
    )
    lines.append(f"wire    : {result.wire_length:,} lambda")
    lines.append(f"vias    : {result.via_count:,}")
    lines.append(f"complete: {result.completion:.1%}")
    if result.channel_tracks:
        used = [t for t in result.channel_tracks if t > 0]
        lines.append(
            f"channels: {len(result.channel_tracks)} "
            f"({len(used)} occupied; tracks "
            f"{', '.join(str(t) for t in result.channel_tracks)})"
        )
    if result.side_widths != (0, 0):
        lines.append(
            f"side channels: left {result.side_widths[0]}, "
            f"right {result.side_widths[1]} lambda"
        )
    levelb = result.levelb
    if levelb is not None:
        num_planes = getattr(levelb, "num_planes", 1)
        labels = _plane_labels(tech, num_planes)
        lines.append("")
        header = f"Level B (over-cell, {', '.join(labels)})"
        lines.append(header)
        lines.append("-" * len(header))
        grid = levelb.tig.grid
        lines.append(
            f"grid    : {grid.num_vtracks} x {grid.num_htracks} tracks, "
            f"{levelb.tig.planes.utilization():.1%} of slots used"
        )
        lines.append(
            f"nets    : {levelb.nets_completed}/{levelb.nets_attempted} complete, "
            f"{levelb.total_corners} corner vias, {levelb.ripups} rip-ups"
        )
        if num_planes > 1:
            per_plane = ", ".join(
                f"{label}: {len(levelb.nets_on_plane(p))}"
                for p, label in enumerate(labels)
            )
            lines.append(f"planes  : {per_plane}")
        cmap = congestion_map(grid)
        lines.append(
            f"congestion: mean {cmap.mean:.1%}, peak {cmap.peak:.1%}"
        )
        lines.append(cmap.to_ascii())
        from repro.analysis.wirelength import wirelength_stats

        stats = wirelength_stats(levelb)
        if stats.nets:
            lines.append(
                f"wire quality: {stats.overall_ratio:.3f}x HPWL overall "
                f"(mean {stats.mean_ratio:.3f}, max {stats.max_ratio:.3f} "
                f"on {stats.worst_net})"
            )
        delays = []
        for routed in levelb.routed:
            for pin_name, delay in levelb_net_delays(
                routed, tech, driver or DriverModel()
            ).items():
                delays.append((delay, routed.net.name, pin_name))
        if delays:
            delays.sort(reverse=True)
            lines.append("")
            lines.append(f"slowest level B pins (Elmore, top {top_n}):")
            for delay, net_name, pin_name in delays[:top_n]:
                lines.append(f"  {delay:8.2f} ps  {net_name} -> {pin_name}")
    return "\n".join(lines)
