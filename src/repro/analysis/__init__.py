"""Post-routing analysis: congestion, coupling and timing reports."""

from repro.analysis.congestion import CongestionMap, congestion_map
from repro.analysis.report import routing_report
from repro.analysis.wirelength import WirelengthStats, wirelength_stats

__all__ = [
    "CongestionMap",
    "congestion_map",
    "routing_report",
    "WirelengthStats",
    "wirelength_stats",
]
