"""Routing-resource congestion maps.

Bins the occupancy grid into a coarse matrix of slot-utilisation
fractions - the quantity the level B cost function's ``acf`` term reads
locally, here computed globally for analysis and visualisation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.grid import RoutingGrid


@dataclass(frozen=True)
class CongestionMap:
    """A bins_y x bins_x matrix of utilisation fractions in [0, 1]."""

    values: tuple[tuple[float, ...], ...]  # row-major, row 0 = bottom

    @property
    def shape(self) -> tuple[int, int]:
        return (len(self.values), len(self.values[0]) if self.values else 0)

    @property
    def peak(self) -> float:
        return max((v for row in self.values for v in row), default=0.0)

    @property
    def mean(self) -> float:
        cells = [v for row in self.values for v in row]
        return sum(cells) / len(cells) if cells else 0.0

    def hotspots(self, threshold: float = 0.5) -> list[tuple[int, int]]:
        """Bin coordinates ``(row, col)`` whose utilisation >= threshold."""
        out = []
        for r, row in enumerate(self.values):
            for c, v in enumerate(row):
                if v >= threshold:
                    out.append((r, c))
        return out

    def to_ascii(self) -> str:
        """Digit heatmap, top row first ('.' = empty, 0-9 = decile)."""
        lines = []
        for row in reversed(self.values):
            chars = []
            for v in row:
                if v <= 0.0:
                    chars.append(".")
                else:
                    chars.append(str(min(9, int(v * 10))))
            lines.append("".join(chars))
        return "\n".join(lines)


def congestion_map(
    grid: RoutingGrid, bins_x: int = 20, bins_y: int = 12
) -> CongestionMap:
    """Bin the grid's used slots into a ``bins_y x bins_x`` map.

    A slot counts as used when it carries routed wire or an obstacle
    (free capacity is what matters to an unrouted net).
    """
    if bins_x < 1 or bins_y < 1:
        raise ValueError("bins must be positive")
    nv, nh = grid.num_vtracks, grid.num_htracks
    # snapshot() hands back dense arrays whatever the backend — sparse
    # occupancy stores expose no numpy array attributes to poke at.
    snap = grid.snapshot()
    used_h = (snap.h_owner != 0).astype(np.int64)  # [h][v]
    used_v = (snap.v_owner != 0).astype(np.int64).T  # -> [h][v]
    used = used_h + used_v
    rows: list[tuple[float, ...]] = []
    for by in range(bins_y):
        h_lo = by * nh // bins_y
        h_hi = max(h_lo + 1, (by + 1) * nh // bins_y)
        row: list[float] = []
        for bx in range(bins_x):
            v_lo = bx * nv // bins_x
            v_hi = max(v_lo + 1, (bx + 1) * nv // bins_x)
            window = used[h_lo:h_hi, v_lo:v_hi]
            capacity = 2 * window.size
            row.append(float(window.sum()) / capacity if capacity else 0.0)
        rows.append(tuple(row))
    return CongestionMap(values=tuple(rows))
