"""Routed-wirelength quality statistics.

For every completed level B net, compares the routed wire length
against the net's bounding-box half-perimeter (HPWL).  HPWL lower-
bounds any rectilinear Steiner tree, so the ratio ``routed / HPWL``
is a conservative optimality measure: 1.0 is unbeatable for
two-terminal nets, and multi-terminal nets legitimately exceed it.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class WirelengthStats:
    """Aggregate routed-vs-HPWL quality of a level B result."""

    nets: int
    total_routed: int
    total_hpwl: int
    mean_ratio: float
    max_ratio: float
    worst_net: str | None

    @property
    def overall_ratio(self) -> float:
        if self.total_hpwl == 0:
            return 1.0
        return self.total_routed / self.total_hpwl

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"wirelength quality: {self.nets} nets, overall "
            f"{self.overall_ratio:.3f}x HPWL (mean {self.mean_ratio:.3f}, "
            f"max {self.max_ratio:.3f} on {self.worst_net})"
        )


def wirelength_stats(levelb_result) -> WirelengthStats:
    """Compute :class:`WirelengthStats` for a level B result.

    Incomplete nets and nets with zero HPWL (coincident pins) are
    skipped - a partial route's length says nothing about quality.
    """
    ratios: list[tuple[float, str]] = []
    total_routed = 0
    total_hpwl = 0
    for routed in levelb_result.routed:
        if not routed.complete:
            continue
        hpwl = routed.net.half_perimeter
        if hpwl <= 0:
            continue
        length = routed.wire_length
        total_routed += length
        total_hpwl += hpwl
        ratios.append((length / hpwl, routed.net.name))
    if not ratios:
        return WirelengthStats(
            nets=0, total_routed=0, total_hpwl=0,
            mean_ratio=1.0, max_ratio=1.0, worst_net=None,
        )
    worst_ratio, worst_net = max(ratios)
    return WirelengthStats(
        nets=len(ratios),
        total_routed=total_routed,
        total_hpwl=total_hpwl,
        mean_ratio=sum(r for r, _ in ratios) / len(ratios),
        max_ratio=worst_ratio,
        worst_net=worst_net,
    )
