"""Metal layers, preferred routing directions and spacing tables."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import NamedTuple


class RoutingDirection(enum.Enum):
    """Preferred wiring direction of a metal layer."""

    HORIZONTAL = "horizontal"
    VERTICAL = "vertical"

    @property
    def orthogonal(self) -> "RoutingDirection":
        if self is RoutingDirection.HORIZONTAL:
            return RoutingDirection.VERTICAL
        return RoutingDirection.HORIZONTAL


class WidthSpacingTuple(NamedTuple):
    """One row of a piecewise width-dependent spacing table.

    Real design manuals (and hammer's ``stackup.py``, which this models)
    express metal spacing as a step function of drawn width: any wire at
    least ``width_at_least`` lambda wide must keep ``min_spacing`` lambda
    of clearance to neighbouring shapes on the same layer.  A table is a
    sorted sequence of these rows, the first anchored at width 0.
    """

    width_at_least: int
    min_spacing: int


@dataclass(frozen=True)
class Layer:
    """A routing metal layer.

    Attributes
    ----------
    index:
        1-based position in the stack (metal1 = 1).
    name:
        Human-readable name, e.g. ``"metal3"``.
    direction:
        Preferred routing direction under the reserved-layer model.
    pitch:
        Track-to-track spacing in lambda; grows with ``index`` in real
        processes, which is the effect the paper's area model exploits.
    width:
        Drawn wire width in lambda.
    sheet_resistance:
        Ohms per square.  Upper layers are thicker metal, so their
        sheet resistance is lower - combined with their wider lines
        this is why the paper routes "long distance interconnections
        ... in level B using wider lines to yield shorter propagation
        delays".
    cap_per_lambda:
        Wire capacitance in fF per lambda of length.
    min_width:
        Minimum legal drawn width in lambda, or ``None`` when the layer
        has no constraint beyond ``width`` itself.  Thick upper layers
        in real stackups forbid minimum-size wires; ``repro.check``'s
        ``drc.width`` rule enforces this against routed output.
    spacing_table:
        Piecewise width-dependent spacing rows, sorted by
        ``width_at_least`` with the first row at width 0.  Empty means
        the uniform default ``pitch - width`` (the clearance two
        adjacent minimum-width tracks already have), which is what keeps
        the preset technologies' behaviour and digests unchanged.
    """

    index: int
    name: str
    direction: RoutingDirection
    pitch: int
    width: int
    sheet_resistance: float = 0.07
    cap_per_lambda: float = 0.20
    min_width: int | None = None
    spacing_table: tuple[WidthSpacingTuple, ...] = ()

    def __post_init__(self) -> None:
        if self.index < 1:
            raise ValueError("layer index must be >= 1")
        if self.pitch <= 0 or self.width <= 0:
            raise ValueError("pitch and width must be positive")
        if self.width >= self.pitch:
            raise ValueError(
                f"{self.name}: width {self.width} must be < pitch {self.pitch}"
            )
        if self.sheet_resistance <= 0 or self.cap_per_lambda <= 0:
            raise ValueError(f"{self.name}: electrical parameters must be positive")
        if self.min_width is not None and self.min_width <= 0:
            raise ValueError(f"{self.name}: min_width must be positive")
        if self.spacing_table:
            rows = tuple(
                WidthSpacingTuple(int(r[0]), int(r[1]))
                for r in self.spacing_table
            )
            object.__setattr__(self, "spacing_table", rows)
            if rows[0].width_at_least != 0:
                raise ValueError(
                    f"{self.name}: spacing table must start at width 0 "
                    f"(got {rows[0].width_at_least})"
                )
            for prev, cur in zip(rows, rows[1:]):
                if cur.width_at_least <= prev.width_at_least:
                    raise ValueError(
                        f"{self.name}: spacing table widths must be "
                        "strictly increasing"
                    )
            for row in rows:
                if row.min_spacing <= 0:
                    raise ValueError(
                        f"{self.name}: spacing table spacings must be positive"
                    )

    @property
    def resistance_per_lambda(self) -> float:
        """Wire resistance in ohms per lambda of length."""
        return self.sheet_resistance / self.width

    def min_spacing_for(self, width: int) -> int:
        """Required same-layer clearance for a wire ``width`` lambda wide.

        The lookup takes the maximum ``min_spacing`` over every table row
        whose ``width_at_least`` the wire meets, which makes the result
        monotonically non-decreasing in width by construction (the
        property the hypothesis suite pins).  With no table the uniform
        default is ``pitch - width`` — exactly the clearance between two
        adjacent minimum-width tracks, so single-track wires on a
        table-free layer are always legal.
        """
        if width <= 0:
            raise ValueError("wire width must be positive")
        if not self.spacing_table:
            return self.pitch - self.width
        return max(
            row.min_spacing
            for row in self.spacing_table
            if row.width_at_least <= width
        )

    def wire_width(self, span: int) -> int:
        """Drawn width of a wire occupying ``span`` adjacent tracks.

        A multi-track wire is drawn as one shape covering its tracks:
        the base width plus one pitch per extra track.
        """
        if span < 1:
            raise ValueError("track span must be >= 1")
        return self.width + (span - 1) * self.pitch

    def guard_tracks(self, span: int) -> int:
        """Guard tracks a ``span``-track wire needs on *each* side.

        The wire's drawn width sets its required spacing through the
        table; the guard is however many whole neighbouring tracks must
        stay clear so that the nearest legal foreign wire (minimum
        width, on-track) satisfies it.  A table-free layer needs no
        guards for any span — adjacent-track clearance is already the
        default spacing.
        """
        spacing = self.min_spacing_for(self.wire_width(span))
        # A foreign wire g+1 tracks from the wire edge sits at clearance
        # (g+1)*pitch - width; the guard is the smallest g making that
        # legal.
        guard = -(-(spacing + self.width) // self.pitch) - 1
        return max(0, guard)

    @property
    def is_horizontal(self) -> bool:
        return self.direction is RoutingDirection.HORIZONTAL

    @property
    def is_vertical(self) -> bool:
        return self.direction is RoutingDirection.VERTICAL

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name
