"""Metal layers and preferred routing directions."""

from __future__ import annotations

import enum
from dataclasses import dataclass


class RoutingDirection(enum.Enum):
    """Preferred wiring direction of a metal layer."""

    HORIZONTAL = "horizontal"
    VERTICAL = "vertical"

    @property
    def orthogonal(self) -> "RoutingDirection":
        if self is RoutingDirection.HORIZONTAL:
            return RoutingDirection.VERTICAL
        return RoutingDirection.HORIZONTAL


@dataclass(frozen=True)
class Layer:
    """A routing metal layer.

    Attributes
    ----------
    index:
        1-based position in the stack (metal1 = 1).
    name:
        Human-readable name, e.g. ``"metal3"``.
    direction:
        Preferred routing direction under the reserved-layer model.
    pitch:
        Track-to-track spacing in lambda; grows with ``index`` in real
        processes, which is the effect the paper's area model exploits.
    width:
        Drawn wire width in lambda.
    sheet_resistance:
        Ohms per square.  Upper layers are thicker metal, so their
        sheet resistance is lower - combined with their wider lines
        this is why the paper routes "long distance interconnections
        ... in level B using wider lines to yield shorter propagation
        delays".
    cap_per_lambda:
        Wire capacitance in fF per lambda of length.
    """

    index: int
    name: str
    direction: RoutingDirection
    pitch: int
    width: int
    sheet_resistance: float = 0.07
    cap_per_lambda: float = 0.20

    def __post_init__(self) -> None:
        if self.index < 1:
            raise ValueError("layer index must be >= 1")
        if self.pitch <= 0 or self.width <= 0:
            raise ValueError("pitch and width must be positive")
        if self.width >= self.pitch:
            raise ValueError(
                f"{self.name}: width {self.width} must be < pitch {self.pitch}"
            )
        if self.sheet_resistance <= 0 or self.cap_per_lambda <= 0:
            raise ValueError(f"{self.name}: electrical parameters must be positive")

    @property
    def resistance_per_lambda(self) -> float:
        """Wire resistance in ohms per lambda of length."""
        return self.sheet_resistance / self.width

    @property
    def is_horizontal(self) -> bool:
        return self.direction is RoutingDirection.HORIZONTAL

    @property
    def is_vertical(self) -> bool:
        return self.direction is RoutingDirection.VERTICAL

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name
