"""Technology definitions: layer stacks, via rules and net classes."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from collections.abc import Sequence

from repro.technology.layers import Layer, RoutingDirection
from repro.technology.stack import LayerStack, plane_layer_indices


class NetClass(enum.Enum):
    """Width class of a net: how many adjacent tracks its wires occupy.

    The paper routes every net at minimum width; real stackups route
    clock trees and power distribution as wide wires.  Under the track
    model a wide wire is drawn over several adjacent tracks of its
    layer — :attr:`track_span` is that count, and
    :meth:`Technology.net_footprint` turns it into the (span, guard)
    pair the occupancy grid claims.  ``SIGNAL`` is a single track and
    preserves historical behaviour exactly.
    """

    SIGNAL = "signal"
    CLOCK = "clock"
    POWER = "power"

    @property
    def track_span(self) -> int:
        return _NET_CLASS_SPANS[self]


_NET_CLASS_SPANS = {
    NetClass.SIGNAL: 1,
    NetClass.CLOCK: 2,
    NetClass.POWER: 3,
}


@dataclass(frozen=True)
class ViaRule:
    """A via between two adjacent metal layers.

    ``size`` is the via cut dimension in lambda.  Vias between upper
    layers are larger, per the paper's discussion of multi-layer design
    rules.  ``cost`` is the relative price of cutting one such via —
    the knob the via-minimization objective (``objective="vias"``)
    reads; ``1.0`` everywhere reproduces the uniform pricing the
    presets always had.
    """

    lower: int
    upper: int
    size: int
    cost: float = 1.0

    def __post_init__(self) -> None:
        if self.upper != self.lower + 1:
            raise ValueError("vias connect adjacent layers only")
        if self.size <= 0:
            raise ValueError("via size must be positive")
        if self.cost <= 0:
            raise ValueError("via cost must be positive")


@dataclass(frozen=True)
class Technology:
    """A routing technology: ordered layer stack plus via rules.

    The two presets used throughout the reproduction are created with
    :meth:`two_layer` (metal1/metal2 channel routing) and
    :meth:`four_layer` (adds the over-cell pair metal3/metal4 with
    coarser pitch, matching the paper's assumption that the upper
    layers run wider lines over the cells).
    """

    name: str
    layers: tuple[Layer, ...]
    vias: tuple[ViaRule, ...]

    def __post_init__(self) -> None:
        indices = [layer.index for layer in self.layers]
        if indices != list(range(1, len(self.layers) + 1)):
            raise ValueError("layers must be contiguous and 1-based")
        via_pairs = {(v.lower, v.upper) for v in self.vias}
        needed = {(i, i + 1) for i in range(1, len(self.layers))}
        if via_pairs != needed:
            raise ValueError(
                f"via rules {sorted(via_pairs)} do not match stack {sorted(needed)}"
            )

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def layer(self, index: int) -> Layer:
        """The layer with 1-based ``index``."""
        if not 1 <= index <= len(self.layers):
            raise KeyError(f"no metal{index} in {self.name}")
        return self.layers[index - 1]

    def layer_by_name(self, name: str) -> Layer:
        for layer in self.layers:
            if layer.name == name:
                return layer
        raise KeyError(f"no layer named {name!r} in {self.name}")

    def via(self, lower: int) -> ViaRule:
        """The via rule from metal ``lower`` to metal ``lower + 1``."""
        for rule in self.vias:
            if rule.lower == lower:
                return rule
        raise KeyError(f"no via rule from metal{lower}")

    @property
    def num_layers(self) -> int:
        return len(self.layers)

    # ------------------------------------------------------------------
    # Derived quantities used by the area model
    # ------------------------------------------------------------------
    def channel_track_pitch(self, layer_indices: Sequence[int]) -> int:
        """The horizontal-track pitch a channel built on these layers needs.

        A channel's height is ``tracks * pitch``; with several candidate
        trunk layers the densest track grid is limited by the coarsest
        horizontal layer in use.
        """
        pitches = [
            self.layer(i).pitch for i in layer_indices if self.layer(i).is_horizontal
        ]
        if not pitches:
            raise ValueError("no horizontal layer among %r" % (layer_indices,))
        return max(pitches)

    def via_stack_size(self, lower: int, upper: int) -> int:
        """Largest via size on a stack from metal ``lower`` to ``upper``."""
        if lower >= upper:
            raise ValueError("need lower < upper")
        return max(self.via(i).size for i in range(lower, upper))

    # ------------------------------------------------------------------
    # Width classes and via pricing (the data-driven rules model)
    # ------------------------------------------------------------------
    def net_footprint(self, net_class: NetClass, plane: int) -> tuple[int, int]:
        """``(span, guard)`` a net of ``net_class`` claims on ``plane``.

        ``span`` adjacent tracks carry metal (the class's
        :attr:`NetClass.track_span`); ``guard`` further tracks on *each*
        side must stay clear of foreign wiring so the plane's
        width-dependent spacing tables are met.  The guard is the max
        over the plane's two layers, since the occupancy grid applies
        one footprint to both directions.  ``SIGNAL`` on any preset
        technology is ``(1, 0)`` — the historical single-track claim.
        """
        span = net_class.track_span
        v_idx, h_idx = plane_layer_indices(plane)
        guard = max(
            self.layer(v_idx).guard_tracks(span),
            self.layer(h_idx).guard_tracks(span),
        )
        return span, guard

    def corner_via_cost(self, plane: int) -> float:
        """Cost of one plane-internal corner via (e.g. m3-m4 on plane 0)."""
        v_idx, _ = plane_layer_indices(plane)
        return self.via(v_idx).cost

    def stack_via_cost(self, plane: int) -> float:
        """Cost of one terminal via stack from the channel pair to ``plane``.

        The accounting model charges ``1 + 2 * plane`` vias per pin
        (:attr:`~repro.core.router.LevelBResult.total_vias`); this is
        the same climb priced through the per-level via costs, so
        technologies with expensive upper vias pull the plane
        assignment down harder under ``objective="vias"``.
        """
        v_idx, _ = plane_layer_indices(plane)
        return sum(self.via(i).cost for i in range(2, v_idx))

    # ------------------------------------------------------------------
    # Presets
    # ------------------------------------------------------------------
    @staticmethod
    def two_layer() -> "Technology":
        """metal1 (vertical) + metal2 (horizontal): the channel pair."""
        from repro.technology.ingest import technology_from_stackup

        return technology_from_stackup(
            {
                "name": "generic-2L",
                "metals": [
                    {"name": "metal1", "index": 1, "direction": "vertical",
                     "pitch": 8, "width": 4},
                    {"name": "metal2", "index": 2, "direction": "horizontal",
                     "pitch": 8, "width": 4},
                ],
                "vias": [{"lower": 1, "upper": 2, "size": 4}],
            }
        )

    @staticmethod
    def four_layer() -> "Technology":
        """The paper's stack: m1/m2 for cells+channels, m3/m4 over-cell.

        metal3 runs vertical, metal4 horizontal; both have coarser pitch
        and wider lines than the lower pair, which is how the paper
        justifies routing long nets over the cells with shorter delays
        and why a 50 % track cut in a multi-layer channel is not a 50 %
        area cut.
        """
        return Technology.with_overcell_planes(1)

    @staticmethod
    def six_layer() -> "Technology":
        """Two over-cell planes: metal3/metal4 plus metal5/metal6."""
        return Technology.with_overcell_planes(2)

    @staticmethod
    def with_overcell_planes(planes: int) -> "Technology":
        """The channel pair plus ``planes`` reserved over-cell pairs.

        Plane 0 reproduces :meth:`four_layer`'s metal3/metal4 exactly;
        each further pair follows the same process trend the paper
        leans on - coarser pitch, wider lines, thicker (lower sheet
        resistance) metal, larger vias.
        ``with_overcell_planes(1) == four_layer()`` up to the name.

        The preset is *data*, not code: it is expressed as a stackup
        document (:func:`repro.technology.ingest.preset_stackup`) and
        built through the same ingestion path as a user-supplied JSON
        file, so the hard-coded and ingested models cannot drift.
        """
        from repro.technology.ingest import preset_stackup, technology_from_stackup

        return technology_from_stackup(preset_stackup(planes))

    # ------------------------------------------------------------------
    # The over-cell plane view
    # ------------------------------------------------------------------
    def layer_stack(self) -> LayerStack:
        """This technology's reserved-layer plane decomposition."""
        return LayerStack.from_technology(self)

    @property
    def num_overcell_planes(self) -> int:
        """How many complete reserved pairs sit above the channel pair."""
        return max(0, (self.num_layers - 2) // 2)

    def horizontal_layers(self) -> list[Layer]:
        return [l for l in self.layers if l.is_horizontal]

    def vertical_layers(self) -> list[Layer]:
        return [l for l in self.layers if l.is_vertical]


def ensure_overcell_planes(tech: Technology, planes: int) -> Technology:
    """``tech``, extended with extrapolated pairs if it is too short.

    A flow asked for ``planes`` over-cell planes keeps the caller's
    technology untouched when it already has them; otherwise the stack
    is grown by extrapolating the process trend from the topmost
    existing pair (pitch +4 lambda per pair, width = pitch/2, sheet
    resistance x0.75, via size +2 per level).
    """
    have = tech.num_overcell_planes
    if planes <= have:
        return tech
    layers = list(tech.layers)
    vias = list(tech.vias)
    # Drop a trailing unpaired layer from the pairing arithmetic: new
    # pairs are appended after the last *complete* pair.
    top = layers[2 + 2 * have - 1]
    for p in range(have, planes):
        v_idx, h_idx = plane_layer_indices(p)
        if v_idx <= tech.num_layers:
            raise ValueError(
                f"{tech.name} has an unpaired metal{v_idx}; cannot extend"
            )
        pitch = top.pitch + 4 * (p - have + 1)
        width = pitch // 2
        scale = 0.75 ** (p - have + 1)
        layers.append(
            Layer(v_idx, f"metal{v_idx}", RoutingDirection.VERTICAL,
                  pitch=pitch, width=width,
                  sheet_resistance=top.sheet_resistance * scale,
                  cap_per_lambda=top.cap_per_lambda),
        )
        layers.append(
            Layer(h_idx, f"metal{h_idx}", RoutingDirection.HORIZONTAL,
                  pitch=pitch, width=width,
                  sheet_resistance=top.sheet_resistance * scale,
                  cap_per_lambda=top.cap_per_lambda),
        )
        last_size = max(v.size for v in vias)
        vias.append(ViaRule(v_idx - 1, v_idx, size=last_size + 2))
        vias.append(ViaRule(v_idx, h_idx, size=last_size + 4))
    return Technology(
        name=f"{tech.name}+{planes - have}p",
        layers=tuple(layers),
        vias=tuple(vias),
    )
