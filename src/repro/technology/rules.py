"""Technology definitions: layer stacks and via rules."""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from repro.technology.layers import Layer, RoutingDirection
from repro.technology.stack import LayerStack, plane_layer_indices


@dataclass(frozen=True)
class ViaRule:
    """A via between two adjacent metal layers.

    ``size`` is the via cut dimension in lambda.  Vias between upper
    layers are larger, per the paper's discussion of multi-layer design
    rules.
    """

    lower: int
    upper: int
    size: int

    def __post_init__(self) -> None:
        if self.upper != self.lower + 1:
            raise ValueError("vias connect adjacent layers only")
        if self.size <= 0:
            raise ValueError("via size must be positive")


@dataclass(frozen=True)
class Technology:
    """A routing technology: ordered layer stack plus via rules.

    The two presets used throughout the reproduction are created with
    :meth:`two_layer` (metal1/metal2 channel routing) and
    :meth:`four_layer` (adds the over-cell pair metal3/metal4 with
    coarser pitch, matching the paper's assumption that the upper
    layers run wider lines over the cells).
    """

    name: str
    layers: tuple[Layer, ...]
    vias: tuple[ViaRule, ...]

    def __post_init__(self) -> None:
        indices = [layer.index for layer in self.layers]
        if indices != list(range(1, len(self.layers) + 1)):
            raise ValueError("layers must be contiguous and 1-based")
        via_pairs = {(v.lower, v.upper) for v in self.vias}
        needed = {(i, i + 1) for i in range(1, len(self.layers))}
        if via_pairs != needed:
            raise ValueError(
                f"via rules {sorted(via_pairs)} do not match stack {sorted(needed)}"
            )

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def layer(self, index: int) -> Layer:
        """The layer with 1-based ``index``."""
        if not 1 <= index <= len(self.layers):
            raise KeyError(f"no metal{index} in {self.name}")
        return self.layers[index - 1]

    def layer_by_name(self, name: str) -> Layer:
        for layer in self.layers:
            if layer.name == name:
                return layer
        raise KeyError(f"no layer named {name!r} in {self.name}")

    def via(self, lower: int) -> ViaRule:
        """The via rule from metal ``lower`` to metal ``lower + 1``."""
        for rule in self.vias:
            if rule.lower == lower:
                return rule
        raise KeyError(f"no via rule from metal{lower}")

    @property
    def num_layers(self) -> int:
        return len(self.layers)

    # ------------------------------------------------------------------
    # Derived quantities used by the area model
    # ------------------------------------------------------------------
    def channel_track_pitch(self, layer_indices: Sequence[int]) -> int:
        """The horizontal-track pitch a channel built on these layers needs.

        A channel's height is ``tracks * pitch``; with several candidate
        trunk layers the densest track grid is limited by the coarsest
        horizontal layer in use.
        """
        pitches = [
            self.layer(i).pitch for i in layer_indices if self.layer(i).is_horizontal
        ]
        if not pitches:
            raise ValueError("no horizontal layer among %r" % (layer_indices,))
        return max(pitches)

    def via_stack_size(self, lower: int, upper: int) -> int:
        """Largest via size on a stack from metal ``lower`` to ``upper``."""
        if lower >= upper:
            raise ValueError("need lower < upper")
        return max(self.via(i).size for i in range(lower, upper))

    # ------------------------------------------------------------------
    # Presets
    # ------------------------------------------------------------------
    @staticmethod
    def two_layer() -> "Technology":
        """metal1 (vertical) + metal2 (horizontal): the channel pair."""
        return Technology(
            name="generic-2L",
            layers=(
                Layer(1, "metal1", RoutingDirection.VERTICAL, pitch=8, width=4),
                Layer(2, "metal2", RoutingDirection.HORIZONTAL, pitch=8, width=4),
            ),
            vias=(ViaRule(1, 2, size=4),),
        )

    @staticmethod
    def four_layer() -> "Technology":
        """The paper's stack: m1/m2 for cells+channels, m3/m4 over-cell.

        metal3 runs vertical, metal4 horizontal; both have coarser pitch
        and wider lines than the lower pair, which is how the paper
        justifies routing long nets over the cells with shorter delays
        and why a 50 % track cut in a multi-layer channel is not a 50 %
        area cut.
        """
        return Technology(
            name="generic-4L",
            layers=(
                Layer(1, "metal1", RoutingDirection.VERTICAL, pitch=8, width=4,
                      sheet_resistance=0.09, cap_per_lambda=0.23),
                Layer(2, "metal2", RoutingDirection.HORIZONTAL, pitch=8, width=4,
                      sheet_resistance=0.07, cap_per_lambda=0.21),
                Layer(3, "metal3", RoutingDirection.VERTICAL, pitch=12, width=6,
                      sheet_resistance=0.04, cap_per_lambda=0.19),
                Layer(4, "metal4", RoutingDirection.HORIZONTAL, pitch=12, width=6,
                      sheet_resistance=0.03, cap_per_lambda=0.18),
            ),
            vias=(
                ViaRule(1, 2, size=4),
                ViaRule(2, 3, size=6),
                ViaRule(3, 4, size=8),
            ),
        )

    @staticmethod
    def six_layer() -> "Technology":
        """Two over-cell planes: metal3/metal4 plus metal5/metal6."""
        return Technology.with_overcell_planes(2)

    @staticmethod
    def with_overcell_planes(planes: int) -> "Technology":
        """The channel pair plus ``planes`` reserved over-cell pairs.

        Plane 0 reproduces :meth:`four_layer`'s metal3/metal4 exactly;
        each further pair follows the same process trend the paper
        leans on - coarser pitch, wider lines, thicker (lower sheet
        resistance) metal, larger vias.
        ``with_overcell_planes(1) == four_layer()`` up to the name.
        """
        if planes < 1:
            raise ValueError("need at least one over-cell plane")
        base = Technology.four_layer()
        layers = list(base.layers)
        vias = list(base.vias)
        for p in range(1, planes):
            v_idx, h_idx = plane_layer_indices(p)
            pitch = 12 + 4 * p
            width = pitch // 2
            scale = 0.75**p
            layers.append(
                Layer(v_idx, f"metal{v_idx}", RoutingDirection.VERTICAL,
                      pitch=pitch, width=width,
                      sheet_resistance=0.04 * scale,
                      cap_per_lambda=max(0.05, 0.19 - 0.01 * p)),
            )
            layers.append(
                Layer(h_idx, f"metal{h_idx}", RoutingDirection.HORIZONTAL,
                      pitch=pitch, width=width,
                      sheet_resistance=0.03 * scale,
                      cap_per_lambda=max(0.05, 0.18 - 0.01 * p)),
            )
            vias.append(ViaRule(v_idx - 1, v_idx, size=8 + 2 * (v_idx - 4)))
            vias.append(ViaRule(v_idx, h_idx, size=8 + 2 * (v_idx - 3)))
        return Technology(
            name=f"generic-{2 + 2 * planes}L",
            layers=tuple(layers),
            vias=tuple(vias),
        )

    # ------------------------------------------------------------------
    # The over-cell plane view
    # ------------------------------------------------------------------
    def layer_stack(self) -> LayerStack:
        """This technology's reserved-layer plane decomposition."""
        return LayerStack.from_technology(self)

    @property
    def num_overcell_planes(self) -> int:
        """How many complete reserved pairs sit above the channel pair."""
        return max(0, (self.num_layers - 2) // 2)

    def horizontal_layers(self) -> list[Layer]:
        return [l for l in self.layers if l.is_horizontal]

    def vertical_layers(self) -> list[Layer]:
        return [l for l in self.layers if l.is_vertical]


def ensure_overcell_planes(tech: Technology, planes: int) -> Technology:
    """``tech``, extended with extrapolated pairs if it is too short.

    A flow asked for ``planes`` over-cell planes keeps the caller's
    technology untouched when it already has them; otherwise the stack
    is grown by extrapolating the process trend from the topmost
    existing pair (pitch +4 lambda per pair, width = pitch/2, sheet
    resistance x0.75, via size +2 per level).
    """
    have = tech.num_overcell_planes
    if planes <= have:
        return tech
    layers = list(tech.layers)
    vias = list(tech.vias)
    # Drop a trailing unpaired layer from the pairing arithmetic: new
    # pairs are appended after the last *complete* pair.
    top = layers[2 + 2 * have - 1]
    for p in range(have, planes):
        v_idx, h_idx = plane_layer_indices(p)
        if v_idx <= tech.num_layers:
            raise ValueError(
                f"{tech.name} has an unpaired metal{v_idx}; cannot extend"
            )
        pitch = top.pitch + 4 * (p - have + 1)
        width = pitch // 2
        scale = 0.75 ** (p - have + 1)
        layers.append(
            Layer(v_idx, f"metal{v_idx}", RoutingDirection.VERTICAL,
                  pitch=pitch, width=width,
                  sheet_resistance=top.sheet_resistance * scale,
                  cap_per_lambda=top.cap_per_lambda),
        )
        layers.append(
            Layer(h_idx, f"metal{h_idx}", RoutingDirection.HORIZONTAL,
                  pitch=pitch, width=width,
                  sheet_resistance=top.sheet_resistance * scale,
                  cap_per_lambda=top.cap_per_lambda),
        )
        last_size = max(v.size for v in vias)
        vias.append(ViaRule(v_idx - 1, v_idx, size=last_size + 2))
        vias.append(ViaRule(v_idx, h_idx, size=last_size + 4))
    return Technology(
        name=f"{tech.name}+{planes - have}p",
        layers=tuple(layers),
        vias=tuple(vias),
    )
