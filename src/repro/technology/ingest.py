"""Stackup ingestion: hammer-style JSON documents into :class:`Technology`.

Real technology data arrives as *stackup* documents — per-metal
preferred direction, pitch, min-width and a piecewise width-dependent
spacing table, in physical units (see hammer's ``stackup.py``, the
model this follows).  This module quantizes such a document onto the
router's integer lambda grid and builds a validated
:class:`~repro.technology.rules.Technology` from it, synthesizing via
rules when the document omits them.

Two entry points:

* :func:`technology_from_stackup` — ingest a stackup document (dict).
* :func:`technology_from_any` — sniff the format and dispatch: accepts
  both ``repro-technology`` documents and stackup documents, so every
  consumer (CLI ``--tech``, the serve protocol) takes either.

The presets in :mod:`repro.technology.rules` are themselves expressed
as stackup documents (:func:`preset_stackup`) and ingested through this
path, so the data-driven model is the *only* way a technology comes to
exist — hard-coded and ingested stacks cannot drift apart.

A canonical serialized form for cache keys is
``repro.io.technology_to_dict`` over the ingested technology: two
documents describing the same rules (stackup or repro-technology,
any unit scale that quantizes identically) share one canonical dict and
therefore one serve cache digest.
"""

from __future__ import annotations

from typing import Any

from repro.technology.layers import Layer, RoutingDirection, WidthSpacingTuple
from repro.technology.rules import Technology, ViaRule

__all__ = [
    "STACKUP_FORMAT",
    "preset_stackup",
    "technology_from_any",
    "technology_from_stackup",
]

STACKUP_FORMAT = "repro-stackup"


def _quantize(value: Any, grid_unit: float, what: str) -> int:
    """``value`` in physical units onto the integer lambda grid."""
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise ValueError(f"stackup {what} must be a number, got {value!r}")
    lam = round(float(value) / grid_unit)
    if abs(lam * grid_unit - float(value)) > 1e-6 * max(1.0, abs(value)):
        raise ValueError(
            f"stackup {what} {value} is not a multiple of grid_unit {grid_unit}"
        )
    return int(lam)


def _spacing_table(
    rows: Any, grid_unit: float, name: str
) -> tuple[WidthSpacingTuple, ...]:
    if not isinstance(rows, list):
        raise ValueError(f"{name}: spacing table must be a list")
    table = []
    for row in rows:
        if not isinstance(row, dict):
            raise ValueError(f"{name}: spacing table rows must be objects")
        table.append(
            WidthSpacingTuple(
                width_at_least=_quantize(
                    row.get("width_at_least", 0), grid_unit,
                    f"{name} width_at_least",
                ),
                min_spacing=_quantize(
                    row["min_spacing"], grid_unit, f"{name} min_spacing"
                ),
            )
        )
    return tuple(table)


def technology_from_stackup(data: dict[str, Any]) -> Technology:
    """Build a :class:`Technology` from a stackup document.

    The document carries ``name``, an optional ``grid_unit`` (physical
    units per lambda; 1 means the document is already in lambda), a
    ``metals`` list — each with ``name``, ``index``, ``direction``,
    ``pitch``, optional ``min_width``, optional
    ``power_strap_widths_and_spacings`` (hammer's spelling of the
    piecewise spacing table) and optional electricals — and an optional
    ``vias`` list.  Missing per-metal drawn width defaults to half the
    pitch; missing via rules are synthesized with size equal to the
    wider of the two layers they join and cost 1.
    """
    if not isinstance(data, dict):
        raise ValueError("stackup document must be a JSON object")
    if "metals" not in data:
        raise ValueError("stackup document requires a 'metals' list")
    grid_unit = data.get("grid_unit", 1.0)
    if not isinstance(grid_unit, (int, float)) or grid_unit <= 0:
        raise ValueError(f"grid_unit must be a positive number, got {grid_unit!r}")
    grid_unit = float(grid_unit)
    metals = data["metals"]
    if not isinstance(metals, list) or not metals:
        raise ValueError("'metals' must be a non-empty list")
    layers = []
    for pos, metal in enumerate(sorted(metals, key=lambda m: m.get("index", 0))):
        if not isinstance(metal, dict):
            raise ValueError("each metal must be a JSON object")
        name = metal.get("name", f"metal{pos + 1}")
        index = metal.get("index", pos + 1)
        direction = metal.get("direction")
        if direction not in ("horizontal", "vertical"):
            raise ValueError(
                f"{name}: direction must be 'horizontal' or 'vertical', "
                f"got {direction!r}"
            )
        pitch = _quantize(metal["pitch"], grid_unit, f"{name} pitch")
        width = (
            _quantize(metal["width"], grid_unit, f"{name} width")
            if "width" in metal
            else pitch // 2
        )
        min_width = (
            _quantize(metal["min_width"], grid_unit, f"{name} min_width")
            if metal.get("min_width") is not None
            else None
        )
        table = _spacing_table(
            metal.get("power_strap_widths_and_spacings", []), grid_unit, name
        )
        layers.append(
            Layer(
                index=index,
                name=name,
                direction=RoutingDirection(direction),
                pitch=pitch,
                width=width,
                sheet_resistance=metal.get("sheet_resistance", 0.07),
                cap_per_lambda=metal.get("cap_per_lambda", 0.20),
                min_width=min_width,
                spacing_table=table,
            )
        )
    vias = _ingest_vias(data.get("vias"), layers, grid_unit)
    return Technology(
        name=str(data.get("name", "stackup")),
        layers=tuple(layers),
        vias=tuple(vias),
    )


def _ingest_vias(
    via_docs: Any, layers: list[Layer], grid_unit: float
) -> list[ViaRule]:
    declared: dict[int, ViaRule] = {}
    if via_docs is not None:
        if not isinstance(via_docs, list):
            raise ValueError("'vias' must be a list")
        for vd in via_docs:
            rule = ViaRule(
                lower=vd["lower"],
                upper=vd["upper"],
                size=_quantize(vd["size"], grid_unit, "via size"),
                cost=float(vd.get("cost", 1.0)),
            )
            declared[rule.lower] = rule
    vias = []
    for lower in range(1, len(layers)):
        if lower in declared:
            vias.append(declared[lower])
        else:
            # Synthesized rule: the cut must land on both layers, so
            # size follows the wider of the pair.
            size = max(layers[lower - 1].width, layers[lower].width)
            vias.append(ViaRule(lower=lower, upper=lower + 1, size=size))
    return vias


def technology_from_any(data: dict[str, Any]) -> Technology:
    """Dispatch on document shape: repro-technology or stackup.

    ``repro-technology`` documents go through
    :func:`repro.io.technology_from_dict`; anything carrying a
    ``metals`` list is treated as a stackup document.
    """
    if not isinstance(data, dict):
        raise ValueError("technology document must be a JSON object")
    if data.get("format") == "repro-technology":
        from repro.io import technology_from_dict

        return technology_from_dict(data)
    if data.get("format") == STACKUP_FORMAT or "metals" in data:
        return technology_from_stackup(data)
    raise ValueError(
        "unrecognized technology document: expected format "
        f"'repro-technology' or '{STACKUP_FORMAT}' (a 'metals' list)"
    )


# ----------------------------------------------------------------------
# The presets, as stackup data
# ----------------------------------------------------------------------
def preset_stackup(planes: int) -> dict[str, Any]:
    """The generic preset stack as a stackup document.

    ``planes`` over-cell pairs above the metal1/metal2 channel pair.
    Plane 0 is the paper's metal3/metal4; each further pair follows the
    process trend the paper leans on — coarser pitch, wider lines,
    thicker (lower sheet resistance) metal, larger vias.  Ingesting
    this document reproduces the historical hard-coded presets
    byte-for-byte, which is what pins the seed route digests.
    """
    if planes < 1:
        raise ValueError("need at least one over-cell plane")
    metals: list[dict[str, Any]] = [
        {"name": "metal1", "index": 1, "direction": "vertical",
         "pitch": 8, "width": 4,
         "sheet_resistance": 0.09, "cap_per_lambda": 0.23},
        {"name": "metal2", "index": 2, "direction": "horizontal",
         "pitch": 8, "width": 4,
         "sheet_resistance": 0.07, "cap_per_lambda": 0.21},
        {"name": "metal3", "index": 3, "direction": "vertical",
         "pitch": 12, "width": 6,
         "sheet_resistance": 0.04, "cap_per_lambda": 0.19},
        {"name": "metal4", "index": 4, "direction": "horizontal",
         "pitch": 12, "width": 6,
         "sheet_resistance": 0.03, "cap_per_lambda": 0.18},
    ]
    vias: list[dict[str, Any]] = [
        {"lower": 1, "upper": 2, "size": 4},
        {"lower": 2, "upper": 3, "size": 6},
        {"lower": 3, "upper": 4, "size": 8},
    ]
    for p in range(1, planes):
        v_idx, h_idx = 3 + 2 * p, 4 + 2 * p
        pitch = 12 + 4 * p
        width = pitch // 2
        scale = 0.75**p
        metals.append(
            {"name": f"metal{v_idx}", "index": v_idx, "direction": "vertical",
             "pitch": pitch, "width": width,
             "sheet_resistance": 0.04 * scale,
             "cap_per_lambda": max(0.05, 0.19 - 0.01 * p)}
        )
        metals.append(
            {"name": f"metal{h_idx}", "index": h_idx,
             "direction": "horizontal", "pitch": pitch, "width": width,
             "sheet_resistance": 0.03 * scale,
             "cap_per_lambda": max(0.05, 0.18 - 0.01 * p)}
        )
        vias.append({"lower": v_idx - 1, "upper": v_idx, "size": 8 + 2 * (v_idx - 4)})
        vias.append({"lower": v_idx, "upper": h_idx, "size": 8 + 2 * (v_idx - 3)})
    return {
        "format": STACKUP_FORMAT,
        "name": f"generic-{2 + 2 * planes}L",
        "grid_unit": 1,
        "metals": metals,
        "vias": vias,
    }
