"""Reserved-layer routing planes: the generalized over-cell stack.

The paper routes level B on exactly one reserved-layer pair
(metal3 vertical / metal4 horizontal).  Modern stacks offer several
such pairs, so the router is parameterized over a :class:`LayerStack`:
the channel pair (metal1/metal2) plus an ordered sequence of
:class:`RoutingPlane` objects, one per over-cell pair.  Plane ``p``
owns metal ``3 + 2p`` (vertical) and metal ``4 + 2p`` (horizontal);
each plane keeps its own pitch, direction assignment and resistance
profile via the :class:`~repro.technology.layers.Layer` objects it
wraps.

A net assigned to plane ``p > 0`` pays for its altitude: every pin
connection must climb ``2p`` extra via levels, and that through-stack
physically occupies the corner cell on every lower plane.  Both costs
are exposed here (:meth:`RoutingPlane.stack_via_depth`,
:meth:`LayerStack.via_depth`) so the section-3.2 cost function and the
plane-assignment pass price them consistently.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.technology.layers import Layer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.technology.rules import Technology

__all__ = ["LayerStack", "RoutingPlane", "plane_layer_indices"]


def plane_layer_indices(plane: int) -> tuple[int, int]:
    """(vertical, horizontal) metal indices of over-cell plane ``plane``.

    Plane 0 is the paper's metal3/metal4 pair; each further plane sits
    one reserved pair higher.
    """
    if plane < 0:
        raise ValueError(f"plane index must be >= 0, got {plane}")
    return (3 + 2 * plane, 4 + 2 * plane)


@dataclass(frozen=True)
class RoutingPlane:
    """One reserved-layer pair of the over-cell stack.

    ``index`` is the 0-based plane number (plane 0 = metal3/metal4);
    ``vertical``/``horizontal`` are the two layers the plane routes on
    under the reserved-layer model.
    """

    index: int
    vertical: Layer
    horizontal: Layer

    def __post_init__(self) -> None:
        want_v, want_h = plane_layer_indices(self.index)
        if (self.vertical.index, self.horizontal.index) != (want_v, want_h):
            raise ValueError(
                f"plane {self.index} must pair metal{want_v}/metal{want_h}, "
                f"got metal{self.vertical.index}/metal{self.horizontal.index}"
            )
        if not self.vertical.is_vertical:
            raise ValueError(f"{self.vertical.name} must route vertically")
        if not self.horizontal.is_horizontal:
            raise ValueError(f"{self.horizontal.name} must route horizontally")

    @property
    def v_pitch(self) -> int:
        return self.vertical.pitch

    @property
    def h_pitch(self) -> int:
        return self.horizontal.pitch

    @property
    def layer_indices(self) -> tuple[int, int]:
        """(vertical, horizontal) metal indices."""
        return (self.vertical.index, self.horizontal.index)

    @property
    def label(self) -> str:
        """Human-readable pair label, e.g. ``"metal3/metal4"``."""
        return f"{self.vertical.name}/{self.horizontal.name}"

    def stack_via_depth(self) -> int:
        """Extra via levels (vs plane 0) a terminal stack must climb."""
        return 2 * self.index


@dataclass(frozen=True)
class LayerStack:
    """The channel pair plus the ordered over-cell planes.

    Built from a :class:`~repro.technology.rules.Technology` via
    :meth:`from_technology`; the technology's own validation guarantees
    a contiguous 1-based stack, this class adds the reserved-layer
    pairing on top (odd layers vertical, even layers horizontal).
    """

    channel: tuple[Layer, Layer]
    planes: tuple[RoutingPlane, ...]

    def __post_init__(self) -> None:
        seen: set[str] = set()
        for layer in self.all_layers():
            if layer.pitch <= 0:
                raise ValueError(
                    f"{layer.name}: pitch must be positive, got {layer.pitch}"
                )
            if layer.name in seen:
                raise ValueError(f"duplicate layer name {layer.name!r} in stack")
            seen.add(layer.name)

    @staticmethod
    def from_technology(tech: "Technology") -> "LayerStack":
        """Pair layers 3, 4, 5, ... into over-cell planes.

        A trailing unpaired layer (odd ``num_layers``) is ignored: a
        lone vertical layer with no horizontal partner cannot carry a
        reserved-layer plane.
        """
        if tech.num_layers < 2:
            raise ValueError("a layer stack needs at least the channel pair")
        channel = (tech.layer(1), tech.layer(2))
        planes = []
        for p in range((tech.num_layers - 2) // 2):
            v_idx, h_idx = plane_layer_indices(p)
            planes.append(
                RoutingPlane(p, tech.layer(v_idx), tech.layer(h_idx))
            )
        return LayerStack(channel=channel, planes=tuple(planes))

    def all_layers(self) -> list[Layer]:
        """Every layer in the stack, channel pair first."""
        layers = list(self.channel)
        for plane in self.planes:
            layers.append(plane.vertical)
            layers.append(plane.horizontal)
        return layers

    @property
    def num_planes(self) -> int:
        return len(self.planes)

    def plane(self, index: int) -> RoutingPlane:
        if not 0 <= index < len(self.planes):
            raise IndexError(
                f"no over-cell plane {index} (stack has {len(self.planes)})"
            )
        return self.planes[index]

    def plane_of_layer(self, layer_index: int) -> RoutingPlane:
        """The plane owning metal ``layer_index`` (3 and up)."""
        if layer_index < 3:
            raise KeyError(f"metal{layer_index} belongs to the channel pair")
        return self.plane((layer_index - 3) // 2)

    def labels(self) -> list[str]:
        """Pair labels for every plane, lowest first."""
        return [p.label for p in self.planes]

    def via_depth(self, plane_index: int) -> int:
        """Extra via levels a plane's terminal stacks pay vs plane 0."""
        return self.plane(plane_index).stack_via_depth()
