"""Metal layer stacks and design rules.

The paper's area argument hinges on a process fact: as metal layers are
added, linewidths and via sizes grow, so halving the *track count* of a
channel does not halve its *area*.  :class:`Technology` captures exactly
the parameters that argument needs - per-layer routing pitch and width,
and via sizes between adjacent layers - and provides the two presets
used throughout the reproduction.

Since PR 10 the model is data-driven end to end: technologies ingest
from hammer-style stackup JSON (:mod:`repro.technology.ingest`), layers
carry piecewise width-dependent spacing tables
(:class:`WidthSpacingTuple`), nets carry a width class
(:class:`NetClass`) that widens their track footprint, and via rules
carry per-level costs read by the via-minimization objective.
"""

from repro.technology.ingest import (
    STACKUP_FORMAT,
    preset_stackup,
    technology_from_any,
    technology_from_stackup,
)
from repro.technology.layers import Layer, RoutingDirection, WidthSpacingTuple
from repro.technology.rules import (
    NetClass,
    Technology,
    ViaRule,
    ensure_overcell_planes,
)
from repro.technology.stack import LayerStack, RoutingPlane, plane_layer_indices

__all__ = [
    "Layer",
    "LayerStack",
    "NetClass",
    "RoutingDirection",
    "RoutingPlane",
    "STACKUP_FORMAT",
    "Technology",
    "ViaRule",
    "WidthSpacingTuple",
    "ensure_overcell_planes",
    "plane_layer_indices",
    "preset_stackup",
    "technology_from_any",
    "technology_from_stackup",
]
