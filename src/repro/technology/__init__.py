"""Metal layer stacks and design rules.

The paper's area argument hinges on a process fact: as metal layers are
added, linewidths and via sizes grow, so halving the *track count* of a
channel does not halve its *area*.  :class:`Technology` captures exactly
the parameters that argument needs - per-layer routing pitch and width,
and via sizes between adjacent layers - and provides the two presets
used throughout the reproduction.
"""

from repro.technology.layers import Layer, RoutingDirection
from repro.technology.rules import Technology, ViaRule, ensure_overcell_planes
from repro.technology.stack import LayerStack, RoutingPlane, plane_layer_indices

__all__ = [
    "Layer",
    "LayerStack",
    "RoutingDirection",
    "RoutingPlane",
    "Technology",
    "ViaRule",
    "ensure_overcell_planes",
    "plane_layer_indices",
]
