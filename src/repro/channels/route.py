"""Channel routing results: geometry, metrics and validation.

Both detailed channel routers emit a :class:`ChannelRoute`.  Rows are
indexed top to bottom: row ``-1`` is the top channel boundary, rows
``0 .. tracks-1`` are routing tracks, row ``tracks`` is the bottom
boundary.  Horizontal trunks run on the horizontal layer (metal2),
vertical jogs on the vertical layer (metal1); wires of different nets
may therefore cross but never overlap on the same layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.channels.problem import ChannelProblem, ChannelRoutingError

TOP_ROW = -1


@dataclass(frozen=True)
class HorizontalSpan:
    """A trunk piece: net ``net`` on track ``track``, columns ``[c1, c2]``.

    ``layer`` selects among the available *horizontal* layers on that
    track: two-layer routing always uses layer 0; the HVH three-layer
    router stacks a second trunk per physical track on layer 1.
    """

    net: int
    track: int
    c1: int
    c2: int
    layer: int = 0

    def __post_init__(self) -> None:
        if self.c1 > self.c2:
            raise ValueError("span c1 > c2")
        if self.layer < 0:
            raise ValueError("layer must be >= 0")

    @property
    def width(self) -> int:
        return self.c2 - self.c1


@dataclass(frozen=True)
class VerticalJog:
    """A vertical wire at ``column`` between rows ``r1 < r2``.

    Boundary rows (``-1`` top, ``tracks`` bottom) represent pin
    connections on the channel edges.
    """

    net: int
    column: int
    r1: int
    r2: int

    def __post_init__(self) -> None:
        if self.r1 >= self.r2:
            raise ValueError("jog needs r1 < r2")


@dataclass
class ChannelRoute:
    """A completed channel routing."""

    tracks: int
    length: int
    spans: list[HorizontalSpan] = field(default_factory=list)
    jogs: list[VerticalJog] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def height(self, track_pitch: int) -> int:
        """Channel height: tracks plus boundary clearances."""
        return (self.tracks + 1) * track_pitch

    def row_y(self, row: int, track_pitch: int) -> int:
        """Vertical position of a row, top boundary at 0, growing down."""
        return (row + 1) * track_pitch

    def wire_length(self, track_pitch: int, column_pitch: int) -> int:
        """Total routed wire length in lambda."""
        horizontal = sum(s.width for s in self.spans) * column_pitch
        vertical = sum(
            self.row_y(j.r2, track_pitch) - self.row_y(j.r1, track_pitch)
            for j in self.jogs
        )
        return horizontal + vertical

    def via_count(self) -> int:
        """Layer-change vias.

        Convention: a vertical jog places a via on every track it
        touches where its own net has a trunk covering that column -
        its endpoints, plus same-net trunks it passes through (which is
        how a single pin vertical connects several doglegged trunk
        pieces of one net).
        """
        span_at: dict[tuple[int, int], list[HorizontalSpan]] = {}
        for span in self.spans:
            span_at.setdefault((span.net, span.track), []).append(span)
        vias = 0
        for jog in self.jogs:
            lo = max(0, jog.r1)
            hi = min(self.tracks - 1, jog.r2)
            for row in range(lo, hi + 1):
                for span in span_at.get((jog.net, row), ()):
                    if span.c1 <= jog.column <= span.c2:
                        vias += 1
                        break
        return vias

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def check(self, problem: ChannelProblem) -> None:
        """Verify the routing solves ``problem``; raise on any violation.

        Checks: geometric legality (no same-layer overlaps), every pin
        connected, every jog endpoint landed on metal, and per-net
        connectivity (single component).  Raises with the first
        violation found; :meth:`violations` reports all of them.
        """
        found = self.violations(problem)
        if found:
            raise ChannelRoutingError(found[0])

    def violations(self, problem: ChannelProblem) -> list[str]:
        """Every channel-legality violation, as human-readable messages.

        The non-raising face of :meth:`check`, used by the
        ``repro.check`` verification engine (rule ``chan.route``).
        """
        found: list[str] = []
        self._check_span_overlaps(found)
        self._check_jog_overlaps(found)
        self._check_pins(problem, found)
        self._check_connectivity(problem, found)
        return found

    def _check_span_overlaps(self, found: list[str]) -> None:
        by_track: dict[tuple[int, int], list[HorizontalSpan]] = {}
        for span in self.spans:
            if not 0 <= span.track < self.tracks:
                found.append(f"span {span} off-track")
            if not 0 <= span.c1 <= span.c2 < self.length:
                found.append(f"span {span} outside channel")
            by_track.setdefault((span.track, span.layer), []).append(span)
        for track, spans in by_track.items():
            spans.sort(key=lambda s: s.c1)
            for a, b in zip(spans, spans[1:]):
                if b.c1 <= a.c2 and a.net != b.net:
                    found.append(
                        f"track {track}: nets {a.net} and {b.net} overlap"
                    )

    def _check_jog_overlaps(self, found: list[str]) -> None:
        by_col: dict[int, list[VerticalJog]] = {}
        for jog in self.jogs:
            if not 0 <= jog.column < self.length:
                found.append(f"jog {jog} outside channel")
            if jog.r1 < TOP_ROW or jog.r2 > self.tracks:
                found.append(f"jog {jog} outside rows")
            by_col.setdefault(jog.column, []).append(jog)
        for col, jogs in by_col.items():
            jogs.sort(key=lambda j: j.r1)
            for a, b in zip(jogs, jogs[1:]):
                if b.r1 < a.r2 and a.net != b.net:
                    found.append(
                        f"column {col}: jogs of nets {a.net} and {b.net} overlap"
                    )
                if b.r1 <= a.r2 and a.net != b.net and b.r1 == a.r2:
                    found.append(
                        f"column {col}: jogs of nets {a.net} and {b.net} touch"
                    )

    def _check_pins(self, problem: ChannelProblem, found: list[str]) -> None:
        for col in range(problem.length):
            top_net = problem.top[col]
            if top_net and problem.pin_count(top_net) < 2:
                top_net = 0  # single-pin nets need no wiring
            if top_net and not any(
                j.net == top_net and j.column == col and j.r1 == TOP_ROW
                for j in self.jogs
            ):
                found.append(
                    f"top pin of net {top_net} at column {col} unconnected"
                )
            bottom_net = problem.bottom[col]
            if bottom_net and problem.pin_count(bottom_net) < 2:
                bottom_net = 0
            if bottom_net and not any(
                j.net == bottom_net and j.column == col and j.r2 == self.tracks
                for j in self.jogs
            ):
                found.append(
                    f"bottom pin of net {bottom_net} at column {col} unconnected"
                )

    def _check_connectivity(
        self, problem: ChannelProblem, found: list[str]
    ) -> None:
        for net in problem.nets():
            self._check_net_connectivity(net, problem, found)

    def _check_net_connectivity(
        self, net: int, problem: ChannelProblem, found: list[str]
    ) -> None:
        spans = [s for s in self.spans if s.net == net]
        jogs = [j for j in self.jogs if j.net == net]
        pins: list[tuple[str, int]] = []
        for col in range(problem.length):
            if problem.top[col] == net:
                pins.append(("T", col))
            if problem.bottom[col] == net:
                pins.append(("B", col))
        # Union-find over elements: spans, jogs, pins.
        elements: list[object] = list(spans) + list(jogs) + list(pins)
        index = {id(e): i for i, e in enumerate(elements)}
        parent = list(range(len(elements)))

        def find(i: int) -> int:
            while parent[i] != i:
                parent[i] = parent[parent[i]]
                i = parent[i]
            return i

        def union(a: object, b: object) -> None:
            ra, rb = find(index[id(a)]), find(index[id(b)])
            parent[ra] = rb

        for jog in jogs:
            for span in spans:
                if span.c1 <= jog.column <= span.c2 and jog.r1 <= span.track <= jog.r2:
                    union(jog, span)
            for pin in pins:
                side, col = pin
                if col != jog.column:
                    continue
                if side == "T" and jog.r1 == TOP_ROW:
                    union(jog, pin)
                if side == "B" and jog.r2 == self.tracks:
                    union(jog, pin)
            # Jog endpoints on tracks must land on this net's metal.
            for row in (jog.r1, jog.r2):
                if 0 <= row < self.tracks and not any(
                    s.track == row and s.c1 <= jog.column <= s.c2 for s in spans
                ):
                    found.append(
                        f"net {net}: jog endpoint at ({jog.column},{row}) "
                        "lands on no trunk"
                    )
        # Jogs touching at a shared row/column connect (same-net merge).
        for i, a in enumerate(jogs):
            for b in jogs[i + 1 :]:
                if a.column == b.column and a.r1 <= b.r2 and b.r1 <= a.r2:
                    union(a, b)
        # Same-track trunks that overlap or abut are one piece of metal.
        for i, a in enumerate(spans):
            for b in spans[i + 1 :]:
                if a.track == b.track and a.c1 <= b.c2 and b.c1 <= a.c2:
                    union(a, b)
        if not elements:
            return
        roots = {find(index[id(e)]) for e in list(pins) + list(spans)}
        if len(roots) > 1:
            found.append(f"net {net} is disconnected")

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ChannelRoute({self.tracks} tracks x {self.length} cols, "
            f"{len(self.spans)} spans, {len(self.jogs)} jogs)"
        )
