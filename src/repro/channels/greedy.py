"""A greedy channel router in the style of Rivest and Fiduccia.

The paper's reference [5].  The router sweeps the channel column by
column, maintaining the set of tracks each net currently occupies:

1. connect the column's top/bottom pins to the nearest track that is
   empty or already carries the pin's net (widening the channel with a
   fresh track when the two pin connections would collide);
2. collapse split nets - nets occupying several tracks - with vertical
   jogs wherever the column has vertical space, keeping the track
   nearest the net's next pin;
3. after the last column, extend the channel to the right until every
   split net has collapsed.

Step 4's steady jogs - moving an unsplit net toward its next pin's
side where a column has room - are implemented and on by default
(about 7 % fewer tracks on random channels); the original's
range-reduction refinement for *split* nets is still omitted.  Like
the original, the router *always* completes.

Layer/via conventions match :class:`repro.channels.route.ChannelRoute`:
trunks horizontal on metal2, jogs vertical on metal1, and a jog places
a via wherever it touches a trunk of its own net.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import instrument
from repro.instrument.names import (
    GREEDY_COLUMNS,
    GREEDY_TRACKS_ADDED,
    SPAN_CHANNEL_GREEDY,
)
from repro.geometry import Interval
from repro.channels.problem import ChannelProblem, ChannelRoutingError
from repro.channels.route import ChannelRoute, HorizontalSpan, VerticalJog

TOP = "TOP"
BOT = "BOT"
RowRef = str | int  # TOP / BOT sentinel, or a persistent track id


@dataclass
class _RawJog:
    column: int
    net: int
    a: RowRef  # upper end (TOP or a track id)
    b: RowRef  # lower end (BOT or a track id)


class GreedyChannelRouter:
    """Always-completing greedy channel router.

    ``initial_tracks`` overrides the starting width (default: channel
    density).  ``max_extension_columns`` caps the right-side extension
    used to collapse leftover split nets (a generous default; hitting
    it raises :class:`ChannelRoutingError`).
    """

    def __init__(
        self,
        initial_tracks: int | None = None,
        max_extension_columns: int | None = None,
        steady_jogs: bool = True,
        min_jog_length: int = 2,
    ) -> None:
        self.initial_tracks = initial_tracks
        self.max_extension_columns = max_extension_columns
        self.steady_jogs = steady_jogs
        self.min_jog_length = min_jog_length

    # ------------------------------------------------------------------
    def route(self, problem: ChannelProblem) -> ChannelRoute:
        """Route ``problem``; never fails on well-formed input."""
        with instrument.span(SPAN_CHANNEL_GREEDY):
            state = _State(problem, self.initial_tracks)
            if not state.has_pins:
                return ChannelRoute(tracks=0, length=problem.length)
            initial_width = len(state.track_ids)
            for col in range(problem.length):
                state.begin_column(col)
                state.connect_pins(col)
                state.collapse(col)
                if self.steady_jogs:
                    state.steady_jogs(col, self.min_jog_length)
            extension_cap = self.max_extension_columns
            if extension_cap is None:
                extension_cap = 2 * len(state.track_ids) + problem.length + 16
            col = problem.length
            while state.any_split():
                if col - problem.length >= extension_cap:
                    raise ChannelRoutingError(
                        "could not collapse split nets within extension cap"
                    )
                state.begin_column(col)
                state.collapse(col)
                col += 1
            inst = instrument.active()
            if inst.enabled:
                inst.count(GREEDY_COLUMNS, max(problem.length, col))
                inst.count(GREEDY_TRACKS_ADDED, state._next_id - initial_width)
            return state.finish(max(problem.length, col))


class _State:
    """Mutable routing state for one greedy run."""

    def __init__(self, problem: ChannelProblem, initial_tracks: int | None):
        self.problem = problem
        self.has_pins = any(problem.top) or any(problem.bottom)
        width = initial_tracks if initial_tracks is not None else problem.density()
        width = max(1, width) if self.has_pins else 0
        self._next_id = 0
        self.track_ids: list[int] = []
        self.occupant: dict[int, int] = {}
        self.free_from: dict[int, int] = {}
        self.open_start: dict[int, int] = {}
        self.net_rows: dict[int, list[int]] = {}
        self.spans: list[tuple[int, int, int, int]] = []  # net, id, c1, c2
        self.jogs: list[_RawJog] = []
        for _ in range(width):
            self._insert_track(len(self.track_ids), column=0)
        # Remaining pins per net, ascending by column.
        self.pins_left: dict[int, list[tuple[int, str]]] = {}
        for c in range(problem.length):
            if problem.top[c]:
                self.pins_left.setdefault(problem.top[c], []).append((c, "T"))
            if problem.bottom[c]:
                self.pins_left.setdefault(problem.bottom[c], []).append((c, "B"))
        for pins in self.pins_left.values():
            pins.sort()
        self.pin_counts: dict[int, int] = {
            net: len(pins) for net, pins in self.pins_left.items()
        }
        self._used: list[tuple[Interval, int]] = []

    # -- track bookkeeping ---------------------------------------------
    def _insert_track(self, pos: int, column: int) -> int:
        tid = self._next_id
        self._next_id += 1
        self.track_ids.insert(pos, tid)
        self.occupant[tid] = 0
        self.free_from[tid] = column
        return tid

    def row_of(self, tid: int) -> int:
        return self.track_ids.index(tid)

    def usable(self, tid: int, net: int, col: int) -> bool:
        occ = self.occupant[tid]
        return occ == net or (occ == 0 and self.free_from[tid] <= col)

    def assign(self, tid: int, net: int, col: int) -> None:
        if self.occupant[tid] == net:
            return
        if self.occupant[tid] != 0:
            raise AssertionError("assigning over a foreign net")
        self.occupant[tid] = net
        self.open_start[tid] = col
        self.net_rows.setdefault(net, []).append(tid)

    def release(self, tid: int, net: int, col: int) -> None:
        self.spans.append((net, tid, self.open_start[tid], col))
        self.occupant[tid] = 0
        self.free_from[tid] = col + 1
        self.net_rows[net].remove(tid)

    def any_split(self) -> bool:
        return any(len(rows) >= 2 for rows in self.net_rows.values())

    # -- column phases ---------------------------------------------------
    def begin_column(self, col: int) -> None:
        self._used = []

    def _can_place(self, iv: Interval, net: int) -> bool:
        return all(
            other_net == net or not iv.overlaps(other)
            for other, other_net in self._used
        )

    def _place(self, iv: Interval, net: int) -> None:
        self._used.append((iv, net))

    def connect_pins(self, col: int) -> None:
        problem = self.problem
        t_net = problem.top[col]
        b_net = problem.bottom[col]
        # Single-pin nets have nothing to connect to: drop them here.
        if t_net and self.pin_counts.get(t_net, 0) < 2:
            self._consume_pin(t_net, col, "T")
            t_net = 0
        if b_net and self.pin_counts.get(b_net, 0) < 2:
            self._consume_pin(b_net, col, "B")
            b_net = 0
        if not t_net and not b_net:
            return
        self._ensure_feasible(col, t_net, b_net)
        bottom_row = len(self.track_ids)
        if t_net and t_net == b_net:
            tid = self._pick_row_same_net(t_net, col)
            if self.occupant[tid] != t_net:
                self.assign(tid, t_net, col)
            self.jogs.append(_RawJog(col, t_net, TOP, tid))
            self.jogs.append(_RawJog(col, t_net, tid, BOT))
            self._place(Interval(-1, bottom_row), t_net)
            self._consume_pin(t_net, col, "T")
            self._consume_pin(t_net, col, "B")
            # The full-height jog crosses (and connects) every other
            # row of this net: release all but the chosen one.
            for extra in [r for r in self.net_rows.get(t_net, []) if r != tid]:
                self.release(extra, t_net, col)
        else:
            if t_net:
                idx = self._first_usable_from_top(t_net, col)
                tid = self.track_ids[idx]
                if self.occupant[tid] != t_net:
                    self.assign(tid, t_net, col)
                self.jogs.append(_RawJog(col, t_net, TOP, tid))
                self._place(Interval(-1, idx), t_net)
                self._consume_pin(t_net, col, "T")
            if b_net:
                idx = self._first_usable_from_bottom(b_net, col)
                tid = self.track_ids[idx]
                if self.occupant[tid] != b_net:
                    self.assign(tid, b_net, col)
                self.jogs.append(_RawJog(col, b_net, tid, BOT))
                self._place(Interval(idx, bottom_row), b_net)
                self._consume_pin(b_net, col, "B")
        for net in {t_net, b_net} - {0}:
            self._maybe_finish(net, col)

    def _ensure_feasible(self, col: int, t_net: int, b_net: int) -> None:
        """Widen the channel until the column's pins can both connect."""
        for _ in range(8):
            if t_net and b_net and t_net != b_net:
                r_t = self._first_usable_from_top(t_net, col, missing_ok=True)
                r_b = self._first_usable_from_bottom(b_net, col, missing_ok=True)
                if r_t is not None and r_b is not None and r_t < r_b:
                    return
                if r_b is None and r_t is not None:
                    self._insert_track(len(self.track_ids), col)
                else:
                    self._insert_track(0, col)
                continue
            net = t_net or b_net
            if net and all(
                not self.usable(tid, net, col) for tid in self.track_ids
            ):
                self._insert_track(len(self.track_ids) // 2, col)
                continue
            return
        raise ChannelRoutingError(f"column {col}: widening did not converge")

    def _first_usable_from_top(
        self, net: int, col: int, missing_ok: bool = False
    ) -> int | None:
        for idx, tid in enumerate(self.track_ids):
            if self.usable(tid, net, col):
                return idx
        if missing_ok:
            return None
        raise ChannelRoutingError(f"no usable track for net {net} at column {col}")

    def _first_usable_from_bottom(
        self, net: int, col: int, missing_ok: bool = False
    ) -> int | None:
        for idx in range(len(self.track_ids) - 1, -1, -1):
            if self.usable(self.track_ids[idx], net, col):
                return idx
        if missing_ok:
            return None
        raise ChannelRoutingError(f"no usable track for net {net} at column {col}")

    def _pick_row_same_net(self, net: int, col: int) -> int:
        rows = self.net_rows.get(net, [])
        if rows:
            return min(rows, key=self.row_of)
        idx = self._first_usable_from_top(net, col)
        return self.track_ids[idx]

    def _consume_pin(self, net: int, col: int, side: str) -> None:
        try:
            self.pins_left[net].remove((col, side))
        except (KeyError, ValueError):
            raise AssertionError(
                f"pin ({col},{side}) of net {net} consumed twice"
            ) from None

    def _next_pin_side(self, net: int, col: int) -> str | None:
        pins = self.pins_left.get(net, [])
        return pins[0][1] if pins else None

    def _maybe_finish(self, net: int, col: int) -> None:
        """Release a fully connected, unsplit net's track."""
        rows = self.net_rows.get(net, [])
        if not self.pins_left.get(net) and len(rows) == 1:
            self.release(rows[0], net, col)

    def collapse(self, col: int) -> None:
        """Join split nets with vertical jogs where the column allows."""
        for net in sorted(self.net_rows):
            progressed = True
            while progressed and len(self.net_rows[net]) >= 2:
                progressed = False
                rows = sorted(self.net_rows[net], key=self.row_of)
                for upper, lower in zip(rows, rows[1:]):
                    iv = Interval(self.row_of(upper), self.row_of(lower))
                    if not self._can_place(iv, net):
                        continue
                    self.jogs.append(_RawJog(col, net, upper, lower))
                    self._place(iv, net)
                    side = self._next_pin_side(net, col)
                    drop = lower if side == "T" else upper if side == "B" else lower
                    self.release(drop, net, col)
                    progressed = True
                    break
            self._maybe_finish(net, col)

    def steady_jogs(self, col: int, min_jog: int) -> None:
        """Step 4 of the original greedy scheme: move unsplit nets
        toward the side of their next pin where the column has room.

        Jogs shorter than ``min_jog`` tracks are skipped (they would
        trade a via pair for little positional gain).
        """
        for net in sorted(self.net_rows):
            rows = self.net_rows[net]
            if len(rows) != 1 or not self.pins_left.get(net):
                continue
            side = self._next_pin_side(net, col)
            if side is None:
                continue
            tid = rows[0]
            row = self.row_of(tid)
            target: int | None = None
            if side == "T":
                for idx in range(0, row):  # topmost suitable row
                    cand = self.track_ids[idx]
                    if self.occupant[cand] == 0 and self.usable(cand, net, col):
                        target = idx
                        break
            else:
                for idx in range(len(self.track_ids) - 1, row, -1):
                    cand = self.track_ids[idx]
                    if self.occupant[cand] == 0 and self.usable(cand, net, col):
                        target = idx
                        break
            if target is None or abs(target - row) < min_jog:
                continue
            iv = Interval(min(row, target), max(row, target))
            if not self._can_place(iv, net):
                continue
            new_tid = self.track_ids[target]
            upper, lower = (new_tid, tid) if target < row else (tid, new_tid)
            self.jogs.append(_RawJog(col, net, upper, lower))
            self._place(iv, net)
            self.assign(new_tid, net, col)
            self.release(tid, net, col)

    # -- finalisation ------------------------------------------------------
    def finish(self, length: int) -> ChannelRoute:
        leftover = [net for net, rows in self.net_rows.items() if rows]
        if leftover:
            raise ChannelRoutingError(f"nets left open: {leftover}")
        row_index = {tid: idx for idx, tid in enumerate(self.track_ids)}
        tracks = len(self.track_ids)
        spans = [
            HorizontalSpan(net=net, track=row_index[tid], c1=c1, c2=c2)
            for net, tid, c1, c2 in self.spans
        ]
        jogs: list[VerticalJog] = []
        for raw in self.jogs:
            r1 = -1 if raw.a == TOP else row_index[raw.a]
            r2 = tracks if raw.b == BOT else row_index[raw.b]
            jogs.append(VerticalJog(net=raw.net, column=raw.column, r1=r1, r2=r2))
        return ChannelRoute(tracks=tracks, length=length, spans=spans, jogs=jogs)
