"""Vertical constraint graphs for channel routing.

At every column with a top pin of net ``u`` and a bottom pin of net
``w`` (``u != w``), the trunk carrying ``u``'s pin connection must lie
above the trunk carrying ``w``'s - an edge ``u -> w``.  Cycles make
dogleg-free left-edge routing infeasible; dogleg splitting usually
(not always) breaks them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Hashable

from repro.channels.problem import ChannelProblem


@dataclass
class VerticalConstraintGraph:
    """A DAG-or-not over hashable node keys (nets or subnet keys)."""

    edges: dict[Hashable, set[Hashable]] = field(default_factory=dict)
    nodes: set[Hashable] = field(default_factory=set)

    @staticmethod
    def from_problem(problem: ChannelProblem) -> "VerticalConstraintGraph":
        """Net-level VCG (one node per net, no doglegs)."""
        g = VerticalConstraintGraph()
        for net in problem.nets():
            g.add_node(net)
        for col in range(problem.length):
            u, w = problem.top[col], problem.bottom[col]
            if u and w and u != w:
                g.add_edge(u, w)
        return g

    def add_node(self, node: Hashable) -> None:
        self.nodes.add(node)
        self.edges.setdefault(node, set())

    def add_edge(self, above: Hashable, below: Hashable) -> None:
        self.add_node(above)
        self.add_node(below)
        self.edges[above].add(below)

    def predecessors(self, node: Hashable) -> set[Hashable]:
        return {u for u, vs in self.edges.items() if node in vs}

    def has_cycle(self) -> bool:
        return self.find_cycle() is not None

    def find_cycle(self) -> list[Hashable] | None:
        """A node list forming a cycle, or ``None`` when the graph is a DAG."""
        WHITE, GRAY, BLACK = 0, 1, 2
        color = {n: WHITE for n in self.nodes}
        stack_path: list[Hashable] = []

        def visit(node: Hashable) -> list[Hashable] | None:
            color[node] = GRAY
            stack_path.append(node)
            for succ in sorted(self.edges.get(node, ()), key=repr):
                if color[succ] == GRAY:
                    return stack_path[stack_path.index(succ) :]
                if color[succ] == WHITE:
                    found = visit(succ)
                    if found is not None:
                        return found
            stack_path.pop()
            color[node] = BLACK
            return None

        for node in sorted(self.nodes, key=repr):
            if color[node] == WHITE:
                found = visit(node)
                if found is not None:
                    return list(found)
        return None

    def longest_path_length(self) -> int:
        """Longest chain length (a track-count lower bound); raises on cycles."""
        if self.has_cycle():
            raise ValueError("longest path undefined on cyclic VCG")
        memo: dict[Hashable, int] = {}

        def depth(node: Hashable) -> int:
            if node in memo:
                return memo[node]
            succs = self.edges.get(node, ())
            memo[node] = 1 + (max((depth(s) for s in succs), default=0))
            return memo[node]

        return max((depth(n) for n in self.nodes), default=0)

    def topological_order(self) -> list[Hashable]:
        """A deterministic topological order; raises on cycles."""
        if self.has_cycle():
            raise ValueError("topological order undefined on cyclic VCG")
        indegree: dict[Hashable, int] = {n: 0 for n in self.nodes}
        for _, succs in self.edges.items():
            for s in succs:
                indegree[s] += 1
        ready = sorted((n for n, d in indegree.items() if d == 0), key=repr)
        order: list[Hashable] = []
        while ready:
            node = ready.pop(0)
            order.append(node)
            for s in sorted(self.edges.get(node, ()), key=repr):
                indegree[s] -= 1
                if indegree[s] == 0:
                    ready.append(s)
            ready.sort(key=repr)
        return order
