"""A Yoshimura-Kuh style net-merging channel router.

Yoshimura & Kuh's classic algorithm (the paper's reference [2], and
the basis of the three-layer router of reference [1]) reduces channel
height by *merging* nets: two nets whose trunk intervals do not overlap
and whose merger keeps the vertical constraint graph acyclic may share
a track.  Sweeping the channel left to right, every net that starts is
offered a merge with a net that has already ended, preferring the
candidate that keeps the merged VCG's longest path - the track-count
lower bound - smallest.

Like the original (and unlike the dogleg left-edge router), this
implementation does not split nets, so vertical-constraint cycles are
a hard infeasibility and raise :class:`ChannelRoutingError`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.channels.problem import ChannelProblem, ChannelRoutingError
from repro.channels.route import ChannelRoute, HorizontalSpan, VerticalJog
from repro.channels.vcg import VerticalConstraintGraph


@dataclass(eq=False)  # identity semantics: nodes mutate as they fuse
class _MergedNode:
    """A set of nets sharing one track."""

    nets: list[int]
    intervals: list[tuple[int, int]]  # disjoint trunk spans, sorted

    def overlaps(self, other: "_MergedNode") -> bool:
        return any(
            a1 <= b2 and b1 <= a2
            for a1, a2 in self.intervals
            for b1, b2 in other.intervals
        )


class YKChannelRouter:
    """Net-merging channel router (no doglegs)."""

    # ------------------------------------------------------------------
    def route(self, problem: ChannelProblem) -> ChannelRoute:
        trunk_nets = [
            net
            for net in problem.nets()
            if problem.pin_count(net) >= 2
        ]
        vcg = VerticalConstraintGraph.from_problem(problem)
        cycle = vcg.find_cycle()
        if cycle is not None:
            raise ChannelRoutingError(
                f"vertical constraint cycle among nets: {cycle}"
            )
        spans = {net: problem.span(net) for net in trunk_nets}
        real_trunks = [n for n in trunk_nets if spans[n][0] < spans[n][1]]
        merged = self._merge(problem, real_trunks, spans, vcg)
        assignment = self._assign_tracks(merged, vcg)
        tracks = (max(assignment.values()) + 1) if assignment else 0
        route_spans: list[HorizontalSpan] = []
        net_track: dict[int, int] = {}
        for node, track in assignment.items():
            for net in node.nets:
                net_track[net] = track
                lo, hi = spans[net]
                route_spans.append(
                    HorizontalSpan(net=net, track=track, c1=lo, c2=hi)
                )
        jogs = self._make_jogs(problem, spans, net_track, tracks)
        return ChannelRoute(
            tracks=tracks, length=problem.length, spans=route_spans, jogs=jogs
        )

    # ------------------------------------------------------------------
    def _merge(
        self,
        problem: ChannelProblem,
        nets: list[int],
        spans: dict[int, tuple[int, int]],
        vcg: VerticalConstraintGraph,
    ) -> list[_MergedNode]:
        """Left-to-right merge sweep; mutates ``vcg`` by node fusion."""
        node_of: dict[int, _MergedNode] = {
            net: _MergedNode(nets=[net], intervals=[spans[net]]) for net in nets
        }
        starts = sorted(nets, key=lambda n: (spans[n][0], spans[n][1], n))
        ended: list[_MergedNode] = []
        active: list[tuple[int, _MergedNode]] = []  # (end column, node)
        for net in starts:
            lo, hi = spans[net]
            # Retire merged nodes fully left of this net.
            still_active: list[tuple[int, _MergedNode]] = []
            for end, node in active:
                if end < lo:
                    if node not in ended:
                        ended.append(node)
                else:
                    still_active.append((end, node))
            active = still_active
            node = node_of[net]
            best: _MergedNode | None = None
            best_depth: int | None = None
            for candidate in ended:
                if candidate is node or candidate.overlaps(node):
                    continue
                depth = self._merged_depth(vcg, candidate, node)
                if depth is None:
                    continue  # would create a cycle
                if best_depth is None or depth < best_depth:
                    best, best_depth = candidate, depth
            if best is not None:
                self._fuse(vcg, best, node)
                for member in node.nets:
                    node_of[member] = best
                best.nets.extend(node.nets)
                best.intervals = sorted(best.intervals + node.intervals)
                ended.remove(best)
                node = best
            active.append((max(i[1] for i in node.intervals), node))
        seen: set[int] = set()
        out: list[_MergedNode] = []
        for node in node_of.values():
            if id(node) not in seen:
                seen.add(id(node))
                out.append(node)
        return out

    def _merged_depth(
        self,
        vcg: VerticalConstraintGraph,
        a: _MergedNode,
        b: _MergedNode,
    ) -> int | None:
        """Longest VCG path if ``a`` and ``b`` fused, or None on a cycle.

        Works on a temporary graph over merged-node representatives.
        """
        probe = VerticalConstraintGraph()
        groups: dict[int, int] = {}

        def rep_of(net: int) -> int:
            return groups.get(net, net)

        for member in a.nets + b.nets:
            groups[member] = a.nets[0]
        for node in vcg.nodes:
            probe.add_node(rep_of(node))
        for src, dsts in vcg.edges.items():
            for dst in dsts:
                u, w = rep_of(src), rep_of(dst)
                if u != w:
                    probe.add_edge(u, w)
        if probe.has_cycle():
            return None
        return probe.longest_path_length()

    def _fuse(
        self,
        vcg: VerticalConstraintGraph,
        keep: _MergedNode,
        absorb: _MergedNode,
    ) -> None:
        """Fuse ``absorb``'s representative into ``keep``'s in the VCG."""
        keep_rep = keep.nets[0]
        absorb_rep = absorb.nets[0]
        if absorb_rep == keep_rep:
            return
        vcg.add_node(keep_rep)
        out_edges = set(vcg.edges.get(absorb_rep, ()))
        for dst in out_edges:
            if dst != keep_rep:
                vcg.add_edge(keep_rep, dst)
        vcg.edges[absorb_rep] = set()
        for src, dsts in vcg.edges.items():
            if absorb_rep in dsts:
                dsts.discard(absorb_rep)
                if src != keep_rep:
                    vcg.add_edge(src, keep_rep)
        vcg.nodes.discard(absorb_rep)
        vcg.edges.pop(absorb_rep, None)

    # ------------------------------------------------------------------
    def _assign_tracks(
        self,
        merged: list[_MergedNode],
        vcg: VerticalConstraintGraph,
    ) -> dict[_MergedNode, int]:
        """Topological track assignment of merged nodes."""
        by_rep: dict[int, _MergedNode] = {node.nets[0]: node for node in merged}
        if vcg.has_cycle():  # pragma: no cover - fusion preserves acyclicity
            raise ChannelRoutingError("merged VCG became cyclic")
        order = [rep for rep in vcg.topological_order() if rep in by_rep]
        # Include merged nodes with no VCG presence (no constraints).
        for rep, node in sorted(by_rep.items()):
            if rep not in order:
                order.append(rep)
        assignment: dict[_MergedNode, int] = {}
        track_members: list[list[_MergedNode]] = []
        preds_cache: dict[int, set[int]] = {
            rep: vcg.predecessors(rep) for rep in order
        }
        rep_of_net: dict[int, int] = {}
        for node in merged:
            for net in node.nets:
                rep_of_net[net] = node.nets[0]
        for rep in order:
            node = by_rep[rep]
            min_track = 0
            for pred in preds_cache[rep]:
                pred_rep = rep_of_net.get(pred, pred)
                pred_node = by_rep.get(pred_rep)
                if pred_node is not None and pred_node in assignment:
                    min_track = max(min_track, assignment[pred_node] + 1)
            track = min_track
            while True:
                while len(track_members) <= track:
                    track_members.append([])
                if all(not node.overlaps(other) for other in track_members[track]):
                    break
                track += 1
            assignment[node] = track
            track_members[track].append(node)
        return assignment

    # ------------------------------------------------------------------
    def _make_jogs(
        self,
        problem: ChannelProblem,
        spans: dict[int, tuple[int, int]],
        net_track: dict[int, int],
        tracks: int,
    ) -> list[VerticalJog]:
        jogs: list[VerticalJog] = []
        for col in range(problem.length):
            t_net, b_net = problem.top[col], problem.bottom[col]
            if t_net and t_net == b_net:
                jogs.append(VerticalJog(net=t_net, column=col, r1=-1, r2=tracks))
                continue
            if t_net and problem.pin_count(t_net) >= 2:
                row = net_track.get(t_net)
                if row is None:  # zero-width trunk: direct drop-through
                    jogs.append(
                        VerticalJog(net=t_net, column=col, r1=-1, r2=tracks)
                    )
                else:
                    jogs.append(VerticalJog(net=t_net, column=col, r1=-1, r2=row))
            if b_net and problem.pin_count(b_net) >= 2:
                row = net_track.get(b_net)
                if row is not None:
                    jogs.append(
                        VerticalJog(net=b_net, column=col, r1=row, r2=tracks)
                    )
        return jogs
