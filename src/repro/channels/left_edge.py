"""Constrained left-edge channel routing with optional doglegs.

The classic track-assignment channel router: net trunks are intervals
assigned greedily to tracks in left-edge order, subject to the vertical
constraint graph.  With ``dogleg=True`` (default) each multi-pin net is
split at its interior pin columns into chained subnets, which both
shortens trunks and breaks most VCG cycles.  Remaining cycles are a
genuine infeasibility for this algorithm and raise
:class:`ChannelRoutingError` - use the greedy router for guaranteed
completion.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import instrument
from repro.instrument.names import (
    EVT_CHANNEL_CYCLIC,
    SPAN_CHANNEL_LEFT_EDGE,
    VCG_CYCLES,
)
from repro.channels.problem import ChannelProblem, ChannelRoutingError
from repro.channels.route import ChannelRoute, HorizontalSpan, VerticalJog
from repro.channels.vcg import VerticalConstraintGraph


@dataclass(frozen=True)
class _Subnet:
    """A trunk piece of a (possibly doglegged) net."""

    net: int
    seq: int
    c1: int
    c2: int

    def has_endpoint(self, col: int) -> bool:
        return col == self.c1 or col == self.c2


class LeftEdgeRouter:
    """Left-edge channel router (dogleg by default)."""

    def __init__(self, dogleg: bool = True) -> None:
        self.dogleg = dogleg

    # ------------------------------------------------------------------
    def route(self, problem: ChannelProblem) -> ChannelRoute:
        """Route ``problem``; raises on vertical-constraint cycles."""
        with instrument.span(SPAN_CHANNEL_LEFT_EDGE):
            return self._route(problem)

    def _route(self, problem: ChannelProblem) -> ChannelRoute:
        subnets = self._make_subnets(problem)
        vcg = self._subnet_vcg(problem, subnets)
        cycle = vcg.find_cycle()
        if cycle is not None:
            instrument.count(VCG_CYCLES)
            instrument.event(EVT_CHANNEL_CYCLIC, subnets=len(cycle))
            raise ChannelRoutingError(
                f"vertical constraint cycle among subnets: {cycle}"
            )
        assignment = self._assign_tracks(subnets, vcg)
        tracks = (max(assignment.values()) + 1) if assignment else 0
        # Single-column two-sided nets need a through jog but no track.
        if tracks == 0 and any(
            problem.top[c] and problem.top[c] == problem.bottom[c]
            for c in range(problem.length)
        ):
            tracks = 0  # a TOP->BOT jog uses no track
        spans = [
            HorizontalSpan(net=s.net, track=t, c1=s.c1, c2=s.c2)
            for s, t in assignment.items()
        ]
        jogs = self._make_jogs(problem, subnets, assignment, tracks)
        return ChannelRoute(
            tracks=tracks, length=problem.length, spans=spans, jogs=jogs
        )

    # ------------------------------------------------------------------
    def _make_subnets(self, problem: ChannelProblem) -> list[_Subnet]:
        out: list[_Subnet] = []
        for net in problem.nets():
            cols = problem.pin_columns(net)
            if len(cols) < 2:
                continue
            if self.dogleg:
                for seq, (a, b) in enumerate(zip(cols, cols[1:])):
                    out.append(_Subnet(net=net, seq=seq, c1=a, c2=b))
            else:
                out.append(_Subnet(net=net, seq=0, c1=cols[0], c2=cols[-1]))
        return out

    def _subnet_vcg(
        self, problem: ChannelProblem, subnets: list[_Subnet]
    ) -> VerticalConstraintGraph:
        by_endpoint: dict[tuple[int, int], list[_Subnet]] = {}
        for s in subnets:
            by_endpoint.setdefault((s.net, s.c1), []).append(s)
            if s.c2 != s.c1:
                by_endpoint.setdefault((s.net, s.c2), []).append(s)
        g = VerticalConstraintGraph()
        for s in subnets:
            g.add_node(s)
        for col in range(problem.length):
            u, w = problem.top[col], problem.bottom[col]
            if not u or not w or u == w:
                continue
            for su in by_endpoint.get((u, col), ()):
                for sw in by_endpoint.get((w, col), ()):
                    g.add_edge(su, sw)
        return g

    def _assign_tracks(
        self, subnets: list[_Subnet], vcg: VerticalConstraintGraph
    ) -> dict[_Subnet, int]:
        preds: dict[_Subnet, set] = {s: vcg.predecessors(s) for s in subnets}
        unplaced = sorted(subnets, key=lambda s: (s.c1, s.c2, s.net, s.seq))
        assignment: dict[_Subnet, int] = {}
        placed_before: set = set()
        track = 0
        while unplaced:
            placed_this: list[_Subnet] = []
            last_end: int | None = None
            last_net: int | None = None
            for s in list(unplaced):
                fits = (
                    last_end is None
                    or s.c1 > last_end
                    or (s.net == last_net and s.c1 >= last_end)
                )
                if fits and preds[s] <= placed_before:
                    assignment[s] = track
                    placed_this.append(s)
                    unplaced.remove(s)
                    last_end, last_net = s.c2, s.net
            if not placed_this:
                raise ChannelRoutingError(
                    "left-edge assignment stalled (constrained subnets)"
                )
            placed_before.update(placed_this)
            track += 1
        return assignment

    def _make_jogs(
        self,
        problem: ChannelProblem,
        subnets: list[_Subnet],
        assignment: dict[_Subnet, int],
        tracks: int,
    ) -> list[VerticalJog]:
        by_net_col: dict[tuple[int, int], list[int]] = {}
        for s, t in assignment.items():
            by_net_col.setdefault((s.net, s.c1), []).append(t)
            if s.c2 != s.c1:
                by_net_col.setdefault((s.net, s.c2), []).append(t)
        jogs: list[VerticalJog] = []
        for col in range(problem.length):
            t_net, b_net = problem.top[col], problem.bottom[col]
            if t_net and t_net == b_net:
                rows = by_net_col.get((t_net, col), [])
                # One through jog connects the top pin, the bottom pin
                # and every trunk row of the net at this column.
                jogs.append(VerticalJog(net=t_net, column=col, r1=-1, r2=tracks))
                continue
            if t_net and problem.pin_count(t_net) >= 2:
                rows = by_net_col.get((t_net, col), [])
                if rows:
                    jogs.append(
                        VerticalJog(net=t_net, column=col, r1=-1, r2=max(rows))
                    )
            if b_net and problem.pin_count(b_net) >= 2:
                rows = by_net_col.get((b_net, col), [])
                if rows:
                    jogs.append(
                        VerticalJog(net=b_net, column=col, r1=min(rows), r2=tracks)
                    )
        return jogs
