"""Two-layer channel routing (the level A substrate).

The paper routes set A "in channel areas using existing channel routing
packages".  This package is that package: a classic channel model
(top/bottom pin vectors over columns), the vertical constraint graph,
and two detailed routers -

* :class:`GreedyChannelRouter` - a Rivest/Fiduccia-style greedy router
  (the paper's reference [5]).  Always completes, possibly extending
  the channel beyond its last column; the flows' workhorse.
* :class:`LeftEdgeRouter` - the constrained left-edge algorithm with
  dogleg splitting; fails on vertical-constraint cycles and is used
  for comparisons and tests on acyclic instances.

Both produce a :class:`ChannelRoute` with identical geometry/metric
semantics (tracks, wire length, via count), so flows can swap routers.
"""

from repro.channels.problem import ChannelProblem, ChannelRoutingError
from repro.channels.vcg import VerticalConstraintGraph
from repro.channels.route import ChannelRoute, HorizontalSpan, VerticalJog
from repro.channels.greedy import GreedyChannelRouter
from repro.channels.left_edge import LeftEdgeRouter
from repro.channels.yoshimura_kuh import YKChannelRouter
from repro.channels.multilayer import HVHChannelRouter, HVHResult

__all__ = [
    "HVHChannelRouter",
    "HVHResult",
    "ChannelProblem",
    "ChannelRoutingError",
    "VerticalConstraintGraph",
    "ChannelRoute",
    "HorizontalSpan",
    "VerticalJog",
    "GreedyChannelRouter",
    "LeftEdgeRouter",
    "YKChannelRouter",
]
