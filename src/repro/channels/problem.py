"""The classic channel routing problem model.

A channel is a horizontal routing region with pins on its top and
bottom boundaries at integer columns.  The problem is two vectors of
net ids (0 = no pin) over the columns.  Density - the maximum number of
nets whose pin spans cross a column boundary - lower-bounds the track
count any two-layer router can achieve.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable


class ChannelRoutingError(RuntimeError):
    """A detailed channel router could not complete the problem."""


@dataclass
class ChannelProblem:
    """Top/bottom pin vectors over ``length`` columns.

    ``top[c]`` / ``bottom[c]`` hold the net id with a pin at column
    ``c`` on that side, or 0.  Net ids are positive and opaque to the
    router.
    """

    top: list[int]
    bottom: list[int]

    def __post_init__(self) -> None:
        if len(self.top) != len(self.bottom):
            raise ValueError("top and bottom vectors must have equal length")
        for vec in (self.top, self.bottom):
            for net in vec:
                if net < 0:
                    raise ValueError("net ids must be >= 0")

    @staticmethod
    def from_pin_lists(
        top_pins: Iterable[tuple[int, int]],
        bottom_pins: Iterable[tuple[int, int]],
        length: int | None = None,
    ) -> "ChannelProblem":
        """Build from ``(column, net)`` pairs.

        Two pins of *different* nets on the same side may not share a
        column; a duplicate pin of the same net collapses into one.
        """
        tops: dict[int, int] = {}
        bottoms: dict[int, int] = {}
        for target, pins in ((tops, top_pins), (bottoms, bottom_pins)):
            for col, net in pins:
                if col < 0:
                    raise ValueError(f"negative column {col}")
                if net <= 0:
                    raise ValueError(f"bad net id {net}")
                if target.get(col, net) != net:
                    raise ValueError(
                        f"column {col} holds two different nets on one side"
                    )
                target[col] = net
        max_col = max(list(tops) + list(bottoms), default=-1)
        n = max(length or 0, max_col + 1)
        top = [tops.get(c, 0) for c in range(n)]
        bottom = [bottoms.get(c, 0) for c in range(n)]
        return ChannelProblem(top=top, bottom=bottom)

    # ------------------------------------------------------------------
    @property
    def length(self) -> int:
        return len(self.top)

    def nets(self) -> list[int]:
        """All net ids present, ascending."""
        return sorted({n for n in self.top + self.bottom if n > 0})

    def pin_columns(self, net: int) -> list[int]:
        """Columns where ``net`` has a pin (either side), ascending."""
        cols = [c for c, n in enumerate(self.top) if n == net]
        cols += [c for c, n in enumerate(self.bottom) if n == net]
        return sorted(set(cols))

    def span(self, net: int) -> tuple[int, int]:
        """Leftmost and rightmost pin columns of ``net``."""
        cols = self.pin_columns(net)
        if not cols:
            raise KeyError(f"net {net} has no pins in this channel")
        return cols[0], cols[-1]

    def pin_count(self, net: int) -> int:
        top = sum(1 for n in self.top if n == net)
        bottom = sum(1 for n in self.bottom if n == net)
        return top + bottom

    def local_density(self, column: int) -> int:
        """Nets whose pin span covers ``column``."""
        count = 0
        for net in self.nets():
            lo, hi = self.span(net)
            if lo <= column <= hi and self.pin_count(net) >= 2:
                count += 1
        return count

    def density(self) -> int:
        """Channel density: the two-layer track-count lower bound."""
        if self.length == 0:
            return 0
        spans = []
        for net in self.nets():
            if self.pin_count(net) >= 2:
                spans.append(self.span(net))
        best = 0
        for c in range(self.length):
            cover = sum(1 for lo, hi in spans if lo <= c <= hi)
            best = max(best, cover)
        return best

    def trivial(self) -> bool:
        """True when no net needs a trunk (every net wholly at one column)."""
        return all(self.pin_count(n) < 2 or self.span(n)[0] == self.span(n)[1]
                   for n in self.nets())

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ChannelProblem(length={self.length}, nets={len(self.nets())}, "
            f"density={self.density()})"
        )
