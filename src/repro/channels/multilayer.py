"""A conservative HVH three-layer channel router.

The paper compares against multi-layer channel routing only through an
optimistic assumption (Table 3), because "no complete multi-layer
channel routing package was available".  This module supplies a real -
if deliberately conservative - three-layer router in the style the
paper's references [1]/[4]/[6] describe: two horizontal trunk layers
share each physical track position, with a single vertical layer.

Method: route the channel dogleg-free-safely in two layers first
(dogleg left-edge; greedy fallback for cyclic channels, which then
stays unpaired because its mid-channel collapse jogs make pairing
unsafe), then greedily merge *adjacent* track pairs onto one physical
row, placing the upper member's trunks on horizontal layer 0 and the
lower member's on layer 1.  A pair is legal when no column holds jog
endpoints of different nets on both members - the only way merging can
make two vertical wires touch.  Merging adjacent tracks preserves the
relative order of everything else, so all remaining vertical
constraints stay satisfied; the result still passes the standard
:meth:`ChannelRoute.check`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.channels.problem import ChannelProblem, ChannelRoutingError
from repro.channels.route import ChannelRoute, HorizontalSpan, VerticalJog
from repro.channels.greedy import GreedyChannelRouter
from repro.channels.left_edge import LeftEdgeRouter


@dataclass
class HVHResult:
    """Outcome of a three-layer routing attempt."""

    route: ChannelRoute
    paired: bool  # False: cyclic channel, greedy two-layer fallback
    base_tracks: int

    @property
    def tracks(self) -> int:
        return self.route.tracks

    @property
    def track_saving(self) -> int:
        return self.base_tracks - self.route.tracks


class HVHChannelRouter:
    """Three-layer channel routing by adjacent-track pairing."""

    def __init__(self) -> None:
        self._left_edge = LeftEdgeRouter(dogleg=True)
        self._greedy = GreedyChannelRouter()

    # ------------------------------------------------------------------
    def route(self, problem: ChannelProblem) -> HVHResult:
        """Route ``problem`` on three layers (two-layer fallback on cycles)."""
        try:
            base = self._left_edge.route(problem)
            paired = True
        except ChannelRoutingError:
            base = self._greedy.route(problem)
            return HVHResult(route=base, paired=False, base_tracks=base.tracks)
        merged = self._pair_tracks(base)
        merged.check(problem)
        return HVHResult(route=merged, paired=paired, base_tracks=base.tracks)

    # ------------------------------------------------------------------
    def _pair_tracks(self, base: ChannelRoute) -> ChannelRoute:
        """Greedy top-down merge of adjacent compatible tracks."""
        endpoints = self._jog_endpoints_by_column(base)
        row_map: dict[int, tuple[int, int]] = {}  # old row -> (new row, layer)
        new_row = 0
        old = 0
        while old < base.tracks:
            if old + 1 < base.tracks and self._can_pair(
                endpoints, old, old + 1
            ):
                row_map[old] = (new_row, 0)
                row_map[old + 1] = (new_row, 1)
                old += 2
            else:
                row_map[old] = (new_row, 0)
                old += 1
            new_row += 1
        new_tracks = new_row
        spans = [
            HorizontalSpan(
                net=s.net,
                track=row_map[s.track][0],
                c1=s.c1,
                c2=s.c2,
                layer=row_map[s.track][1],
            )
            for s in base.spans
        ]
        jogs = []
        for jog in base.jogs:
            r1 = -1 if jog.r1 == -1 else row_map[jog.r1][0]
            r2 = new_tracks if jog.r2 == base.tracks else row_map[jog.r2][0]
            jogs.append(
                VerticalJog(net=jog.net, column=jog.column, r1=r1, r2=r2)
            )
        return ChannelRoute(
            tracks=new_tracks, length=base.length, spans=spans, jogs=jogs
        )

    def _jog_endpoints_by_column(
        self, base: ChannelRoute
    ) -> dict[int, list[tuple[int, int]]]:
        """Per column: the (row, net) pairs of jog endpoints on tracks."""
        out: dict[int, list[tuple[int, int]]] = {}
        for jog in base.jogs:
            for row in (jog.r1, jog.r2):
                if 0 <= row < base.tracks:
                    out.setdefault(jog.column, []).append((row, jog.net))
        return out

    def _can_pair(
        self,
        endpoints: dict[int, list[tuple[int, int]]],
        upper: int,
        lower: int,
    ) -> bool:
        """May tracks ``upper`` and ``lower`` share a physical row?

        Forbidden exactly when some column carries jog endpoints of
        *different* nets on both tracks - merged, those two vertical
        wires would touch.
        """
        for rows in endpoints.values():
            upper_nets = {net for row, net in rows if row == upper}
            lower_nets = {net for row, net in rows if row == lower}
            if upper_nets and lower_nets and (
                upper_nets != lower_nets or len(upper_nets) > 1
            ):
                return False
        return True
