"""The negotiated-congestion convergence loop (docs/ITERATION.md).

PathFinder-style iterative routing (SNIPPETS.md snippet 3) on top of
the transactional grid: route, detect failures and overflow, rip every
net back to bare terminals through the journal, charge per-track
history where the grid overflowed, and re-route in a policy-chosen
order with the history folded into the section 3.2 cost — until the
design completes or the iteration/stall budget runs out.

Two structural choices keep the loop compatible with the rest of the
stack:

*Whole-design rip-up.*  Classic PathFinder interleaves "rip one net,
re-route it" — which leaves mixed old/new wiring mid-pass, a state the
dispatch speculator's window contract cannot reason about.  Here every
pass rips *all* nets first (terminals stay reserved), leaving the grid
exactly where a fresh :meth:`~repro.core.router.LevelBRouter.route`
starts — so serial and speculative routing work unchanged inside an
iteration, and the serial/parallel parity contract extends to
iterative mode.

*Commit-if-better.*  Each pass runs inside one plane-set transaction.
A pass that does not strictly improve on the best result so far — or
that fails the ``repro.check`` short sweep — rolls back in
O(cells-touched), so the best wiring is always the one on the grid and
the loop can never end worse than one-pass routing.

The *history* lives in :class:`repro.core.cost.TrackHistory`, one per
plane, attached to the router between passes; the present/history
pricing schedule is plain data (:class:`CostSchedule`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any
from collections.abc import Callable, Sequence

from repro import instrument
from repro.instrument.names import (
    EVT_ITERATE_PASS,
    ITERATE_HISTORY_PEAK,
    ITERATE_NETS_RIPPED,
    ITERATE_PASSES,
    ITERATE_ROLLBACKS,
    ITERATE_STALLS,
    SPAN_ITERATE,
    SPAN_ITERATE_PASS,
)
from repro.core.cost import TrackHistory
from repro.core.ordering import order_nets
from repro.core.router import LevelBResult, LevelBRouter
from repro.globalroute.regions import RegionModel
from repro.netlist import Net
from repro.iterate.policies import NetFeedback, OrderingPolicy, get_policy

__all__ = [
    "CostSchedule",
    "IterateConfig",
    "IterateReport",
    "IterationRecord",
    "RouteFn",
    "iterate_levelb",
]

#: How the driver routes one pass: the router plus an explicit order
#: (``None`` for the router's own configured ordering).  The flow layer
#: substitutes a dispatch-backed implementation when ``parallel > 0``.
RouteFn = Callable[[LevelBRouter, "Sequence[Net] | None"], LevelBResult]


@dataclass(frozen=True)
class CostSchedule:
    """The present- and history-cost pricing schedule, as data.

    The effective history weight of iteration ``i`` (1-based) is
    ``history_weight * (present_base + present_growth * (i - 1))`` —
    PathFinder's growing present-cost factor collapsed onto the history
    term, so congested tracks get more expensive every round.  After
    each pass the accumulated charges first decay by ``decay`` and the
    tracks crossing overflowed regions are charged ``increment``.
    """

    history_weight: float = 6.0
    present_base: float = 1.0
    present_growth: float = 0.5
    increment: float = 1.0
    decay: float = 1.0

    def __post_init__(self) -> None:
        if self.history_weight < 0 or self.increment < 0:
            raise ValueError("history weight and increment must be >= 0")
        if self.present_base < 0 or self.present_growth < 0:
            raise ValueError("present-cost factors must be >= 0")
        if not 0.0 <= self.decay <= 1.0:
            raise ValueError("history decay must be in [0, 1]")

    def weight_at(self, iteration: int) -> float:
        """Effective history weight of one iteration (1-based)."""
        return self.history_weight * (
            self.present_base + self.present_growth * (iteration - 1)
        )


@dataclass(frozen=True)
class IterateConfig:
    """Tuning knobs of the convergence loop."""

    #: Re-route passes after the initial one (0 = one-pass routing).
    max_iterations: int = 8
    #: Consecutive non-improving passes before giving up.
    stall_limit: int = 2
    #: Ordering policy: a registry name (:mod:`repro.iterate.policies`)
    #: or a ready policy instance (the tuning harness passes candidate
    #: :class:`FeatureOrderingPolicy` objects directly).
    policy: "str | OrderingPolicy" = "longest-first"
    schedule: CostSchedule = field(default_factory=CostSchedule)
    #: Run the ``repro.check`` short sweep on every improving pass and
    #: refuse to commit a pass that introduces a short (belt and
    #: braces: the occupancy grid already forbids overlap).
    verify: bool = True
    #: Coarse region edge (tracks) for the overflow signal.
    region_tracks: int = 32

    def __post_init__(self) -> None:
        if self.max_iterations < 0:
            raise ValueError("max_iterations must be >= 0")
        if self.stall_limit < 1:
            raise ValueError("stall_limit must be >= 1")


@dataclass
class IterationRecord:
    """One pass's outcome, as recorded in the report."""

    iteration: int
    completion: float
    failed_nets: list[str]
    wire_length: int
    corners: int
    nets_ripped: int
    history_peak: float
    committed: bool

    def to_dict(self) -> dict[str, Any]:
        return {
            "iteration": self.iteration,
            "completion": self.completion,
            "failed_nets": list(self.failed_nets),
            "wire_length": self.wire_length,
            "corners": self.corners,
            "nets_ripped": self.nets_ripped,
            "history_peak": self.history_peak,
            "committed": self.committed,
        }


@dataclass
class IterateReport:
    """The convergence story of one iterative run."""

    policy: str
    iterations: int
    converged: bool
    stalled: bool
    records: list[IterationRecord]

    @property
    def final(self) -> IterationRecord:
        """The last *committed* record (the wiring on the grid)."""
        committed = [r for r in self.records if r.committed]
        return committed[-1]

    def to_dict(self) -> dict[str, Any]:
        return {
            "policy": self.policy,
            "iterations": self.iterations,
            "converged": self.converged,
            "stalled": self.stalled,
            "records": [r.to_dict() for r in self.records],
        }


# ----------------------------------------------------------------------
# Internals
# ----------------------------------------------------------------------
def _serial_route(
    router: LevelBRouter, order: Sequence[Net] | None
) -> LevelBResult:
    return router.route(order=order)


def _quality(result: LevelBResult) -> tuple[int, int, int, int]:
    """Lexicographic pass quality: fewer failures, then less wiring."""
    return (
        result.nets_attempted - result.nets_completed,
        sum(r.failed_terminals for r in result.routed),
        result.total_wire_length,
        result.total_corners,
    )


def _complete(result: LevelBResult) -> bool:
    return all(r.complete for r in result.routed)


def _short_sweep_clean(result: LevelBResult) -> bool:
    """The ``repro.check`` short sweep over the candidate wiring."""
    from repro.check import check_shorts, extract_levelb

    return not check_shorts(extract_levelb(result))


def _net_windows(
    router: LevelBRouter,
) -> dict[int, tuple[int, int, int, int]]:
    """Every net's terminal bounding box in track index space."""
    windows: dict[int, tuple[int, int, int, int]] = {}
    for net_id, terminals in router.tig.all_terminals().items():
        if not terminals:
            continue
        windows[net_id] = (
            min(t.v_idx for t in terminals),
            max(t.v_idx for t in terminals),
            min(t.h_idx for t in terminals),
            max(t.h_idx for t in terminals),
        )
    return windows


def _build_feedback(
    router: LevelBRouter, result: LevelBResult, region_tracks: int
) -> tuple[dict[str, NetFeedback], RegionModel, dict[int, tuple[int, int, int, int]]]:
    """The previous pass distilled for the policy and the history.

    Demand comes from the coarse :class:`RegionModel` over the nets'
    terminal windows (the routability-probe measure); failure comes
    from the routing result itself.
    """
    windows = _net_windows(router)
    grid = router.tig.grid  # planes share one track lattice
    model = RegionModel.build(
        grid.num_vtracks, grid.num_htracks, windows, region_tracks=region_tracks
    )
    overflowed = set(model.overflowed_regions())
    feedback: dict[str, NetFeedback] = {}
    for routed in result.routed:
        window = windows.get(routed.net_id)
        if window is None:
            feedback[routed.net.name] = NetFeedback(failed=not routed.complete)
            continue
        touching = model.regions_touching(*window)
        feedback[routed.net.name] = NetFeedback(
            failed=not routed.complete,
            wire_length=routed.wire_length,
            corners=routed.corner_count,
            overflow=sum(1 for rid in touching if rid in overflowed),
            demand=max(model.region(rid).utilization for rid in touching),
        )
    return feedback, model, windows


def _charge_history(
    router: LevelBRouter,
    history: tuple[TrackHistory, ...],
    result: LevelBResult,
    model: RegionModel,
    windows: dict[int, tuple[int, int, int, int]],
    schedule: CostSchedule,
    iteration: int,
) -> None:
    """Decay, charge and re-weight the history for the next pass.

    Each failed net charges the overflowed regions its window touches,
    on its own plane; a failed net touching no overflowed region (the
    coarse demand model under-reads local contention) charges its own
    window instead, so every failure leaves a mark.  Each (plane,
    region) pair is charged once per pass, PathFinder's
    once-per-congested-resource rule.
    """
    for h in history:
        h.decay(schedule.decay)
    overflowed = set(model.overflowed_regions())
    charged: set[tuple[int, int]] = set()
    fallback: list[tuple[int, tuple[int, int, int, int]]] = []
    for routed in result.routed:
        if routed.complete:
            continue
        window = windows.get(routed.net_id)
        if window is None:
            continue
        hit = [rid for rid in model.regions_touching(*window) if rid in overflowed]
        if not hit:
            fallback.append((routed.plane, window))
            continue
        for rid in hit:
            charged.add((routed.plane, rid))
    for plane, rid in sorted(charged):
        history[plane].charge_window(*model.bounds_of(rid), schedule.increment)
    for plane, window in fallback:
        history[plane].charge_window(*window, schedule.increment)
    weight = schedule.weight_at(iteration)
    for h in history:
        h.weight = weight


# ----------------------------------------------------------------------
# The loop
# ----------------------------------------------------------------------
def iterate_levelb(
    router: LevelBRouter,
    config: IterateConfig | None = None,
    *,
    route_fn: RouteFn | None = None,
) -> tuple[LevelBResult, IterateReport]:
    """Route iteratively until complete or out of budget.

    Returns the best result (whose wiring is what the grid holds) and
    the convergence report.  With ``max_iterations == 0``, or when the
    first pass already completes, exactly one routing pass runs — and
    when the policy's initial order equals the router's configured
    ordering the pass takes the identical one-pass code path, keeping
    iterate-off/converged-at-zero digests bit-identical to the seed.
    """
    cfg = config or IterateConfig()
    policy = (
        cfg.policy
        if isinstance(cfg.policy, OrderingPolicy)
        else get_policy(cfg.policy)
    )
    run = route_fn if route_fn is not None else _serial_route
    records: list[IterationRecord] = []
    stalls = 0
    iterations = 0
    with instrument.span(SPAN_ITERATE):
        instrument.active().declare(
            ITERATE_NETS_RIPPED,
            ITERATE_PASSES,
            ITERATE_ROLLBACKS,
            ITERATE_STALLS,
        )
        initial = policy.initial_order(router.nets)
        default = order_nets(router.nets, router.config.ordering)
        best = run(router, None if initial == default else initial)
        records.append(
            IterationRecord(
                iteration=0,
                completion=best.completion_rate,
                failed_nets=[r.net.name for r in best.routed if not r.complete],
                wire_length=best.total_wire_length,
                corners=best.total_corners,
                nets_ripped=0,
                history_peak=0.0,
                committed=True,
            )
        )
        history: tuple[TrackHistory, ...] | None = None
        try:
            while (
                not _complete(best)
                and iterations < cfg.max_iterations
                and stalls < cfg.stall_limit
            ):
                iterations += 1
                with instrument.span(SPAN_ITERATE_PASS):
                    if history is None:
                        grid = router.tig.grid
                        history = tuple(
                            TrackHistory(
                                grid.num_vtracks, grid.num_htracks, weight=0.0
                            )
                            for _ in range(router.tig.planes.num_planes)
                        )
                        router.history = history
                    feedback, model, windows = _build_feedback(
                        router, best, cfg.region_tracks
                    )
                    _charge_history(
                        router, history, best, model, windows,
                        cfg.schedule, iterations,
                    )
                    order = policy.reorder(router.nets, feedback)
                    txn = router.tig.planes.begin()
                    ripped = 0
                    for routed in best.routed:
                        router.unroute(routed.net)
                        ripped += 1
                    candidate = run(router, order)
                    improved = _quality(candidate) < _quality(best)
                    committed = improved and (
                        not cfg.verify or _short_sweep_clean(candidate)
                    )
                    if committed:
                        txn.commit()
                        best = candidate
                        stalls = 0
                    else:
                        txn.rollback()
                        stalls += 1
                        instrument.count(ITERATE_STALLS)
                        instrument.count(ITERATE_ROLLBACKS)
                    instrument.count(ITERATE_PASSES)
                    instrument.count(ITERATE_NETS_RIPPED, ripped)
                    peak = max(h.peak() for h in history)
                    records.append(
                        IterationRecord(
                            iteration=iterations,
                            completion=candidate.completion_rate,
                            failed_nets=[
                                r.net.name
                                for r in candidate.routed
                                if not r.complete
                            ],
                            wire_length=candidate.total_wire_length,
                            corners=candidate.total_corners,
                            nets_ripped=ripped,
                            history_peak=peak,
                            committed=committed,
                        )
                    )
                    instrument.event(
                        EVT_ITERATE_PASS,
                        iteration=iterations,
                        completion=candidate.completion_rate,
                        committed=committed,
                        history_peak=peak,
                    )
        finally:
            router.history = None
        if history is not None:
            instrument.gauge(
                ITERATE_HISTORY_PEAK, max(h.peak() for h in history)
            )
    report = IterateReport(
        policy=policy.name,
        iterations=iterations,
        converged=_complete(best),
        stalled=not _complete(best) and stalls >= cfg.stall_limit,
        records=records,
    )
    return best, report
