"""The pluggable net-ordering policy registry for iterative routing.

"Machine Learning Optimal Ordering in Global Routing Problems in
Semiconductors" (PAPERS.md, arXiv 2412.21035) shows that the order
nets route in moves completion and wirelength on its own.  The paper's
router fixes one order up front (``repro.core.ordering``); the
iterative driver (:mod:`repro.iterate.loop`) instead asks an
:class:`OrderingPolicy` for a fresh order before every pass, feeding
it the previous iteration's per-net outcome (:class:`NetFeedback`) so
the order can react to observed congestion.

Three built-ins ship in the registry:

``longest-first``
    The paper's criterion every pass, with failed nets promoted to the
    front.  Its *initial* order is exactly
    ``order_nets(nets, LONGEST_FIRST)``, so iteration 0 of an
    iterative run is bit-identical to one-pass routing.

``congestion``
    Reorders by the previous iteration's overflow contribution: nets
    whose read windows touch overflowed coarse regions
    (:class:`repro.globalroute.RegionModel`) route earlier, while the
    grid still has slack where they need it.

``feature``
    A linear scoring policy over static net features (length, degree)
    and dynamic feedback (failure, overflow, demand).  The default
    :class:`FeatureWeights` come from
    :func:`repro.iterate.tuning.tune_feature_policy`, which scores
    candidate weight vectors on the random corpus using ``instrument``
    counters.

Every policy must return a *total, deterministic* order — ties always
break on the net name, matching the ``core/ordering.py`` contract the
property tests pin.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from collections.abc import Mapping, Sequence

from repro.core.ordering import NetOrdering, order_nets
from repro.netlist import Net

__all__ = [
    "CongestionAwarePolicy",
    "FeatureOrderingPolicy",
    "FeatureWeights",
    "LongestFirstPolicy",
    "NetFeedback",
    "OrderingPolicy",
    "available_policies",
    "get_policy",
    "register_policy",
]


@dataclass(frozen=True)
class NetFeedback:
    """One net's outcome in the previous iteration.

    ``overflow`` counts the overflowed coarse regions the net's read
    window touches; ``demand`` is the peak demand/capacity utilization
    over all the regions it touches — both from the
    :class:`~repro.globalroute.RegionModel` the loop rebuilds each
    pass.
    """

    failed: bool = False
    wire_length: int = 0
    corners: int = 0
    overflow: int = 0
    demand: float = 0.0


#: What a policy sees for nets the previous iteration has no record of.
NO_FEEDBACK = NetFeedback()


class OrderingPolicy(ABC):
    """Decides the serial routing order of every iteration."""

    #: Registry key; set by every concrete policy.
    name: str = ""

    def initial_order(self, nets: Sequence[Net]) -> list[Net]:
        """Iteration 0's order, before any feedback exists.

        Defaults to the paper's longest-first criterion so an
        iterative run's first pass matches one-pass routing.
        """
        return order_nets(nets, NetOrdering.LONGEST_FIRST)

    @abstractmethod
    def reorder(
        self, nets: Sequence[Net], feedback: Mapping[str, NetFeedback]
    ) -> list[Net]:
        """The next iteration's order, given the last one's outcome.

        ``feedback`` is keyed by net name.  Implementations must
        return a permutation of ``nets`` and break all ties by net
        name.
        """


_REGISTRY: dict[str, type[OrderingPolicy]] = {}


def register_policy(cls: type[OrderingPolicy]) -> type[OrderingPolicy]:
    """Class decorator adding a policy to the registry by its name."""
    if not cls.name:
        raise ValueError(f"{cls.__name__} must set a non-empty 'name'")
    if cls.name in _REGISTRY:
        raise ValueError(f"ordering policy {cls.name!r} already registered")
    _REGISTRY[cls.name] = cls
    return cls


def get_policy(name: str) -> OrderingPolicy:
    """A fresh policy instance by registry name."""
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown ordering policy {name!r} "
            f"(available: {list(available_policies())})"
        ) from None
    return cls()


def available_policies() -> tuple[str, ...]:
    """Registered policy names, sorted."""
    return tuple(sorted(_REGISTRY))


# ----------------------------------------------------------------------
# Built-in policies
# ----------------------------------------------------------------------
@register_policy
class LongestFirstPolicy(OrderingPolicy):
    """The paper's longest-distance-first criterion, every pass.

    On re-orders, previously failed nets are promoted to the front
    (longest-first among themselves): they are the nets that need free
    tracks the most, and right after the rip-up the grid is emptiest.
    """

    name = "longest-first"

    def reorder(
        self, nets: Sequence[Net], feedback: Mapping[str, NetFeedback]
    ) -> list[Net]:
        return sorted(
            nets,
            key=lambda n: (
                not feedback.get(n.name, NO_FEEDBACK).failed,
                -n.half_perimeter,
                n.name,
            ),
        )


@register_policy
class CongestionAwarePolicy(OrderingPolicy):
    """Reorder by the previous iteration's overflow contribution.

    Failed nets first, then nets touching more overflowed regions,
    then higher peak region demand, then longest-first — so the nets
    fighting over contested areas claim tracks before the easy ones
    fill the slack around them.
    """

    name = "congestion"

    def reorder(
        self, nets: Sequence[Net], feedback: Mapping[str, NetFeedback]
    ) -> list[Net]:
        def key(n: Net) -> tuple:
            fb = feedback.get(n.name, NO_FEEDBACK)
            return (not fb.failed, -fb.overflow, -fb.demand, -n.half_perimeter, n.name)

        return sorted(nets, key=key)


@dataclass(frozen=True)
class FeatureWeights:
    """Linear scoring weights of the feature-driven policy.

    Static features (``length``, ``degree``) are normalised to the
    netlist's maxima so every term lives on a comparable scale; the
    defaults are the winning vector of
    :func:`repro.iterate.tuning.tune_feature_policy` on the random
    corpus.
    """

    fail: float = 2.0
    overflow: float = 4.0
    demand: float = 2.0
    length: float = 0.5
    degree: float = 0.5


@register_policy
class FeatureOrderingPolicy(OrderingPolicy):
    """Score nets by a weighted feature sum; highest score routes first.

    The features mix what is known statically (half-perimeter length,
    pin degree) with the previous iteration's feedback (failure flag,
    overflow contact, peak region demand).  With no feedback — the
    initial order — only the static terms contribute, which still
    yields a deterministic total order.
    """

    name = "feature"

    def __init__(self, weights: FeatureWeights | None = None) -> None:
        self.weights = weights or FeatureWeights()

    def _scores(
        self, nets: Sequence[Net], feedback: Mapping[str, NetFeedback]
    ) -> dict[str, float]:
        w = self.weights
        max_hp = max((n.half_perimeter for n in nets), default=0) or 1
        max_deg = max((n.degree for n in nets), default=0) or 1
        max_ovf = max(
            (feedback.get(n.name, NO_FEEDBACK).overflow for n in nets),
            default=0,
        ) or 1
        scores: dict[str, float] = {}
        for n in nets:
            fb = feedback.get(n.name, NO_FEEDBACK)
            scores[n.name] = (
                w.fail * float(fb.failed)
                + w.overflow * (fb.overflow / max_ovf)
                + w.demand * fb.demand
                + w.length * (n.half_perimeter / max_hp)
                + w.degree * (n.degree / max_deg)
            )
        return scores

    def initial_order(self, nets: Sequence[Net]) -> list[Net]:
        return self.reorder(nets, {})

    def reorder(
        self, nets: Sequence[Net], feedback: Mapping[str, NetFeedback]
    ) -> list[Net]:
        scores = self._scores(nets, feedback)
        return sorted(nets, key=lambda n: (-scores[n.name], n.name))
