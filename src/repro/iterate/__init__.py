"""Negotiated-congestion iterative routing (docs/ITERATION.md).

The subsystem that turns one-pass failures into iterations: a
PathFinder-style convergence loop (:func:`iterate_levelb`) over the
transactional grid, per-track history costs
(:class:`repro.core.cost.TrackHistory`) folded into the section 3.2
cost model, and a pluggable :class:`OrderingPolicy` registry deciding
each pass's net order.  One-pass routing never touches any of this —
with ``FlowParams.iterate`` off, routed geometry stays bit-identical
to the seed digests.
"""

from repro.iterate.loop import (
    CostSchedule,
    IterateConfig,
    IterateReport,
    IterationRecord,
    RouteFn,
    iterate_levelb,
)
from repro.iterate.policies import (
    CongestionAwarePolicy,
    FeatureOrderingPolicy,
    FeatureWeights,
    LongestFirstPolicy,
    NetFeedback,
    OrderingPolicy,
    available_policies,
    get_policy,
    register_policy,
)
from repro.iterate.tuning import (
    CandidateScore,
    TuningReport,
    default_candidates,
    tune_feature_policy,
)

__all__ = [
    "CandidateScore",
    "CongestionAwarePolicy",
    "CostSchedule",
    "FeatureOrderingPolicy",
    "FeatureWeights",
    "IterateConfig",
    "IterateReport",
    "IterationRecord",
    "LongestFirstPolicy",
    "NetFeedback",
    "OrderingPolicy",
    "RouteFn",
    "TuningReport",
    "available_policies",
    "default_candidates",
    "get_policy",
    "iterate_levelb",
    "register_policy",
    "tune_feature_policy",
]
