"""Tuning the feature-driven ordering policy on the random corpus.

The ``feature`` policy (:class:`~repro.iterate.policies.FeatureOrderingPolicy`)
scores nets with a linear :class:`~repro.iterate.policies.FeatureWeights`
vector.  This module picks that vector empirically: every candidate
vector drives a full iterative run on each corpus design inside its own
``instrument`` collector, and the collected counters — failed nets,
iterations burned, nets ripped, maze fallbacks — become the candidate's
score.  Everything is deterministic: the corpus is seed-derived
(:func:`repro.bench_suite.random_corpus`), routing is deterministic,
and candidates are scored in declaration order with lexicographic
comparison, so the winning vector reproduces bit-for-bit anywhere.

This is deliberately a *tuning* harness, not training: the search space
is a small explicit candidate grid, cheap enough to re-run in a test,
honest enough to catch a regression in the default weights.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any
from collections.abc import Sequence

from repro import instrument
from repro.instrument.names import (
    ITERATE_NETS_RIPPED,
    ITERATE_PASSES,
    MAZE_FALLBACKS,
)
from repro.netlist import Design
from repro.iterate.loop import IterateConfig, iterate_levelb
from repro.iterate.policies import FeatureOrderingPolicy, FeatureWeights

__all__ = [
    "CandidateScore",
    "TuningReport",
    "default_candidates",
    "tune_feature_policy",
]


def default_candidates() -> tuple[FeatureWeights, ...]:
    """The explicit candidate grid the tuner scores.

    A handful of hand-shaped vectors spanning the obvious regimes:
    failure-dominated, congestion-dominated, geometry-dominated, and
    the shipped default.
    """
    return (
        FeatureWeights(),  # the shipped default (congestion-dominated)
        FeatureWeights(fail=8.0, overflow=1.0, demand=0.5, length=1.0, degree=0.0),
        FeatureWeights(fail=4.0, overflow=2.0, demand=1.0, length=1.0, degree=0.5),
        FeatureWeights(fail=0.0, overflow=0.0, demand=0.0, length=1.0, degree=1.0),
    )


@dataclass
class CandidateScore:
    """One candidate vector's aggregate outcome over the corpus."""

    weights: FeatureWeights
    failed_nets: int = 0
    wire_length: int = 0
    iterations: int = 0
    nets_ripped: int = 0
    maze_fallbacks: int = 0

    @property
    def key(self) -> tuple[int, int, int, int]:
        """Lexicographic rank: completion first, then wire, then effort."""
        return (
            self.failed_nets,
            self.wire_length,
            self.iterations,
            self.nets_ripped,
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "weights": vars(self.weights) | {},
            "failed_nets": self.failed_nets,
            "wire_length": self.wire_length,
            "iterations": self.iterations,
            "nets_ripped": self.nets_ripped,
            "maze_fallbacks": self.maze_fallbacks,
        }


@dataclass
class TuningReport:
    """The full tuning story: every candidate, ranked."""

    scores: list[CandidateScore] = field(default_factory=list)

    @property
    def best(self) -> CandidateScore:
        # Scores are kept sorted (stably) by rank key, so ties resolve
        # to declaration order.
        return self.scores[0]

    def to_dict(self) -> dict[str, Any]:
        return {
            "best": self.best.to_dict(),
            "candidates": [s.to_dict() for s in self.scores],
        }


def _levelb_instances(
    designs: Sequence[Design],
) -> list[tuple[Any, list[Any]]]:
    """(bounds, set B nets) per design, via the real over-cell pipeline.

    The channel pipeline runs once per design (placement and level A
    geometry do not depend on the candidate weights); each candidate
    then gets a fresh :class:`LevelBRouter` over the same bounds.  Flow
    imports stay lazy — the flow layer itself imports ``repro.iterate``
    lazily, and this mirror of that idiom avoids the cycle.
    """
    from repro.flow import FlowParams
    from repro.flow.pipeline import _run_channel_pipeline
    from repro.partition import partition_nets

    params = FlowParams()
    instances = []
    for design in designs:
        nets = design.routable_nets()
        set_a, set_b = partition_nets(
            nets, params.partition, length_threshold=params.length_threshold
        )
        placement, _gr, routes, heights, side_widths = _run_channel_pipeline(
            design, set_a, params
        )
        bounds = placement.realize(
            heights,
            left_width=side_widths[0],
            right_width=side_widths[1],
            margin=params.margin,
        )
        instances.append((bounds, set_b))
    return instances


def tune_feature_policy(
    designs: Sequence[Design] | None = None,
    candidates: Sequence[FeatureWeights] | None = None,
    *,
    max_iterations: int = 4,
) -> TuningReport:
    """Score every candidate weight vector on the corpus, best first.

    ``designs`` defaults to a small slice of the random corpus.  Each
    (design, candidate) run routes iteratively with the candidate's
    :class:`FeatureOrderingPolicy` inside a private collector; the
    ``iterate.*``, ``nets.failed`` and ``maze.fallbacks`` counters plus
    the final wirelength aggregate into the candidate's score.
    """
    from repro.core.router import LevelBRouter

    if designs is None:
        from repro.bench_suite import random_corpus

        # Dense enough that one-pass routing fails and re-route passes
        # actually run — an easy corpus converges at iteration zero for
        # every candidate and discriminates nothing.
        designs = random_corpus(3, num_cells=8, num_nets=48)
    cands = tuple(candidates) if candidates is not None else default_candidates()
    instances = _levelb_instances(designs)
    report = TuningReport()
    for weights in cands:
        score = CandidateScore(weights=weights)
        for bounds, set_b in instances:
            router = LevelBRouter(bounds, set_b)
            config = IterateConfig(
                max_iterations=max_iterations,
                policy=FeatureOrderingPolicy(weights),
            )
            with instrument.collecting() as col:
                result, _rep = iterate_levelb(router, config)
            score.failed_nets += result.nets_attempted - result.nets_completed
            score.wire_length += result.total_wire_length
            score.iterations += col.counters.get(ITERATE_PASSES, 0)
            score.nets_ripped += col.counters.get(ITERATE_NETS_RIPPED, 0)
            score.maze_fallbacks += col.counters.get(MAZE_FALLBACKS, 0)
        report.scores.append(score)
    report.scores.sort(key=lambda s: s.key)
    return report
