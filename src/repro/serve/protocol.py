"""The serve wire protocol: job specifications and their execution.

A :class:`JobSpec` is everything a client sends to request a routing
run: the design (a built-in suite name or an inline ``repro-design``
document), the flow, an optional technology document, and the routing
knobs that change the answer (``planes``) or how it is produced
(``parallel``, ``check``).  Specs validate strictly on ingest so a
malformed request fails at the HTTP boundary, not inside a worker.

Every spec has a *canonical digest* — :func:`repro.io.canonical_digest`
over its canonical document — which keys the server's result cache.
``parallel``, ``backend`` and ``hierarchical`` are deliberately
**excluded** from the digest: the dispatch determinism contract
guarantees speculative routing is bit-identical to serial routing
(docs/PARALLELISM.md), the occupancy backends are storage engines with
identical observable state, and hierarchical wave planning only changes
how non-overlapping work is discovered (docs/SCALING.md) — so requests
differing only in those knobs share one cache entry.  ``check`` *is*
included because it changes the payload (the attached verification
report).

:func:`execute_spec` is the worker-side body: build the design and
``FlowParams``, run the flow, and flatten the outcome into a JSON-safe
payload whose top-level keys (``completion``, ``check_clean``) satisfy
the dispatch runner's success predicate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.io import canonical_digest

PROTOCOL_VERSION = 1

FLOW_NAMES = ("two-layer", "overcell", "ml-channel")

_SPEC_KEYS = frozenset(
    {
        "design",
        "flow",
        "technology",
        "planes",
        "parallel",
        "check",
        "backend",
        "hierarchical",
        "iterate",
        "max_iterations",
        "ordering_policy",
        "objective",
    }
)

# ----------------------------------------------------------------------
# Digest classification. Every FlowParams field appears in exactly one
# of the three literals below; the ``digest.fields`` lint rule
# cross-checks them against FlowParams and JobSpec.canonical() so a
# new routing knob cannot be added without deciding — in writing —
# whether it keys the result cache.
# ----------------------------------------------------------------------

#: FlowParams fields that reach the canonical digest, mapped to the
#: key ``JobSpec.canonical()`` carries them under.
DIGESTED_FIELDS = {
    "technology": "technology",
    "planes": "planes",
    "checked": "check",
    # The iterative driver changes the routed geometry (rip-up and
    # re-route under history costs — docs/ITERATION.md), so every
    # iterate knob keys the cache.
    "iterate": "iterate",
    "max_iterations": "max_iterations",
    "ordering_policy": "ordering_policy",
    # The routing objective changes plane assignment and corner
    # pricing, hence the routed geometry itself.
    "objective": "objective",
}

#: Bit-identical-result knobs: changing one changes *how* the answer
#: is produced, never the answer (docs/PARALLELISM.md, docs/SCALING.md),
#: so they must not fragment the cache.
DIGEST_EXCLUDED = frozenset(
    {"parallel", "parallel_mode", "backend", "hierarchical"}
)

#: FlowParams fields the wire protocol does not expose: every request
#: gets the server-default value, so within one server's cache they
#: cannot vary between entries.
SERVER_DEFAULTED = frozenset(
    {
        "channel_router",
        "margin",
        "aspect",
        "partition",
        "length_threshold",
        "levelb",
        "obstacles",
        "channel_area_factor",
    }
)


class SpecError(ValueError):
    """A client request that fails validation (HTTP 400)."""


@dataclass(frozen=True)
class JobSpec:
    """One validated routing request.

    ``design`` is a built-in suite name (``repro.bench_suite.SUITES``)
    or an inline ``repro-design`` document; ``technology`` an optional
    ``repro-technology`` document.  Inline documents are kept as plain
    dicts — they are rebuilt inside the worker, so a spec stays cheap
    to hold in queues and caches.
    """

    design: str | dict[str, Any]
    flow: str = "overcell"
    technology: dict[str, Any] | None = None
    planes: int = 1
    parallel: int = 0
    check: bool = False
    backend: str = "dense"
    hierarchical: bool = False
    iterate: bool = False
    max_iterations: int = 8
    ordering_policy: str = "longest-first"
    objective: str = "wire"

    # ------------------------------------------------------------------
    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "JobSpec":
        """Validate and build a spec from a client JSON document."""
        if not isinstance(data, dict):
            raise SpecError("job spec must be a JSON object")
        unknown = set(data) - _SPEC_KEYS
        if unknown:
            raise SpecError(f"unknown job spec keys: {sorted(unknown)}")
        if "design" not in data:
            raise SpecError("job spec requires a 'design'")
        design = data["design"]
        if isinstance(design, str):
            from repro.bench_suite import SUITES

            if design not in SUITES:
                raise SpecError(
                    f"unknown suite {design!r} (available: {sorted(SUITES)})"
                )
        elif isinstance(design, dict):
            if design.get("format") != "repro-design":
                raise SpecError(
                    "inline design must be a 'repro-design' document"
                )
        else:
            raise SpecError("'design' must be a suite name or design document")
        flow = data.get("flow", "overcell")
        if flow not in FLOW_NAMES:
            raise SpecError(
                f"unknown flow {flow!r} (available: {sorted(FLOW_NAMES)})"
            )
        technology = data.get("technology")
        if technology is not None:
            if not isinstance(technology, dict):
                raise SpecError(
                    "'technology' must be a 'repro-technology' or "
                    "stackup document"
                )
            # Canonicalize at the boundary: ingest whatever format the
            # client sent and keep the canonical repro-technology dict,
            # so a stackup document and its repro-technology equivalent
            # (at any unit scale quantizing identically) produce the
            # same spec — and share one cache digest.
            from repro.io import technology_to_dict
            from repro.technology import technology_from_any

            try:
                technology = technology_to_dict(technology_from_any(technology))
            except (KeyError, TypeError, ValueError) as exc:
                raise SpecError(f"invalid technology document: {exc}")
        planes = data.get("planes", 1)
        if not isinstance(planes, int) or planes < 1:
            raise SpecError("'planes' must be an integer >= 1")
        parallel = data.get("parallel", 0)
        if not isinstance(parallel, int) or parallel < 0:
            raise SpecError("'parallel' must be an integer >= 0")
        check = data.get("check", False)
        if not isinstance(check, bool):
            raise SpecError("'check' must be a boolean")
        backend = data.get("backend", "dense")
        if not isinstance(backend, str):
            raise SpecError("'backend' must be a string")
        from repro.grid import available_backends

        if backend not in available_backends():
            raise SpecError(
                f"unknown backend {backend!r} "
                f"(available: {available_backends()})"
            )
        hierarchical = data.get("hierarchical", False)
        if not isinstance(hierarchical, bool):
            raise SpecError("'hierarchical' must be a boolean")
        iterate = data.get("iterate", False)
        if not isinstance(iterate, bool):
            raise SpecError("'iterate' must be a boolean")
        max_iterations = data.get("max_iterations", 8)
        if not isinstance(max_iterations, int) or max_iterations < 0:
            raise SpecError("'max_iterations' must be an integer >= 0")
        ordering_policy = data.get("ordering_policy", "longest-first")
        if not isinstance(ordering_policy, str):
            raise SpecError("'ordering_policy' must be a string")
        from repro.iterate import available_policies

        if ordering_policy not in available_policies():
            raise SpecError(
                f"unknown ordering policy {ordering_policy!r} "
                f"(available: {list(available_policies())})"
            )
        objective = data.get("objective", "wire")
        if objective not in ("wire", "vias"):
            raise SpecError("'objective' must be 'wire' or 'vias'")
        return cls(
            design=design,
            flow=flow,
            technology=technology,
            planes=planes,
            parallel=parallel,
            check=check,
            backend=backend,
            hierarchical=hierarchical,
            iterate=iterate,
            max_iterations=max_iterations,
            ordering_policy=ordering_policy,
            objective=objective,
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "design": self.design,
            "flow": self.flow,
            "technology": self.technology,
            "planes": self.planes,
            "parallel": self.parallel,
            "check": self.check,
            "backend": self.backend,
            "hierarchical": self.hierarchical,
            "iterate": self.iterate,
            "max_iterations": self.max_iterations,
            "ordering_policy": self.ordering_policy,
            "objective": self.objective,
        }

    # ------------------------------------------------------------------
    def canonical(self) -> dict[str, Any]:
        """The digest-relevant content.

        ``parallel``, ``backend`` and ``hierarchical`` are excluded:
        all three are bit-identical-result knobs (see module
        docstring), so they must not fragment the cache.
        """
        return {
            "kind": "job",
            "version": PROTOCOL_VERSION,
            "design": self.design,
            "flow": self.flow,
            "technology": self.technology,
            "planes": self.planes,
            "check": self.check,
            "iterate": self.iterate,
            "max_iterations": self.max_iterations,
            "ordering_policy": self.ordering_policy,
            "objective": self.objective,
        }

    def digest(self) -> str:
        """Content digest keying the result cache."""
        return canonical_digest(self.canonical())

    @property
    def design_name(self) -> str:
        if isinstance(self.design, str):
            return self.design
        return str(self.design.get("name", "inline"))


def probe_canonical(spec: JobSpec) -> dict[str, Any]:
    """Digest document for the ``/probe`` endpoint.

    Probes share the result cache with full jobs but live in their own
    key namespace — a cached probe never answers a job or vice versa.
    The flow is irrelevant: probes are always over-cell shaped.  The
    iterate knobs are dropped too — a probe is a one-pass what-if by
    definition, so specs differing only in them share a probe entry.
    """
    doc = spec.canonical()
    doc["kind"] = "probe"
    doc.pop("flow", None)
    doc.pop("check", None)
    doc.pop("iterate", None)
    doc.pop("max_iterations", None)
    doc.pop("ordering_policy", None)
    return doc


# ----------------------------------------------------------------------
# Worker-side execution
# ----------------------------------------------------------------------
def build_design(spec: JobSpec) -> Any:
    """Materialise the spec's design (suite factory or inline doc)."""
    if isinstance(spec.design, str):
        from repro.bench_suite import SUITES

        return SUITES[spec.design]()
    from repro.io import design_from_dict

    return design_from_dict(spec.design)


def build_params(spec: JobSpec) -> Any:
    """The :class:`~repro.flow.FlowParams` a spec translates to.

    In-server parallel routing uses thread dispatch: the serving
    process is already multi-threaded and fork-from-threads is the
    kind of surprise a long-lived server cannot afford.
    """
    from repro.flow import FlowParams
    from repro.io import technology_from_dict

    kwargs: dict[str, Any] = {
        "planes": spec.planes,
        "parallel": spec.parallel,
        "parallel_mode": "thread",
        "checked": spec.check,
        "backend": spec.backend,
        "hierarchical": spec.hierarchical,
        "iterate": spec.iterate,
        "max_iterations": spec.max_iterations,
        "ordering_policy": spec.ordering_policy,
        "objective": spec.objective,
    }
    if spec.technology is not None:
        kwargs["technology"] = technology_from_dict(spec.technology)
    return FlowParams(**kwargs)


def execute_spec(spec: JobSpec) -> dict[str, Any]:
    """Route one spec and flatten the outcome into a JSON payload.

    The top level carries the summary metrics the dispatch runner's
    success predicate reads (``completion``, ``check_clean``); the
    full :func:`~repro.io.flow_result_to_dict` export rides under
    ``"result"`` for the ``/jobs/<id>/result`` endpoint.
    """
    from repro import instrument
    from repro.flow import (
        multilayer_channel_flow,
        overcell_flow,
        two_layer_flow,
    )
    from repro.instrument.names import SPAN_SERVE_JOB
    from repro.io import flow_result_to_dict

    flows = {
        "two-layer": two_layer_flow,
        "overcell": overcell_flow,
        "ml-channel": multilayer_channel_flow,
    }
    design = build_design(spec)
    params = build_params(spec)
    with instrument.span(SPAN_SERVE_JOB):
        result = flows[spec.flow](design, params)
    payload: dict[str, Any] = {
        "digest": spec.digest(),
        "design": result.design,
        "flow": result.flow,
        "completion": result.completion,
        "wire_length": result.wire_length,
        "via_count": result.via_count,
        "layout_area": result.layout_area,
    }
    if spec.check and result.check_report is not None:
        payload["check_clean"] = not result.check_report.violations
        payload["check_violations"] = len(result.check_report.violations)
    payload["result"] = flow_result_to_dict(result)
    return payload


def execute_probe(spec: JobSpec) -> dict[str, Any]:
    """Run the fast what-if routability assessment for a spec."""
    from repro import instrument
    from repro.flow import routability_probe
    from repro.instrument.names import SPAN_SERVE_PROBE

    design = build_design(spec)
    params = build_params(spec)
    with instrument.span(SPAN_SERVE_PROBE):
        probe = routability_probe(design, params)
    return {
        "digest": canonical_digest(probe_canonical(spec)),
        "design": probe.design,
        "routable": probe.routable,
        "completion": probe.completion,
        "level_a_nets": probe.level_a_nets,
        "level_b_nets": probe.level_b_nets,
        "failed_nets": probe.failed_nets,
        "level_b_wire": probe.level_b_wire,
        "level_b_corners": probe.level_b_corners,
        "ripups": probe.ripups,
        "grid_restored": probe.grid_restored,
    }
