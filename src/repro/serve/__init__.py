"""repro.serve — routing-as-a-service.

A persistent, stdlib-only serving layer over the routing stack: a
threaded HTTP server with an async job queue (layered on the dispatch
batch runner), a content-addressed LRU result cache keyed on canonical
request digests, live progress streamed from instrument events, and a
fast ``/probe`` routability endpoint.  See docs/SERVING.md for the
protocol and ``repro serve`` for the CLI entry point.
"""

from repro.serve.cache import ResultCache
from repro.serve.client import ServeClient, ServeError
from repro.serve.jobqueue import (
    EventBuffer,
    JobQueue,
    JobRecord,
    QueueClosed,
    QueueFull,
)
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    JobSpec,
    SpecError,
    execute_probe,
    execute_spec,
    probe_canonical,
)
from repro.serve.server import RoutingServer

__all__ = [
    "PROTOCOL_VERSION",
    "EventBuffer",
    "JobQueue",
    "JobRecord",
    "JobSpec",
    "QueueClosed",
    "QueueFull",
    "ResultCache",
    "RoutingServer",
    "ServeClient",
    "ServeError",
    "SpecError",
    "execute_probe",
    "execute_spec",
    "probe_canonical",
]
