"""Content-addressed LRU result cache.

Keys are canonical sha256 digests of the request (see
:meth:`repro.serve.protocol.JobSpec.digest`); values are the JSON-safe
result payloads the worker produced.  A bounded ``OrderedDict`` with
move-to-front on hit gives O(1) get/put and strict LRU eviction, and
every operation is lock-guarded — the cache is shared by all HTTP
handler threads and job workers.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any


class ResultCache:
    """Thread-safe LRU mapping ``digest -> payload``."""

    def __init__(self, max_entries: int = 256) -> None:
        if max_entries < 1:
            raise ValueError("cache needs at least one entry")
        self.max_entries = max_entries
        self._entries: OrderedDict[str, dict[str, Any]] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, digest: str) -> dict[str, Any] | None:
        """The cached payload, freshened to most-recently-used."""
        with self._lock:
            payload = self._entries.get(digest)
            if payload is None:
                self.misses += 1
                return None
            self._entries.move_to_end(digest)
            self.hits += 1
            return payload

    def peek(self, digest: str) -> bool:
        """Membership without touching recency or hit/miss counters."""
        with self._lock:
            return digest in self._entries

    def put(self, digest: str, payload: dict[str, Any]) -> None:
        """Insert/refresh an entry, evicting the LRU tail if full."""
        with self._lock:
            if digest in self._entries:
                self._entries.move_to_end(digest)
            self._entries[digest] = payload
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "entries": len(self._entries),
                "max_entries": self.max_entries,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }
