"""Stdlib client for the serve protocol.

A thin :mod:`http.client` wrapper so tests, benchmarks, and scripts
can talk to a :class:`~repro.serve.server.RoutingServer` without any
third-party HTTP stack.  One :class:`ServeClient` opens a fresh
connection per request (the server is ThreadingHTTPServer — cheap
accepts, no pooling needed) and decodes every response as JSON.

``stream()`` is the exception: it holds its connection open and yields
NDJSON progress events as the server emits them, until the job's
stream closes.
"""

from __future__ import annotations

import http.client
import json
from collections.abc import Iterator
from typing import Any
from urllib.parse import urlencode


class ServeError(RuntimeError):
    """A non-2xx response from the server."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


class ServeClient:
    """Talk to a routing server at ``host:port``."""

    def __init__(
        self, host: str = "127.0.0.1", port: int = 8787, *, timeout_s: float = 120.0
    ) -> None:
        self.host = host
        self.port = port
        self.timeout_s = timeout_s

    # ------------------------------------------------------------------
    def _connect(self) -> http.client.HTTPConnection:
        return http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout_s
        )

    def _request(
        self,
        method: str,
        path: str,
        body: dict[str, Any] | None = None,
        *,
        ok: tuple[int, ...] = (200, 202),
    ) -> dict[str, Any]:
        conn = self._connect()
        try:
            payload = None
            headers = {}
            if body is not None:
                payload = json.dumps(body).encode("utf-8")
                headers["Content-Type"] = "application/json"
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            raw = response.read()
            try:
                doc = json.loads(raw) if raw else {}
            except ValueError:
                doc = {"error": raw.decode("utf-8", "replace")}
            if response.status not in ok:
                raise ServeError(
                    response.status, str(doc.get("error", doc))
                )
            if not isinstance(doc, dict):
                raise ServeError(response.status, "non-object response")
            doc["_status"] = response.status
            return doc
        finally:
            conn.close()

    # ------------------------------------------------------------------
    def health(self) -> dict[str, Any]:
        return self._request("GET", "/healthz")

    def stats(self) -> dict[str, Any]:
        return self._request("GET", "/stats")

    def submit(self, spec: dict[str, Any]) -> dict[str, Any]:
        """POST a job spec; 202 queued or 200 answered from cache."""
        return self._request("POST", "/jobs", spec)

    def jobs(self) -> list[dict[str, Any]]:
        return list(self._request("GET", "/jobs")["jobs"])

    def status(
        self, job_id: str, *, wait_s: float | None = None
    ) -> dict[str, Any]:
        """One job's record; ``wait_s`` long-polls until terminal."""
        path = f"/jobs/{job_id}"
        if wait_s is not None:
            path += "?" + urlencode({"wait": wait_s})
        return self._request("GET", path)

    def result(self, job_id: str) -> dict[str, Any]:
        """The finished job's full payload (raises 409 while running)."""
        return self._request("GET", f"/jobs/{job_id}/result")

    def events(
        self, job_id: str, *, since: int = 0, wait_s: float | None = None
    ) -> dict[str, Any]:
        """A page of progress events from index ``since``."""
        params: dict[str, Any] = {"since": since}
        if wait_s is not None:
            params["wait"] = wait_s
        path = f"/jobs/{job_id}/events?" + urlencode(params)
        return self._request("GET", path)

    def stream(self, job_id: str, *, since: int = 0) -> Iterator[dict[str, Any]]:
        """Yield NDJSON progress events live until the stream ends."""
        conn = self._connect()
        try:
            conn.request("GET", f"/jobs/{job_id}/stream?since={since}")
            response = conn.getresponse()
            if response.status != 200:
                raw = response.read()
                try:
                    message = str(json.loads(raw).get("error", raw))
                except ValueError:
                    message = raw.decode("utf-8", "replace")
                raise ServeError(response.status, message)
            for line in response:
                line = line.strip()
                if line:
                    yield json.loads(line)
        finally:
            conn.close()

    def wait(self, job_id: str, *, timeout_s: float = 300.0) -> dict[str, Any]:
        """Long-poll until the job reaches a terminal state."""
        import time

        deadline = time.monotonic() + timeout_s
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TimeoutError(f"job {job_id} still running")
            record = self.status(job_id, wait_s=min(remaining, 30.0))
            if record.get("state") in ("done", "failed"):
                return record

    def probe(self, spec: dict[str, Any]) -> dict[str, Any]:
        """Fast routability pre-screen without running the full flow."""
        return self._request("POST", "/probe", spec)

    def shutdown(self, *, drain: bool = True) -> dict[str, Any]:
        return self._request("POST", "/shutdown", {"drain": drain})
