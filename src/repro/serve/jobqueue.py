"""The async job queue: records, per-job event buffers, worker pool.

Submission is non-blocking: :meth:`JobQueue.submit` either answers
immediately from the result cache, *coalesces* onto an identical
in-flight job (single-flight: concurrent duplicates route once), or
enqueues a new :class:`JobRecord` on a bounded queue.  Worker threads
drain the queue, executing each job through a
:class:`repro.dispatch.jobs.JobRunner` so per-job timeout, retry and
crash accounting are inherited from the batch subsystem rather than
reimplemented.

Each record owns an :class:`EventBuffer`.  The worker runs the flow
under a per-thread :func:`repro.instrument.thread_collecting` collector
subscribed into that buffer, so every structured instrument event the
routing stack emits (``net.routed``, ``ripup``, ...) appears in the
buffer *live*, interleaved with the queue's own ``serve.job_state``
transitions.  HTTP clients long-poll or stream the buffer
(docs/SERVING.md).

Shutdown is graceful by default: :meth:`JobQueue.close` stops intake,
lets workers drain everything already queued, and joins them.  With
``drain=False`` the queued-but-unstarted jobs fail fast with a
``server shutdown`` error instead.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import Any

from repro import instrument
from repro.dispatch.jobs import Job, JobOutcome, JobRunner
from repro.instrument.names import (
    EVT_SERVE_JOB_STATE,
    SERVE_CACHE_HITS,
    SERVE_CACHE_MISSES,
    SERVE_COALESCED,
    SERVE_JOBS_COMPLETED,
    SERVE_JOBS_FAILED,
    SERVE_JOBS_SUBMITTED,
)
from repro.serve.cache import ResultCache
from repro.serve.protocol import JobSpec, execute_spec

__all__ = ["EventBuffer", "JobQueue", "JobRecord", "QueueClosed", "QueueFull"]

JOB_STATES = ("queued", "running", "done", "failed")


class QueueFull(RuntimeError):
    """The bounded submission queue is at capacity (HTTP 503)."""


class QueueClosed(RuntimeError):
    """The server is shutting down and refuses new work (HTTP 503)."""


class EventBuffer:
    """Append-only, closeable event log with blocking reads.

    Writers (the instrument subscription and the queue's state
    transitions) append dicts; readers page through by index with an
    optional wait, so one buffer serves both polling
    (``/jobs/<id>/events``) and streaming (``/jobs/<id>/stream``)
    clients.  A ``max_events`` cap bounds memory on pathological jobs:
    overflow drops the *newest* events and counts them, keeping
    indices stable for readers already mid-stream.
    """

    def __init__(self, max_events: int = 10000) -> None:
        self._events: list[dict[str, Any]] = []
        self._cond = threading.Condition()
        self._closed = False
        self.max_events = max_events
        self.dropped = 0

    @property
    def closed(self) -> bool:
        return self._closed

    def append(self, record: dict[str, Any]) -> None:
        with self._cond:
            if self._closed:
                return
            if len(self._events) >= self.max_events:
                self.dropped += 1
                return
            self._events.append(record)
            self._cond.notify_all()

    def extend(self, records: list[dict[str, Any]]) -> None:
        for record in records:
            self.append(record)

    def close(self) -> None:
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    def __len__(self) -> int:
        with self._cond:
            return len(self._events)

    def read(
        self, since: int = 0, wait_s: float | None = None
    ) -> tuple[list[dict[str, Any]], int, bool]:
        """Events from index ``since`` on: ``(events, next, closed)``.

        With ``wait_s`` and nothing new, blocks until an event lands,
        the buffer closes, or the wait elapses — the long-poll
        primitive.  ``next`` is the index to pass on the next call.
        """
        deadline = None if wait_s is None else time.monotonic() + wait_s
        with self._cond:
            while (
                since >= len(self._events)
                and not self._closed
                and deadline is not None
            ):
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._cond.wait(remaining)
            events = self._events[since:]
            return events, since + len(events), self._closed

    def snapshot(self) -> list[dict[str, Any]]:
        with self._cond:
            return list(self._events)


class JobRecord:
    """One submitted job's full lifecycle, visible to HTTP handlers."""

    def __init__(self, job_id: str, spec: JobSpec, digest: str) -> None:
        self.id = job_id
        self.spec = spec
        self.digest = digest
        self.state = "queued"
        self.submitted_at = time.time()
        self.started_at: float | None = None
        self.finished_at: float | None = None
        self.attempts = 0
        self.ok: bool | None = None
        self.error: str | None = None
        self.cache_hit = False
        self.coalesced = False
        self.payload: dict[str, Any] | None = None
        self.events = EventBuffer()
        self._cond = threading.Condition()

    # ------------------------------------------------------------------
    @property
    def terminal(self) -> bool:
        return self.state in ("done", "failed")

    def _note_state(self, state: str, **fields: Any) -> None:
        """Record a state transition: event buffer + global instrument."""
        # repro: allow[serve.lock] EventBuffer.append synchronizes internally on its own Condition; no JobRecord state is touched here
        self.events.append(
            {
                "event": EVT_SERVE_JOB_STATE,
                "job": self.id,
                "state": state,
                "ts": round(time.time(), 6),
                **fields,
            }
        )
        instrument.event(
            EVT_SERVE_JOB_STATE, job=self.id, state=state, **fields
        )

    def set_state(self, state: str, **fields: Any) -> None:
        with self._cond:
            self.state = state
            self._cond.notify_all()
        self._note_state(state, **fields)

    def wait(self, timeout_s: float | None = None) -> bool:
        """Block until the job is terminal; True when it is."""
        deadline = (
            None if timeout_s is None else time.monotonic() + timeout_s
        )
        with self._cond:
            while not self.terminal:
                if deadline is None:
                    self._cond.wait()
                else:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                    self._cond.wait(remaining)
            return self.terminal

    # ------------------------------------------------------------------
    def to_dict(self, include_result: bool = False) -> dict[str, Any]:
        doc: dict[str, Any] = {
            "id": self.id,
            "digest": self.digest,
            "design": self.spec.design_name,
            "flow": self.spec.flow,
            "planes": self.spec.planes,
            "check": self.spec.check,
            "state": self.state,
            "ok": self.ok,
            "attempts": self.attempts,
            "cache_hit": self.cache_hit,
            "coalesced": self.coalesced,
            "error": self.error,
            "submitted_at": round(self.submitted_at, 6),
            "started_at": (
                round(self.started_at, 6) if self.started_at else None
            ),
            "finished_at": (
                round(self.finished_at, 6) if self.finished_at else None
            ),
            "events": len(self.events),
        }
        if include_result:
            doc["payload"] = self.payload
        return doc


class JobQueue:
    """Bounded async queue of routing jobs over a worker thread pool."""

    def __init__(
        self,
        *,
        workers: int = 2,
        cache: ResultCache | None = None,
        timeout_s: float | None = None,
        retries: int = 1,
        queue_size: int = 64,
    ) -> None:
        self.cache = cache if cache is not None else ResultCache()
        self.workers = max(1, workers)
        self.timeout_s = timeout_s
        self.retries = max(0, retries)
        self._queue: queue.Queue[JobRecord | None] = queue.Queue(
            maxsize=max(1, queue_size)
        )
        self._lock = threading.RLock()
        self._records: dict[str, JobRecord] = {}
        self._order: list[str] = []
        self._inflight: dict[str, JobRecord] = {}
        self._followers: dict[str, list[JobRecord]] = {}
        self._threads: list[threading.Thread] = []
        self._seq = 0
        self._closed = False
        self.counters = {
            "submitted": 0,
            "completed": 0,
            "failed": 0,
            "cache_hits": 0,
            "cache_misses": 0,
            "coalesced": 0,
        }

    # ------------------------------------------------------------------
    def start(self) -> None:
        for i in range(self.workers):
            t = threading.Thread(
                target=self._worker, name=f"serve-worker-{i}", daemon=True
            )
            t.start()
            # repro: allow[serve.lock] startup hand-off: start() runs once on the owning thread before any worker or handler reads _threads
            self._threads.append(t)

    @property
    def closed(self) -> bool:
        return self._closed

    def depth(self) -> int:
        return self._queue.qsize()

    def _count(self, key: str, instrument_name: str | None = None) -> None:
        with self._lock:
            self.counters[key] += 1
        if instrument_name is not None:
            instrument.count(instrument_name)

    # ------------------------------------------------------------------
    def submit(self, spec: JobSpec) -> JobRecord:
        """Register a job: cache answer, coalesce, or enqueue.

        Raises :class:`QueueClosed` while shutting down and
        :class:`QueueFull` when the bounded queue is at capacity —
        callers map these to HTTP 503 so clients back off.
        """
        digest = spec.digest()
        with self._lock:
            if self._closed:
                raise QueueClosed("server is shutting down")
            self._seq += 1
            record = JobRecord(f"j{self._seq:06d}", spec, digest)
            self._records[record.id] = record
            self._order.append(record.id)
            self.counters["submitted"] += 1
            instrument.count(SERVE_JOBS_SUBMITTED)

            cached = self.cache.get(digest)
            if cached is not None:
                self.counters["cache_hits"] += 1
                instrument.count(SERVE_CACHE_HITS)
                self._resolve_from_cache(record, cached)
                return record

            primary = self._inflight.get(digest)
            if primary is not None and not primary.terminal:
                record.coalesced = True
                self.counters["coalesced"] += 1
                instrument.count(SERVE_COALESCED)
                self._followers.setdefault(digest, []).append(record)
                record.set_state(primary.state, coalesced_onto=primary.id)
                return record

            self.counters["cache_misses"] += 1
            instrument.count(SERVE_CACHE_MISSES)
            self._inflight[digest] = record
            try:
                self._queue.put_nowait(record)
            except queue.Full:
                del self._inflight[digest]
                del self._records[record.id]
                self._order.remove(record.id)
                raise QueueFull(
                    f"job queue full ({self._queue.maxsize} pending)"
                ) from None
            record._note_state("queued")
            return record

    def get(self, job_id: str) -> JobRecord | None:
        with self._lock:
            return self._records.get(job_id)

    def list_records(self, limit: int = 100) -> list[JobRecord]:
        with self._lock:
            ids = self._order[-limit:]
            return [self._records[i] for i in ids]

    def stats(self) -> dict[str, Any]:
        with self._lock:
            by_state: dict[str, int] = {s: 0 for s in JOB_STATES}
            for record in self._records.values():
                by_state[record.state] += 1
        return {
            "counters": dict(self.counters),
            "jobs_by_state": by_state,
            "queue_depth": self.depth(),
            "workers": self.workers,
            "closed": self._closed,
        }

    # ------------------------------------------------------------------
    def _resolve_from_cache(
        self, record: JobRecord, payload: dict[str, Any]
    ) -> None:
        record.cache_hit = True
        record.ok = True
        record.payload = payload
        record.started_at = record.finished_at = time.time()
        record.set_state("done", cache_hit=True)
        record.events.close()

    def _resolve_followers(
        self, digest: str, primary: JobRecord
    ) -> None:
        """Copy the primary's outcome onto coalesced duplicates.

        Coalesced requests were answered by one routing run instead of
        their own — that is a cache hit in everything but timing, and
        is counted as one.
        """
        with self._lock:
            followers = self._followers.pop(digest, [])
            # A duplicate submitted after the primary went terminal may
            # already have re-registered this digest as a fresh
            # primary; only remove our own entry.
            if self._inflight.get(digest) is primary:
                del self._inflight[digest]
        primary_events = primary.events.snapshot()
        for follower in followers:
            follower.attempts = primary.attempts
            follower.ok = primary.ok
            follower.error = primary.error
            follower.payload = primary.payload
            follower.cache_hit = primary.ok is True
            if follower.cache_hit:
                self._count("cache_hits", SERVE_CACHE_HITS)
            follower.started_at = primary.started_at
            follower.finished_at = primary.finished_at
            follower.events.extend(primary_events)
            follower.set_state(
                primary.state, coalesced_onto=primary.id
            )
            follower.events.close()

    def _worker(self) -> None:
        while True:
            record = self._queue.get()
            if record is None:
                self._queue.task_done()
                break
            try:
                self._execute(record)
            finally:
                self._queue.task_done()

    def _execute(self, record: JobRecord) -> None:
        record.started_at = time.time()
        record.set_state("running")
        spec = record.spec
        collector = instrument.Collector()
        collector.subscribe(record.events.append)

        def body(job: Job) -> dict[str, Any]:
            with instrument.thread_collecting(collector):
                return execute_spec(spec)

        dispatch_job = Job(
            design=spec.design_name,
            flow=spec.flow,
            check=spec.check,
            parallel=spec.parallel,
        )
        # Timeouts need a pool (the runner cannot interrupt in-line
        # work); without one the serial path keeps retry semantics and
        # skips the per-job executor entirely.
        if self.timeout_s is not None:
            runner = JobRunner(
                2,
                mode="thread",
                timeout_s=self.timeout_s,
                retries=self.retries,
                retry_timeouts=True,
                job_body=body,
            )
        else:
            runner = JobRunner(
                1, mode="serial", retries=self.retries, job_body=body
            )
        outcome: JobOutcome = runner.run([dispatch_job]).outcomes[0]

        record.attempts = outcome.attempts
        record.ok = outcome.ok
        record.error = outcome.error
        record.payload = outcome.summary
        record.finished_at = time.time()
        if outcome.summary is not None:
            if outcome.ok:
                self.cache.put(record.digest, outcome.summary)
            self._count("completed", SERVE_JOBS_COMPLETED)
            record.set_state(
                "done",
                ok=outcome.ok,
                elapsed_s=round(outcome.elapsed_s, 6),
            )
        else:
            self._count("failed", SERVE_JOBS_FAILED)
            record.set_state(
                "failed",
                error=outcome.error,
                timed_out=outcome.timed_out,
            )
        record.events.close()
        self._resolve_followers(record.digest, record)

    # ------------------------------------------------------------------
    def close(
        self, drain: bool = True, timeout_s: float | None = None
    ) -> None:
        """Stop intake and shut the workers down.

        ``drain=True`` (default) lets queued jobs finish; otherwise
        unstarted jobs fail immediately with a shutdown error.  Join
        waits ``timeout_s`` per worker (daemon threads, so a hung job
        cannot wedge interpreter exit either way).
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
        if not drain:
            while True:
                try:
                    record = self._queue.get_nowait()
                except queue.Empty:
                    break
                if record is None:
                    continue
                record.ok = False
                record.error = "server shutdown before start"
                record.finished_at = time.time()
                self._count("failed", SERVE_JOBS_FAILED)
                record.set_state("failed", error=record.error)
                record.events.close()
                self._resolve_followers(record.digest, record)
                self._queue.task_done()
        for _ in self._threads:
            self._queue.put(None)
        for t in self._threads:
            t.join(timeout=timeout_s)
