"""The persistent HTTP front end: routing-as-a-service.

A stdlib-only :class:`~http.server.ThreadingHTTPServer` speaking a
small JSON protocol over the job queue (docs/SERVING.md):

===========================  ==========================================
``GET  /healthz``            liveness + drain state
``GET  /stats``              queue/cache/uptime counters
``POST /jobs``               submit a :class:`JobSpec` (202 + record)
``GET  /jobs``               recent job records (no payloads)
``GET  /jobs/<id>``          one record; ``?wait=S`` long-polls until
                             the job is terminal
``GET  /jobs/<id>/result``   the full result payload (409 until done)
``GET  /jobs/<id>/events``   progress events from ``?since=N``;
                             ``?wait=S`` long-polls for new ones
``GET  /jobs/<id>/stream``   live NDJSON event stream until the job
                             finishes (connection-close delimited)
``POST /probe``              fast routability pre-screen (cached)
``POST /shutdown``           graceful drain-and-stop
===========================  ==========================================

Handler threads only ever touch thread-safe queue/cache surfaces; the
routing work itself happens on the queue's worker threads, each under
its own instrument collector, so a slow request never blocks a fast
status poll.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any
from urllib.parse import parse_qs, urlparse

from repro import instrument
from repro.instrument.names import SERVE_PROBES, SERVE_REQUESTS
from repro.io import canonical_digest
from repro.serve.cache import ResultCache
from repro.serve.jobqueue import JobQueue, JobRecord, QueueClosed, QueueFull
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    JobSpec,
    SpecError,
    execute_probe,
    probe_canonical,
)

__all__ = ["RoutingServer"]

_MAX_WAIT_S = 60.0
_MAX_BODY_BYTES = 32 * 1024 * 1024


class _Httpd(ThreadingHTTPServer):
    """Threaded HTTP server tuned for bursty client fan-in.

    The stock listen backlog (5) resets connections when dozens of
    clients connect in the same instant — the exact load shape the
    serve benchmarks produce — so raise it well past the worst burst.
    """

    daemon_threads = True
    request_queue_size = 128


def _clamp_wait(raw: list[str] | None) -> float | None:
    if not raw:
        return None
    try:
        return max(0.0, min(float(raw[0]), _MAX_WAIT_S))
    except ValueError:
        return None


class RoutingServer:
    """One long-lived serving process: HTTP front end + job queue.

    ``port=0`` binds an ephemeral port (read it back from ``port``
    after construction) — the test and benchmark harnesses rely on
    that to run many servers side by side.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        workers: int = 2,
        cache_size: int = 256,
        timeout_s: float | None = None,
        retries: int = 1,
        queue_size: int = 64,
    ) -> None:
        self.cache = ResultCache(cache_size)
        self.jobs = JobQueue(
            workers=workers,
            cache=self.cache,
            timeout_s=timeout_s,
            retries=retries,
            queue_size=queue_size,
        )
        handler = type("Handler", (_Handler,), {"app": self})
        self._httpd = _Httpd((host, port), handler)
        self._thread: threading.Thread | None = None
        self._stopped = threading.Event()
        self._stop_lock = threading.Lock()
        self.started_at = time.time()
        # Bumped from concurrent HTTP handler threads: += on an int is
        # read-modify-write, so it takes its own lock.
        self.probe_counter = 0
        self._probe_lock = threading.Lock()

    # ------------------------------------------------------------------
    @property
    def host(self) -> str:
        return self._httpd.server_address[0]  # type: ignore[return-value]

    @property
    def port(self) -> int:
        return int(self._httpd.server_address[1])

    @property
    def address(self) -> str:
        return f"http://{self.host}:{self.port}"

    @property
    def draining(self) -> bool:
        return self.jobs.closed

    def start(self) -> "RoutingServer":
        """Spawn the worker pool and the HTTP accept loop (non-blocking)."""
        self.jobs.start()
        # repro: allow[serve.lock] startup hand-off: assigned once by the owning thread before any handler thread exists; stop() joins through _stop_lock
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="serve-http",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self, drain: bool = True) -> None:
        """Graceful shutdown: stop intake, drain jobs, stop HTTP.

        New submissions are refused (503) the moment this is called;
        status/result/event endpoints keep answering while queued work
        drains, so clients watching a job see it through to a terminal
        state.  Idempotent and thread-safe.
        """
        with self._stop_lock:
            if self._stopped.is_set():
                return
            self.jobs.close(drain=drain)
            self._httpd.shutdown()
            if self._thread is not None:
                self._thread.join(timeout=10.0)
            self._httpd.server_close()
            self._stopped.set()

    def wait_stopped(self, timeout_s: float | None = None) -> bool:
        return self._stopped.wait(timeout_s)

    # ------------------------------------------------------------------
    def stats(self) -> dict[str, Any]:
        return {
            "format": "repro-serve-stats",
            "version": PROTOCOL_VERSION,
            "uptime_s": round(time.time() - self.started_at, 3),
            "draining": self.draining,
            "probes": self.probe_counter,
            "queue": self.jobs.stats(),
            "cache": self.cache.stats(),
        }

    def run_probe(self, spec: JobSpec) -> dict[str, Any]:
        """Cached what-if routability assessment (``/probe`` body)."""
        with self._probe_lock:
            self.probe_counter += 1
        instrument.count(SERVE_PROBES)
        digest = canonical_digest(probe_canonical(spec))
        cached = self.cache.get(digest)
        if cached is not None:
            return {**cached, "cache_hit": True}
        result = execute_probe(spec)
        self.cache.put(digest, result)
        return {**result, "cache_hit": False}


class _Handler(BaseHTTPRequestHandler):
    """Routes HTTP verbs+paths onto the owning :class:`RoutingServer`."""

    app: RoutingServer  # bound by RoutingServer via a type() subclass
    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.1"

    # -- plumbing -------------------------------------------------------
    def log_message(self, format: str, *args: Any) -> None:
        pass  # quiet by default; observability goes through instrument

    def _send_json(
        self, code: int, doc: dict[str, Any], *, close: bool = False
    ) -> None:
        body = (json.dumps(doc, sort_keys=True) + "\n").encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if close:
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(body)

    def _error(self, code: int, message: str) -> None:
        self._send_json(code, {"error": message})

    def _read_json(self) -> dict[str, Any] | None:
        length = int(self.headers.get("Content-Length", 0) or 0)
        if length <= 0:
            self._error(400, "request body required")
            return None
        if length > _MAX_BODY_BYTES:
            self._error(413, "request body too large")
            return None
        raw = self.rfile.read(length)
        try:
            doc = json.loads(raw)
        except ValueError:
            self._error(400, "request body is not valid JSON")
            return None
        if not isinstance(doc, dict):
            self._error(400, "request body must be a JSON object")
            return None
        return doc

    def _record_or_404(self, job_id: str) -> JobRecord | None:
        record = self.app.jobs.get(job_id)
        if record is None:
            self._error(404, f"unknown job {job_id!r}")
        return record

    # -- GET ------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        instrument.count(SERVE_REQUESTS)
        url = urlparse(self.path)
        query = parse_qs(url.query)
        parts = [p for p in url.path.split("/") if p]
        try:
            if url.path == "/healthz":
                self._send_json(
                    200,
                    {
                        "ok": True,
                        "state": (
                            "draining" if self.app.draining else "serving"
                        ),
                        "uptime_s": round(
                            time.time() - self.app.started_at, 3
                        ),
                    },
                )
            elif url.path == "/stats":
                self._send_json(200, self.app.stats())
            elif url.path == "/jobs":
                records = self.app.jobs.list_records()
                self._send_json(
                    200, {"jobs": [r.to_dict() for r in records]}
                )
            elif len(parts) == 2 and parts[0] == "jobs":
                self._get_job(parts[1], query)
            elif len(parts) == 3 and parts[0] == "jobs":
                record = self._record_or_404(parts[1])
                if record is None:
                    return
                if parts[2] == "result":
                    self._get_result(record)
                elif parts[2] == "events":
                    self._get_events(record, query)
                elif parts[2] == "stream":
                    self._stream_events(record, query)
                else:
                    self._error(404, f"unknown endpoint {url.path!r}")
            else:
                self._error(404, f"unknown endpoint {url.path!r}")
        except (BrokenPipeError, ConnectionResetError):  # pragma: no cover
            pass  # client went away mid-response; nothing to salvage

    def _get_job(self, job_id: str, query: dict[str, list[str]]) -> None:
        record = self._record_or_404(job_id)
        if record is None:
            return
        wait_s = _clamp_wait(query.get("wait"))
        if wait_s:
            record.wait(wait_s)
        self._send_json(200, record.to_dict())

    def _get_result(self, record: JobRecord) -> None:
        if not record.terminal:
            self._send_json(
                409,
                {
                    "error": "job not finished",
                    "id": record.id,
                    "state": record.state,
                },
            )
        elif record.payload is None:
            self._send_json(
                500,
                {
                    "error": record.error or "job produced no result",
                    "id": record.id,
                    "state": record.state,
                },
            )
        else:
            self._send_json(200, record.to_dict(include_result=True))

    def _get_events(
        self, record: JobRecord, query: dict[str, list[str]]
    ) -> None:
        try:
            since = max(0, int(query.get("since", ["0"])[0]))
        except ValueError:
            self._error(400, "'since' must be an integer")
            return
        wait_s = _clamp_wait(query.get("wait"))
        events, next_index, closed = record.events.read(since, wait_s)
        self._send_json(
            200,
            {
                "id": record.id,
                "events": events,
                "next": next_index,
                "done": closed and next_index >= len(record.events),
                "state": record.state,
            },
        )

    def _stream_events(
        self, record: JobRecord, query: dict[str, list[str]]
    ) -> None:
        """NDJSON live stream: one event per line until the job ends.

        Delimited by connection close (no chunked framing needed —
        ``http.client`` and curl both read to EOF), so the response
        advertises ``Connection: close``.
        """
        try:
            since = max(0, int(query.get("since", ["0"])[0]))
        except ValueError:
            self._error(400, "'since' must be an integer")
            return
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Cache-Control", "no-store")
        self.send_header("Connection", "close")
        self.end_headers()
        index = since
        while True:
            events, index, closed = record.events.read(index, wait_s=1.0)
            for event in events:
                line = json.dumps(event, sort_keys=True) + "\n"
                self.wfile.write(line.encode("utf-8"))
            if events:
                self.wfile.flush()
            if closed and index >= len(record.events):
                break
        tail = {
            "event": "serve.stream_end",
            "id": record.id,
            "state": record.state,
            "ok": record.ok,
        }
        self.wfile.write(
            (json.dumps(tail, sort_keys=True) + "\n").encode("utf-8")
        )
        self.close_connection = True

    # -- POST -----------------------------------------------------------
    def do_POST(self) -> None:  # noqa: N802 - http.server API
        instrument.count(SERVE_REQUESTS)
        url = urlparse(self.path)
        try:
            if url.path == "/jobs":
                self._post_job()
            elif url.path == "/probe":
                self._post_probe()
            elif url.path == "/shutdown":
                self._post_shutdown()
            else:
                self._error(404, f"unknown endpoint {url.path!r}")
        except (BrokenPipeError, ConnectionResetError):  # pragma: no cover
            pass

    def _post_job(self) -> None:
        doc = self._read_json()
        if doc is None:
            return
        try:
            spec = JobSpec.from_dict(doc)
        except SpecError as exc:
            self._error(400, str(exc))
            return
        try:
            record = self.app.jobs.submit(spec)
        except QueueFull as exc:
            self._error(503, str(exc))
            return
        except QueueClosed as exc:
            self._error(503, str(exc))
            return
        code = 200 if record.cache_hit else 202
        self._send_json(code, record.to_dict())

    def _post_probe(self) -> None:
        doc = self._read_json()
        if doc is None:
            return
        if self.app.draining:
            self._error(503, "server is shutting down")
            return
        doc.setdefault("flow", "overcell")
        try:
            spec = JobSpec.from_dict(doc)
        except SpecError as exc:
            self._error(400, str(exc))
            return
        try:
            self._send_json(200, self.app.run_probe(spec))
        except Exception as exc:  # surface worker errors as JSON
            self._error(500, f"{type(exc).__name__}: {exc}")

    def _post_shutdown(self) -> None:
        drain = True
        if self.headers.get("Content-Length"):
            doc = self._read_json()
            if doc is None:
                return
            drain = bool(doc.get("drain", True))
        self._send_json(
            200, {"ok": True, "draining": True, "drain": drain}, close=True
        )
        # Stop from a background thread: stop() joins the accept loop
        # and the workers, which must not happen on a handler thread
        # the client is still waiting on.
        threading.Thread(
            target=self.app.stop,
            kwargs={"drain": drain},
            name="serve-shutdown",
            daemon=True,
        ).start()
