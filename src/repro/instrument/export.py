"""Profile exporters: JSON, CSV and a human-readable tree report.

The JSON form (:func:`snapshot` / :func:`to_json`) is the canonical
round-trippable export — :func:`profile_from_dict` rebuilds a
:class:`~repro.instrument.collector.Collector` from it.  The CSV forms
flatten one aspect each (counters, spans, events) for spreadsheet
diffing across runs; :func:`tree_report` renders the span tree with
wall/self times plus the counter table for terminals.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Any

from repro.instrument.collector import Collector, SpanNode, active

PROFILE_FORMAT = "repro-profile"


def _resolve(collector: Collector | None) -> Collector:
    return collector if collector is not None else active()


def snapshot(
    collector: Collector | None = None, *, include_events: bool = True
) -> dict[str, Any]:
    """Plain-data export of a collector (the active one by default).

    ``include_events=False`` drops the event log body (keeping its
    length) for compact artifacts; such snapshots still round-trip,
    minus the events.
    """
    c = _resolve(collector)
    out: dict[str, Any] = {
        "format": PROFILE_FORMAT,
        "spans": c.root.to_dict(),
        "counters": dict(sorted(c.counters.items())),
        "gauges": dict(sorted(c.gauges.items())),
        "events_total": len(c.events),
    }
    if include_events:
        out["events"] = [dict(e) for e in c.events]
    return out


def profile_from_dict(data: dict[str, Any]) -> Collector:
    """Rebuild a collector from a :func:`snapshot` dictionary."""
    if data.get("format") != PROFILE_FORMAT:
        raise ValueError(f"not a {PROFILE_FORMAT} document")
    c = Collector()
    c.root = SpanNode.from_dict(data["spans"])
    c._stack = [c.root]
    c.counters = {str(k): int(v) for k, v in data.get("counters", {}).items()}
    c.gauges = {str(k): float(v) for k, v in data.get("gauges", {}).items()}
    c.events = [dict(e) for e in data.get("events", ())]
    c._seq = max((int(e.get("seq", 0)) for e in c.events), default=0)
    return c


def to_json(collector: Collector | None = None, *, indent: int = 2) -> str:
    # sort_keys so exported profiles diff cleanly run-to-run.
    return json.dumps(snapshot(collector), indent=indent, sort_keys=True)


def write_json(path: str, collector: Collector | None = None) -> None:
    with open(path, "w") as fh:
        fh.write(to_json(collector))
        fh.write("\n")


# ----------------------------------------------------------------------
# CSV
# ----------------------------------------------------------------------
def counters_to_csv(collector: Collector | None = None) -> str:
    """``counter,value`` rows, sorted by name (gauges appended)."""
    c = _resolve(collector)
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(["counter", "value"])
    for name, value in sorted(c.counters.items()):
        writer.writerow([name, value])
    for name, value in sorted(c.gauges.items()):
        writer.writerow([name, value])
    return buf.getvalue()


def spans_to_csv(collector: Collector | None = None) -> str:
    """Flattened span rows: ``path,calls,total_s,self_s``.

    Paths join span names with ``/`` (names themselves contain dots).
    """
    c = _resolve(collector)
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(["path", "calls", "total_s", "self_s"])

    def emit(node: SpanNode, prefix: str) -> None:
        for child in node.children.values():
            path = f"{prefix}/{child.name}" if prefix else child.name
            writer.writerow(
                [path, child.calls, f"{child.total_s:.6f}", f"{child.self_s:.6f}"]
            )
            emit(child, path)

    emit(c.root, "")
    return buf.getvalue()


def events_to_csv(collector: Collector | None = None) -> str:
    """``seq,event,data`` rows; extra fields JSON-encoded in ``data``."""
    c = _resolve(collector)
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(["seq", "event", "data"])
    for evt in c.events:
        extra = {k: v for k, v in evt.items() if k not in ("seq", "event")}
        writer.writerow(
            [evt.get("seq"), evt.get("event"), json.dumps(extra, sort_keys=True)]
        )
    return buf.getvalue()


# ----------------------------------------------------------------------
# Human-readable report
# ----------------------------------------------------------------------
def tree_report(collector: Collector | None = None) -> str:
    """The span tree plus counter/gauge tables, ready to print."""
    c = _resolve(collector)
    lines = ["span tree (wall-clock):"]
    rows = [
        (depth - 1, node)
        for depth, node in c.root.walk()
        if node is not c.root
    ]
    if not rows:
        lines.append("  (no spans recorded)")
    name_width = max((2 * d + len(n.name) for d, n in rows), default=4) + 2
    for depth, node in rows:
        label = "  " * depth + node.name
        lines.append(
            f"  {label:<{name_width}}{node.calls:>7}x"
            f"{node.total_s:>11.4f}s{node.self_s:>11.4f}s"
        )
    if rows:
        header = "  " + " " * name_width + "  calls      total       self"
        lines.insert(1, header)
    lines.append("counters:")
    if not c.counters:
        lines.append("  (none)")
    cwidth = max((len(k) for k in c.counters), default=4) + 2
    for name, value in sorted(c.counters.items()):
        lines.append(f"  {name:<{cwidth}}{value:>14,}")
    if c.gauges:
        lines.append("gauges:")
        gwidth = max(len(k) for k in c.gauges) + 2
        for name, value in sorted(c.gauges.items()):
            lines.append(f"  {name:<{gwidth}}{value:>14.4f}")
    lines.append(f"events: {len(c.events)} recorded")
    return "\n".join(lines)
