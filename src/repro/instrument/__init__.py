"""``repro.instrument`` — tracing, counters and profiling for the stack.

A dependency-free observability subsystem with four pieces:

* **spans** — nesting context-manager timers aggregated into a tree
  (flow → placement → channel routing → level B → per-net search);
* **counters / gauges** — named tallies (MBFS nodes expanded, rip-ups,
  maze fallbacks, ...) reported through a global-but-swappable
  collector that costs ~nothing when collection is disabled;
* **events** — an append-only structured log (net routed/failed,
  fallback taken, channel cyclic);
* **exporters** — JSON (round-trippable), CSV, and a human-readable
  tree report.

Typical use::

    from repro import instrument

    with instrument.collecting() as col:
        result = overcell_flow(design)
    print(instrument.tree_report(col))
    instrument.write_json("profile.json", col)

See ``docs/OBSERVABILITY.md`` for the name catalogue and the protocol
for instrumenting new code.  Instrumented call sites import the
module-level helpers (``span``/``count``/``gauge``/``event``) plus the
constants in :mod:`repro.instrument.names`.
"""

from repro.instrument import names
from repro.instrument.collector import (
    Collector,
    NullCollector,
    Span,
    SpanNode,
    active,
    collecting,
    count,
    enabled,
    event,
    gauge,
    get_collector,
    set_collector,
    span,
    thread_collecting,
)
from repro.instrument.export import (
    PROFILE_FORMAT,
    counters_to_csv,
    events_to_csv,
    profile_from_dict,
    snapshot,
    spans_to_csv,
    to_json,
    tree_report,
    write_json,
)

__all__ = [
    "Collector",
    "NullCollector",
    "Span",
    "SpanNode",
    "PROFILE_FORMAT",
    "active",
    "collecting",
    "count",
    "counters_to_csv",
    "enabled",
    "event",
    "events_to_csv",
    "gauge",
    "get_collector",
    "names",
    "profile_from_dict",
    "set_collector",
    "snapshot",
    "span",
    "spans_to_csv",
    "thread_collecting",
    "to_json",
    "tree_report",
    "write_json",
]
