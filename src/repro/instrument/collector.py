"""Span/counter/event collection core.

The collector is *global but swappable*: instrumented code calls the
module-level helpers (:func:`span`, :func:`count`, :func:`event`,
:func:`gauge`) which delegate to the currently active collector.  By
default that is a :class:`NullCollector` whose mutators are no-ops, so
instrumentation costs one attribute read and a branch when collection
is off.  Hot loops keep their own local tallies and report them in one
``count`` call per search/route, so the disabled path never pays a
per-node price.

``collecting()`` installs a fresh :class:`Collector` for the duration
of a ``with`` block and restores the previous one afterwards::

    with instrument.collecting() as col:
        result = overcell_flow(design)
    print(tree_report(col))

Spans aggregate by name under their parent (profiler-style): entering
``levelb.net`` 40 times under ``levelb.route`` yields one
:class:`SpanNode` with ``calls == 40``.  A :class:`Span` always
measures its own wall time and exposes it as ``elapsed_s`` even when
collection is disabled, so callers (e.g. ``LevelBRouter.route``) can
source their timing from the span unconditionally.

The collector is not thread-safe; give each thread its own collector
via :func:`thread_collecting`, which overrides the global one for the
calling thread only.  Long-lived multi-tenant processes (the
``repro.serve`` job workers) run each job under its own thread-local
collector so concurrent jobs never interleave spans or counters, while
single-threaded callers keep the plain global swap.

Collectors also expose a *subscription point*: listeners registered
with :meth:`Collector.subscribe` see every structured event as it is
recorded.  That is how serve streams live per-net progress to HTTP
clients without polling the event list.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from collections.abc import Callable, Iterator
from typing import Any


@dataclass
class SpanNode:
    """One node of the aggregated span tree.

    ``calls`` counts completed enters of this span name under this
    parent; ``total_s`` sums their wall time (re-entrant nesting of the
    same name creates a *child* node, so totals never double-count).
    """

    name: str
    calls: int = 0
    total_s: float = 0.0
    children: dict[str, "SpanNode"] = field(default_factory=dict)

    def child(self, name: str) -> "SpanNode":
        node = self.children.get(name)
        if node is None:
            node = self.children[name] = SpanNode(name)
        return node

    @property
    def self_s(self) -> float:
        """Wall time not attributed to any child span."""
        return max(
            0.0, self.total_s - sum(c.total_s for c in self.children.values())
        )

    def walk(self, depth: int = 0) -> Iterator[tuple[int, "SpanNode"]]:
        """Depth-first ``(depth, node)`` pairs, this node first."""
        yield depth, self
        for c in self.children.values():
            yield from c.walk(depth + 1)

    def find(self, *path: str) -> "SpanNode" | None:
        """The descendant at ``path`` (child names), or ``None``."""
        node: SpanNode | None = self
        for name in path:
            if node is None:
                return None
            node = node.children.get(name)
        return node

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "calls": self.calls,
            "total_s": self.total_s,
            "children": [c.to_dict() for c in self.children.values()],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "SpanNode":
        node = cls(
            name=data["name"],
            calls=int(data.get("calls", 0)),
            total_s=float(data.get("total_s", 0.0)),
        )
        for child in data.get("children", ()):
            sub = cls.from_dict(child)
            node.children[sub.name] = sub
        return node


class Span:
    """Context-manager timer; reports to its collector when enabled.

    Always measures wall time (two ``perf_counter`` calls) so
    ``elapsed_s`` is valid even with collection disabled.
    """

    __slots__ = ("name", "elapsed_s", "_collector", "_node", "_start")

    def __init__(self, name: str, collector: "Collector") -> None:
        self.name = name
        self.elapsed_s = 0.0
        self._collector = collector
        self._node: SpanNode | None = None

    def __enter__(self) -> "Span":
        if self._collector.enabled:
            self._node = self._collector._push(self.name)
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        self.elapsed_s = time.perf_counter() - self._start
        if self._node is not None:
            self._collector._pop(self._node, self.elapsed_s)


class Collector:
    """Accumulates one run's spans, counters, gauges and events."""

    enabled: bool = True

    def __init__(self) -> None:
        self.root = SpanNode("root")
        self.counters: dict[str, int] = {}
        self.gauges: dict[str, float] = {}
        self.events: list[dict[str, Any]] = []
        self._stack: list[SpanNode] = [self.root]
        self._seq = 0
        self._listeners: list[Callable[[dict[str, Any]], None]] = []

    # -- spans ----------------------------------------------------------
    def span(self, name: str) -> Span:
        return Span(name, self)

    def current_span(self) -> SpanNode:
        """The innermost open span node (the root when none is open)."""
        return self._stack[-1]

    def _push(self, name: str) -> SpanNode:
        node = self._stack[-1].child(name)
        self._stack.append(node)
        return node

    def _pop(self, node: SpanNode, elapsed_s: float) -> None:
        if self._stack and self._stack[-1] is node:
            self._stack.pop()
        node.calls += 1
        node.total_s += elapsed_s

    # -- counters / gauges / events ------------------------------------
    def count(self, name: str, n: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + n

    def declare(self, *names: str) -> None:
        """Ensure counters exist (at 0) even if they never fire.

        Subsystems declare their catalogue up front so exported
        profiles distinguish "never happened" from "not instrumented".
        """
        for name in names:
            self.counters.setdefault(name, 0)

    def gauge(self, name: str, value: float) -> None:
        self.gauges[name] = float(value)

    def event(self, name: str, **fields: Any) -> None:
        self._seq += 1
        record = {"seq": self._seq, "event": name, **fields}
        self.events.append(record)
        for listener in self._listeners:
            try:
                listener(record)
            except Exception:
                # A broken subscriber must never take routing down.
                pass

    # -- event subscription --------------------------------------------
    def subscribe(self, listener: Callable[[dict[str, Any]], None]) -> None:
        """Call ``listener(record)`` for every event as it is recorded.

        Listeners run synchronously on the recording thread; keep them
        cheap (append to a buffer, notify a condition).  Exceptions are
        swallowed — observability never fails the observed work.
        """
        self._listeners.append(listener)

    def unsubscribe(self, listener: Callable[[dict[str, Any]], None]) -> None:
        """Remove a previously subscribed listener (no-op if absent)."""
        try:
            self._listeners.remove(listener)
        except ValueError:
            pass


class NullCollector(Collector):
    """The disabled collector: every mutator is a no-op.

    Its ``counters``/``gauges``/``events`` stay empty so reads remain
    safe; ``span`` still returns a timing :class:`Span` (which skips
    tree bookkeeping because ``enabled`` is ``False``).
    """

    enabled = False

    def count(self, name: str, n: int = 1) -> None:  # pragma: no cover
        pass

    def declare(self, *names: str) -> None:  # pragma: no cover
        pass

    def gauge(self, name: str, value: float) -> None:  # pragma: no cover
        pass

    def event(self, name: str, **fields: Any) -> None:  # pragma: no cover
        pass


_NULL = NullCollector()
_active: Collector = _NULL

# Per-thread overrides (``thread_collecting``).  ``_tls_users`` counts
# live overrides so the hot-path helpers only pay the thread-local
# lookup while at least one exists — zero-cost for the common
# single-collector case.
_tls = threading.local()
_tls_lock = threading.Lock()
_tls_users = 0


def active() -> Collector:
    """The calling thread's collector (the global one by default)."""
    if _tls_users:
        col = getattr(_tls, "collector", None)
        if col is not None:
            return col  # type: ignore[no-any-return]
    return _active


get_collector = active


def set_collector(collector: Collector | None) -> Collector:
    """Install ``collector`` globally; ``None`` restores the null one."""
    global _active
    _active = collector if collector is not None else _NULL
    return _active


@contextmanager
def collecting(collector: Collector | None = None) -> Iterator[Collector]:
    """Enable collection for a ``with`` block; restores on exit."""
    global _active
    previous = _active
    col = collector if collector is not None else Collector()
    _active = col
    try:
        yield col
    finally:
        _active = previous


@contextmanager
def thread_collecting(collector: Collector | None = None) -> Iterator[Collector]:
    """Enable collection for this thread only; restores on exit.

    Unlike :func:`collecting`, other threads keep whatever collector
    they had — global or their own override.  This is the isolation
    primitive for concurrent multi-tenant work: each ``repro.serve``
    job thread wraps its flow run in ``thread_collecting(col)`` so
    simultaneous jobs record into disjoint span trees and event logs.
    Nesting works (the previous override is restored).
    """
    global _tls_users
    previous = getattr(_tls, "collector", None)
    col = collector if collector is not None else Collector()
    with _tls_lock:
        _tls_users += 1
    _tls.collector = col
    try:
        yield col
    finally:
        _tls.collector = previous
        with _tls_lock:
            _tls_users -= 1


def enabled() -> bool:
    """True when the active collector records (ultra-hot-path guard)."""
    return active().enabled


# -- module-level fast paths (the instrumentation call sites) ----------
def span(name: str) -> Span:
    return active().span(name)


def count(name: str, n: int = 1) -> None:
    c = active()
    if c.enabled:
        c.count(name, n)


def gauge(name: str, value: float) -> None:
    c = active()
    if c.enabled:
        c.gauge(name, value)


def event(name: str, **fields: Any) -> None:
    c = active()
    if c.enabled:
        c.event(name, **fields)
