"""The span, counter, gauge and event name catalogue.

Every name the routing stack emits lives here so exporters, tests and
dashboards share one vocabulary.  Counter names are dotted
``subsystem.metric`` strings; span names mirror the call hierarchy.
``docs/OBSERVABILITY.md`` documents the semantics of each entry and
the protocol for adding new ones.
"""

from __future__ import annotations

# -- spans (aggregated tree nodes) -------------------------------------
SPAN_FLOW_TWO_LAYER = "flow.two_layer"
SPAN_FLOW_OVERCELL = "flow.overcell"
SPAN_FLOW_ML_CHANNEL = "flow.ml_channel"
SPAN_PLACEMENT = "placement"
SPAN_GLOBAL_ROUTE = "global_route"
SPAN_CHANNEL_ROUTING = "channel_routing"
SPAN_CHANNEL_GREEDY = "channel.greedy"
SPAN_CHANNEL_LEFT_EDGE = "channel.left_edge"
SPAN_LEVELB_ROUTE = "levelb.route"
SPAN_LEVELB_NET = "levelb.net"
SPAN_LEVELB_REFINE = "levelb.refine"
SPAN_MBFS_SEARCH = "mbfs.search"
SPAN_MAZE_RESCUE = "maze.rescue"
SPAN_FLOW_PROBE = "flow.probe"
SPAN_CHECK = "check"
SPAN_CHECK_COMMIT = "check.commit"
SPAN_LINT = "lint"

SPAN_ITERATE = "iterate"
SPAN_ITERATE_PASS = "iterate.pass"

SPAN_DISPATCH_PLAN = "dispatch.plan"
SPAN_DISPATCH_APPLY = "dispatch.apply"
SPAN_DISPATCH_BATCH = "dispatch.batch"
SPAN_DISPATCH_JOB = "dispatch.job"

SPAN_SERVE_JOB = "serve.job"
SPAN_SERVE_PROBE = "serve.probe"

# -- counters ----------------------------------------------------------
MBFS_SEARCHES = "mbfs.searches"
MBFS_NODES_EXPANDED = "mbfs.nodes_expanded"
MBFS_ABORTS = "mbfs.aborts"
PST_CANDIDATES = "pst.candidates"
PST_BACKTRACK_STEPS = "pst.backtrack_steps"
REGION_EXPANSIONS = "region.expansions"
MAZE_SEARCHES = "maze.searches"
MAZE_NODES_EXPANDED = "maze.nodes_expanded"
MAZE_FALLBACKS = "maze.fallbacks"
RIPUPS = "ripups.performed"
OCC_CELLS_TOUCHED = "occupancy.cells_touched"
TXN_COMMITS = "txn.commits"
TXN_ROLLBACKS = "txn.rollbacks"
TXN_UNDO_CELLS = "txn.undo_cells"
NETS_ROUTED = "nets.routed"
NETS_FAILED = "nets.failed"
CONNECTIONS_ROUTED = "connections.routed"
VCG_CYCLES = "vcg.cycles_hit"
LEFT_EDGE_FALLBACKS = "left_edge.fallbacks"
CHANNELS_ROUTED = "channels.routed"
GREEDY_COLUMNS = "greedy.columns_swept"
GREEDY_TRACKS_ADDED = "greedy.tracks_added"
ITERATE_PASSES = "iterate.iterations"
ITERATE_NETS_RIPPED = "iterate.nets_ripped"
ITERATE_STALLS = "iterate.stalls"
ITERATE_ROLLBACKS = "iterate.rollbacks"
DISPATCH_WAVES = "dispatch.waves"
DISPATCH_HIER_WAVES = "dispatch.hier_waves"
DISPATCH_SPECULATED = "dispatch.nets_speculated"
DISPATCH_APPLIED = "dispatch.nets_applied"
DISPATCH_CONFLICTS = "dispatch.conflicts"
DISPATCH_FALLBACKS = "dispatch.serial_fallbacks"
DISPATCH_JOBS_SUBMITTED = "dispatch.jobs_submitted"
DISPATCH_JOBS_COMPLETED = "dispatch.jobs_completed"
DISPATCH_JOBS_FAILED = "dispatch.jobs_failed"
DISPATCH_JOBS_RETRIED = "dispatch.jobs_retried"
DISPATCH_JOBS_TIMED_OUT = "dispatch.jobs_timed_out"
SERVE_REQUESTS = "serve.requests"
SERVE_JOBS_SUBMITTED = "serve.jobs_submitted"
SERVE_JOBS_COMPLETED = "serve.jobs_completed"
SERVE_JOBS_FAILED = "serve.jobs_failed"
SERVE_CACHE_HITS = "serve.cache_hits"
SERVE_CACHE_MISSES = "serve.cache_misses"
SERVE_COALESCED = "serve.jobs_coalesced"
SERVE_PROBES = "serve.probes"
CHECKS_RUN = "check.runs"
CHECK_RULES_EVALUATED = "check.rules_evaluated"
CHECK_VIOLATIONS = "check.violations"
LINT_RUNS = "lint.runs"
LINT_FILES = "lint.files_scanned"
LINT_RULES_EVALUATED = "lint.rules_evaluated"
LINT_VIOLATIONS = "lint.violations"
LINT_SUPPRESSED = "lint.suppressed"

# -- gauges ------------------------------------------------------------
LEVELB_UTILIZATION = "levelb.grid_utilization"
#: Largest accumulated negotiated-congestion charge on any one track
#: when an iterative run finishes (docs/ITERATION.md).
ITERATE_HISTORY_PEAK = "iterate.history_peak"
#: Bytes the occupancy backend actually holds (all planes summed).
MEM_GRID_BYTES = "mem.grid_bytes"
#: What dense arrays of the same grid shape would always cost — the
#: denominator of the sparse backend's memory win (docs/SCALING.md).
MEM_GRID_DENSE_EQUIV_BYTES = "mem.grid_dense_equiv_bytes"
#: Process peak RSS (resource.getrusage, bytes) sampled when a flow
#: finishes; recorded into FlowResult.profile by the flow layer.
MEM_PEAK_RSS_BYTES = "mem.peak_rss_bytes"

# -- events (append-only structured log) -------------------------------
EVT_NET_ROUTED = "net.routed"
EVT_NET_FAILED = "net.failed"
EVT_MAZE_FALLBACK = "maze.fallback"
EVT_RIPUP = "ripup"
EVT_CHANNEL_CYCLIC = "channel.cyclic"
EVT_CHECK_VIOLATION = "check.violation"
EVT_LINT_VIOLATION = "lint.violation"
EVT_PLANE_ASSIGNED = "levelb.plane_assigned"
EVT_ITERATE_PASS = "iterate.pass_finished"
EVT_WAVE_PLANNED = "dispatch.wave_planned"
EVT_REGIONS_BUILT = "dispatch.regions_built"
EVT_SPEC_CONFLICT = "dispatch.conflict"
EVT_JOB_FINISHED = "dispatch.job_finished"
EVT_SERVE_JOB_STATE = "serve.job_state"
