"""The paper's Steiner-Prim heuristic on point sets (section 3.3).

Prim's algorithm grows a component one vertex at a time, always adding
the vertex nearest the component.  The paper's twist: distance is
measured to the *whole realised component* - terminals **and** Steiner
points lying on already-routed segments - and the new terminal connects
to whichever of those it is closest to.  Connections are realised as
rectilinear L-shapes, so every point on every segment is a potential
Steiner point for later terminals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Sequence

from repro.geometry import Point, Segment, manhattan


@dataclass
class SteinerTree:
    """The realised tree: rectilinear segments spanning the terminals."""

    terminals: list[Point]
    segments: list[Segment] = field(default_factory=list)

    @property
    def length(self) -> int:
        return sum(s.length for s in self.segments)

    def steiner_points(self) -> list[Point]:
        """Segment junction points that are not terminals."""
        term = set(self.terminals)
        endpoints: list[Point] = []
        for seg in self.segments:
            for p in (seg.a, seg.b):
                if p not in term and p not in endpoints:
                    endpoints.append(p)
        return endpoints

    def covers(self, p: Point) -> bool:
        """Is ``p`` on some tree segment (or a terminal)?"""
        if p in self.terminals:
            return True
        return any(s.contains_point(p) for s in self.segments)


def _closest_on_segment(p: Point, seg: Segment) -> Point:
    box = seg.bounds
    return Point(box.x_interval.clamp(p.x), box.y_interval.clamp(p.y))


def _closest_tree_point(tree: SteinerTree, connected: Sequence[Point], p: Point) -> tuple[Point, int]:
    best_pt = connected[0]
    best_d = manhattan(p, best_pt)
    for q in connected[1:]:
        d = manhattan(p, q)
        if d < best_d:
            best_pt, best_d = q, d
    for seg in tree.segments:
        q = _closest_on_segment(p, seg)
        d = manhattan(p, q)
        if d < best_d:
            best_pt, best_d = q, d
    return best_pt, best_d


def _l_shape(a: Point, b: Point, prefer_horizontal_first: bool) -> list[Segment]:
    """Realise a connection as at most two axis-parallel segments."""
    if a == b:
        return []
    if a.x == b.x or a.y == b.y:
        return [Segment(a, b)]
    if prefer_horizontal_first:
        bend = Point(b.x, a.y)
    else:
        bend = Point(a.x, b.y)
    return [Segment(a, bend), Segment(bend, b)]


def steiner_prim_tree(
    points: Sequence[Point], prefer_horizontal_first: bool = True
) -> SteinerTree:
    """Grow a rectilinear Steiner tree over ``points``.

    Deterministic: starts from the terminal nearest the centroid and
    breaks ties by point order.  The result's length never exceeds the
    rectilinear MST's (each step connects at distance <= the Prim
    distance to the nearest connected *terminal*).
    """
    pts = list(dict.fromkeys(points))  # dedupe, keep order
    if not pts:
        raise ValueError("steiner_prim_tree needs at least one point")
    tree = SteinerTree(terminals=list(pts))
    if len(pts) == 1:
        return tree
    cx = sum(p.x for p in pts) // len(pts)
    cy = sum(p.y for p in pts) // len(pts)
    centroid = Point(cx, cy)
    start = min(pts, key=lambda p: (manhattan(p, centroid), p))
    connected: list[Point] = [start]
    remaining: list[Point] = [p for p in pts if p != start]
    while remaining:
        pick: Point | None = None
        pick_attach: Point | None = None
        pick_d: int | None = None
        for p in remaining:
            attach, d = _closest_tree_point(tree, connected, p)
            if pick_d is None or d < pick_d or (d == pick_d and p < pick):
                pick, pick_attach, pick_d = p, attach, d
        assert pick is not None and pick_attach is not None
        for seg in _l_shape(pick_attach, pick, prefer_horizontal_first):
            tree.segments.append(seg)
        connected.append(pick)
        remaining.remove(pick)
    return tree
