"""Rectilinear minimum spanning trees (Prim's algorithm)."""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from repro.geometry import Point, manhattan


@dataclass(frozen=True)
class TreeEdge:
    """An edge of a point-to-point tree (realised later as an L-shape)."""

    a: Point
    b: Point

    @property
    def length(self) -> int:
        return manhattan(self.a, self.b)


def rectilinear_mst(points: Sequence[Point]) -> list[TreeEdge]:
    """Prim's MST under the Manhattan metric, ``O(n^2)``.

    Deterministic: starts from the first point and breaks distance ties
    by point order.  Duplicated points contribute zero-length edges.
    """
    pts = list(points)
    if len(pts) < 2:
        return []
    n = len(pts)
    in_tree = [False] * n
    best_dist = [0] * n
    best_from = [0] * n
    in_tree[0] = True
    for i in range(1, n):
        best_dist[i] = manhattan(pts[0], pts[i])
    edges: list[TreeEdge] = []
    for _ in range(n - 1):
        pick = -1
        pick_d = None
        for i in range(n):
            if in_tree[i]:
                continue
            if pick_d is None or best_dist[i] < pick_d:
                pick_d = best_dist[i]
                pick = i
        in_tree[pick] = True
        edges.append(TreeEdge(pts[best_from[pick]], pts[pick]))
        for i in range(n):
            if in_tree[i]:
                continue
            d = manhattan(pts[pick], pts[i])
            if d < best_dist[i]:
                best_dist[i] = d
                best_from[i] = pick
    return edges


def tree_length(edges: Sequence[TreeEdge]) -> int:
    """Total Manhattan length of a tree's edges."""
    return sum(e.length for e in edges)
