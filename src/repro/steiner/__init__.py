"""Rectilinear spanning and Steiner tree algorithms on point sets.

The level B router decomposes multi-terminal nets with a Prim-based
Steiner heuristic (paper section 3.3).  This package holds the
geometric algorithms in pure point-set form - independent of grids and
occupancy - so they can be tested and benchmarked against each other:

* :func:`rectilinear_mst` - Prim's minimum spanning tree under the
  Manhattan metric (the baseline the paper's heuristic improves on).
* :func:`steiner_prim_tree` - the paper's heuristic: the tree grows by
  the terminal closest to *any* point of the component, including
  Steiner points on already-realised edges.
"""

from repro.steiner.rmst import TreeEdge, rectilinear_mst, tree_length
from repro.steiner.steiner_prim import SteinerTree, steiner_prim_tree

__all__ = [
    "TreeEdge",
    "rectilinear_mst",
    "tree_length",
    "SteinerTree",
    "steiner_prim_tree",
]
