"""Command-line interface.

The subcommands cover the common library entry points::

    python -m repro suite   --name ami33 --out ami33.json
    python -m repro flow    --suite ami33 --flow overcell --svg out.svg
    python -m repro route   --suite ami33 --planes 2 --svg out.svg
    python -m repro tables  --suite ami33
    python -m repro profile --suite ami33 --flow overcell --out profile.json
    python -m repro check   --suite ami33 --flow overcell --planes 2
    python -m repro dispatch --jobs 4 --check

``flow`` accepts either ``--suite <name>`` (a built-in synthetic
benchmark) or ``--design <file.json>`` (a design written by
``repro.io.save_design``), runs the requested flow, prints the summary
line, and optionally writes an SVG plot and/or a JSON result summary.
``route`` is the over-cell flow with plane-labelled output: ``--planes
N`` routes level B across N reserved-layer pairs (docs/LAYERS.md) and
reports how the nets distributed over them; its SVG plot carries the
per-plane legend.
``profile`` runs a flow inside an ``instrument.collecting()`` block and
exports the span tree / counters / events (see docs/OBSERVABILITY.md).
``check`` runs a flow and then the independent verification engine
(``repro.check``) over its output, printing every violation and
exiting nonzero when any is found (see docs/VERIFICATION.md).
``dispatch`` fans a batch of suite x flow jobs across a worker pool
(``repro.dispatch``; see docs/PARALLELISM.md) and exits zero only when
every job completes.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.bench_suite import SUITES
from repro.flow import multilayer_channel_flow, overcell_flow, two_layer_flow
from repro.io import flow_result_to_dict, load_design, save_design
from repro.reporting import (
    format_table,
    table1_rows,
    table2_rows,
    table3_rows,
)
from repro.reporting.tables import TABLE1_HEADERS, TABLE2_HEADERS, TABLE3_HEADERS
from repro.viz.svg import svg_flow_result

_FLOWS = {
    "two-layer": two_layer_flow,
    "overcell": overcell_flow,
    "ml-channel": multilayer_channel_flow,
}


def _load_design_arg(args: argparse.Namespace):
    if getattr(args, "design", None):
        return load_design(args.design)
    if getattr(args, "suite", None):
        return SUITES[args.suite]()
    raise SystemExit("one of --suite or --design is required")


def _flow_params(args: argparse.Namespace):
    """FlowParams honouring ``--tech`` and ``--planes`` arguments."""
    from repro.flow import FlowParams
    from repro.io import load_technology

    kwargs = {}
    if getattr(args, "tech", None):
        kwargs["technology"] = load_technology(args.tech)
    if getattr(args, "planes", None):
        kwargs["planes"] = args.planes
    if getattr(args, "backend", None):
        kwargs["backend"] = args.backend
    if getattr(args, "hierarchical", False):
        kwargs["hierarchical"] = True
    if getattr(args, "iterate", False):
        kwargs["iterate"] = True
        kwargs["max_iterations"] = getattr(args, "max_iterations", 8)
        kwargs["ordering_policy"] = getattr(
            args, "ordering_policy", "longest-first"
        )
    if getattr(args, "objective", "wire") != "wire":
        kwargs["objective"] = args.objective
    return FlowParams(**kwargs)


def _cmd_suite(args: argparse.Namespace) -> int:
    design = SUITES[args.name]()
    save_design(design, args.out)
    print(f"wrote {design.stats()} to {args.out}")
    return 0


def _cmd_flow(args: argparse.Namespace) -> int:
    design = _load_design_arg(args)
    result = _FLOWS[args.flow](design, _flow_params(args))
    print(result.summary())
    if args.svg:
        with open(args.svg, "w") as fh:
            fh.write(svg_flow_result(result))
        print(f"layout plot written to {args.svg}")
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(flow_result_to_dict(result), fh, indent=2)
        print(f"result summary written to {args.json}")
    return 0 if result.completion == 1.0 else 1


def _cmd_route(args: argparse.Namespace) -> int:
    """Over-cell flow with plane-labelled output (``--planes N``)."""
    from repro.technology import plane_layer_indices

    design = _load_design_arg(args)
    result = overcell_flow(design, _flow_params(args))
    print(result.summary())
    levelb = result.levelb
    if levelb is not None:
        for p in range(levelb.num_planes):
            v_idx, h_idx = plane_layer_indices(p)
            nets = levelb.nets_on_plane(p)
            print(
                f"  plane {p} (metal{v_idx}/metal{h_idx}): "
                f"{len(nets)} nets"
            )
    iterate = result.notes.get("iterate")
    if iterate is not None:
        status = "converged" if iterate["converged"] else (
            "stalled" if iterate["stalled"] else "budget exhausted"
        )
        print(
            f"  iterate: {iterate['iterations']} pass(es), {status} "
            f"(policy {iterate['policy']})"
        )
    if args.svg:
        with open(args.svg, "w") as fh:
            fh.write(svg_flow_result(result, legend=True))
        print(f"layout plot written to {args.svg}")
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(flow_result_to_dict(result), fh, indent=2)
        print(f"result summary written to {args.json}")
    return 0 if result.completion == 1.0 else 1


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.analysis import routing_report

    design = _load_design_arg(args)
    params = _flow_params(args)
    result = _FLOWS[args.flow](design, params)
    print(routing_report(result, technology=params.technology, top_n=args.top))
    if args.html:
        from repro.reporting import html_report

        with open(args.html, "w") as fh:
            fh.write(
                html_report(
                    result, technology=params.technology, top_n=args.top
                )
            )
        print(f"HTML report written to {args.html}")
    return 0 if result.completion == 1.0 else 1


def _cmd_profile(args: argparse.Namespace) -> int:
    """Run one flow with instrumentation on and export the profile."""
    from repro import instrument

    design = _load_design_arg(args)
    params = _flow_params(args)
    with instrument.collecting() as col:
        result = _FLOWS[args.flow](design, params)
    print(result.summary())
    instrument.write_json(args.out, col)
    print(f"profile written to {args.out}")
    if args.csv:
        for kind, render in (
            ("counters", instrument.counters_to_csv),
            ("spans", instrument.spans_to_csv),
            ("events", instrument.events_to_csv),
        ):
            path = f"{args.csv}.{kind}.csv"
            with open(path, "w") as fh:
                fh.write(render(col))
            print(f"{kind} written to {path}")
    print(instrument.tree_report(col))
    return 0 if result.completion == 1.0 else 1


def _cmd_check(args: argparse.Namespace) -> int:
    """Run a flow, verify its output independently, gate on violations."""
    from repro.check import check_flow

    design = _load_design_arg(args)
    result = _FLOWS[args.flow](design, _flow_params(args))
    print(result.summary())
    report = check_flow(result)
    print(report.render(limit=args.limit))
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(report.to_dict(), fh, indent=2)
        print(f"check report written to {args.json}")
    if args.strict and report.violations:
        return 1
    return 0 if report.ok else 1


def _cmd_lint(args: argparse.Namespace) -> int:
    """Run the project-contract static analyzer (repro.lint)."""
    from pathlib import Path

    import repro
    from repro.lint import lint_paths, rules_for_ids, save_baseline

    if args.list_rules:
        from repro.lint import ALL_RULES

        width = max(len(r.rule_id) for r in ALL_RULES)
        for rule in sorted(ALL_RULES, key=lambda r: r.rule_id):
            print(f"{rule.rule_id:<{width}}  {rule.contract}")
        print(f"{'lint.pragma':<{width}}  Suppression pragmas carry a "
              "reason and match a live finding (engine-owned).")
        return 0

    pkg_dir = Path(repro.__file__).resolve().parent
    default_root = pkg_dir.parent.parent
    root = Path(args.root).resolve() if args.root else default_root
    paths = (
        [Path(p) for p in args.paths] if args.paths else [pkg_dir]
    )
    select = set(args.select) if args.select else None
    if select is not None:
        try:
            rules_for_ids(select)  # fail fast on typos, before parsing files
        except ValueError as exc:
            print(f"repro lint: {exc}", file=sys.stderr)
            return 2
    baseline = Path(args.baseline) if args.baseline else None
    if baseline is None and not args.no_baseline:
        candidate = root / "lint-baseline.json"
        if candidate.exists():
            baseline = candidate

    if args.write_baseline:
        report = lint_paths(paths, root=root, select=select)
        n = save_baseline(Path(args.write_baseline), report.violations)
        print(f"baseline with {n} entr{'y' if n == 1 else 'ies'} "
              f"written to {args.write_baseline}")
        return 0

    report = lint_paths(
        paths, root=root, select=select, baseline_path=baseline
    )
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(report.to_dict(), fh, indent=2)
        print(f"lint report written to {args.json}")
    print(report.render(limit=args.limit))
    if args.strict and report.violations:
        return 1
    return 0 if report.ok else 1


def _cmd_dispatch(args: argparse.Namespace) -> int:
    """Fan suite x flow jobs across a worker pool (repro.dispatch)."""
    from repro.dispatch import run_suite_batch

    report = run_suite_batch(
        args.suites or sorted(SUITES),
        args.flows or ["overcell"],
        workers=args.jobs,
        mode="serial" if args.serial else args.mode,
        timeout_s=args.timeout,
        retries=args.retries,
        check=args.check,
        parallel=args.parallel_levelb,
    )
    print(report.render())
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(report.to_dict(), fh, indent=2, sort_keys=True)
        print(f"batch report written to {args.json}")
    return 0 if report.ok else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the persistent routing server (repro.serve)."""
    from repro.serve import RoutingServer

    server = RoutingServer(
        host=args.host,
        port=args.port,
        workers=args.workers,
        cache_size=args.cache_size,
        timeout_s=args.timeout,
        retries=args.retries,
        queue_size=args.queue_size,
    )
    server.start()
    # flush immediately: supervisors and scripts read the bound address
    # from the first line even when stdout is a pipe
    print(f"serving on {server.address} ({args.workers} workers)", flush=True)
    print(
        "POST /jobs to submit, GET /stats for counters; "
        "Ctrl-C to drain and stop",
        flush=True,
    )
    try:
        while not server.wait_stopped(timeout_s=1.0):
            pass
    except KeyboardInterrupt:
        print("\ndraining...")
        server.stop(drain=True)
    print("server stopped")
    return 0


def _cmd_tables(args: argparse.Namespace) -> int:
    design = _load_design_arg(args)
    baseline = two_layer_flow(design)
    overcell = overcell_flow(design)
    ml = multilayer_channel_flow(design)
    print("Table 1 - example information")
    print(format_table(TABLE1_HEADERS, table1_rows(design, overcell)))
    print("\nTable 2 - % reduction vs two-layer channel routing")
    print(format_table(TABLE2_HEADERS, table2_rows(baseline, overcell)))
    print("\nTable 3 - vs optimistic 4-layer channel model")
    print(format_table(TABLE3_HEADERS, table3_rows(ml, overcell)))
    return 0


def _add_levelb_args(parser: argparse.ArgumentParser) -> None:
    """Level B storage/strategy knobs shared by the flow-running commands."""
    from repro.grid import available_backends

    parser.add_argument(
        "--backend",
        choices=available_backends(),
        default="dense",
        help="occupancy storage backend (docs/SCALING.md; default dense)",
    )
    parser.add_argument(
        "--hierarchical",
        action="store_true",
        help="coarse-then-detailed level B routing (docs/SCALING.md)",
    )
    from repro.iterate import available_policies

    parser.add_argument(
        "--iterate",
        action="store_true",
        help="negotiated-congestion rip-up-and-re-route for level B "
        "(docs/ITERATION.md)",
    )
    parser.add_argument(
        "--max-iterations",
        type=int,
        default=8,
        help="re-route pass budget with --iterate (default 8)",
    )
    parser.add_argument(
        "--ordering-policy",
        choices=available_policies(),
        default="longest-first",
        help="net-ordering policy for --iterate passes "
        "(default longest-first)",
    )
    parser.add_argument(
        "--objective",
        choices=("wire", "vias"),
        default="wire",
        help="level B routing objective (docs/TECHNOLOGY.md; "
        "default wire)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Over-cell multi-layer router (Katsadas & Chen, DAC 1990)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_suite = sub.add_parser("suite", help="generate a synthetic benchmark")
    p_suite.add_argument("--name", choices=sorted(SUITES), required=True)
    p_suite.add_argument("--out", required=True, help="output JSON path")
    p_suite.set_defaults(func=_cmd_suite)

    p_flow = sub.add_parser("flow", help="run one routing flow")
    p_flow.add_argument("--suite", choices=sorted(SUITES))
    p_flow.add_argument("--design", help="design JSON (repro.io format)")
    p_flow.add_argument(
        "--flow", choices=sorted(_FLOWS), default="overcell"
    )
    p_flow.add_argument("--tech", help="technology JSON (repro.io format)")
    p_flow.add_argument(
        "--planes", type=int, default=1,
        help="over-cell routing planes for level B (default 1)",
    )
    p_flow.add_argument("--svg", help="write an SVG layout plot")
    p_flow.add_argument("--json", help="write a JSON result summary")
    _add_levelb_args(p_flow)
    p_flow.set_defaults(func=_cmd_flow)

    p_route = sub.add_parser(
        "route",
        help="over-cell flow with per-plane output (see docs/LAYERS.md)",
    )
    p_route.add_argument("--suite", choices=sorted(SUITES))
    p_route.add_argument("--design", help="design JSON (repro.io format)")
    p_route.add_argument("--tech", help="technology JSON (repro.io format)")
    p_route.add_argument(
        "--planes", type=int, default=1,
        help="over-cell routing planes for level B (default 1)",
    )
    p_route.add_argument(
        "--svg", help="write an SVG layout plot with the plane legend"
    )
    p_route.add_argument("--json", help="write a JSON result summary")
    _add_levelb_args(p_route)
    p_route.set_defaults(func=_cmd_route)

    p_prof = sub.add_parser(
        "profile",
        help="run a flow with instrumentation and export the profile",
    )
    p_prof.add_argument("--suite", choices=sorted(SUITES))
    p_prof.add_argument("--design", help="design JSON (repro.io format)")
    p_prof.add_argument("--flow", choices=sorted(_FLOWS), default="overcell")
    p_prof.add_argument("--tech", help="technology JSON (repro.io format)")
    p_prof.add_argument(
        "--planes", type=int, default=1,
        help="over-cell routing planes for level B (default 1)",
    )
    p_prof.add_argument(
        "--out", required=True, help="output profile JSON path"
    )
    p_prof.add_argument(
        "--csv",
        help="also write <prefix>.{counters,spans,events}.csv files",
        metavar="PREFIX",
    )
    _add_levelb_args(p_prof)
    p_prof.set_defaults(func=_cmd_profile)

    p_check = sub.add_parser(
        "check",
        help="run a flow and verify its output with the static checker",
    )
    p_check.add_argument("--suite", choices=sorted(SUITES))
    p_check.add_argument("--design", help="design JSON (repro.io format)")
    p_check.add_argument("--flow", choices=sorted(_FLOWS), default="overcell")
    p_check.add_argument("--tech", help="technology JSON (repro.io format)")
    p_check.add_argument(
        "--planes", type=int, default=1,
        help="over-cell routing planes for level B (default 1)",
    )
    p_check.add_argument("--json", help="write the check report as JSON")
    p_check.add_argument(
        "--limit", type=int, default=50, help="violations to print"
    )
    p_check.add_argument(
        "--strict",
        action="store_true",
        help="exit nonzero on warnings too, not just errors",
    )
    _add_levelb_args(p_check)
    p_check.set_defaults(func=_cmd_check)

    p_lint = sub.add_parser(
        "lint",
        help="statically verify the source tree's project contracts",
    )
    p_lint.add_argument(
        "paths",
        nargs="*",
        help="files/directories to scan (default: the repro package)",
    )
    p_lint.add_argument(
        "--root", help="project root for relative paths/module names"
    )
    p_lint.add_argument(
        "--rule",
        "--select",
        dest="select",
        action="append",
        metavar="RULE",
        help="rule id (det.clock) or group (det); repeatable",
    )
    p_lint.add_argument("--json", help="write the lint report as JSON")
    p_lint.add_argument(
        "--limit", type=int, default=50, help="violations to print"
    )
    p_lint.add_argument(
        "--strict",
        action="store_true",
        help="exit nonzero on warnings too, not just errors",
    )
    p_lint.add_argument(
        "--baseline", help="baseline file (default: <root>/lint-baseline.json)"
    )
    p_lint.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the committed baseline",
    )
    p_lint.add_argument(
        "--write-baseline",
        metavar="PATH",
        help="grandfather current findings into PATH and exit 0",
    )
    p_lint.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    p_lint.set_defaults(func=_cmd_lint)

    p_disp = sub.add_parser(
        "dispatch",
        help="route a batch of suite x flow jobs across a worker pool",
    )
    p_disp.add_argument(
        "--suites",
        nargs="+",
        choices=sorted(SUITES),
        help="suites to route (default: all built-in suites)",
    )
    p_disp.add_argument(
        "--flows",
        nargs="+",
        choices=sorted(_FLOWS),
        help="flows to run per suite (default: overcell)",
    )
    p_disp.add_argument(
        "--jobs", type=int, default=2, help="worker pool size (default 2)"
    )
    p_disp.add_argument(
        "--mode",
        choices=("process", "thread"),
        default="process",
        help="pool kind (process falls back to threads when unavailable)",
    )
    p_disp.add_argument(
        "--serial",
        action="store_true",
        help="run jobs in-line instead of on a pool",
    )
    p_disp.add_argument(
        "--timeout", type=float, default=None, help="per-job wall limit (s)"
    )
    p_disp.add_argument(
        "--retries", type=int, default=1, help="retries per crashed job"
    )
    p_disp.add_argument(
        "--check",
        action="store_true",
        help="verify each flow's output with repro.check",
    )
    p_disp.add_argument(
        "--parallel-levelb",
        type=int,
        default=0,
        metavar="N",
        help="also parallelise level B routing inside each job (workers)",
    )
    p_disp.add_argument("--json", help="write the batch report as JSON")
    p_disp.set_defaults(func=_cmd_dispatch)

    p_serve = sub.add_parser(
        "serve",
        help="run the persistent routing server (repro.serve)",
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument(
        "--port", type=int, default=8787, help="0 binds an ephemeral port"
    )
    p_serve.add_argument(
        "--workers", type=int, default=2, help="routing worker threads"
    )
    p_serve.add_argument(
        "--cache-size", type=int, default=256,
        help="max entries in the content-addressed result cache",
    )
    p_serve.add_argument(
        "--timeout", type=float, default=None, help="per-job timeout (s)"
    )
    p_serve.add_argument(
        "--retries", type=int, default=1, help="retries per failed job"
    )
    p_serve.add_argument(
        "--queue-size", type=int, default=64,
        help="max queued jobs before submissions get 503",
    )
    p_serve.set_defaults(func=_cmd_serve)

    p_tables = sub.add_parser("tables", help="print the paper's tables")
    p_tables.add_argument("--suite", choices=sorted(SUITES))
    p_tables.add_argument("--design", help="design JSON (repro.io format)")
    p_tables.set_defaults(func=_cmd_tables)

    p_report = sub.add_parser(
        "report", help="run a flow and print the full routing report"
    )
    p_report.add_argument("--suite", choices=sorted(SUITES))
    p_report.add_argument("--design", help="design JSON (repro.io format)")
    p_report.add_argument("--flow", choices=sorted(_FLOWS), default="overcell")
    p_report.add_argument("--tech", help="technology JSON (repro.io format)")
    p_report.add_argument(
        "--planes", type=int, default=1,
        help="over-cell routing planes for level B (default 1)",
    )
    p_report.add_argument("--top", type=int, default=5,
                          help="slowest pins to list")
    p_report.add_argument("--html", help="also write a single-file HTML report")
    _add_levelb_args(p_report)
    p_report.set_defaults(func=_cmd_report)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
