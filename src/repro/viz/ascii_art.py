"""Terminal renderings of channels, grids, PSTs and level B routing."""

from __future__ import annotations

from collections.abc import Sequence
from typing import TYPE_CHECKING

from repro.channels import ChannelProblem, ChannelRoute
from repro.core.search import PSTNode
from repro.core.tig import TrackIntersectionGraph

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.router import LevelBResult


def _net_char(net: int) -> str:
    """A printable character for a net id (letters, then digits, then #)."""
    alphabet = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789"
    if 1 <= net <= len(alphabet):
        return alphabet[net - 1]
    return "#"


def render_channel(route: ChannelRoute, problem: ChannelProblem | None = None) -> str:
    """A character map of a routed channel.

    Rows: the top pin row, one row per track, the bottom pin row.
    ``-`` trunk metal, ``|`` jog metal, ``+`` a via or crossing, net
    letters at pins and trunk midpoints.
    """
    width = route.length
    height = route.tracks + 2  # pin rows top and bottom
    grid = [[" "] * max(1, width) for _ in range(height)]

    def row_index(row: int) -> int:
        return row + 1  # row -1 (top boundary) -> 0

    for span in route.spans:
        r = row_index(span.track)
        for c in range(span.c1, span.c2 + 1):
            grid[r][c] = "-"
        mid = (span.c1 + span.c2) // 2
        grid[r][mid] = _net_char(span.net)
    for jog in route.jogs:
        for row in range(jog.r1, jog.r2 + 1):
            r = row_index(row)
            cell = grid[r][jog.column]
            grid[r][jog.column] = "+" if cell in "-+" else "|"
    if problem is not None:
        for col in range(problem.length):
            if problem.top[col]:
                grid[0][col] = _net_char(problem.top[col])
            if problem.bottom[col]:
                grid[-1][col] = _net_char(problem.bottom[col])
    return "\n".join("".join(row) for row in grid)


def render_tig(tig: TrackIntersectionGraph, net_id: int = 0) -> str:
    """The Track Intersection Graph as an adjacency listing.

    Paper-style names: vertical vertices ``v1..``, horizontal ``h1..``.
    Edges listed once, from the vertical side.
    """
    v_names, h_names = tig.vertex_names()
    lines = [
        f"TIG: {len(v_names)} vertical + {len(h_names)} horizontal vertices"
    ]
    for v in range(tig.grid.num_vtracks):
        usable = [
            h_names[h]
            for h in range(tig.grid.num_htracks)
            if tig.edge_usable(v, h, net_id)
        ]
        lines.append(f"  {v_names[v]}: " + " ".join(usable))
    return "\n".join(lines)


def render_pst(root: PSTNode, completed: Sequence[PSTNode] = ()) -> str:
    """A Path Selection Tree as indented text (the paper's Figure 2).

    Completing nodes (minimum-corner leaves) are marked with ``*``.
    """
    done = {id(n) for n in completed}
    lines: list[str] = []

    def visit(node: PSTNode, depth: int) -> None:
        mark = " *" if id(node) in done else ""
        lines.append("  " * depth + node.name() + mark)
        for child in node.children:
            visit(child, depth + 1)

    visit(root, 0)
    return "\n".join(lines)


#: Per-plane wiring glyph pairs (horizontal, vertical), plane 0 first.
#: Plane 0 keeps the historical ``-``/``|``; further planes cycle
#: through visually distinct pairs.
_PLANE_GLYPHS = (("-", "|"), ("=", "!"), ("~", ":"), ("_", ";"))


def _plane_glyphs(plane: int) -> tuple[str, str]:
    return _PLANE_GLYPHS[plane % len(_PLANE_GLYPHS)]


def levelb_legend(result: "LevelBResult") -> str:
    """A per-plane glyph legend with labels derived from the layer stack.

    One line per routed plane: its layer-pair label (from
    :func:`repro.technology.plane_layer_indices`, never hard-coded
    strings) and the glyphs :func:`render_levelb_ascii` draws it with.
    """
    from repro.technology import plane_layer_indices

    lines = []
    for p in range(getattr(result, "num_planes", 1)):
        v_idx, h_idx = plane_layer_indices(p)
        h_glyph, v_glyph = _plane_glyphs(p)
        lines.append(
            f"plane {p} (metal{v_idx}/metal{h_idx}): "
            f"{h_glyph} horizontal, {v_glyph} vertical"
        )
    return "\n".join(lines)


def render_levelb_ascii(
    result: "LevelBResult",
    width: int = 100,
    cells: Sequence = (),
    legend: bool = False,
) -> str:
    """A down-sampled character plot of a level B routing result.

    ``-``/``|`` are plane 0 (metal4/metal3) wiring, ``+`` both, ``#``
    cell area (when ``cells`` - objects with ``.bounds`` - are
    supplied), ``o`` terminals.  Results routed on more planes draw
    each plane with its own glyph pair (see :func:`levelb_legend`);
    ``legend`` appends the per-plane key below the plot.
    Aspect-corrected for terminal character cells.
    """
    grid = result.tig.grid
    span_x = grid.vtracks.span
    span_y = grid.htracks.span
    w = max(span_x.length, 1)
    h = max(span_y.length, 1)
    cols = width
    rows = max(1, int(cols * (h / w) * 0.5))
    canvas = [[" "] * cols for _ in range(rows)]

    def to_cell(x: int, y: int) -> tuple:
        cx = min(cols - 1, (x - span_x.lo) * cols // (w + 1))
        cy = min(rows - 1, (y - span_y.lo) * rows // (h + 1))
        return cx, rows - 1 - cy  # y grows upward

    for cell in cells:
        box = cell.bounds
        x1, y1 = to_cell(box.x1, box.y1)
        x2, y2 = to_cell(box.x2, box.y2)
        for cy in range(min(y1, y2), max(y1, y2) + 1):
            for cx in range(x1, x2 + 1):
                canvas[cy][cx] = "."
    wire_glyphs = {
        g for pair in _PLANE_GLYPHS for g in pair
    }
    for routed in result.routed:
        h_glyph, v_glyph = _plane_glyphs(getattr(routed, "plane", 0))
        for conn in routed.connections:
            for seg in conn.path:
                if seg.is_point:
                    continue
                (x1, y1), (x2, y2) = (seg.a.x, seg.a.y), (seg.b.x, seg.b.y)
                c1 = to_cell(x1, y1)
                c2 = to_cell(x2, y2)
                glyph = h_glyph if seg.is_horizontal else v_glyph
                if seg.is_horizontal:
                    for cx in range(min(c1[0], c2[0]), max(c1[0], c2[0]) + 1):
                        _blend(canvas, cx, c1[1], glyph, wire_glyphs)
                else:
                    for cy in range(min(c1[1], c2[1]), max(c1[1], c2[1]) + 1):
                        _blend(canvas, c1[0], cy, glyph, wire_glyphs)
    for net_id, terms in result.tig.all_terminals().items():
        for t in terms:
            x, y = grid.coord_of(t.v_idx, t.h_idx)
            cx, cy = to_cell(x, y)
            canvas[cy][cx] = "o"
    plot = "\n".join("".join(row) for row in canvas)
    if legend:
        plot += "\n" + levelb_legend(result)
    return plot


def _blend(
    canvas: list[list[str]], x: int, y: int, glyph: str, wire_glyphs: set[str]
) -> None:
    current = canvas[y][x]
    if current in (" ", "."):
        canvas[y][x] = glyph
    elif current != glyph and current in wire_glyphs:
        canvas[y][x] = "+"
