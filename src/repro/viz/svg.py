"""SVG rendering of placed layouts with level B routing (Figure 3)."""

from __future__ import annotations

from collections.abc import Sequence
from typing import TYPE_CHECKING

from repro.geometry import Rect

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.router import LevelBResult
    from repro.flow.metrics import FlowResult

_PALETTE = [
    "#1f77b4", "#ff7f0e", "#2ca02c", "#d62728", "#9467bd",
    "#8c564b", "#e377c2", "#7f7f7f", "#bcbd22", "#17becf",
]


def _net_color(net_id: int) -> str:
    return _PALETTE[(net_id - 1) % len(_PALETTE)]


def _plane_dash(plane: int) -> str:
    """SVG ``stroke-dasharray`` attribute for an over-cell plane.

    Plane 0 stays solid (the historical rendering); higher planes get
    progressively longer dashes so stacked pairs read at a glance.
    """
    if plane <= 0:
        return ""
    return f' stroke-dasharray="{2 + 2 * plane} 2"'


def _plane_legend(levelb: "LevelBResult", x: float, y: float) -> list[str]:
    """A per-plane legend group, labels derived from the layer stack."""
    from repro.technology import plane_layer_indices

    parts = ['<g font-size="10" fill="#333">']
    for p in range(getattr(levelb, "num_planes", 1)):
        v_idx, h_idx = plane_layer_indices(p)
        ly = y + 14 * p
        parts.append(
            f'<line x1="{x:.1f}" y1="{ly:.1f}" x2="{x + 24:.1f}" '
            f'y2="{ly:.1f}" stroke="#333" stroke-width="2"{_plane_dash(p)}/>'
        )
        parts.append(
            f'<text x="{x + 30:.1f}" y="{ly + 3:.1f}">'
            f"plane {p}: metal{v_idx}/metal{h_idx}</text>"
        )
    parts.append("</g>")
    return parts


def svg_layout(
    bounds: Rect,
    *,
    cells: Sequence = (),
    levelb: "LevelBResult" | None = None,
    obstacles: Sequence[Rect] = (),
    scale: float = 0.5,
    title: str = "",
    legend: bool = False,
) -> str:
    """An SVG document: cells, obstacles and level B wiring.

    Horizontal segments draw thicker than vertical ones so each plane's
    layer pair reads at a glance; corner vias are dots.  Results routed
    on several over-cell planes draw higher planes dashed
    (:func:`_plane_dash`); ``legend`` adds a per-plane key whose layer
    labels come from the technology's layer numbering, never hard-coded
    names.  The y axis is flipped so the layout origin sits bottom-left.
    """
    w = bounds.width * scale
    h = bounds.height * scale

    def sx(x: int) -> float:
        return (x - bounds.x1) * scale

    def sy(y: int) -> float:
        return h - (y - bounds.y1) * scale

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{w:.0f}" '
        f'height="{h:.0f}" viewBox="0 0 {w:.0f} {h:.0f}">',
        f'<rect width="{w:.0f}" height="{h:.0f}" fill="#fafafa"/>',
    ]
    if title:
        parts.append(
            f'<title>{title}</title>'
        )
    for cell in cells:
        box = cell.bounds
        parts.append(
            f'<rect x="{sx(box.x1):.1f}" y="{sy(box.y2):.1f}" '
            f'width="{box.width * scale:.1f}" height="{box.height * scale:.1f}" '
            'fill="#e8e8e8" stroke="#888" stroke-width="1"/>'
        )
        parts.append(
            f'<text x="{sx(box.x1) + 3:.1f}" y="{sy(box.y2) + 11:.1f}" '
            f'font-size="9" fill="#555">{getattr(cell, "name", "")}</text>'
        )
    for obs in obstacles:
        parts.append(
            f'<rect x="{sx(obs.x1):.1f}" y="{sy(obs.y2):.1f}" '
            f'width="{obs.width * scale:.1f}" height="{obs.height * scale:.1f}" '
            'fill="#f2c4c4" stroke="#c04040" stroke-dasharray="4 2"/>'
        )
    if levelb is not None:
        grid = levelb.tig.grid
        for routed in levelb.routed:
            color = _net_color(routed.net_id)
            dash = _plane_dash(getattr(routed, "plane", 0))
            for conn in routed.connections:
                for seg in conn.path:
                    if seg.is_point:
                        continue
                    width_px = 2.0 if seg.is_horizontal else 1.2
                    parts.append(
                        f'<line x1="{sx(seg.a.x):.1f}" y1="{sy(seg.a.y):.1f}" '
                        f'x2="{sx(seg.b.x):.1f}" y2="{sy(seg.b.y):.1f}" '
                        f'stroke="{color}" stroke-width="{width_px}"{dash}/>'
                    )
                for v_idx, h_idx in conn.corners:
                    x, y = grid.coord_of(v_idx, h_idx)
                    parts.append(
                        f'<circle cx="{sx(x):.1f}" cy="{sy(y):.1f}" r="2.2" '
                        f'fill="{color}"/>'
                    )
        for net_id, terms in levelb.tig.all_terminals().items():
            color = _net_color(net_id)
            for t in terms:
                x, y = grid.coord_of(t.v_idx, t.h_idx)
                parts.append(
                    f'<rect x="{sx(x) - 2.5:.1f}" y="{sy(y) - 2.5:.1f}" '
                    f'width="5" height="5" fill="white" stroke="{color}"/>'
                )
        if legend:
            parts.extend(_plane_legend(levelb, 8.0, 14.0))
    parts.append("</svg>")
    return "\n".join(parts)


def svg_flow_result(
    result: "FlowResult",
    scale: float = 0.5,
    show_level_a: bool = True,
    legend: bool = False,
) -> str:
    """Render a flow result to SVG.

    Draws the placed cells, any level B (over-cell) wiring, and - when
    ``show_level_a`` is set and the flow kept its channel routes - the
    level A channel wiring inside the channel strips (grey trunks and
    jogs, so the over-cell colours stay legible on top).  ``legend``
    adds the per-plane layer key (:func:`_plane_legend`).
    """
    cells = []
    if result.placement is not None:
        cells = list(result.placement.design.cells.values())
    doc = svg_layout(
        result.bounds,
        cells=cells,
        levelb=result.levelb,
        scale=scale,
        title=f"{result.design} / {result.flow}",
        legend=legend,
    )
    if not show_level_a or result.channel_routes is None:
        return doc
    overlay = _level_a_overlay(result, scale)
    return doc.replace("</svg>", overlay + "\n</svg>")


def _level_a_overlay(result: "FlowResult", scale: float) -> str:
    """Grey channel wiring drawn inside each channel strip."""
    placement = result.placement
    global_route = result.global_route
    if placement is None or global_route is None:
        return ""
    bounds = result.bounds
    h = bounds.height * scale
    pitch = global_route.pitch
    margin_x = (
        bounds.width
        - placement.core_width
        - result.side_widths[0]
        - result.side_widths[1]
    ) // 2
    x0 = margin_x + result.side_widths[0]
    strips = placement.channel_y_ranges(
        result.channel_heights,
        margin=(bounds.height - sum(result.channel_heights)
                - sum(r.height for r in placement.rows)) // 2,
    )

    def sx(x: float) -> float:
        return (x - bounds.x1) * scale

    def sy(y: float) -> float:
        return h - (y - bounds.y1) * scale

    parts = ['<g stroke="#9a9a9a" stroke-width="0.8" opacity="0.85">']
    for spec, route, strip in zip(
        global_route.specs, result.channel_routes, strips
    ):
        if route.tracks == 0 and not route.jogs:
            continue
        track_pitch = max(1, (strip.height) // (route.tracks + 1))

        def row_y(row: int) -> float:
            # Row -1 = top boundary of the strip, growing down.
            return strip.y2 - (row + 1) * track_pitch

        def col_x(col: int) -> float:
            return x0 + spec.column_x(col, pitch)

        for span in route.spans:
            y = row_y(span.track)
            parts.append(
                f'<line x1="{sx(col_x(span.c1)):.1f}" y1="{sy(y):.1f}" '
                f'x2="{sx(col_x(span.c2)):.1f}" y2="{sy(y):.1f}"/>'
            )
        for jog in route.jogs:
            x = col_x(jog.column)
            y1 = strip.y2 if jog.r1 == -1 else row_y(jog.r1)
            y2 = strip.y1 if jog.r2 == route.tracks else row_y(jog.r2)
            parts.append(
                f'<line x1="{sx(x):.1f}" y1="{sy(y1):.1f}" '
                f'x2="{sx(x):.1f}" y2="{sy(y2):.1f}"/>'
            )
    parts.append("</g>")
    return "\n".join(parts)
