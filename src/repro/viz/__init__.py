"""ASCII and SVG renderings of routing results.

Reproduces the paper's figures: the Track Intersection Graph and level
B instance of Figure 1, the Path Selection Trees of Figure 2, and the
full level B routing plot of Figure 3 (as SVG and as terminal ASCII).
"""

from repro.viz.ascii_art import (
    render_channel,
    levelb_legend,
    render_levelb_ascii,
    render_pst,
    render_tig,
)
from repro.viz.svg import svg_layout

__all__ = [
    "render_channel",
    "levelb_legend",
    "render_levelb_ascii",
    "render_pst",
    "render_tig",
    "svg_layout",
]
