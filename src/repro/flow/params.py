"""Flow configuration."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core import LevelBConfig
from repro.core.router import Obstacle
from repro.partition import PartitionStrategy
from repro.technology import Technology


@dataclass(frozen=True)
class FlowParams:
    """Knobs shared by every flow.

    Attributes
    ----------
    technology:
        The layer stack; the channel substrate uses metal1/metal2,
        level B the reserved over-cell pairs above them (metal3/metal4
        by default — see docs/LAYERS.md).
    margin:
        Clearance around the core in lambda.
    aspect:
        Target core aspect ratio for the shelf placer.
    partition:
        How nets split into sets A and B (over-cell flow only).
    length_threshold:
        Half-perimeter threshold for ``LONG_TO_B`` partitioning.
    levelb:
        Level B router configuration.
    obstacles:
        Over-cell exclusions forwarded to the level B router.
    channel_area_factor:
        The optimistic multi-layer channel model's channel-area scale
        (the paper grants the comparison 0.5).
    channel_router:
        Detailed channel router for level A: ``"greedy"`` (default;
        always completes) or ``"left-edge"`` (dogleg left-edge, falls
        back to greedy on vertical-constraint cycles).
    checked:
        Run the full independent verification (:func:`repro.check.
        check_flow`) after the flow and attach the report to
        ``FlowResult.check_report``; also turns on the level B
        router's per-commit checked mode.  Off by default.
    parallel:
        Speculative level B worker count (``repro.dispatch``).  ``0``
        (default) routes serially; ``N >= 1`` routes level B nets in
        waves of ``N`` workers with results guaranteed bit-identical
        to the serial run (docs/PARALLELISM.md).
    parallel_mode:
        Dispatch executor kind: ``"process"`` (default), ``"thread"``
        or ``"serial"`` (in-line, for debugging).
    backend:
        Occupancy storage backend for the level B grid: ``"dense"``
        (default; contiguous numpy arrays) or ``"sparse"`` (paged
        first-touch chunks, memory proportional to committed geometry
        — docs/SCALING.md).  Routing results are bit-identical across
        backends; the knob only trades memory for per-access overhead.
    hierarchical:
        Route level B coarse-then-detailed: a region-graph pass
        assigns nets to floorplan regions, then the dispatch wave
        planner groups each wave by region instead of scanning the
        canonical order linearly (docs/SCALING.md).  Results stay
        bit-identical to the flat run; the knob only changes how
        non-overlapping work is discovered.
    planes:
        Over-cell routing planes for level B.  ``1`` (default) is the
        paper's single metal3/metal4 pair and preserves historical
        behavior exactly; ``N > 1`` distributes level B nets across N
        reserved-layer pairs (extending ``technology`` with
        extrapolated pairs when it is too short — see
        :func:`repro.technology.ensure_overcell_planes`).  A value
        above 1 overrides ``levelb.planes``.
    iterate:
        Negotiated-congestion rip-up-and-re-route for level B
        (``repro.iterate`` — docs/ITERATION.md).  Off by default: a
        one-pass run never constructs history costs and its routed
        geometry stays bit-identical to the seed digests.  On, failed
        nets trigger whole-design rip-up passes with per-track history
        costs until the design completes or the iteration/stall budget
        runs out; the convergence report lands in
        ``FlowResult.notes["iterate"]``.
    max_iterations:
        Re-route pass budget when ``iterate`` is on (the initial pass
        is not counted).
    ordering_policy:
        Registered :class:`repro.iterate.OrderingPolicy` name deciding
        each pass's net order (``longest-first``, ``congestion`` or
        ``feature``; see docs/ITERATION.md).
    objective:
        Level B routing objective: ``"wire"`` (default; the paper's
        wire-length-led cost, bit-identical to the seed) or ``"vias"``
        (via minimization — plane assignment and corner pricing driven
        by the technology's per-level via costs, docs/TECHNOLOGY.md).
        Overrides ``levelb.objective``.
    """

    technology: Technology = field(default_factory=Technology.four_layer)
    channel_router: str = "greedy"
    margin: int = 16
    aspect: float = 1.0
    partition: PartitionStrategy = PartitionStrategy.CRITICAL_TO_A
    length_threshold: int | None = None
    levelb: LevelBConfig = field(default_factory=LevelBConfig)
    obstacles: tuple[Obstacle, ...] = ()
    channel_area_factor: float = 0.5
    checked: bool = False
    parallel: int = 0
    parallel_mode: str = "process"
    planes: int = 1
    backend: str = "dense"
    hierarchical: bool = False
    iterate: bool = False
    max_iterations: int = 8
    ordering_policy: str = "longest-first"
    objective: str = "wire"

    @property
    def channel_pitch(self) -> int:
        """Track/column pitch of the channel layers (metal1/metal2)."""
        return self.technology.layer(1).pitch
