"""Flow result metrics: the three columns of the paper's Table 2."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.geometry import Rect

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core import LevelBResult
    from repro.channels import ChannelRoute
    from repro.check import CheckReport
    from repro.globalroute import GlobalRoute
    from repro.placement import RowPlacement


@dataclass
class FlowResult:
    """Metrics of one flow run on one design.

    ``layout_area``, ``wire_length`` and ``via_count`` are the paper's
    comparison metrics; the remaining fields expose the run's internals
    for inspection, visualisation and tests.

    ``profile`` is a :func:`repro.instrument.snapshot` dictionary (span
    tree, counters, gauges, events) captured when the flow ran inside
    an ``instrument.collecting()`` block; ``None`` otherwise.

    ``check_report`` is the :class:`repro.check.CheckReport` of the
    post-flow independent verification when the flow ran with
    ``FlowParams(checked=True)``; ``None`` otherwise.
    """

    flow: str
    design: str
    bounds: Rect
    wire_length: int
    via_count: int
    channel_tracks: list[int] = field(default_factory=list)
    channel_heights: list[int] = field(default_factory=list)
    side_widths: tuple = (0, 0)
    completion: float = 1.0
    placement: "RowPlacement" | None = None
    global_route: "GlobalRoute" | None = None
    channel_routes: list["ChannelRoute"] | None = None
    levelb: "LevelBResult" | None = None
    notes: dict[str, object] = field(default_factory=dict)
    profile: dict[str, object] | None = None
    check_report: "CheckReport" | None = None

    @property
    def layout_area(self) -> int:
        return self.bounds.area

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.design}/{self.flow}: area={self.layout_area:,} "
            f"({self.bounds.width}x{self.bounds.height}), "
            f"wl={self.wire_length:,}, vias={self.via_count:,}, "
            f"completion={self.completion:.1%}"
        )


def percent_reduction(baseline: float, improved: float) -> float:
    """Reduction of ``improved`` relative to ``baseline``, in percent."""
    if baseline == 0:
        return 0.0
    return 100.0 * (baseline - improved) / baseline
