"""The three end-to-end flows.

All flows share one pipeline skeleton: shelf placement -> global
channel decomposition -> detailed (greedy) channel routing -> channel
heights -> realised geometry -> metrics.  The over-cell flow sends only
set A through that skeleton and routes set B with the level B router on
the realised layout; the multi-layer channel flow rescales the baseline
channel geometry per the paper's Table 3 assumptions.
"""

from __future__ import annotations

import math
import sys
from dataclasses import dataclass, field, replace
from collections.abc import Sequence

from repro import instrument
from repro.instrument.names import (
    CHANNELS_ROUTED,
    LEFT_EDGE_FALLBACKS,
    MEM_PEAK_RSS_BYTES,
    SPAN_CHANNEL_ROUTING,
    SPAN_FLOW_ML_CHANNEL,
    SPAN_FLOW_OVERCELL,
    SPAN_FLOW_PROBE,
    SPAN_FLOW_TWO_LAYER,
    SPAN_GLOBAL_ROUTE,
    SPAN_PLACEMENT,
)
from repro.channels import (
    ChannelRoute,
    ChannelRoutingError,
    GreedyChannelRouter,
    LeftEdgeRouter,
)
from repro.core import LevelBRouter
from repro.flow.metrics import FlowResult
from repro.flow.params import FlowParams
from repro.globalroute import GlobalRoute, GlobalRouter
from repro.netlist import Design, Net
from repro.partition import PartitionStrategy, partition_nets
from repro.placement import RowPlacement
from repro.technology import ensure_overcell_planes


# ----------------------------------------------------------------------
# Shared pipeline pieces
# ----------------------------------------------------------------------
def _assign_net_ids(nets: Sequence[Net]) -> dict[Net, int]:
    return {net: i + 1 for i, net in enumerate(sorted(nets, key=lambda n: n.name))}


def _route_channels(
    global_route: GlobalRoute, channel_router: str = "greedy"
) -> list[ChannelRoute]:
    """Detailed-route every channel with the selected router.

    The left-edge router cannot handle vertical-constraint cycles;
    cyclic channels silently fall back to the greedy router so flows
    always complete.
    """
    if channel_router not in ("greedy", "left-edge"):
        raise ValueError(f"unknown channel router {channel_router!r}")
    greedy = GreedyChannelRouter()
    left_edge = LeftEdgeRouter() if channel_router == "left-edge" else None
    routes = []
    for spec in global_route.specs:
        route = None
        if left_edge is not None:
            try:
                route = left_edge.route(spec.problem)
            except ChannelRoutingError:
                instrument.count(LEFT_EDGE_FALLBACKS)
                route = None
        if route is None:
            route = greedy.route(spec.problem)
        route.check(spec.problem)
        routes.append(route)
    instrument.count(CHANNELS_ROUTED, len(routes))
    return routes


def _channel_heights(
    global_route: GlobalRoute, routes: Sequence[ChannelRoute], pitch: int
) -> list[int]:
    """Per-channel height; empty channels keep one pitch of clearance."""
    heights = []
    for spec, route in zip(global_route.specs, routes):
        if route.tracks == 0 and not route.jogs:
            heights.append(pitch)
        else:
            heights.append(route.height(pitch))
    return heights


def _level_a_wire_and_vias(
    global_route: GlobalRoute,
    routes: Sequence[ChannelRoute],
    placement: RowPlacement,
    heights: Sequence[int],
    side_widths: tuple[int, int],
    pitch: int,
) -> tuple[int, int]:
    wire = sum(r.wire_length(pitch, pitch) for r in routes)
    row_heights = [row.height for row in placement.rows]
    wire += global_route.side_wire_length(row_heights, heights)
    # Horizontal stubs reaching into the side channels: charge half the
    # side-channel width per exit.
    for use in global_route.side_uses.values():
        width = side_widths[0] if use.side == "L" else side_widths[1]
        wire += len(use.exits) * (width // 2)
    vias = sum(r.via_count() for r in routes)
    return wire, vias


def _run_channel_pipeline(
    design: Design,
    nets: Sequence[Net],
    params: FlowParams,
) -> tuple[RowPlacement, GlobalRoute, list[ChannelRoute], list[int], tuple[int, int]]:
    pitch = params.channel_pitch
    with instrument.span(SPAN_PLACEMENT):
        placement = RowPlacement.build(
            design, pitch=pitch, aspect=params.aspect
        )
    net_ids = _assign_net_ids(nets)
    with instrument.span(SPAN_GLOBAL_ROUTE):
        global_route = GlobalRouter(placement, pitch=pitch).route(
            nets, net_ids
        )
    with instrument.span(SPAN_CHANNEL_ROUTING):
        routes = _route_channels(global_route, params.channel_router)
    heights = _channel_heights(global_route, routes, pitch)
    side_widths = global_route.side_widths(placement.num_rows)
    return placement, global_route, routes, heights, side_widths


# ----------------------------------------------------------------------
# Flows
# ----------------------------------------------------------------------
def _maybe_check(result: FlowResult, params: FlowParams) -> FlowResult:
    """Run the independent checker over a finished flow if requested."""
    if params.checked:
        from repro.check import check_flow

        result.check_report = check_flow(result)
    return result


def _route_levelb(router: LevelBRouter, params: FlowParams):
    """Route level B; returns ``(result, iterate_report_or_None)``.

    Serial, through the dispatch layer, or — with ``params.iterate`` —
    under the negotiated-congestion loop, which re-drives whichever of
    the first two modes the params select for every pass.
    ``repro.dispatch`` and ``repro.iterate`` are imported lazily (same
    idiom as :func:`_maybe_check`): both sit *above* the flow layer in
    the dependency order, so module-level imports here would be
    cycles.  The dispatched result is bit-identical to
    ``router.route()`` (docs/PARALLELISM.md).
    """
    if params.parallel <= 0 and not params.hierarchical:
        route_fn = None  # iterate_levelb's serial default
        run = router.route
    else:
        from repro.dispatch import DispatchConfig, route_levelb

        if params.parallel <= 0:
            # Hierarchical without parallelism: the coarse pass still
            # drives wave planning, but waves execute in-line.
            config = DispatchConfig(workers=1, mode="serial", hierarchical=True)
        else:
            config = DispatchConfig(
                workers=params.parallel,
                mode=params.parallel_mode,
                hierarchical=params.hierarchical,
            )

        def route_fn(r: LevelBRouter, order: Sequence[Net] | None):
            return route_levelb(r, config, order=order)

        def run():
            return route_levelb(router, config)

    if not params.iterate:
        return run(), None
    from repro.iterate import IterateConfig, iterate_levelb

    iter_config = IterateConfig(
        max_iterations=params.max_iterations,
        policy=params.ordering_policy,
    )
    result, report = iterate_levelb(router, iter_config, route_fn=route_fn)
    return result, report


def _attach_profile(result: FlowResult) -> FlowResult:
    """Snapshot the active collector into ``result.profile`` if enabled.

    The snapshot reflects the collector's cumulative state at the time
    the flow finishes; with one flow per ``collecting()`` block that is
    exactly the flow's own profile.  Peak RSS is sampled here — once,
    at flow end — so every profiled flow carries the ``mem.*`` gauges
    docs/SCALING.md describes.
    """
    inst = instrument.active()
    if inst.enabled:
        inst.gauge(MEM_PEAK_RSS_BYTES, float(_peak_rss_bytes()))
        result.profile = instrument.snapshot(inst)
    return result


def _peak_rss_bytes() -> int:
    """Process peak resident set size in bytes.

    ``ru_maxrss`` is kilobytes on Linux and bytes on macOS; normalise
    to bytes.  Returns 0 on platforms without ``resource``.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return 0
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform != "darwin":
        peak *= 1024
    return peak


def two_layer_flow(design: Design, params: FlowParams | None = None) -> FlowResult:
    """The conventional baseline: every net channel-routed on m1/m2."""
    with instrument.span(SPAN_FLOW_TWO_LAYER):
        result = _two_layer_flow(design, params)
    return _attach_profile(result)


def _two_layer_flow(design: Design, params: FlowParams | None) -> FlowResult:
    params = params or FlowParams()
    nets = design.routable_nets()
    placement, global_route, routes, heights, side_widths = _run_channel_pipeline(
        design, nets, params
    )
    bounds = placement.realize(
        heights,
        left_width=side_widths[0],
        right_width=side_widths[1],
        margin=params.margin,
    )
    wire, vias = _level_a_wire_and_vias(
        global_route, routes, placement, heights, side_widths, params.channel_pitch
    )
    result = FlowResult(
        flow="two-layer-channel",
        design=design.name,
        bounds=bounds,
        wire_length=wire,
        via_count=vias,
        channel_tracks=[r.tracks for r in routes],
        channel_heights=heights,
        side_widths=side_widths,
        placement=placement,
        global_route=global_route,
        channel_routes=routes,
    )
    return _maybe_check(result, params)


def overcell_flow(design: Design, params: FlowParams | None = None) -> FlowResult:
    """The paper's flow: set A in channels, set B over the cells."""
    with instrument.span(SPAN_FLOW_OVERCELL):
        result = _overcell_flow(design, params)
    return _attach_profile(result)


def _overcell_flow(design: Design, params: FlowParams | None) -> FlowResult:
    params = params or FlowParams()
    nets = design.routable_nets()
    if params.partition is PartitionStrategy.LONG_TO_B:
        # Geometric partitioning needs provisional pin positions.
        pitch = params.channel_pitch
        provisional = RowPlacement.build(design, pitch=pitch, aspect=params.aspect)
        provisional.realize([pitch] * provisional.channel_count, margin=params.margin)
    set_a, set_b = partition_nets(
        nets, params.partition, length_threshold=params.length_threshold
    )
    placement, global_route, routes, heights, side_widths = _run_channel_pipeline(
        design, set_a, params
    )
    bounds = placement.realize(
        heights,
        left_width=side_widths[0],
        right_width=side_widths[1],
        margin=params.margin,
    )
    wire_a, vias_a = _level_a_wire_and_vias(
        global_route, routes, placement, heights, side_widths, params.channel_pitch
    )
    levelb_config = params.levelb
    if params.checked and not levelb_config.checked:
        levelb_config = replace(levelb_config, checked=True)
    if params.backend != levelb_config.backend:
        levelb_config = replace(levelb_config, backend=params.backend)
    if params.objective != levelb_config.objective:
        levelb_config = replace(levelb_config, objective=params.objective)
    # FlowParams.planes > 1 overrides the router config; a technology
    # too short for the requested plane count is extended with
    # extrapolated reserved pairs (docs/LAYERS.md).
    planes = params.planes if params.planes > 1 else levelb_config.planes
    if planes != levelb_config.planes:
        levelb_config = replace(levelb_config, planes=planes)
    technology = params.technology
    if planes > 1:
        technology = ensure_overcell_planes(technology, planes)
    levelb_router = LevelBRouter(
        bounds,
        set_b,
        technology=technology,
        obstacles=params.obstacles,
        config=levelb_config,
    )
    levelb, iterate_report = _route_levelb(levelb_router, params)
    result = FlowResult(
        flow="overcell-4layer" if planes == 1 else f"overcell-{2 + 2 * planes}layer",
        design=design.name,
        bounds=bounds,
        wire_length=wire_a + levelb.total_wire_length,
        via_count=vias_a + levelb.total_vias,
        channel_tracks=[r.tracks for r in routes],
        channel_heights=heights,
        side_widths=side_widths,
        completion=levelb.completion_rate,
        placement=placement,
        global_route=global_route,
        channel_routes=routes,
        levelb=levelb,
    )
    pins_b = sum(n.degree for n in set_b)
    result.notes.update(
        level_a_nets=len(set_a),
        level_b_nets=len(set_b),
        # Partition by name: the checker's layer-assignment rule
        # (inv.layer) verifies the level B result against these.
        level_a_net_names=sorted(n.name for n in set_a),
        level_b_net_names=sorted(n.name for n in set_b if n.degree >= 2),
        level_a_avg_pins=(
            sum(n.degree for n in set_a) / len(set_a) if set_a else 0.0
        ),
        level_b_pins=pins_b,
        level_a_wire=wire_a,
        level_b_wire=levelb.total_wire_length,
        objective=levelb_config.objective,
        # Per-net via breakdown (corner vias + terminal stacks), the
        # quantity objective="vias" minimizes; summed in
        # ``level_b_vias`` for quick comparison across objectives.
        level_b_vias=levelb.total_vias,
        level_b_net_vias={r.net.name: r.via_count for r in levelb.routed},
    )
    if iterate_report is not None:
        result.notes["iterate"] = iterate_report.to_dict()
    return _maybe_check(result, params)


@dataclass
class RoutabilityProbe:
    """Outcome of a what-if level B routability assessment.

    Produced by :func:`routability_probe`.  The probe routes set B over
    the realised level A layout inside one grid transaction and rolls
    everything back, so it reports expected completion and wiring
    figures without committing anything.
    """

    design: str
    level_a_nets: int
    level_b_nets: int
    completion: float
    failed_nets: list[str] = field(default_factory=list)
    level_b_wire: int = 0
    level_b_corners: int = 0
    ripups: int = 0
    grid_restored: bool = True
    #: Coarse region-model occupancy profile (arXiv 1810.12789; see
    #: docs/SCALING.md).  ``regions`` counts tiles of the level B
    #: grid; ``regions_overflowed`` those whose projected demand
    #: exceeds geometric capacity — an early congestion signal that
    #: needs no routing at all.
    regions: int = 0
    regions_occupied: int = 0
    regions_overflowed: int = 0
    peak_region_utilization: float = 0.0

    @property
    def routable(self) -> bool:
        return self.completion >= 1.0


def routability_probe(
    design: Design, params: FlowParams | None = None
) -> RoutabilityProbe:
    """Early routability assessment for the over-cell flow.

    Runs the same partition + channel pipeline as :func:`overcell_flow`
    to realise the layout, then *probes* level B instead of routing it:
    the whole net loop executes inside a grid transaction that is
    rolled back (O(cells touched)), leaving the occupancy grid
    byte-identical to its pre-probe state.  Use it to vet a floorplan,
    partition threshold or obstacle set before committing to a full
    flow run.
    """
    params = params or FlowParams()
    with instrument.span(SPAN_FLOW_PROBE):
        nets = design.routable_nets()
        if params.partition is PartitionStrategy.LONG_TO_B:
            pitch = params.channel_pitch
            provisional = RowPlacement.build(
                design, pitch=pitch, aspect=params.aspect
            )
            provisional.realize(
                [pitch] * provisional.channel_count, margin=params.margin
            )
        set_a, set_b = partition_nets(
            nets, params.partition, length_threshold=params.length_threshold
        )
        placement, global_route, routes, heights, side_widths = (
            _run_channel_pipeline(design, set_a, params)
        )
        bounds = placement.realize(
            heights,
            left_width=side_widths[0],
            right_width=side_widths[1],
            margin=params.margin,
        )
        probe_config = params.levelb
        if params.backend != probe_config.backend:
            probe_config = replace(probe_config, backend=params.backend)
        if params.objective != probe_config.objective:
            probe_config = replace(probe_config, objective=params.objective)
        probe_planes = (
            params.planes if params.planes > 1 else probe_config.planes
        )
        if probe_planes != probe_config.planes:
            probe_config = replace(probe_config, planes=probe_planes)
        probe_tech = params.technology
        if probe_planes > 1:
            probe_tech = ensure_overcell_planes(probe_tech, probe_planes)
        router = LevelBRouter(
            bounds,
            set_b,
            technology=probe_tech,
            obstacles=params.obstacles,
            config=probe_config,
        )
        before = router.tig.planes.snapshot()
        levelb = router.probe()
        restored = router.tig.planes.matches(before)
        region_model = _probe_regions(router)
    return RoutabilityProbe(
        design=design.name,
        level_a_nets=len(set_a),
        level_b_nets=len(set_b),
        completion=levelb.completion_rate,
        failed_nets=[r.net.name for r in levelb.routed if not r.complete],
        level_b_wire=levelb.total_wire_length,
        level_b_corners=levelb.total_corners,
        ripups=levelb.ripups,
        grid_restored=restored,
        regions=region_model.num_regions,
        regions_occupied=len(region_model.occupied_regions()),
        regions_overflowed=len(region_model.overflowed_regions()),
        peak_region_utilization=region_model.peak_utilization(),
    )


def _probe_regions(router: LevelBRouter):
    """The coarse region model over a probe's level B instance.

    Windows are the registered terminal bounding boxes — no search
    halo, no routing: this is the floorplan-level demand projection of
    arXiv 1810.12789, cheap enough to annotate every probe.
    """
    from repro.globalroute import RegionModel

    tig = router.tig
    windows = {}
    for net_id, terminals in tig.all_terminals().items():
        if not terminals:
            continue
        windows[net_id] = (
            min(t.v_idx for t in terminals),
            max(t.v_idx for t in terminals),
            min(t.h_idx for t in terminals),
            max(t.h_idx for t in terminals),
        )
    return RegionModel.build(
        tig.grid.num_vtracks, tig.grid.num_htracks, windows
    )


def multilayer_channel_flow(
    design: Design,
    params: FlowParams | None = None,
    *,
    design_rule_aware: bool = False,
    model: str | None = None,
) -> FlowResult:
    """Table 3's comparison: a multi-layer *channel* router.

    Three models, selected by ``model``:

    ``"optimistic"`` (default)
        The paper's assumption - channel areas (between-row heights
        and side-channel widths) shrink by
        ``params.channel_area_factor`` (0.5) relative to the
        two-layer result.
    ``"design-rule"``
        Halve the track counts but re-space tracks at the coarser
        upper-layer pitch - the paper's argument for why 50 % fewer
        tracks is not 50 % less area.  (``design_rule_aware=True`` is
        the legacy spelling.)
    ``"hvh"``
        Actually route each channel with the
        :class:`~repro.channels.HVHChannelRouter` (three layers by
        adjacent-track pairing) and space the resulting physical rows
        at the upper-layer pitch.
    """
    with instrument.span(SPAN_FLOW_ML_CHANNEL):
        result = _multilayer_channel_flow(
            design, params, design_rule_aware=design_rule_aware, model=model
        )
    return _attach_profile(result)


def _multilayer_channel_flow(
    design: Design,
    params: FlowParams | None,
    *,
    design_rule_aware: bool,
    model: str | None,
) -> FlowResult:
    params = params or FlowParams()
    if model is None:
        model = "design-rule" if design_rule_aware else "optimistic"
    if model not in ("optimistic", "design-rule", "hvh"):
        raise ValueError(f"unknown multilayer channel model {model!r}")
    nets = design.routable_nets()
    placement, global_route, routes, heights, side_widths = _run_channel_pipeline(
        design, nets, params
    )
    pitch = params.channel_pitch
    if model == "hvh":
        from repro.channels import HVHChannelRouter

        ml_pitch = max(layer.pitch for layer in params.technology.layers)
        hvh = HVHChannelRouter()
        hvh_results = [hvh.route(spec.problem) for spec in global_route.specs]
        routes = [r.route for r in hvh_results]
        heights = []
        for result in hvh_results:
            if result.route.tracks == 0 and not result.route.jogs:
                heights.append(min(pitch, ml_pitch))
            else:
                heights.append((result.route.tracks + 1) * ml_pitch)
        # Side-channel verticals gain a second vertical layer in a
        # four-layer process: halve the crossing count, coarser pitch.
        new_side = []
        for width in side_widths:
            crossings = max(0, width // pitch - 1)
            reduced = math.ceil(crossings / 2)
            new_side.append((reduced + 1) * ml_pitch if reduced else 0)
        side_widths = (new_side[0], new_side[1])
        flow_name = "4layer-channel-hvh"
    elif model == "design-rule":
        ml_pitch = max(layer.pitch for layer in params.technology.layers)
        new_heights = []
        for route, h in zip(routes, heights):
            if route.tracks == 0:
                new_heights.append(min(h, ml_pitch))
            else:
                tracks = math.ceil(route.tracks / 2)
                new_heights.append((tracks + 1) * ml_pitch)
        heights = new_heights
        new_side = []
        for width in side_widths:
            crossings = max(0, width // pitch - 1)
            reduced = math.ceil(crossings / 2)
            new_side.append((reduced + 1) * ml_pitch if reduced else 0)
        side_widths = (new_side[0], new_side[1])
        flow_name = "4layer-channel-design-rule"
    else:
        factor = params.channel_area_factor
        heights = [max(1, math.ceil(h * factor)) for h in heights]
        side_widths = (
            math.ceil(side_widths[0] * factor),
            math.ceil(side_widths[1] * factor),
        )
        flow_name = "4layer-channel-optimistic"
    bounds = placement.realize(
        heights,
        left_width=side_widths[0],
        right_width=side_widths[1],
        margin=params.margin,
    )
    wire, vias = _level_a_wire_and_vias(
        global_route, routes, placement, heights, side_widths, pitch
    )
    result = FlowResult(
        flow=flow_name,
        design=design.name,
        bounds=bounds,
        wire_length=wire,
        via_count=vias,
        channel_tracks=[r.tracks for r in routes],
        channel_heights=heights,
        side_widths=side_widths,
        placement=placement,
        global_route=global_route,
        channel_routes=routes,
    )
    result.notes["model"] = {
        "optimistic": f"optimistic {params.channel_area_factor:.0%} "
        "channel-area scale",
        "design-rule": "design-rule-aware track halving",
        "hvh": "real HVH three-layer channel routing",
    }[model]
    return _maybe_check(result, params)
