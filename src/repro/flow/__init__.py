"""End-to-end routing flows and their shared metrics.

Three flows, all consuming the same :class:`~repro.netlist.Design` and
sharing the placement/global-routing/channel-routing substrate so
comparisons isolate the routing methodology:

* :func:`two_layer_flow` - the conventional baseline: every net
  channel-routed on metal1/metal2 (Table 2's comparison point).
* :func:`overcell_flow` - the paper's method: set A in channels,
  set B over the cells on metal3/metal4.
* :func:`multilayer_channel_flow` - Table 3's comparison: a four-layer
  channel router modelled optimistically as a 50 % channel-area
  reduction (the paper's own assumption), plus a design-rule-aware
  variant as an ablation.

:func:`routability_probe` complements the over-cell flow: it runs the
same partition + channel pipeline, then routes set B inside one grid
transaction and rolls it back - a what-if routability assessment that
commits nothing.
"""

from repro.flow.metrics import FlowResult, percent_reduction
from repro.flow.params import FlowParams
from repro.flow.pipeline import (
    RoutabilityProbe,
    multilayer_channel_flow,
    overcell_flow,
    routability_probe,
    two_layer_flow,
)

__all__ = [
    "FlowParams",
    "FlowResult",
    "percent_reduction",
    "two_layer_flow",
    "overcell_flow",
    "multilayer_channel_flow",
    "RoutabilityProbe",
    "routability_probe",
]
