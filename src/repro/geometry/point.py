"""Integer grid points and Manhattan distance."""

from __future__ import annotations

from collections.abc import Iterable
from typing import NamedTuple


class Point(NamedTuple):
    """An integer point on the routing grid.

    ``Point`` is a :class:`~typing.NamedTuple`, so it is hashable,
    comparable and unpackable (``x, y = p``).
    """

    x: int
    y: int

    def translated(self, dx: int, dy: int) -> "Point":
        """Return the point moved by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)

    def manhattan_to(self, other: "Point") -> int:
        """Rectilinear (L1) distance to ``other``."""
        return abs(self.x - other.x) + abs(self.y - other.y)

    def chebyshev_to(self, other: "Point") -> int:
        """Chessboard (L-infinity) distance to ``other``."""
        return max(abs(self.x - other.x), abs(self.y - other.y))

    def is_aligned_with(self, other: "Point") -> bool:
        """True when the two points share an x or y coordinate."""
        return self.x == other.x or self.y == other.y

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"({self.x},{self.y})"


def manhattan(a: Point, b: Point) -> int:
    """Rectilinear distance between two points (free-function form)."""
    return abs(a.x - b.x) + abs(a.y - b.y)


def bounding_box_half_perimeter(points: Iterable[Point]) -> int:
    """Half-perimeter of the bounding box of ``points``.

    This is the classic HPWL net-length estimate and the paper's
    "longest distance" net-ordering key.  Raises :class:`ValueError`
    on an empty iterable.
    """
    it = iter(points)
    try:
        first = next(it)
    except StopIteration:
        raise ValueError("bounding_box_half_perimeter of empty point set")
    min_x = max_x = first.x
    min_y = max_y = first.y
    for p in it:
        min_x = min(min_x, p.x)
        max_x = max(max_x, p.x)
        min_y = min(min_y, p.y)
        max_y = max(max_y, p.y)
    return (max_x - min_x) + (max_y - min_y)
