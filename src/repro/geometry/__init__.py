"""Integer Manhattan geometry substrate.

All routing in this package happens on an integer grid in abstract
"lambda" units.  The geometry layer provides the small, heavily reused
vocabulary types: :class:`Point`, closed :class:`Interval` (with a
companion :class:`IntervalSet` for free/occupied bookkeeping),
:class:`Rect`, and axis-parallel :class:`Segment` / rectilinear
:class:`Path` helpers.
"""

from repro.geometry.point import Point, manhattan
from repro.geometry.interval import Interval, IntervalSet
from repro.geometry.rect import Rect
from repro.geometry.segment import Path, Segment

__all__ = [
    "Point",
    "manhattan",
    "Interval",
    "IntervalSet",
    "Rect",
    "Segment",
    "Path",
]
