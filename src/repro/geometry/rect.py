"""Axis-aligned integer rectangles."""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable

from repro.geometry.interval import Interval
from repro.geometry.point import Point


@dataclass(frozen=True, order=True)
class Rect:
    """A closed axis-aligned rectangle ``[x1, x2] x [y1, y2]``.

    Degenerate rectangles (zero width and/or height) are allowed; they
    represent segments or points and are used for pin shapes.
    """

    x1: int
    y1: int
    x2: int
    y2: int

    def __post_init__(self) -> None:
        if self.x1 > self.x2 or self.y1 > self.y2:
            raise ValueError(
                f"Malformed Rect ({self.x1},{self.y1})-({self.x2},{self.y2})"
            )

    @staticmethod
    def from_points(a: Point, b: Point) -> "Rect":
        """Bounding rectangle of two points given in any order."""
        return Rect(min(a.x, b.x), min(a.y, b.y), max(a.x, b.x), max(a.y, b.y))

    @staticmethod
    def bounding(points: Iterable[Point]) -> "Rect":
        """Bounding rectangle of a non-empty point collection."""
        pts = list(points)
        if not pts:
            raise ValueError("Rect.bounding of empty point set")
        return Rect(
            min(p.x for p in pts),
            min(p.y for p in pts),
            max(p.x for p in pts),
            max(p.y for p in pts),
        )

    @property
    def width(self) -> int:
        return self.x2 - self.x1

    @property
    def height(self) -> int:
        return self.y2 - self.y1

    @property
    def area(self) -> int:
        """Geometric area (``width * height``)."""
        return self.width * self.height

    @property
    def half_perimeter(self) -> int:
        return self.width + self.height

    @property
    def center(self) -> Point:
        """The integer centre (rounded down)."""
        return Point((self.x1 + self.x2) // 2, (self.y1 + self.y2) // 2)

    @property
    def x_interval(self) -> Interval:
        return Interval(self.x1, self.x2)

    @property
    def y_interval(self) -> Interval:
        return Interval(self.y1, self.y2)

    def contains_point(self, p: Point) -> bool:
        """Closed containment test."""
        return self.x1 <= p.x <= self.x2 and self.y1 <= p.y <= self.y2

    def contains_rect(self, other: "Rect") -> bool:
        return (
            self.x1 <= other.x1
            and self.y1 <= other.y1
            and other.x2 <= self.x2
            and other.y2 <= self.y2
        )

    def overlaps(self, other: "Rect") -> bool:
        """True when the closed rectangles share at least one point."""
        return (
            self.x1 <= other.x2
            and other.x1 <= self.x2
            and self.y1 <= other.y2
            and other.y1 <= self.y2
        )

    def overlaps_open(self, other: "Rect") -> bool:
        """True when the rectangles share interior area (not just edges)."""
        return (
            self.x1 < other.x2
            and other.x1 < self.x2
            and self.y1 < other.y2
            and other.y1 < self.y2
        )

    def intersection(self, other: "Rect") -> "Rect" | None:
        """The common rectangle, or ``None`` when disjoint."""
        x1 = max(self.x1, other.x1)
        y1 = max(self.y1, other.y1)
        x2 = min(self.x2, other.x2)
        y2 = min(self.y2, other.y2)
        if x1 > x2 or y1 > y2:
            return None
        return Rect(x1, y1, x2, y2)

    def hull(self, other: "Rect") -> "Rect":
        """The smallest rectangle containing both."""
        return Rect(
            min(self.x1, other.x1),
            min(self.y1, other.y1),
            max(self.x2, other.x2),
            max(self.y2, other.y2),
        )

    def expanded(self, margin: int) -> "Rect":
        """The rectangle grown by ``margin`` on every side."""
        return Rect(
            self.x1 - margin, self.y1 - margin, self.x2 + margin, self.y2 + margin
        )

    def clipped_to(self, bounds: "Rect") -> "Rect" | None:
        """Alias of :meth:`intersection`, reading better at call sites."""
        return self.intersection(bounds)

    def translated(self, dx: int, dy: int) -> "Rect":
        return Rect(self.x1 + dx, self.y1 + dy, self.x2 + dx, self.y2 + dy)

    def corners(self) -> tuple[Point, Point, Point, Point]:
        """The four corners (ll, lr, ur, ul)."""
        return (
            Point(self.x1, self.y1),
            Point(self.x2, self.y1),
            Point(self.x2, self.y2),
            Point(self.x1, self.y2),
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"({self.x1},{self.y1})-({self.x2},{self.y2})"
