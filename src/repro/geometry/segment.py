"""Axis-parallel wire segments and rectilinear paths.

A routed two-terminal connection is a :class:`Path`: an ordered list of
alternating horizontal/vertical :class:`Segment` objects.  Paths carry
the geometric queries the metrics layer needs (length, corner count,
corner positions) and the validity checks the test-suite leans on.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable, Iterator, Sequence

from repro.geometry.interval import Interval
from repro.geometry.point import Point
from repro.geometry.rect import Rect


@dataclass(frozen=True)
class Segment:
    """A horizontal or vertical wire segment between two grid points.

    Degenerate (zero-length) segments are permitted: they arise when a
    terminal already lies on the track the path turns on.
    """

    a: Point
    b: Point

    def __post_init__(self) -> None:
        if self.a.x != self.b.x and self.a.y != self.b.y:
            raise ValueError(f"Segment {self.a}-{self.b} is not axis-parallel")

    @staticmethod
    def horizontal(y: int, x1: int, x2: int) -> "Segment":
        """A horizontal segment on row ``y`` (endpoints in any order)."""
        return Segment(Point(min(x1, x2), y), Point(max(x1, x2), y))

    @staticmethod
    def vertical(x: int, y1: int, y2: int) -> "Segment":
        """A vertical segment on column ``x`` (endpoints in any order)."""
        return Segment(Point(x, min(y1, y2)), Point(x, max(y1, y2)))

    @property
    def is_horizontal(self) -> bool:
        return self.a.y == self.b.y

    @property
    def is_vertical(self) -> bool:
        return self.a.x == self.b.x

    @property
    def is_point(self) -> bool:
        return self.a == self.b

    @property
    def length(self) -> int:
        return self.a.manhattan_to(self.b)

    @property
    def track(self) -> int:
        """The fixed coordinate: y for horizontal, x for vertical.

        For degenerate segments the y coordinate is returned (the
        segment is reported as horizontal).
        """
        return self.a.y if self.is_horizontal else self.a.x

    @property
    def span(self) -> Interval:
        """The varying coordinate range as an interval."""
        if self.is_horizontal:
            return Interval.spanning(self.a.x, self.b.x)
        return Interval.spanning(self.a.y, self.b.y)

    @property
    def bounds(self) -> Rect:
        return Rect.from_points(self.a, self.b)

    def contains_point(self, p: Point) -> bool:
        return self.bounds.contains_point(p)

    def points(self) -> Iterator[Point]:
        """All integer grid points on the segment, endpoint to endpoint."""
        if self.is_horizontal:
            step = 1 if self.b.x >= self.a.x else -1
            for x in range(self.a.x, self.b.x + step, step):
                yield Point(x, self.a.y)
        else:
            step = 1 if self.b.y >= self.a.y else -1
            for y in range(self.a.y, self.b.y + step, step):
                yield Point(self.a.x, y)

    def reversed(self) -> "Segment":
        return Segment(self.b, self.a)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.a}->{self.b}"


@dataclass(frozen=True)
class Path:
    """A rectilinear path as a contiguous sequence of segments.

    The constructor validates contiguity (each segment starts where the
    previous one ended).  Corner counting follows the paper: a corner is
    a direction change between a horizontal and a vertical segment;
    degenerate segments never contribute corners.
    """

    segments: tuple[Segment, ...]

    def __post_init__(self) -> None:
        for prev, nxt in zip(self.segments, self.segments[1:]):
            if prev.b != nxt.a:
                raise ValueError(
                    f"Discontiguous path: {prev} then {nxt}"
                )

    @staticmethod
    def from_points(points: Sequence[Point]) -> "Path":
        """Build a path through consecutive axis-aligned points."""
        if len(points) < 2:
            raise ValueError("Path.from_points needs at least two points")
        return Path(tuple(Segment(a, b) for a, b in zip(points, points[1:])))

    @property
    def start(self) -> Point:
        return self.segments[0].a

    @property
    def end(self) -> Point:
        return self.segments[-1].b

    @property
    def length(self) -> int:
        """Total wire length."""
        return sum(seg.length for seg in self.segments)

    @property
    def corner_count(self) -> int:
        """Number of direction changes along the path."""
        return len(self.corners())

    def corners(self) -> list[Point]:
        """The points where the path changes direction.

        Degenerate segments are skipped, so a path that merely passes
        through a zero-length stub does not accrue a corner there.
        """
        directions: list[tuple[str, Point]] = []
        for seg in self.segments:
            if seg.is_point:
                continue
            directions.append(("H" if seg.is_horizontal else "V", seg.a))
        result: list[Point] = []
        for (d1, _), (d2, start) in zip(directions, directions[1:]):
            if d1 != d2:
                result.append(start)
        return result

    def points(self) -> Iterator[Point]:
        """All grid points visited, without duplicating the joints."""
        first = True
        for seg in self.segments:
            for i, p in enumerate(seg.points()):
                if i == 0 and not first:
                    continue
                yield p
            first = False

    def waypoints(self) -> list[Point]:
        """Endpoint sequence: start plus each segment's far endpoint."""
        return [self.segments[0].a, *(seg.b for seg in self.segments)]

    @property
    def bounds(self) -> Rect:
        box = self.segments[0].bounds
        for seg in self.segments[1:]:
            box = box.hull(seg.bounds)
        return box

    def connects(self, a: Point, b: Point) -> bool:
        """True when the path endpoints equal ``{a, b}`` in some order."""
        return (self.start, self.end) in ((a, b), (b, a))

    def __iter__(self) -> Iterator[Segment]:
        return iter(self.segments)

    def __len__(self) -> int:
        return len(self.segments)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return " ".join(str(s) for s in self.segments)


def total_wire_length(paths: Iterable[Path]) -> int:
    """Sum of the lengths of a collection of paths."""
    return sum(p.length for p in paths)
