"""Closed integer intervals and sorted disjoint interval sets.

Track occupancy in both the channel router (horizontal trunk spans) and
the level B occupancy grid reduces to interval algebra on a line, so the
two classes here are the workhorses of the whole package.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from collections.abc import Iterable, Iterator


@dataclass(frozen=True, order=True)
class Interval:
    """A closed integer interval ``[lo, hi]`` with ``lo <= hi``.

    Single grid points are represented as degenerate intervals with
    ``lo == hi``.
    """

    lo: int
    hi: int

    def __post_init__(self) -> None:
        if self.lo > self.hi:
            raise ValueError(f"Interval lo={self.lo} > hi={self.hi}")

    @staticmethod
    def spanning(a: int, b: int) -> "Interval":
        """Interval between two endpoints given in either order."""
        return Interval(a, b) if a <= b else Interval(b, a)

    @property
    def length(self) -> int:
        """Geometric length ``hi - lo`` (0 for a point)."""
        return self.hi - self.lo

    @property
    def count(self) -> int:
        """Number of integer grid positions covered."""
        return self.hi - self.lo + 1

    def contains(self, value: int) -> bool:
        """True when ``lo <= value <= hi``."""
        return self.lo <= value <= self.hi

    def contains_interval(self, other: "Interval") -> bool:
        """True when ``other`` lies entirely inside this interval."""
        return self.lo <= other.lo and other.hi <= self.hi

    def overlaps(self, other: "Interval") -> bool:
        """True when the two closed intervals share at least one point."""
        return self.lo <= other.hi and other.lo <= self.hi

    def overlaps_open(self, other: "Interval") -> bool:
        """True when the two intervals share more than a single endpoint.

        Useful for channel routing, where trunks of different nets may
        abut at a column but not properly overlap.
        """
        return self.lo < other.hi and other.lo < self.hi

    def intersection(self, other: "Interval") -> "Interval" | None:
        """The common sub-interval, or ``None`` when disjoint."""
        lo = max(self.lo, other.lo)
        hi = min(self.hi, other.hi)
        return Interval(lo, hi) if lo <= hi else None

    def hull(self, other: "Interval") -> "Interval":
        """The smallest interval containing both."""
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    def expanded(self, margin: int) -> "Interval":
        """The interval grown by ``margin`` on both sides."""
        return Interval(self.lo - margin, self.hi + margin)

    def clamp(self, value: int) -> int:
        """The closest point of the interval to ``value``."""
        return min(max(value, self.lo), self.hi)

    def __iter__(self) -> Iterator[int]:
        return iter(range(self.lo, self.hi + 1))

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.lo},{self.hi}]"


class IntervalSet:
    """A mutable set of disjoint, sorted, closed integer intervals.

    The set maintains the invariant that stored intervals are pairwise
    disjoint and non-adjacent (adjacent/overlapping insertions are
    coalesced), which makes membership and overlap queries
    ``O(log n)``.
    """

    __slots__ = ("_los", "_his")

    def __init__(self, intervals: Iterable[Interval] = ()) -> None:
        self._los: list[int] = []
        self._his: list[int] = []
        for iv in intervals:
            self.add(iv)

    def __len__(self) -> int:
        return len(self._los)

    def __iter__(self) -> Iterator[Interval]:
        return (Interval(lo, hi) for lo, hi in zip(self._los, self._his))

    def __bool__(self) -> bool:
        return bool(self._los)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IntervalSet):
            return NotImplemented
        return self._los == other._los and self._his == other._his

    def copy(self) -> "IntervalSet":
        """A deep copy of the set."""
        out = IntervalSet()
        out._los = list(self._los)
        out._his = list(self._his)
        return out

    @property
    def total_count(self) -> int:
        """Total number of integer positions covered."""
        return sum(hi - lo + 1 for lo, hi in zip(self._los, self._his))

    def add(self, iv: Interval) -> None:
        """Insert ``iv``, merging with overlapping/adjacent intervals."""
        lo, hi = iv.lo, iv.hi
        # Find all stored intervals that touch [lo-1, hi+1] and merge.
        left = bisect.bisect_left(self._his, lo - 1)
        right = bisect.bisect_right(self._los, hi + 1)
        if left < right:
            lo = min(lo, self._los[left])
            hi = max(hi, self._his[right - 1])
        self._los[left:right] = [lo]
        self._his[left:right] = [hi]

    def remove(self, iv: Interval) -> None:
        """Remove every covered position inside ``iv`` from the set."""
        lo, hi = iv.lo, iv.hi
        left = bisect.bisect_left(self._his, lo)
        right = bisect.bisect_right(self._los, hi)
        if left >= right:
            return
        new_los: list[int] = []
        new_his: list[int] = []
        if self._los[left] < lo:
            new_los.append(self._los[left])
            new_his.append(lo - 1)
        if self._his[right - 1] > hi:
            new_los.append(hi + 1)
            new_his.append(self._his[right - 1])
        self._los[left:right] = new_los
        self._his[left:right] = new_his

    def contains(self, value: int) -> bool:
        """True when ``value`` is covered by some interval."""
        idx = bisect.bisect_left(self._his, value)
        return idx < len(self._los) and self._los[idx] <= value

    def overlaps(self, iv: Interval) -> bool:
        """True when any stored interval intersects ``iv``."""
        idx = bisect.bisect_left(self._his, iv.lo)
        return idx < len(self._los) and self._los[idx] <= iv.hi

    def covers(self, iv: Interval) -> bool:
        """True when a single stored interval contains all of ``iv``."""
        idx = bisect.bisect_left(self._his, iv.lo)
        return (
            idx < len(self._los)
            and self._los[idx] <= iv.lo
            and iv.hi <= self._his[idx]
        )

    def interval_at(self, value: int) -> Interval | None:
        """The stored interval covering ``value``, or ``None``."""
        idx = bisect.bisect_left(self._his, value)
        if idx < len(self._los) and self._los[idx] <= value:
            return Interval(self._los[idx], self._his[idx])
        return None

    def gap_around(self, value: int, within: Interval) -> Interval | None:
        """The maximal uncovered interval containing ``value``.

        The result is clipped to ``within``.  Returns ``None`` when
        ``value`` itself is covered or lies outside ``within``.

        This is the level B router's core query: "how far can a wire
        slide along this track from its entry point?".
        """
        if not within.contains(value) or self.contains(value):
            return None
        idx = bisect.bisect_left(self._his, value)
        lo = within.lo
        hi = within.hi
        if idx > 0:
            lo = max(lo, self._his[idx - 1] + 1)
        if idx < len(self._los):
            hi = min(hi, self._los[idx] - 1)
        if lo > hi:
            return None
        return Interval(lo, hi)

    def complement_within(self, within: Interval) -> list[Interval]:
        """The uncovered intervals inside ``within``, in order."""
        gaps: list[Interval] = []
        cursor = within.lo
        for lo, hi in zip(self._los, self._his):
            if hi < within.lo:
                continue
            if lo > within.hi:
                break
            if lo > cursor:
                gaps.append(Interval(cursor, min(lo - 1, within.hi)))
            cursor = max(cursor, hi + 1)
            if cursor > within.hi:
                break
        if cursor <= within.hi:
            gaps.append(Interval(cursor, within.hi))
        return gaps

    def intervals(self) -> list[tuple[int, int]]:
        """The stored intervals as ``(lo, hi)`` tuples."""
        return list(zip(self._los, self._his))

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return "{" + ", ".join(f"[{lo},{hi}]" for lo, hi in self.intervals()) + "}"
