"""Tier 2: the multi-design batch job runner.

Fans a corpus of (design, flow) jobs across a process pool — the whole
bench suite, a directory of exported designs, a parameter sweep — with
per-job timeout, retry-on-crash and structured ``dispatch.*`` counters.
Job payloads and results are small picklable dataclasses/dicts; the
heavy objects (designs, grids, flow results) live and die inside the
worker process.

The runner is deliberately independent of tier 1: a batch job may
itself enable speculative net-level parallelism via
``Job(parallel=...)`` → ``FlowParams(parallel=...)``, nesting the two
tiers, or run fully serial flows side by side.

Used by the ``repro dispatch`` CLI (``--jobs N``, ``--serial``,
``--json``) and the parallel-scaling benchmark.
"""

from __future__ import annotations

import time
from concurrent import futures
from dataclasses import dataclass, field
from collections.abc import Callable

from repro import instrument
from repro.instrument.names import (
    DISPATCH_JOBS_COMPLETED,
    DISPATCH_JOBS_FAILED,
    DISPATCH_JOBS_RETRIED,
    DISPATCH_JOBS_SUBMITTED,
    DISPATCH_JOBS_TIMED_OUT,
    EVT_JOB_FINISHED,
    SPAN_DISPATCH_BATCH,
    SPAN_DISPATCH_JOB,
)

__all__ = ["BatchReport", "Job", "JobOutcome", "JobRunner", "run_suite_batch"]


@dataclass(frozen=True)
class Job:
    """One unit of batch work: route one design with one flow.

    ``design`` is a built-in suite name (``repro.bench_suite.SUITES``)
    or a path to a design JSON written by ``repro.io.save_design``.
    ``parallel`` enables tier-1 speculative routing inside the job
    (level B worker count; 0 = serial).
    """

    design: str
    flow: str = "overcell"
    check: bool = False
    parallel: int = 0

    @property
    def name(self) -> str:
        return f"{self.design}/{self.flow}"


@dataclass
class JobOutcome:
    """What happened to one job."""

    job: Job
    ok: bool
    attempts: int
    elapsed_s: float
    timed_out: bool = False
    error: str | None = None
    summary: dict | None = None

    def to_dict(self) -> dict:
        """JSON-safe snapshot; round-trips through :meth:`from_dict`.

        Every value is a JSON scalar/dict/list and ``elapsed_s`` is
        pre-rounded, so ``json.loads(json.dumps(d, sort_keys=True))``
        equals ``d`` exactly — the serve protocol relies on this when
        it relays outcomes to HTTP clients.
        """
        return {
            "design": self.job.design,
            "flow": self.job.flow,
            "check": self.job.check,
            "parallel": self.job.parallel,
            "ok": self.ok,
            "attempts": self.attempts,
            "elapsed_s": round(self.elapsed_s, 6),
            "timed_out": self.timed_out,
            "error": self.error,
            "summary": self.summary,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "JobOutcome":
        """Rebuild an outcome written by :meth:`to_dict`."""
        return cls(
            job=Job(
                design=data["design"],
                flow=data.get("flow", "overcell"),
                check=bool(data.get("check", False)),
                parallel=int(data.get("parallel", 0)),
            ),
            ok=bool(data["ok"]),
            attempts=int(data["attempts"]),
            elapsed_s=float(data["elapsed_s"]),
            timed_out=bool(data.get("timed_out", False)),
            error=data.get("error"),
            summary=data.get("summary"),
        )


@dataclass
class BatchReport:
    """Aggregate outcome of one batch run."""

    outcomes: list[JobOutcome] = field(default_factory=list)
    wall_s: float = 0.0
    workers: int = 1
    mode: str = "serial"

    @property
    def ok(self) -> bool:
        return all(o.ok for o in self.outcomes)

    @property
    def completed(self) -> int:
        return sum(1 for o in self.outcomes if o.ok)

    @property
    def failed(self) -> int:
        return len(self.outcomes) - self.completed

    def to_dict(self) -> dict:
        """JSON-safe snapshot; round-trips through :meth:`from_dict`."""
        return {
            "format": "repro-dispatch-batch",
            "ok": self.ok,
            "workers": self.workers,
            "mode": self.mode,
            "wall_s": round(self.wall_s, 6),
            "jobs": [o.to_dict() for o in self.outcomes],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "BatchReport":
        """Rebuild a report written by :meth:`to_dict`."""
        if data.get("format") != "repro-dispatch-batch":
            raise ValueError("not a repro dispatch batch document")
        return cls(
            outcomes=[JobOutcome.from_dict(j) for j in data["jobs"]],
            wall_s=float(data["wall_s"]),
            workers=int(data["workers"]),
            mode=data["mode"],
        )

    def render(self) -> str:
        lines = [
            f"dispatch batch: {self.completed}/{len(self.outcomes)} jobs ok, "
            f"{self.workers} worker(s) [{self.mode}], wall {self.wall_s:.2f}s"
        ]
        for o in self.outcomes:
            if o.ok and o.summary:
                status = (
                    f"ok  completion={o.summary.get('completion', 0.0):.1%} "
                    f"wl={o.summary.get('wire_length', 0):,}"
                )
                if "check_clean" in o.summary:
                    status += (
                        " check=CLEAN"
                        if o.summary["check_clean"]
                        else f" check={o.summary.get('check_violations', '?')} violation(s)"
                    )
            elif o.timed_out:
                status = "TIMED OUT"
            else:
                status = f"FAILED ({o.error or 'unknown error'})"
            lines.append(
                f"  {o.job.name:<24} {status}  "
                f"[{o.elapsed_s:.2f}s, {o.attempts} attempt(s)]"
            )
        return "\n".join(lines)


def _execute_job(job: Job) -> dict:
    """Worker-side job body: load, route, summarise (picklably).

    Imports run inside the function so the parent's submit path stays
    cheap and the worker process pays its own import cost exactly once
    (fork start methods inherit the parent's modules anyway).
    """
    start = time.perf_counter()
    from repro.bench_suite import SUITES
    from repro.flow import (
        FlowParams,
        multilayer_channel_flow,
        overcell_flow,
        two_layer_flow,
    )

    flows = {
        "two-layer": two_layer_flow,
        "overcell": overcell_flow,
        "ml-channel": multilayer_channel_flow,
    }
    if job.design in SUITES:
        design = SUITES[job.design]()
    else:
        from repro.io import load_design

        design = load_design(job.design)
    params = FlowParams(parallel=job.parallel)
    result = flows[job.flow](design, params)
    summary: dict = {
        "design": result.design,
        "flow": result.flow,
        "completion": result.completion,
        "wire_length": result.wire_length,
        "via_count": result.via_count,
        "layout_area": result.layout_area,
        "flow_elapsed_s": round(time.perf_counter() - start, 6),
    }
    if job.check:
        from repro.check import check_flow

        report = check_flow(result)
        summary["check_clean"] = not report.violations
        summary["check_violations"] = len(report.violations)
    return summary


def _job_ok(job: Job, summary: dict) -> bool:
    if summary.get("completion", 0.0) < 1.0:
        return False
    if job.check and not summary.get("check_clean", False):
        return False
    return True


def _module_level(fn: Callable) -> bool:
    """Is ``fn`` picklable by reference (a plain module-level function)?

    Process pools serialise callables by ``module.qualname`` lookup;
    closures, lambdas and bound methods all fail that round trip.
    """
    import sys

    qualname = getattr(fn, "__qualname__", "")
    module = getattr(fn, "__module__", None)
    if not qualname or "." in qualname or module is None:
        return False
    owner = sys.modules.get(module)
    return owner is not None and getattr(owner, qualname, None) is fn


class JobRunner:
    """Work-queue executor for :class:`Job` batches.

    ``workers``/``mode`` select the pool (``"process"`` with automatic
    thread fallback, ``"thread"``, or ``"serial"`` for in-line
    execution).  ``timeout_s`` bounds each job's wall time (pool modes
    only).  A job that raises or dies with its worker process is
    retried up to ``retries`` times; a timed-out job is recorded and,
    with ``retry_timeouts=True``, also retried — its old worker may
    still be running, but the pool is rebuilt between rounds so the
    retry always lands on a fresh executor.  ``repro.serve`` turns
    timeout retries on so a transiently stuck routing job gets a
    second chance before the client sees a failure.

    ``job_body`` is the submission hook: the callable each job is
    handed to (default :func:`_execute_job`, which loads and routes
    the design named by the job).  Callers that need richer payloads —
    serve injects a closure that routes an *inline* design under a
    per-job collector — swap the body while keeping the runner's
    queueing, timeout, retry and accounting behaviour.  Bodies must be
    picklable for ``mode="process"``; closures require thread/serial.
    """

    def __init__(
        self,
        workers: int = 2,
        *,
        mode: str = "process",
        timeout_s: float | None = None,
        retries: int = 1,
        retry_timeouts: bool = False,
        job_body: Callable[[Job], dict] | None = None,
    ) -> None:
        if mode not in ("process", "thread", "serial"):
            raise ValueError(f"unknown job runner mode {mode!r}")
        if (
            mode == "process"
            and job_body is not None
            and not _module_level(job_body)
        ):
            raise ValueError(
                "mode='process' requires a module-level job_body: "
                f"{job_body!r} is a closure or bound method, which "
                "process pools cannot pickle by reference; use "
                "mode='thread' or 'serial'"
            )
        self.workers = max(1, workers)
        self.mode = mode
        self.timeout_s = timeout_s
        self.retries = max(0, retries)
        self.retry_timeouts = retry_timeouts
        self.job_body = job_body if job_body is not None else _execute_job

    # ------------------------------------------------------------------
    def run(self, jobs: list[Job]) -> BatchReport:
        start = time.perf_counter()
        with instrument.span(SPAN_DISPATCH_BATCH):
            instrument.active().declare(
                DISPATCH_JOBS_COMPLETED,
                DISPATCH_JOBS_FAILED,
                DISPATCH_JOBS_RETRIED,
                DISPATCH_JOBS_SUBMITTED,
                DISPATCH_JOBS_TIMED_OUT,
            )
            if self.mode == "serial" or self.workers == 1:
                outcomes = self._run_serial(jobs)
                mode = "serial"
            else:
                outcomes, mode = self._run_pool(jobs)
        report = BatchReport(
            outcomes=outcomes,
            wall_s=time.perf_counter() - start,
            workers=1 if mode == "serial" else self.workers,
            mode=mode,
        )
        instrument.count(DISPATCH_JOBS_COMPLETED, report.completed)
        instrument.count(DISPATCH_JOBS_FAILED, report.failed)
        return report

    # ------------------------------------------------------------------
    def _run_serial(self, jobs: list[Job]) -> list[JobOutcome]:
        outcomes = []
        for job in jobs:
            instrument.count(DISPATCH_JOBS_SUBMITTED)
            outcomes.append(self._attempt_serial(job))
        return outcomes

    def _attempt_serial(self, job: Job) -> JobOutcome:
        attempts = 0
        start = time.perf_counter()
        while True:
            attempts += 1
            try:
                with instrument.span(SPAN_DISPATCH_JOB):
                    summary = self.job_body(job)
            except Exception as exc:
                if attempts <= self.retries:
                    instrument.count(DISPATCH_JOBS_RETRIED)
                    continue
                outcome = JobOutcome(
                    job=job,
                    ok=False,
                    attempts=attempts,
                    elapsed_s=time.perf_counter() - start,
                    error=f"{type(exc).__name__}: {exc}",
                )
                break
            outcome = JobOutcome(
                job=job,
                ok=_job_ok(job, summary),
                attempts=attempts,
                elapsed_s=time.perf_counter() - start,
                summary=summary,
            )
            break
        instrument.event(EVT_JOB_FINISHED, job=job.name, ok=outcome.ok)
        return outcome

    # ------------------------------------------------------------------
    def _new_executor(self) -> tuple[futures.Executor, str]:
        if self.mode == "process":
            try:
                return (
                    futures.ProcessPoolExecutor(max_workers=self.workers),
                    "process",
                )
            except (OSError, ValueError, ImportError):
                pass
        return futures.ThreadPoolExecutor(max_workers=self.workers), "thread"

    def _run_pool(self, jobs: list[Job]) -> tuple[list[JobOutcome], str]:
        outcomes: dict[int, JobOutcome] = {}
        attempts = dict.fromkeys(range(len(jobs)), 0)
        started = {i: time.perf_counter() for i in range(len(jobs))}
        pending = list(range(len(jobs)))
        mode = self.mode
        while pending:
            executor, mode = self._new_executor()
            submitted = {
                # repro: allow[pool.payload] __init__ rejects non-module-level bodies for mode='process' (_module_level guard); closures only ever reach thread/serial executors
                i: executor.submit(self.job_body, jobs[i]) for i in pending
            }
            instrument.count(DISPATCH_JOBS_SUBMITTED, len(pending))
            requeue: list[int] = []
            for i, fut in submitted.items():
                job = jobs[i]
                attempts[i] += 1
                try:
                    summary = fut.result(timeout=self.timeout_s)
                except futures.TimeoutError:
                    fut.cancel()
                    instrument.count(DISPATCH_JOBS_TIMED_OUT)
                    if self.retry_timeouts and attempts[i] <= self.retries:
                        instrument.count(DISPATCH_JOBS_RETRIED)
                        requeue.append(i)
                    else:
                        outcomes[i] = JobOutcome(
                            job=job,
                            ok=False,
                            attempts=attempts[i],
                            elapsed_s=time.perf_counter() - started[i],
                            timed_out=True,
                            error=f"timed out after {self.timeout_s}s",
                        )
                except Exception as exc:
                    # Worker crash (BrokenExecutor) or job exception:
                    # retry on a fresh pool until attempts run out.
                    if attempts[i] <= self.retries:
                        instrument.count(DISPATCH_JOBS_RETRIED)
                        requeue.append(i)
                    else:
                        outcomes[i] = JobOutcome(
                            job=job,
                            ok=False,
                            attempts=attempts[i],
                            elapsed_s=time.perf_counter() - started[i],
                            error=f"{type(exc).__name__}: {exc}",
                        )
                else:
                    outcomes[i] = JobOutcome(
                        job=job,
                        ok=_job_ok(job, summary),
                        attempts=attempts[i],
                        elapsed_s=time.perf_counter() - started[i],
                        summary=summary,
                    )
                if i in outcomes:
                    instrument.event(
                        EVT_JOB_FINISHED, job=job.name, ok=outcomes[i].ok
                    )
            executor.shutdown(wait=False, cancel_futures=True)
            pending = requeue
        return [outcomes[i] for i in range(len(jobs))], mode


def run_suite_batch(
    suites: list[str],
    flows: list[str],
    *,
    workers: int = 2,
    mode: str = "process",
    timeout_s: float | None = None,
    retries: int = 1,
    check: bool = False,
    parallel: int = 0,
) -> BatchReport:
    """Route every ``suite x flow`` combination as one batch."""
    jobs = [
        Job(design=suite, flow=flow, check=check, parallel=parallel)
        for suite in suites
        for flow in flows
    ]
    runner = JobRunner(workers, mode=mode, timeout_s=timeout_s, retries=retries)
    return runner.run(jobs)
