"""Conflict-graph wave planning for speculative net-level parallelism.

The level B router commits nets one at a time, but the bounded-region
search (paper section 3.1) means most nets only ever *read* a small
rectangle of the grid around their terminals.  Two nets whose read
rectangles are disjoint cannot influence each other's searches, so they
may be routed concurrently and committed in canonical order with a
result identical to serial routing.

This module computes those read rectangles ("windows") and buckets nets
into **waves** of pairwise-disjoint windows.  A window must cover every
cell a speculative worker could read:

* the escalating search regions — the terminal bounding box expanded by
  ``region_margin_tracks * region_growth**k`` for each speculated
  expansion ``k``; multi-terminal nets compound this, because a Steiner
  attachment point may itself sit a full margin outside the previous
  reach, so the margin scales with ``(terminals - 1)``;
* the cost model's read halo — :class:`~repro.core.cost.CostWeights`
  evaluates ``drg``/``dup``/``acf`` over a ``radius``-track window
  around candidate corners, and
  :class:`~repro.core.coupling.ParallelRunPenalty` reads
  ``parallel_run_separation`` neighbouring tracks along the path.

Windows are clamped to the grid, so clipping a search region at a
window edge coincides exactly with clipping it at the grid edge — the
property that makes a worker's sub-grid search bit-equal to the serial
search (see docs/PARALLELISM.md).

Planning is an optimisation only: correctness never depends on it.  The
merger re-validates every window against the live grid before applying
a speculative route, so an undersized wave merely wastes worker time.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence
from typing import TYPE_CHECKING

from repro.geometry import Interval

if TYPE_CHECKING:
    from repro.core.router import LevelBConfig
    from repro.grid.occupancy import RoutingGrid

__all__ = [
    "DispatchConfig",
    "NetPlan",
    "halo_tracks",
    "net_window",
    "plan_wave",
    "plan_waves",
    "windows_overlap",
]


@dataclass(frozen=True)
class DispatchConfig:
    """Tuning knobs for the parallel dispatch layer (tier 1)."""

    #: Concurrent speculative workers.  ``0`` disables speculation
    #: entirely (the router runs serially).
    workers: int = 2
    #: Executor kind: ``"process"`` (default; falls back to threads when
    #: process pools are unavailable), ``"thread"`` or ``"serial"``
    #: (in-line execution, for debugging and deterministic tests).
    mode: str = "process"
    #: How many region escalations a worker may attempt before giving
    #: up and deferring to the serial path.  Each step multiplies the
    #: window halo by ``region_growth``, shrinking wave sizes, so the
    #: default speculates only the first (smallest) region — which is
    #: the region that succeeds for the overwhelming majority of nets.
    speculate_expansions: int = 0
    #: Upper bound on nets per wave (bounds snapshot memory in flight).
    max_wave: int = 16
    #: How far down the pending-net order the planner scans when
    #: filling a wave.
    scan_ahead: int = 64
    #: Nets whose window covers more than this fraction of the grid are
    #: never speculated (the snapshot would cost more than the search).
    max_window_fraction: float = 0.85
    #: Coarse-then-detailed planning: assign nets to regions of a
    #: :class:`~repro.globalroute.regions.RegionModel` up front, then
    #: fill waves by walking candidate nets region-by-region instead of
    #: linearly down the canonical order.  Changes only *which*
    #: disjoint work each wave discovers; committed geometry stays
    #: bit-identical to the flat run (docs/SCALING.md).
    hierarchical: bool = False
    #: Region edge length (tracks) for hierarchical planning.
    region_tracks: int = 32

    def __post_init__(self) -> None:
        if self.mode not in ("process", "thread", "serial"):
            raise ValueError(f"unknown dispatch mode {self.mode!r}")
        if self.speculate_expansions < 0:
            raise ValueError("speculate_expansions must be >= 0")
        if self.region_tracks < 1:
            raise ValueError("region_tracks must be >= 1")


@dataclass(frozen=True)
class NetPlan:
    """One net's planned read window, in global index space.

    ``plane`` is the over-cell plane the net routes on: windows on
    different planes touch disjoint occupancy state, so they never
    conflict even when their index rectangles coincide.
    """

    net_id: int
    v_iv: Interval
    h_iv: Interval
    plane: int = 0

    @property
    def cells(self) -> int:
        return self.v_iv.count * self.h_iv.count


def halo_tracks(
    config: LevelBConfig,
    speculate_expansions: int,
    num_terminals: int = 2,
    footprint_reach: int = 0,
) -> int:
    """Tracks a net's reads may extend beyond its terminal bounding box.

    ``config`` is the router's :class:`~repro.core.router.LevelBConfig`.
    The bound is the speculated search-region margin (compounded once
    per Steiner connection for multi-terminal nets, since an attachment
    point may lie a full margin outside the previous reach) plus the
    cost model's read radius.  ``footprint_reach`` is the net's width
    footprint reach (``span - 1 + guard`` — see
    :meth:`~repro.grid.RoutingGrid.footprint_reach`): a wide net's
    occupancy probes read that many extra tracks past every candidate,
    so the window must cover them too.
    """
    margin = config.region_margin_tracks
    for _ in range(speculate_expansions):
        margin *= config.region_growth
    connections = max(1, num_terminals - 1)
    pad = max(config.weights.radius, config.parallel_run_separation, 1)
    return margin * connections + pad + footprint_reach


def net_window(
    grid: RoutingGrid,
    net_id: int,
    terminals: Sequence,
    config: LevelBConfig,
    speculate_expansions: int,
    plane: int = 0,
    footprint_reach: int = 0,
) -> NetPlan:
    """The padded, grid-clamped read window for one net."""
    v_lo = min(t.v_idx for t in terminals)
    v_hi = max(t.v_idx for t in terminals)
    h_lo = min(t.h_idx for t in terminals)
    h_hi = max(t.h_idx for t in terminals)
    unique = len({(t.v_idx, t.h_idx) for t in terminals})
    halo = halo_tracks(config, speculate_expansions, unique, footprint_reach)
    v_iv = grid.vtracks.clip_indices(Interval(v_lo, v_hi).expanded(halo))
    h_iv = grid.htracks.clip_indices(Interval(h_lo, h_hi).expanded(halo))
    return NetPlan(net_id=net_id, v_iv=v_iv, h_iv=h_iv, plane=plane)


def windows_overlap(a: NetPlan, b: NetPlan) -> bool:
    """Do two planned windows share any grid cell?

    Windows on different planes read different grids, so they are
    always disjoint regardless of their index rectangles.
    """
    return (
        a.plane == b.plane
        and a.v_iv.overlaps(b.v_iv)
        and a.h_iv.overlaps(b.h_iv)
    )


def plan_wave(plans: Sequence[NetPlan], limit: int | None = None) -> list[NetPlan]:
    """Greedy wave selection: a maximal prefix-respecting disjoint set.

    The first plan is always selected (it is the net at the head of the
    routing order, which must make progress); each later plan joins the
    wave when its window is disjoint from every window already in it.
    Greedy-by-order keeps the wave aligned with the serial schedule, so
    applied results never have to wait on a net routed further down the
    order.
    """
    wave: list[NetPlan] = []
    for plan in plans:
        if limit is not None and len(wave) >= limit:
            break
        if all(not windows_overlap(plan, member) for member in wave):
            wave.append(plan)
    return wave


def plan_waves(plans: Sequence[NetPlan], limit: int | None = None) -> list[list[NetPlan]]:
    """Partition all plans into successive waves (analysis/test helper).

    The live speculator plans waves lazily as the router consumes nets;
    this eager version exposes the same greedy structure for tests,
    docs and wave-size statistics.
    """
    remaining = list(plans)
    waves: list[list[NetPlan]] = []
    while remaining:
        wave = plan_wave(remaining, limit)
        chosen = {p.net_id for p in wave}
        remaining = [p for p in remaining if p.net_id not in chosen]
        waves.append(wave)
    return waves
