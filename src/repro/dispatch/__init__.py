"""repro.dispatch - parallel & batch execution over the routing stack.

Two tiers, built on PR 2's transactional grid and PR 3's independent
checker:

**Tier 1 — speculative net-level parallelism** inside one design
(:mod:`plan` / :mod:`workers` / :mod:`merge`): level B nets are bucketed
into waves of spatially disjoint read windows, each wave routes
concurrently on per-net grid-window copies, and a deterministic merger
replays the results through ``commit_path`` in canonical net order.
Every speculation is validated against the live grid before it is
applied, so the committed geometry is **bit-identical to serial
routing** — speculation can only ever change how fast the answer
arrives, never the answer (docs/PARALLELISM.md has the argument).

    from repro.dispatch import DispatchConfig, route_levelb
    result = route_levelb(router, DispatchConfig(workers=4))

or, through the flow layer::

    overcell_flow(design, FlowParams(parallel=4))

**Tier 2 — batch job runner** (:mod:`jobs`): fan a corpus of
(design, flow) jobs across a process pool with per-job timeout and
retry-on-crash, surfaced as the ``repro dispatch`` CLI.

Both tiers emit ``dispatch.*`` counters/spans/events through
:mod:`repro.instrument`.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.router import LevelBResult, LevelBRouter
from repro.netlist import Net
from repro.dispatch.jobs import (
    BatchReport,
    Job,
    JobOutcome,
    JobRunner,
    run_suite_batch,
)
from repro.dispatch.merge import WaveSpeculator
from repro.dispatch.plan import (
    DispatchConfig,
    NetPlan,
    halo_tracks,
    net_window,
    plan_wave,
    plan_waves,
    windows_overlap,
)
from repro.dispatch.workers import (
    NetTask,
    SpecConnection,
    SpecResult,
    WorkerPool,
    route_net_task,
    speculative_config,
)

__all__ = [
    "BatchReport",
    "DispatchConfig",
    "Job",
    "JobOutcome",
    "JobRunner",
    "NetPlan",
    "NetTask",
    "SpecConnection",
    "SpecResult",
    "WaveSpeculator",
    "WorkerPool",
    "halo_tracks",
    "net_window",
    "plan_wave",
    "plan_waves",
    "route_levelb",
    "route_net_task",
    "run_suite_batch",
    "speculative_config",
    "windows_overlap",
]


def route_levelb(
    router: LevelBRouter,
    config: DispatchConfig | None = None,
    *,
    order: Sequence[Net] | None = None,
) -> LevelBResult:
    """Route a :class:`LevelBRouter` with speculative parallelism.

    A drop-in replacement for ``router.route()``: identical result
    (see the determinism contract in :mod:`repro.dispatch.merge`),
    wall-clock bounded by the serial run plus merge overhead.  With
    ``workers=0`` this *is* ``router.route()``.  ``order`` forwards an
    explicit net permutation (``repro.iterate`` passes re-ordered
    nets); the parity contract holds for any order because the wave
    planner and merger both key off the order they are given.
    """
    cfg = config or DispatchConfig()
    if cfg.workers <= 0:
        return router.route(order=order)
    speculator = WaveSpeculator(router, cfg)
    try:
        return router.route(speculator=speculator, order=order)
    finally:
        speculator.close()
