"""The deterministic merger: validate, replay and commit speculations.

:class:`WaveSpeculator` plugs into :meth:`LevelBRouter.route` through
the :class:`~repro.core.router.NetSpeculator` protocol.  The router
keeps full authority over net order, rip-up and refinement; as each net
reaches the head of the queue the speculator either hands back a
validated, already-committed result or declines, in which case the
router routes the net serially on the spot.

Determinism contract (docs/PARALLELISM.md)
------------------------------------------
A speculative result is applied only when **all** of the following
hold, in this order:

1. the worker completed the net inside its bounded regions;
2. the live grid is byte-identical to the worker's window snapshot
   over the window (:meth:`RoutingGrid.window_matches`) — which proves
   every cell the worker's search *could have read* still holds the
   value it saw, and therefore that the serial router, running right
   now, would compute the same path;
3. replaying the path through :meth:`RoutingGrid.commit_path` inside a
   grid transaction raises no conflict (belt and braces: the journal
   rolls the replay back if it ever does).

Any failure simply declines the net: the router routes it serially in
canonical order, which is trivially identical to serial routing.  So
the committed geometry is bit-identical to a serial run *by
construction*, regardless of planner quality, scheduling jitter or
worker failures.

Waves are planned lazily over the not-yet-consumed routing order:
windows are snapshotted before the wave's first net commits, and wave
members have pairwise-disjoint windows, so applying one member never
dirties another member's window.  Serial fallbacks and rip-ups *do*
write outside the plan — the window check catches exactly those nets,
and only those, which then requeue onto the serial path.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Sequence

from repro import instrument
from repro.instrument.names import (
    DISPATCH_APPLIED,
    DISPATCH_CONFLICTS,
    DISPATCH_FALLBACKS,
    DISPATCH_HIER_WAVES,
    DISPATCH_SPECULATED,
    DISPATCH_WAVES,
    EVT_REGIONS_BUILT,
    EVT_SPEC_CONFLICT,
    EVT_WAVE_PLANNED,
    SPAN_DISPATCH_APPLY,
    SPAN_DISPATCH_PLAN,
)
from repro.core.engine import RoutedConnection
from repro.core.router import LevelBRouter, RoutedNet
from repro.core.tig import GridTerminal
from repro.geometry import Path
from repro.grid.occupancy import WindowSnapshot
from repro.netlist import Net
from repro.globalroute.regions import RegionModel
from repro.dispatch.plan import DispatchConfig, NetPlan, net_window, plan_wave
from repro.dispatch.workers import (
    NetTask,
    SpecFuture,
    SpecResult,
    WorkerPool,
    speculative_config,
)

__all__ = ["WaveSpeculator"]


class WaveSpeculator:
    """Speculative wave executor for one :class:`LevelBRouter` run."""

    def __init__(self, router: LevelBRouter, config: DispatchConfig | None = None) -> None:
        self.router = router
        self.config = config or DispatchConfig()
        self._spec_config = speculative_config(
            router.config, self.config.speculate_expansions
        )
        self._pool: WorkerPool | None = None
        self._pending: deque[Net] = deque()
        self._consumed: set[int] = set()
        # net_id -> (future, snapshot) for submitted, not-yet-taken nets.
        self._inflight: dict[int, tuple[SpecFuture, WindowSnapshot]] = {}
        #: The coarse region model (hierarchical mode only).
        self._regions: RegionModel | None = None
        self.waves_planned = 0
        self.nets_applied = 0

    # ------------------------------------------------------------------
    # NetSpeculator protocol
    # ------------------------------------------------------------------
    def begin(self, ordered: Sequence[Net]) -> None:
        self._pending = deque(ordered)
        instrument.active().declare(
            DISPATCH_APPLIED,
            DISPATCH_CONFLICTS,
            DISPATCH_FALLBACKS,
            DISPATCH_SPECULATED,
            DISPATCH_WAVES,
        )
        if self.config.hierarchical:
            self._regions = self._build_regions(ordered)
            instrument.event(
                EVT_REGIONS_BUILT,
                regions=self._regions.num_regions,
                occupied=len(self._regions.occupied_regions()),
                overflowed=len(self._regions.overflowed_regions()),
                peak_utilization=self._regions.peak_utilization(),
            )

    def take(self, net: Net) -> RoutedNet | None:
        net_id = self.router.net_id(net)
        if net_id in self._consumed:
            # A rip-up requeue: the speculation (if any) predates the
            # rip and is stale by definition.  Serial path.
            return None
        self._consumed.add(net_id)
        self._drop_pending(net)
        if net_id not in self._inflight:
            self._plan_and_submit(net)
        entry = self._inflight.pop(net_id, None)
        if entry is None:
            instrument.count(DISPATCH_FALLBACKS)
            return None
        future, snapshot = entry
        try:
            result: SpecResult = future.result()
        except Exception:
            # Worker crashed or the pool broke: stop speculating, keep
            # routing (serially).  Outstanding futures fail the same way.
            if self._pool is not None:
                self._pool.mark_dead()
            instrument.count(DISPATCH_FALLBACKS)
            return None
        if not result.complete:
            instrument.count(DISPATCH_FALLBACKS)
            return None
        grid = self.router.tig.grid_of(net_id)
        if not grid.window_matches(snapshot):
            instrument.count(DISPATCH_CONFLICTS)
            instrument.event(EVT_SPEC_CONFLICT, net=net.name, net_id=net_id)
            return None
        return self._apply(net, net_id, result)

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release the worker pool (idempotent)."""
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _drop_pending(self, net: Net) -> None:
        # The consumed net is at (or near) the head of the pending
        # order; remove its first occurrence.
        try:
            self._pending.remove(net)
        except ValueError:
            pass

    def _ensure_pool(self) -> WorkerPool:
        if self._pool is None:
            self._pool = WorkerPool(self.config.workers, self.config.mode)
        return self._pool

    def _plan_for(self, net: Net) -> NetPlan | None:
        router = self.router
        net_id = router.net_id(net)
        terminals = router.tig.terminals_of(net_id)
        if not terminals:
            return None
        grid = router.tig.grid_of(net_id)
        span, guard = router.footprint_of(net_id)
        plan = net_window(
            grid,
            net_id,
            terminals,
            router.config,
            self.config.speculate_expansions,
            plane=router.tig.plane_of(net_id),
            footprint_reach=span - 1 + guard,
        )
        if plan.cells > self.config.max_window_fraction * grid.num_intersections:
            return None  # window ~ whole grid: speculation buys nothing
        return plan

    def _build_regions(self, ordered: Sequence[Net]) -> RegionModel:
        """The coarse pass: every net's read window onto the region grid.

        Windows use the same padded rectangles the wave planner reads
        (:func:`~repro.dispatch.plan.net_window`); nets too large to
        speculate still get assigned — their terminal bounding box
        places them — so region statistics cover the whole netlist.
        """
        router = self.router
        grid = router.tig.grid  # planes share track sets; plane 0 suffices
        windows: dict[int, tuple[int, int, int, int]] = {}
        for net in ordered:
            net_id = router.net_id(net)
            terminals = router.tig.terminals_of(net_id)
            if not terminals:
                continue
            plan = self._plan_for(net)
            if plan is not None:
                windows[net_id] = (
                    plan.v_iv.lo, plan.v_iv.hi, plan.h_iv.lo, plan.h_iv.hi
                )
            else:
                windows[net_id] = (
                    min(t.v_idx for t in terminals),
                    max(t.v_idx for t in terminals),
                    min(t.h_idx for t in terminals),
                    max(t.h_idx for t in terminals),
                )
        return RegionModel.build(
            grid.num_vtracks,
            grid.num_htracks,
            windows,
            region_tracks=self.config.region_tracks,
        )

    def _region_ordered_pending(self, head_id: int) -> list[Net]:
        """Pending nets re-ordered region-by-region for wave filling.

        Canonical order buckets by assigned region, then the buckets
        interleave round-robin starting *after* the head's region:
        early candidates come from other regions — the ones whose
        windows are most likely disjoint from the head's — so the
        ``scan_ahead`` budget discovers wide waves instead of burning
        itself on the head's congested neighbourhood.  Everything here
        is derived from the canonical order and the deterministic
        region assignment, so the schedule is reproducible; the merge
        contract keeps the committed geometry bit-identical either
        way.
        """
        assert self._regions is not None
        buckets: dict[int, deque[Net]] = {}
        order: list[int] = []
        for net in self._pending:
            rid = self._regions.region_of(self.router.net_id(net))
            if rid not in buckets:
                buckets[rid] = deque()
                order.append(rid)
            buckets[rid].append(net)
        head_rid = self._regions.region_of(head_id)
        if head_rid in buckets:
            start = (order.index(head_rid) + 1) % len(order)
            order = order[start:] + order[:start]
        interleaved: list[Net] = []
        while order:
            next_round: list[int] = []
            for rid in order:
                bucket = buckets[rid]
                interleaved.append(bucket.popleft())
                if bucket:
                    next_round.append(rid)
            order = next_round
        return interleaved

    def _plan_and_submit(self, head: Net) -> None:
        """Plan a wave starting at ``head`` and submit its tasks."""
        cfg = self.config
        if cfg.workers <= 0:
            return
        pool = self._ensure_pool()
        if not pool.alive:
            return
        with instrument.span(SPAN_DISPATCH_PLAN):
            head_plan = self._plan_for(head)
            if head_plan is None:
                return
            candidates: list[NetPlan] = [head_plan]
            by_id: dict[int, Net] = {head_plan.net_id: head}
            scanned = 0
            followers: Sequence[Net] | deque[Net]
            if self._regions is not None:
                followers = self._region_ordered_pending(head_plan.net_id)
            else:
                followers = self._pending
            for follower in followers:
                if scanned >= cfg.scan_ahead:
                    break
                scanned += 1
                fid = self.router.net_id(follower)
                if fid in self._consumed or fid in self._inflight:
                    continue
                fplan = self._plan_for(follower)
                if fplan is None:
                    continue
                candidates.append(fplan)
                by_id[fid] = follower
            wave = plan_wave(candidates, limit=cfg.max_wave)
        history = self.router.history
        for plan in wave:
            grid = self.router.tig.grid_of(plan.net_id)
            snapshot = grid.window_snapshot(plan.v_iv, plan.h_iv)
            terminals = tuple(
                GridTerminal(t.v_idx - plan.v_iv.lo, t.h_idx - plan.h_iv.lo)
                for t in self.router.tig.terminals_of(plan.net_id)
            )
            task = NetTask(
                net_id=plan.net_id,
                terminals=terminals,
                window=snapshot,
                config=self._spec_config,
                sensitive_ids=self.router.sensitive_ids,
                # Iterative runs must ship the history with the task:
                # the merge's byte-equality check validates grid state,
                # not the cost model (docs/ITERATION.md).
                history=(
                    history[self.router.tig.plane_of(plan.net_id)].window(
                        plan.v_iv.lo, plan.v_iv.hi, plan.h_iv.lo, plan.h_iv.hi
                    )
                    if history is not None
                    else None
                ),
                footprint=self.router.footprint_of(plan.net_id),
                corner_surcharge=self.router.corner_surcharge(plan.net_id),
            )
            self._inflight[plan.net_id] = (pool.submit(task), snapshot)
        self.waves_planned += 1
        instrument.count(DISPATCH_WAVES)
        if self._regions is not None:
            instrument.count(DISPATCH_HIER_WAVES)
        instrument.count(DISPATCH_SPECULATED, len(wave))
        instrument.event(
            EVT_WAVE_PLANNED,
            size=len(wave),
            nets=[by_id[p.net_id].name for p in wave],
        )

    def _apply(self, net: Net, net_id: int, result: SpecResult) -> RoutedNet | None:
        """Replay a validated speculation on the authoritative grid."""
        grid = self.router.tig.grid_of(net_id)
        with instrument.span(SPAN_DISPATCH_APPLY):
            try:
                with grid.transaction():
                    for term in self.router.tig.terminals_of(net_id):
                        grid.mark_terminal_routed(term.v_idx, term.h_idx)
                    for sc in result.connections:
                        grid.commit_path(net_id, list(sc.points), sc.corners)
            except ValueError:
                # A conflict the window check could not see (should be
                # impossible by construction; the journal rolled every
                # cell back).  Decline: the serial path handles it.
                instrument.count(DISPATCH_CONFLICTS)
                instrument.event(EVT_SPEC_CONFLICT, net=net.name, net_id=net_id)
                return None
        connections = [
            RoutedConnection(
                source=sc.source,
                target=sc.target,
                path=Path.from_points(list(sc.points)),
                corners=list(sc.corners),
                cost=sc.cost,
                expansions_used=sc.expansions_used,
            )
            for sc in result.connections
        ]
        self.nets_applied += 1
        instrument.count(DISPATCH_APPLIED)
        return RoutedNet(
            net=net,
            net_id=net_id,
            connections=connections,
            # Workers only see routable terminals; pinched ones (a wide
            # net's claim covers their intersection) count as failed
            # here exactly as in the serial path.
            failed_terminals=len(self.router.tig.pinched_terminals(net_id)),
            plane=self.router.tig.plane_of(net_id),
        )
