"""Speculative routing workers: route one net on a grid window copy.

A worker receives a :class:`NetTask` — the net id, its terminals in
window-local index space, a :class:`~repro.grid.WindowSnapshot` and a
restricted router config — rebuilds an isolated sub-grid from the
snapshot and routes the net on it with the *same* code the serial
router uses (:func:`repro.core.router.route_net_terminals`, the same
engine, the same cost terms).  Track coordinates are carried verbatim
in the snapshot, so the returned geometry is already global; only
index-typed fields (corners, terminals) are translated back by the
window offset.

The payload is deliberately small and picklable: three numpy window
arrays plus a handful of ints, never the router, the TIG or the full
grid — which is what makes process pools viable.

Failure is always safe: a worker that cannot complete the net inside
its window returns ``complete=False`` and the merger routes the net
serially.  More than that, a worker result is *tainted* — reported
incomplete even when every terminal got wired — the moment any single
connection attempt fails or any search region would be truncated by a
mid-grid window edge.  A failed attempt is a decision point where the
restricted worker and the escalating serial router could part ways
(the Steiner loop would fall through to a different attach candidate;
the serial router would instead grow the region and route the original
one), and a truncated region reads different cells than serial would.
Tainting collapses both cases to the serial fallback, so an applied
speculation is always the path serial routing would have committed.
"""

from __future__ import annotations

from concurrent.futures import Executor, Future, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, replace
from collections.abc import Iterator

from repro.core.engine import EngineContext, Region, RoutedConnection, get_engine
from repro.core.cost import CornerCostEvaluator, TrackHistory
from repro.core.router import LevelBConfig, coupling_terms, route_net_terminals
from repro.core.tig import GridTerminal
from repro.geometry import Interval, Point
from repro.grid.occupancy import WindowSnapshot

__all__ = [
    "NetTask",
    "SpecConnection",
    "SpecFuture",
    "SpecResult",
    "WorkerPool",
    "route_net_task",
    "speculative_config",
]


@dataclass(frozen=True)
class NetTask:
    """Everything a worker needs to speculatively route one net."""

    net_id: int
    #: Terminals in window-local index space (translate by the window
    #: offset to recover global indices).
    terminals: tuple[GridTerminal, ...]
    window: WindowSnapshot
    config: LevelBConfig
    sensitive_ids: frozenset[int]
    #: Negotiated-congestion history sliced to the window (local
    #: indices, docs/ITERATION.md).  The merge contract's byte-equality
    #: check validates grid *state*, not the cost model, so an
    #: iterative run must ship its history or workers would silently
    #: price paths differently than the serial router.  ``None`` in
    #: one-pass mode.
    history: TrackHistory | None = None
    #: The net's width footprint ``(span, guard)`` (width classes,
    #: docs/TECHNOLOGY.md).  Registered on the worker's sub-grid so its
    #: occupancy probes and claims expand exactly as the serial grid's
    #: would; ``(1, 0)`` for ordinary single-track nets.
    footprint: tuple[int, int] = (1, 0)
    #: Per-corner cost surcharge (``objective="vias"``).  Selection
    #: inputs must match the serial evaluator bit-for-bit — the merge
    #: contract's byte-equality check validates grid state only.
    corner_surcharge: float = 0.0


@dataclass(frozen=True)
class SpecConnection:
    """One speculatively routed connection, in global terms."""

    source: GridTerminal
    target: GridTerminal
    points: tuple[Point, ...]
    corners: tuple[tuple[int, int], ...]
    cost: float
    expansions_used: int


@dataclass(frozen=True)
class SpecResult:
    """A worker's answer: the net's connections, or an honest failure."""

    net_id: int
    complete: bool
    connections: tuple[SpecConnection, ...]
    nodes_created: int


def speculative_config(config: LevelBConfig, speculate_expansions: int) -> LevelBConfig:
    """The restricted config workers route with.

    Workers attempt only the first ``speculate_expansions + 1`` bounded
    regions and never fall through to the whole-grid maze rescue: the
    escalation tail belongs to the serial path, where it runs with
    authoritative state.  Rip-up, refinement and checked mode are
    router-level concerns that never execute inside a worker.
    """
    return replace(
        config,
        max_region_expansions=min(config.max_region_expansions, speculate_expansions),
        maze_fallback=False,
        max_ripups=0,
        refinement_passes=0,
        checked=False,
    )


def _bounded_regions(
    config: LevelBConfig, source: GridTerminal, target: GridTerminal
) -> Iterator[Region]:
    """The serial router's escalation schedule, bounded regions only.

    Mirrors :meth:`repro.core.router.LevelBRouter._regions` minus the
    final whole-grid ``None`` — a worker's "whole grid" would be the
    window, which is *not* what serial routing would search.
    """
    v_box = Interval.spanning(source.v_idx, target.v_idx)
    h_box = Interval.spanning(source.h_idx, target.h_idx)
    margin = config.region_margin_tracks
    for _ in range(config.max_region_expansions + 1):
        yield (v_box.expanded(margin), h_box.expanded(margin))
        margin *= config.region_growth


def _region_truncated(window: WindowSnapshot, v_iv: Interval, h_iv: Interval, pad: int) -> bool:
    """Would clipping ``region + pad`` at the window differ from serial?

    The region (in window-local indices) plus the cost model's read
    halo must either fit inside the window or run past a window edge
    that coincides with the *global* grid edge — there serial routing
    clips identically.  Anywhere else the worker would search (and
    cost) a smaller rectangle than the serial router, so the
    speculation must be abandoned.
    """
    nv, nh = window.num_vtracks, window.num_htracks
    if v_iv.lo - pad < 0 and window.v_lo > 0:
        return True
    if v_iv.hi + pad > nv - 1 and window.v_lo + nv < window.global_vtracks:
        return True
    if h_iv.lo - pad < 0 and window.h_lo > 0:
        return True
    return h_iv.hi + pad > nh - 1 and window.h_lo + nh < window.global_htracks


def route_net_task(task: NetTask) -> SpecResult:
    """Route one net on the task's isolated sub-grid (worker entry)."""
    grid = task.window.to_grid()
    if task.footprint != (1, 0):
        span, guard = task.footprint
        grid.set_net_footprint(task.net_id, span, guard=guard)
    cfg = task.config
    engine = get_engine(cfg.engine).from_config(cfg)
    pad = max(cfg.weights.radius, cfg.parallel_run_separation, 1)
    # Wide nets probe `reach` tracks past every candidate; a window
    # edge inside that reach truncates reads serial routing would make.
    pad += task.footprint[0] - 1 + task.footprint[1]
    nodes = 0
    tainted = False

    def add_nodes(n: int) -> None:
        nonlocal nodes
        nodes += n

    def evaluator(net_id: int) -> CornerCostEvaluator:
        return CornerCostEvaluator(
            grid,
            cfg.weights,
            extra_terms=coupling_terms(net_id, task.sensitive_ids, cfg),
            history=task.history,
            width_tracks=task.footprint[0],
            corner_surcharge=task.corner_surcharge,
        )

    def regions(source: GridTerminal, target: GridTerminal) -> Iterator[Region]:
        nonlocal tainted
        for v_iv, h_iv in _bounded_regions(cfg, source, target):
            if _region_truncated(task.window, v_iv, h_iv, pad):
                tainted = True
                return  # larger regions only truncate more
            yield (v_iv, h_iv)

    ctx = EngineContext(
        grid=grid,
        config=cfg,
        evaluator=evaluator,
        regions=regions,
        add_nodes=add_nodes,
    )

    def connect(source: GridTerminal, target: GridTerminal) -> RoutedConnection | None:
        # Any failed attempt is a decision point where serial routing
        # would escalate instead of (as the Steiner loop does) falling
        # through to the next attach candidate: taint the whole net so
        # the merger declines it and serial order decides.
        nonlocal tainted
        conn = engine.route(ctx, task.net_id, source, target)
        if conn is None:
            tainted = True
        return conn

    connections, failed = route_net_terminals(grid, task.net_id, task.terminals, connect)
    dv, dh = task.window.v_lo, task.window.h_lo
    spec = tuple(
        SpecConnection(
            source=GridTerminal(c.source.v_idx + dv, c.source.h_idx + dh),
            target=GridTerminal(c.target.v_idx + dv, c.target.h_idx + dh),
            points=tuple(c.path.waypoints()),
            corners=tuple((v + dv, h + dh) for v, h in c.corners),
            cost=c.cost,
            expansions_used=c.expansions_used,
        )
        for c in connections
    )
    return SpecResult(
        net_id=task.net_id,
        complete=failed == 0 and not tainted,
        connections=spec,
        nodes_created=nodes,
    )


class WorkerPool:
    """A ``concurrent.futures`` facade with graceful degradation.

    ``mode="process"`` tries a :class:`ProcessPoolExecutor` and falls
    back to threads when process pools are unavailable (restricted
    sandboxes, missing semaphores); ``mode="thread"`` uses threads
    directly; ``mode="serial"`` computes lazily in the caller's thread
    — useful for debugging and for exercising the merge path without
    nondeterministic scheduling.  When the executor breaks mid-run
    (e.g. a killed worker process) the pool marks itself dead; every
    outstanding and future submission then reports failure, which the
    merger treats as "route serially".
    """

    def __init__(self, workers: int, mode: str = "process") -> None:
        self.workers = max(1, workers)
        self.requested_mode = mode
        self.mode = mode
        self._executor: Executor | None = None
        self._dead = False
        if mode == "serial":
            return
        if mode == "process":
            try:
                self._executor = ProcessPoolExecutor(max_workers=self.workers)
            except (OSError, ValueError, ImportError):
                self.mode = "thread"
        if self._executor is None:
            self._executor = ThreadPoolExecutor(max_workers=self.workers)

    @property
    def alive(self) -> bool:
        return not self._dead

    def submit(self, task: NetTask) -> "Future[SpecResult] | _LazyFuture":
        if self.mode == "serial":
            return _LazyFuture(task)
        assert self._executor is not None
        try:
            return self._executor.submit(route_net_task, task)
        except RuntimeError:
            # Executor already broken/shut down: report a failed future
            # so the merger falls back to serial routing.
            self._dead = True
            failed: Future[SpecResult] = Future()
            failed.set_exception(RuntimeError("worker pool is dead"))
            return failed

    def mark_dead(self) -> None:
        """Stop speculating (called after a broken-pool error)."""
        self._dead = True

    def close(self) -> None:
        if self._executor is not None:
            # cancel_futures needs 3.9+; wait so worker processes never
            # outlive the routing run.
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None


class _LazyFuture:
    """A Future-alike that routes on first ``result()`` (serial mode)."""

    def __init__(self, task: NetTask) -> None:
        self._task = task
        self._result: SpecResult | None = None

    def result(self, timeout: float | None = None) -> SpecResult:
        if self._result is None:
            self._result = route_net_task(self._task)
        return self._result

    def cancel(self) -> bool:  # pragma: no cover - protocol completeness
        return False

    def done(self) -> bool:
        return self._result is not None


#: What :meth:`WorkerPool.submit` hands back — a real executor future
#: or the serial-mode lazy stand-in; both expose ``result()``.
SpecFuture = Future[SpecResult] | _LazyFuture

