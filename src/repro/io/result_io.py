"""Routing result export."""

from __future__ import annotations

from typing import Any


def levelb_result_to_dict(result) -> dict[str, Any]:
    """Plain-data export of a :class:`~repro.core.router.LevelBResult`.

    Paths are waypoint lists (terminal, corners..., terminal); corner
    vias are ``(x, y)`` coordinates; each net records the over-cell
    plane it was routed on; suitable for JSON.
    """
    grid = result.tig.grid
    nets = []
    for routed in result.routed:
        connections = []
        for conn in routed.connections:
            connections.append(
                {
                    "waypoints": [[p.x, p.y] for p in conn.path.waypoints()],
                    "corners": [
                        list(grid.coord_of(v, h)) for v, h in conn.corners
                    ],
                    "wire_length": conn.wire_length,
                    "maze_rescue": conn.expansions_used == -1,
                }
            )
        nets.append(
            {
                "net": routed.net.name,
                "complete": routed.complete,
                "plane": routed.plane,
                "wire_length": routed.wire_length,
                "corner_vias": routed.corner_count,
                "connections": connections,
            }
        )
    return {
        "format": "repro-levelb-result",
        "planes": result.num_planes,
        "completion_rate": result.completion_rate,
        "total_wire_length": result.total_wire_length,
        "total_vias": result.total_vias,
        "ripups": result.ripups,
        "elapsed_s": result.elapsed_s,
        "nets": nets,
    }


def flow_result_to_dict(result) -> dict[str, Any]:
    """Plain-data summary of a :class:`~repro.flow.FlowResult`."""
    out: dict[str, Any] = {
        "format": "repro-flow-result",
        "flow": result.flow,
        "design": result.design,
        "layout_area": result.layout_area,
        "width": result.bounds.width,
        "height": result.bounds.height,
        "wire_length": result.wire_length,
        "via_count": result.via_count,
        "completion": result.completion,
        "channel_tracks": list(result.channel_tracks),
        "channel_heights": list(result.channel_heights),
        "side_widths": list(result.side_widths),
        "notes": dict(result.notes),
    }
    if result.levelb is not None:
        out["levelb"] = levelb_result_to_dict(result.levelb)
    if result.profile is not None:
        out["profile"] = result.profile
    if result.check_report is not None:
        out["check"] = result.check_report.to_dict()
    return out
