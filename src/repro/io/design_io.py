"""JSON (de)serialisation of designs."""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.netlist import Design, Edge
from repro.technology import NetClass

FORMAT_VERSION = 1


def design_to_dict(design: Design) -> dict[str, Any]:
    """A plain-data snapshot of ``design`` (placement included)."""
    cells = []
    for cell in design.cells.values():
        cells.append(
            {
                "name": cell.name,
                "width": cell.width,
                "height": cell.height,
                "origin": list(cell.origin) if cell.origin is not None else None,
                "pins": [
                    {
                        "name": pin.name,
                        "edge": pin.edge.value,
                        "offset": pin.offset,
                    }
                    for pin in cell.pins
                ],
            }
        )
    nets = []
    for net in design.nets.values():
        net_doc: dict[str, Any] = {
            "name": net.name,
            "is_critical": net.is_critical,
            "is_sensitive": net.is_sensitive,
            "weight": net.weight,
            "pins": [pin.full_name for pin in net.pins],
        }
        # Emitted only for wide nets so all-signal documents (and their
        # serve cache digests) stay byte-identical to older revisions.
        if net.net_class is not NetClass.SIGNAL:
            net_doc["net_class"] = net.net_class.value
        nets.append(net_doc)
    return {
        "format": "repro-design",
        "version": FORMAT_VERSION,
        "name": design.name,
        "cells": cells,
        "nets": nets,
    }


def design_from_dict(data: dict[str, Any]) -> Design:
    """Rebuild a :class:`Design` written by :func:`design_to_dict`."""
    if data.get("format") != "repro-design":
        raise ValueError("not a repro design document")
    if data.get("version") != FORMAT_VERSION:
        raise ValueError(f"unsupported design format version {data.get('version')}")
    design = Design(data["name"])
    pin_index = {}
    for cell_data in data["cells"]:
        cell = design.add_cell(
            cell_data["name"], cell_data["width"], cell_data["height"]
        )
        if cell_data.get("origin") is not None:
            x, y = cell_data["origin"]
            cell.place(x, y)
        for pin_data in cell_data["pins"]:
            pin = design.add_pin(
                cell.name,
                pin_data["name"],
                Edge(pin_data["edge"]),
                pin_data["offset"],
            )
            pin_index[pin.full_name] = pin
    for net_data in data["nets"]:
        net = design.add_net(
            net_data["name"],
            is_critical=net_data.get("is_critical", False),
            weight=net_data.get("weight", 1.0),
            net_class=NetClass(net_data.get("net_class", "signal")),
        )
        net.is_sensitive = net_data.get("is_sensitive", False)
        for full_name in net_data["pins"]:
            try:
                net.add_pin(pin_index[full_name])
            except KeyError:
                raise ValueError(f"net {net.name} references unknown pin {full_name}")
    return design


def save_design(design: Design, path: str | Path) -> None:
    """Write ``design`` as JSON."""
    Path(path).write_text(json.dumps(design_to_dict(design), indent=2))


def load_design(path: str | Path) -> Design:
    """Read a design JSON written by :func:`save_design`."""
    return design_from_dict(json.loads(Path(path).read_text()))
