"""JSON (de)serialisation of technologies.

Two on-disk shapes are accepted by :func:`load_technology`:

* ``repro-technology`` documents — the canonical snapshot written by
  :func:`save_technology`.  This is also the *canonical serialized
  form* the serve layer digests: any document describing the same
  rules canonicalizes to the same dict here.
* hammer-style *stackup* documents (a ``metals`` list) — ingested via
  :mod:`repro.technology.ingest`.

Width-dependent fields (``min_width``, ``spacing_table``, via ``cost``)
are emitted only when they differ from the defaults, so documents for
the preset technologies — and their digests — are byte-identical to
what earlier revisions produced.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.technology import (
    Layer,
    RoutingDirection,
    Technology,
    ViaRule,
    WidthSpacingTuple,
    technology_from_any,
)

FORMAT_VERSION = 1


def technology_to_dict(tech: Technology) -> dict[str, Any]:
    """A plain-data snapshot of a technology."""
    layers = []
    for layer in tech.layers:
        ld: dict[str, Any] = {
            "index": layer.index,
            "name": layer.name,
            "direction": layer.direction.value,
            "pitch": layer.pitch,
            "width": layer.width,
            "sheet_resistance": layer.sheet_resistance,
            "cap_per_lambda": layer.cap_per_lambda,
        }
        if layer.min_width is not None:
            ld["min_width"] = layer.min_width
        if layer.spacing_table:
            ld["spacing_table"] = [
                {"width_at_least": row.width_at_least,
                 "min_spacing": row.min_spacing}
                for row in layer.spacing_table
            ]
        layers.append(ld)
    vias = []
    for v in tech.vias:
        vd: dict[str, Any] = {"lower": v.lower, "upper": v.upper, "size": v.size}
        if v.cost != 1.0:
            vd["cost"] = v.cost
        vias.append(vd)
    return {
        "format": "repro-technology",
        "version": FORMAT_VERSION,
        "name": tech.name,
        "layers": layers,
        "vias": vias,
    }


def technology_from_dict(data: dict[str, Any]) -> Technology:
    """Rebuild a :class:`Technology` from :func:`technology_to_dict`."""
    if data.get("format") != "repro-technology":
        raise ValueError("not a repro technology document")
    if data.get("version") != FORMAT_VERSION:
        raise ValueError(
            f"unsupported technology format version {data.get('version')}"
        )
    layers = tuple(
        Layer(
            index=ld["index"],
            name=ld["name"],
            direction=RoutingDirection(ld["direction"]),
            pitch=ld["pitch"],
            width=ld["width"],
            sheet_resistance=ld.get("sheet_resistance", 0.07),
            cap_per_lambda=ld.get("cap_per_lambda", 0.20),
            min_width=ld.get("min_width"),
            spacing_table=tuple(
                WidthSpacingTuple(row["width_at_least"], row["min_spacing"])
                for row in ld.get("spacing_table", [])
            ),
        )
        for ld in data["layers"]
    )
    vias = tuple(
        ViaRule(
            lower=vd["lower"],
            upper=vd["upper"],
            size=vd["size"],
            cost=vd.get("cost", 1.0),
        )
        for vd in data["vias"]
    )
    return Technology(name=data["name"], layers=layers, vias=vias)


def save_technology(tech: Technology, path: str | Path) -> None:
    """Write ``tech`` as JSON."""
    Path(path).write_text(json.dumps(technology_to_dict(tech), indent=2))


def load_technology(path: str | Path) -> Technology:
    """Read a technology JSON: repro-technology or stackup format."""
    data = json.loads(Path(path).read_text())
    if isinstance(data, dict) and data.get("format") == "repro-technology":
        return technology_from_dict(data)
    return technology_from_any(data)
