"""JSON (de)serialisation of technologies."""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.technology import Layer, RoutingDirection, Technology, ViaRule

FORMAT_VERSION = 1


def technology_to_dict(tech: Technology) -> dict[str, Any]:
    """A plain-data snapshot of a technology."""
    return {
        "format": "repro-technology",
        "version": FORMAT_VERSION,
        "name": tech.name,
        "layers": [
            {
                "index": layer.index,
                "name": layer.name,
                "direction": layer.direction.value,
                "pitch": layer.pitch,
                "width": layer.width,
                "sheet_resistance": layer.sheet_resistance,
                "cap_per_lambda": layer.cap_per_lambda,
            }
            for layer in tech.layers
        ],
        "vias": [
            {"lower": v.lower, "upper": v.upper, "size": v.size}
            for v in tech.vias
        ],
    }


def technology_from_dict(data: dict[str, Any]) -> Technology:
    """Rebuild a :class:`Technology` from :func:`technology_to_dict`."""
    if data.get("format") != "repro-technology":
        raise ValueError("not a repro technology document")
    if data.get("version") != FORMAT_VERSION:
        raise ValueError(
            f"unsupported technology format version {data.get('version')}"
        )
    layers = tuple(
        Layer(
            index=ld["index"],
            name=ld["name"],
            direction=RoutingDirection(ld["direction"]),
            pitch=ld["pitch"],
            width=ld["width"],
            sheet_resistance=ld.get("sheet_resistance", 0.07),
            cap_per_lambda=ld.get("cap_per_lambda", 0.20),
        )
        for ld in data["layers"]
    )
    vias = tuple(
        ViaRule(lower=vd["lower"], upper=vd["upper"], size=vd["size"])
        for vd in data["vias"]
    )
    return Technology(name=data["name"], layers=layers, vias=vias)


def save_technology(tech: Technology, path: str | Path) -> None:
    """Write ``tech`` as JSON."""
    Path(path).write_text(json.dumps(technology_to_dict(tech), indent=2))


def load_technology(path: str | Path) -> Technology:
    """Read a technology JSON written by :func:`save_technology`."""
    return technology_from_dict(json.loads(Path(path).read_text()))
