"""Design and result serialisation (JSON).

Lets downstream users bring their own netlists and keep routing
results: :func:`design_to_dict` / :func:`design_from_dict` round-trip a
complete :class:`~repro.netlist.Design` (including placement state and
net attributes), and :func:`levelb_result_to_dict` /
:func:`flow_result_to_dict` export routing outcomes as plain data.
:func:`canonical_digest` hashes any JSON-representable document
(sorted-key canonical form) for content-addressed result caching.
"""

from repro.io.design_io import (
    design_from_dict,
    design_to_dict,
    load_design,
    save_design,
)
from repro.io.digest import canonical_digest, canonical_json
from repro.io.result_io import flow_result_to_dict, levelb_result_to_dict
from repro.io.tech_io import (
    load_technology,
    save_technology,
    technology_from_dict,
    technology_to_dict,
)

__all__ = [
    "canonical_digest",
    "canonical_json",
    "design_to_dict",
    "design_from_dict",
    "save_design",
    "load_design",
    "levelb_result_to_dict",
    "flow_result_to_dict",
    "technology_to_dict",
    "technology_from_dict",
    "save_technology",
    "load_technology",
]
