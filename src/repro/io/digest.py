"""Canonical JSON hashing for content-addressed caching.

A *canonical digest* is the sha256 of an object's canonical JSON
form: keys sorted at every nesting level, compact separators, no
NaN/Infinity leakage.  Two dicts that compare equal produce the same
digest regardless of insertion order, so the digest can key caches of
expensive results — ``repro.serve`` uses it to answer repeated routing
requests without re-routing (docs/SERVING.md).

Only JSON-representable data digests: feed this the *serialised* form
of a request (``design_to_dict`` / ``technology_to_dict`` output plus
plain parameter dicts), never live objects.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

__all__ = ["canonical_digest", "canonical_json"]


def canonical_json(obj: Any) -> str:
    """``obj`` as canonical JSON: sorted keys, compact, ASCII-safe.

    Raises ``ValueError`` for data JSON cannot represent faithfully
    (NaN/Infinity would otherwise serialise to non-JSON tokens and
    break digest interoperability).
    """
    return json.dumps(
        obj,
        sort_keys=True,
        separators=(",", ":"),
        ensure_ascii=True,
        allow_nan=False,
    )


def canonical_digest(obj: Any) -> str:
    """Hex sha256 of :func:`canonical_json` — order-insensitive."""
    return hashlib.sha256(canonical_json(obj).encode("utf-8")).hexdigest()
