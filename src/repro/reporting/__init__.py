"""Table formatting and paper-vs-measured comparison helpers."""

from repro.reporting.tables import (
    PaperComparison,
    format_table,
    table1_rows,
    table2_rows,
    table3_headers,
    table3_rows,
)
from repro.reporting.html import html_report

__all__ = [
    "format_table",
    "PaperComparison",
    "table1_rows",
    "table2_rows",
    "table3_headers",
    "table3_rows",
    "html_report",
]
