"""Single-file HTML reports for flow results.

Bundles the layout SVG, the text routing report, and the congestion
heatmap into one self-contained document a user can open or attach -
no external assets, no JavaScript.
"""

from __future__ import annotations

import html

from repro.analysis import routing_report
from repro.technology import Technology

_STYLE = """
body { font-family: -apple-system, 'Segoe UI', sans-serif; margin: 2em;
       color: #222; max-width: 1100px; }
h1 { font-size: 1.4em; border-bottom: 2px solid #444; padding-bottom: .3em; }
h2 { font-size: 1.1em; margin-top: 1.6em; }
pre { background: #f6f6f6; border: 1px solid #ddd; border-radius: 6px;
      padding: 1em; overflow-x: auto; font-size: 12px; line-height: 1.35; }
.svgbox { border: 1px solid #ddd; border-radius: 6px; padding: .5em;
          background: white; overflow: auto; max-height: 720px; }
.metrics { display: flex; gap: 2em; flex-wrap: wrap; margin: 1em 0; }
.metric { background: #f0f4f8; border-radius: 8px; padding: .8em 1.2em; }
.metric .value { font-size: 1.3em; font-weight: 600; }
.metric .label { font-size: .8em; color: #667; }
"""


def _metric(label: str, value: str) -> str:
    return (
        f'<div class="metric"><div class="value">{html.escape(value)}</div>'
        f'<div class="label">{html.escape(label)}</div></div>'
    )


def html_report(
    result,
    *,
    technology: Technology | None = None,
    scale: float = 0.5,
    top_n: int = 8,
) -> str:
    """A self-contained HTML page for a :class:`~repro.flow.FlowResult`."""
    from repro.viz.svg import svg_flow_result

    title = f"{result.design} / {result.flow}"
    metrics = [
        _metric("layout area (lambda^2)", f"{result.layout_area:,}"),
        _metric("wire length (lambda)", f"{result.wire_length:,}"),
        _metric("vias", f"{result.via_count:,}"),
        _metric("completion", f"{result.completion:.1%}"),
    ]
    if result.levelb is not None:
        metrics.append(
            _metric(
                "level B nets",
                f"{result.levelb.nets_completed}/{result.levelb.nets_attempted}",
            )
        )
    report_text = routing_report(result, technology=technology, top_n=top_n)
    parts = [
        "<!DOCTYPE html>",
        "<html><head><meta charset='utf-8'>",
        f"<title>{html.escape(title)}</title>",
        f"<style>{_STYLE}</style></head><body>",
        f"<h1>Routing report: {html.escape(title)}</h1>",
        '<div class="metrics">' + "".join(metrics) + "</div>",
        "<h2>Layout</h2>",
        '<div class="svgbox">' + svg_flow_result(result, scale=scale) + "</div>",
        "<h2>Details</h2>",
        "<pre>" + html.escape(report_text) + "</pre>",
        "</body></html>",
    ]
    return "\n".join(parts)
